//! Exporters: JSON-lines for events and snapshots, Prometheus text
//! exposition for metrics. Hand-rolled encoding — the output grammar is
//! tiny and this keeps the observability crate dependency-free.

use crate::event::{Event, Field};
use crate::metrics::{MetricId, SampleValue, Snapshot};
use std::fmt::Write as _;

/// Escapes a string for embedding in a JSON double-quoted literal.
fn json_escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Encodes a string as a JSON double-quoted literal.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    json_escape_into(s, &mut out);
    out.push('"');
    out
}

fn field_json_into(f: &Field, out: &mut String) {
    match f {
        Field::U64(v) => {
            let _ = write!(out, "{v}");
        }
        Field::I64(v) => {
            let _ = write!(out, "{v}");
        }
        Field::F64(v) if v.is_finite() => {
            let _ = write!(out, "{v:?}");
        }
        Field::F64(_) => out.push_str("null"),
        Field::Bool(v) => {
            let _ = write!(out, "{v}");
        }
        Field::Str(s) => {
            out.push('"');
            json_escape_into(s, out);
            out.push('"');
        }
    }
}

/// Encodes one event as a single-line JSON object.
pub fn event_to_json(ev: &Event) -> String {
    let mut out = String::with_capacity(128);
    let _ = write!(
        out,
        "{{\"seq\":{},\"wall_unix_ns\":{},\"level\":\"{}\",\"target\":\"{}\",\"name\":\"{}\"",
        ev.seq,
        ev.wall_unix_ns,
        ev.level.as_str(),
        ev.target,
        ev.name
    );
    if let Some(sim) = ev.sim {
        let _ = write!(out, ",\"sim_us\":{}", sim.as_micros());
    }
    if !ev.fields.is_empty() {
        out.push_str(",\"fields\":{");
        for (i, (k, v)) in ev.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            json_escape_into(k, &mut out);
            out.push_str("\":");
            field_json_into(v, &mut out);
        }
        out.push('}');
    }
    out.push('}');
    out
}

/// Encodes events as JSON lines (one object per line, trailing newline
/// after each).
pub fn events_to_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&event_to_json(ev));
        out.push('\n');
    }
    out
}

/// Renders an event as a single human-readable line (the stderr sink
/// format used by the bench binaries).
pub fn event_to_line(ev: &Event) -> String {
    let mut out = String::with_capacity(96);
    let _ = write!(out, "[{}] {} {}", ev.level.as_str(), ev.target, ev.name);
    if let Some(sim) = ev.sim {
        let _ = write!(out, " sim_us={}", sim.as_micros());
    }
    for (k, v) in &ev.fields {
        let _ = write!(out, " {k}=");
        match v {
            Field::U64(x) => {
                let _ = write!(out, "{x}");
            }
            Field::I64(x) => {
                let _ = write!(out, "{x}");
            }
            Field::F64(x) => {
                let _ = write!(out, "{x}");
            }
            Field::Bool(x) => {
                let _ = write!(out, "{x}");
            }
            Field::Str(x) => {
                let _ = write!(out, "{x:?}");
            }
        }
    }
    out
}

fn prom_labels_into(id: &MetricId, extra: Option<(&str, &str)>, out: &mut String) {
    if id.labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in &id.labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"");
        // Prometheus label escaping matches JSON's for our character set.
        json_escape_into(v, out);
        out.push('"');
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{v}\"");
    }
    out.push('}');
}

/// Encodes a metrics snapshot in Prometheus text exposition format.
/// Histograms emit `_bucket` (with `le` in microseconds), `_count`, and
/// quantile gauges `_p50_us` / `_p99_us`.
pub fn snapshot_to_prometheus(snap: &Snapshot) -> String {
    let mut out = String::new();
    let mut last_typed: Option<(String, &'static str)> = None;
    for (id, value) in &snap.samples {
        let kind = match value {
            SampleValue::Counter(_) => "counter",
            SampleValue::Gauge(_) => "gauge",
            SampleValue::Histogram(_) => "histogram",
        };
        if last_typed.as_ref().map(|(n, k)| (n.as_str(), *k)) != Some((id.name.as_str(), kind)) {
            let _ = writeln!(out, "# TYPE {} {}", id.name, kind);
            last_typed = Some((id.name.clone(), kind));
        }
        match value {
            SampleValue::Counter(v) => {
                out.push_str(&id.name);
                prom_labels_into(id, None, &mut out);
                let _ = writeln!(out, " {v}");
            }
            SampleValue::Gauge(v) => {
                out.push_str(&id.name);
                prom_labels_into(id, None, &mut out);
                let _ = writeln!(out, " {v}");
            }
            SampleValue::Histogram(h) => {
                for &(le_us, cum) in &h.buckets {
                    let _ = write!(out, "{}_bucket", id.name);
                    prom_labels_into(id, Some(("le", &le_us.to_string())), &mut out);
                    let _ = writeln!(out, " {cum}");
                }
                let _ = write!(out, "{}_bucket", id.name);
                prom_labels_into(id, Some(("le", "+Inf")), &mut out);
                let _ = writeln!(out, " {}", h.count);
                let _ = write!(out, "{}_count", id.name);
                prom_labels_into(id, None, &mut out);
                let _ = writeln!(out, " {}", h.count);
                for (suffix, q) in [("p50_us", h.p50_us), ("p99_us", h.p99_us)] {
                    if let Some(v) = q {
                        let _ = write!(out, "{}_{suffix}", id.name);
                        prom_labels_into(id, None, &mut out);
                        let _ = writeln!(out, " {v}");
                    }
                }
            }
        }
    }
    out
}

/// Encodes a metrics snapshot as one JSON object: `{"metric{k=v}": value}`
/// with histograms expanded to summary objects. Used by the bench
/// telemetry manifests.
pub fn snapshot_to_json(snap: &Snapshot) -> String {
    let mut out = String::from("{");
    for (i, (id, value)) in snap.samples.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let mut key = id.name.clone();
        if !id.labels.is_empty() {
            key.push('{');
            for (j, (k, v)) in id.labels.iter().enumerate() {
                if j > 0 {
                    key.push(',');
                }
                let _ = write!(key, "{k}={v}");
            }
            key.push('}');
        }
        out.push('"');
        json_escape_into(&key, &mut out);
        out.push_str("\":");
        match value {
            SampleValue::Counter(v) => {
                let _ = write!(out, "{v}");
            }
            SampleValue::Gauge(v) if v.is_finite() => {
                let _ = write!(out, "{v:?}");
            }
            SampleValue::Gauge(_) => out.push_str("null"),
            SampleValue::Histogram(h) => {
                let _ = write!(out, "{{\"count\":{}", h.count);
                for (k, v) in [
                    ("min_us", h.min_us),
                    ("max_us", h.max_us),
                    ("mean_us", h.mean_us),
                    ("p50_us", h.p50_us),
                    ("p99_us", h.p99_us),
                    ("p999_us", h.p999_us),
                ] {
                    if let Some(v) = v {
                        let _ = write!(out, ",\"{k}\":{v}");
                    }
                }
                out.push('}');
            }
        }
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{wall_unix_ns, Level};
    use crate::metrics::Registry;

    fn sample_event() -> Event {
        Event {
            seq: 3,
            wall_unix_ns: 1_700_000_000_000_000_000,
            sim: Some(pingmesh_types::SimTime(42)),
            level: Level::Warn,
            target: "agent.upload",
            name: "retry \"quoted\"",
            fields: vec![
                ("attempt", Field::U64(2)),
                ("reason", Field::Str("conn\nreset".into())),
                ("gave_up", Field::Bool(false)),
            ],
        }
    }

    #[test]
    fn event_json_is_well_formed() {
        let s = event_to_json(&sample_event());
        assert!(s.starts_with('{') && s.ends_with('}'));
        assert!(s.contains("\"seq\":3"));
        assert!(s.contains("\"sim_us\":42"));
        assert!(s.contains("\\n"), "newline escaped: {s}");
        assert!(!s.contains('\n'), "single line: {s}");
    }

    #[test]
    fn jsonl_one_line_per_event() {
        let evs = vec![sample_event(), sample_event()];
        let s = events_to_jsonl(&evs);
        assert_eq!(s.lines().count(), 2);
    }

    #[test]
    fn prometheus_format_basics() {
        let r = Registry::new();
        r.counter_with("pingmesh_test_reqs_total", &[("code", "200")])
            .add(7);
        r.gauge("pingmesh_test_depth").set(3.5);
        let h = r.histogram("pingmesh_test_rtt_us");
        h.record_micros(100);
        h.record_micros(10_000);
        let text = snapshot_to_prometheus(&r.snapshot());
        assert!(text.contains("# TYPE pingmesh_test_reqs_total counter"));
        assert!(text.contains("pingmesh_test_reqs_total{code=\"200\"} 7"));
        assert!(text.contains("pingmesh_test_depth 3.5"));
        assert!(text.contains("pingmesh_test_rtt_us_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("pingmesh_test_rtt_us_count 2"));
        assert!(text.contains("pingmesh_test_rtt_us_p50_us"));
    }

    #[test]
    fn snapshot_json_parses_shape() {
        let r = Registry::new();
        r.counter("pingmesh_test_a_total").add(2);
        r.histogram("pingmesh_test_h_us").record_micros(500);
        let s = snapshot_to_json(&r.snapshot());
        assert!(s.contains("\"pingmesh_test_a_total\":2"));
        assert!(s.contains("\"count\":1"));
    }

    #[test]
    fn event_line_is_single_line() {
        let line = event_to_line(&sample_event());
        assert!(!line.contains('\n'));
        assert!(line.starts_with("[warn] agent.upload"));
    }

    #[test]
    fn wall_clock_is_sane() {
        // After 2020-01-01 in unix nanoseconds.
        assert!(wall_unix_ns() > 1_577_836_800_000_000_000);
    }
}
