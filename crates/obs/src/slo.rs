//! Data-quality SLOs: target definitions, evaluation, burn rates.
//!
//! The paper's operational stance is that Pingmesh data is only usable if
//! its own quality is tracked: what fraction of expected pod pairs
//! reported (**coverage**), what fraction of scheduled probes became
//! stored records (**completeness**), and how stale the newest stored
//! record is (**freshness**). This module holds the vocabulary: SLO
//! kinds, point-in-time [`SloStatus`] evaluation with burn rates, a small
//! windowed [`SloTracker`], and gauge publication
//! (`pingmesh_slo_value{slo=...}` / `pingmesh_slo_healthy` /
//! `pingmesh_slo_burn_rate`). The values themselves are computed by the
//! DSA quality job (`pingmesh_dsa::quality`) and the realmode watchdog.

use std::collections::VecDeque;

/// The data-quality SLO dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SloKind {
    /// Observed (src-pod, dst-pod) pairs ÷ expected pairs, per window.
    Coverage,
    /// Stored probe records ÷ scheduled probes (conservation ledger).
    Completeness,
    /// Age of the newest stored record: `now − newest_ts`, microseconds.
    Freshness,
    /// Age of acknowledged-but-not-fsynced WAL bytes in the durable
    /// store, microseconds. Measures crash exposure: how much acked data
    /// sits only in the OS page cache between checkpoints/syncs.
    WalFlushLag,
}

impl SloKind {
    /// Stable label value used in metrics and JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            SloKind::Coverage => "coverage",
            SloKind::Completeness => "completeness",
            SloKind::Freshness => "freshness",
            SloKind::WalFlushLag => "wal_flush_lag",
        }
    }

    /// Ratio SLOs degrade downward; the age-valued kinds (freshness, WAL
    /// flush lag) degrade upward.
    pub fn higher_is_better(self) -> bool {
        !matches!(self, SloKind::Freshness | SloKind::WalFlushLag)
    }

    /// All kinds, in display order.
    pub fn all() -> [SloKind; 4] {
        [
            SloKind::Coverage,
            SloKind::Completeness,
            SloKind::Freshness,
            SloKind::WalFlushLag,
        ]
    }
}

/// One SLO's point-in-time evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloStatus {
    /// Which SLO.
    pub kind: SloKind,
    /// Measured value: a ratio in `[0, 1]` for coverage/completeness, an
    /// age in microseconds for freshness.
    pub value: f64,
    /// Configured target (same unit as `value`).
    pub target: f64,
    /// Whether the measurement meets the target.
    pub healthy: bool,
    /// Error-budget burn rate: 0 when comfortably inside the target,
    /// 1.0 exactly at the target, growing as the breach deepens.
    pub burn_rate: f64,
}

/// Evaluates one SLO measurement against its target.
///
/// Ratio kinds (coverage, completeness): healthy iff `value >= target`;
/// burn = shortfall ÷ error budget `(1 − target)`. Freshness: healthy iff
/// `value <= target`; burn = `value / target`.
pub fn evaluate(kind: SloKind, value: f64, target: f64) -> SloStatus {
    let (healthy, burn_rate) = if kind.higher_is_better() {
        let budget = (1.0 - target).max(1e-9);
        (value >= target, ((target - value).max(0.0) / budget))
    } else {
        let target = target.max(1e-9);
        (value <= target, value / target)
    };
    SloStatus {
        kind,
        value,
        target,
        healthy,
        burn_rate,
    }
}

/// Windowed burn-rate tracker: keeps the last few evaluations per kind so
/// a single noisy window doesn't flap the alert-worthy signal.
#[derive(Debug)]
pub struct SloTracker {
    window: usize,
    burns: [VecDeque<f64>; 4],
}

impl Default for SloTracker {
    fn default() -> Self {
        SloTracker::new(6)
    }
}

impl SloTracker {
    /// A tracker averaging over the last `window` evaluations.
    pub fn new(window: usize) -> SloTracker {
        SloTracker {
            window: window.max(1),
            burns: std::array::from_fn(|_| VecDeque::new()),
        }
    }

    fn index(kind: SloKind) -> usize {
        match kind {
            SloKind::Coverage => 0,
            SloKind::Completeness => 1,
            SloKind::Freshness => 2,
            SloKind::WalFlushLag => 3,
        }
    }

    fn slot(&mut self, kind: SloKind) -> &mut VecDeque<f64> {
        &mut self.burns[Self::index(kind)]
    }

    /// Records one evaluation and returns the windowed mean burn rate.
    pub fn observe(&mut self, status: &SloStatus) -> f64 {
        let window = self.window;
        let q = self.slot(status.kind);
        q.push_back(status.burn_rate);
        while q.len() > window {
            q.pop_front();
        }
        q.iter().sum::<f64>() / q.len() as f64
    }

    /// The current windowed mean burn rate for a kind (0 if unobserved).
    pub fn windowed_burn(&self, kind: SloKind) -> f64 {
        let q = &self.burns[Self::index(kind)];
        if q.is_empty() {
            0.0
        } else {
            q.iter().sum::<f64>() / q.len() as f64
        }
    }
}

/// Publishes a set of statuses as gauges on the global registry:
/// `pingmesh_slo_value{slo=...}`, `pingmesh_slo_healthy{slo=...}` (0/1),
/// `pingmesh_slo_burn_rate{slo=...}`.
pub fn publish(statuses: &[SloStatus]) {
    let r = crate::registry();
    for s in statuses {
        let labels = [("slo", s.kind.as_str())];
        r.gauge_with("pingmesh_slo_value", &labels).set(s.value);
        r.gauge_with("pingmesh_slo_healthy", &labels)
            .set(if s.healthy { 1.0 } else { 0.0 });
        r.gauge_with("pingmesh_slo_burn_rate", &labels)
            .set(s.burn_rate);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_slo_evaluation() {
        let ok = evaluate(SloKind::Coverage, 0.95, 0.9);
        assert!(ok.healthy);
        assert_eq!(ok.burn_rate, 0.0);
        let bad = evaluate(SloKind::Coverage, 0.5, 0.9);
        assert!(!bad.healthy);
        // Shortfall 0.4 over a 0.1 budget → burning 4x.
        assert!((bad.burn_rate - 4.0).abs() < 1e-9);
    }

    #[test]
    fn freshness_slo_inverts_direction() {
        let ok = evaluate(SloKind::Freshness, 100.0, 1000.0);
        assert!(ok.healthy);
        assert!((ok.burn_rate - 0.1).abs() < 1e-9);
        let bad = evaluate(SloKind::Freshness, 3000.0, 1000.0);
        assert!(!bad.healthy);
        assert!((bad.burn_rate - 3.0).abs() < 1e-9);
    }

    #[test]
    fn tracker_windows_burn_rates() {
        let mut t = SloTracker::new(2);
        let hot = evaluate(SloKind::Completeness, 0.0, 0.9);
        let cold = evaluate(SloKind::Completeness, 1.0, 0.9);
        t.observe(&hot);
        t.observe(&hot);
        assert!(t.windowed_burn(SloKind::Completeness) > 1.0);
        t.observe(&cold);
        t.observe(&cold);
        assert_eq!(t.windowed_burn(SloKind::Completeness), 0.0);
        // Other kinds unaffected.
        assert_eq!(t.windowed_burn(SloKind::Coverage), 0.0);
    }

    #[test]
    fn wal_flush_lag_is_age_valued_and_tracked() {
        // Lower is better, like freshness: 0 µs lag is perfect health.
        assert!(!SloKind::WalFlushLag.higher_is_better());
        let ok = evaluate(SloKind::WalFlushLag, 0.0, 2_000_000.0);
        assert!(ok.healthy);
        assert_eq!(ok.burn_rate, 0.0);
        let bad = evaluate(SloKind::WalFlushLag, 6_000_000.0, 2_000_000.0);
        assert!(!bad.healthy);
        assert!((bad.burn_rate - 3.0).abs() < 1e-9);
        // The tracker has a slot for it, independent of the other kinds.
        let mut t = SloTracker::new(2);
        t.observe(&bad);
        assert!(t.windowed_burn(SloKind::WalFlushLag) > 1.0);
        assert_eq!(t.windowed_burn(SloKind::Freshness), 0.0);
        assert_eq!(SloKind::all().len(), 4);
    }

    #[test]
    fn publish_sets_gauges() {
        let s = evaluate(SloKind::Freshness, 500.0, 1000.0);
        publish(&[s]);
        let snap = crate::registry().snapshot();
        let v = snap
            .samples
            .iter()
            .find(|(id, _)| {
                id.name == "pingmesh_slo_value"
                    && id.labels == vec![("slo".to_string(), "freshness".to_string())]
            })
            .map(|(_, v)| v.clone());
        assert!(matches!(v, Some(crate::SampleValue::Gauge(g)) if (g - 500.0).abs() < 1e-9));
    }
}
