//! Structured events and the lock-sharded bounded ring buffer they land in.
//!
//! Design constraints, in order:
//! 1. The probe hot path must never block on observability: writers use
//!    `try_lock` on their shard and count a drop on contention instead of
//!    waiting.
//! 2. Memory is bounded: each shard is a fixed-capacity ring; storing into
//!    a full shard evicts the oldest event and counts a drop.
//! 3. Drop accounting is exact: every `push` either stores the event or
//!    increments the drop counter (eviction increments it too), so
//!    `attempts == len() + dropped()` holds at any quiescent point.

use pingmesh_types::SimTime;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// Event severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Diagnostic detail.
    Debug,
    /// Normal operational signal.
    Info,
    /// Something degraded but handled.
    Warn,
    /// Something failed.
    Error,
}

impl Level {
    /// Lowercase name, as emitted in exports.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }
}

/// A typed event field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Field {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Text.
    Str(String),
}

impl From<u64> for Field {
    fn from(v: u64) -> Field {
        Field::U64(v)
    }
}

impl From<u32> for Field {
    fn from(v: u32) -> Field {
        Field::U64(v as u64)
    }
}

impl From<usize> for Field {
    fn from(v: usize) -> Field {
        Field::U64(v as u64)
    }
}

impl From<i64> for Field {
    fn from(v: i64) -> Field {
        Field::I64(v)
    }
}

impl From<i32> for Field {
    fn from(v: i32) -> Field {
        Field::I64(v as i64)
    }
}

impl From<f64> for Field {
    fn from(v: f64) -> Field {
        Field::F64(v)
    }
}

impl From<bool> for Field {
    fn from(v: bool) -> Field {
        Field::Bool(v)
    }
}

impl From<&str> for Field {
    fn from(v: &str) -> Field {
        Field::Str(v.to_string())
    }
}

impl From<String> for Field {
    fn from(v: String) -> Field {
        Field::Str(v)
    }
}

/// One structured event: who emitted it, when (wall clock and, when the
/// emitter runs under the simulator, virtual time), and typed payload.
#[derive(Debug, Clone)]
pub struct Event {
    /// Monotonic sequence number assigned at store time; the cursor for
    /// `GET /events?since=`.
    pub seq: u64,
    /// Wall-clock time, nanoseconds since the Unix epoch.
    pub wall_unix_ns: u128,
    /// Virtual time at emission, when the emitter runs under the simulator.
    pub sim: Option<SimTime>,
    /// Severity.
    pub level: Level,
    /// Emitting subsystem, dotted lowercase (e.g. `core.orchestrator`).
    pub target: &'static str,
    /// Event name (e.g. `run_finished`).
    pub name: &'static str,
    /// Typed payload fields.
    pub fields: Vec<(&'static str, Field)>,
}

/// Wall clock now, as nanoseconds since the Unix epoch.
pub fn wall_unix_ns() -> u128 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos())
        .unwrap_or(0)
}

/// Number of shards; writers hash to a shard by thread so concurrent
/// emitters rarely contend.
const SHARDS: usize = 8;

struct Shard {
    slots: parking_lot::Mutex<VecDeque<Event>>,
}

/// A bounded, lock-sharded ring of recent events with exact drop counting.
pub struct EventRing {
    shards: Vec<Shard>,
    per_shard_cap: usize,
    next_seq: AtomicU64,
    dropped: AtomicU64,
}

fn shard_index() -> usize {
    // A cheap stable per-thread index: assigned once per thread from a
    // global counter, so each thread keeps hitting the same shard.
    static NEXT_THREAD: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static MY_SHARD: usize = NEXT_THREAD.fetch_add(1, Ordering::Relaxed) % SHARDS;
    }
    MY_SHARD.with(|s| *s)
}

impl EventRing {
    /// Creates a ring holding up to `capacity` events (split across shards).
    pub fn new(capacity: usize) -> EventRing {
        let per_shard_cap = (capacity / SHARDS).max(1);
        EventRing {
            shards: (0..SHARDS)
                .map(|_| Shard {
                    slots: parking_lot::Mutex::new(VecDeque::with_capacity(per_shard_cap)),
                })
                .collect(),
            per_shard_cap,
            next_seq: AtomicU64::new(1),
            dropped: AtomicU64::new(0),
        }
    }

    /// Total event capacity.
    pub fn capacity(&self) -> usize {
        self.per_shard_cap * SHARDS
    }

    /// Stores an event, never blocking: on shard contention the event is
    /// counted as dropped instead; on a full shard the oldest event is
    /// evicted (also counted as dropped). Returns the assigned sequence
    /// number, or `None` if the event was rejected.
    pub fn push(&self, mut ev: Event) -> Option<u64> {
        let shard = &self.shards[shard_index()];
        match shard.slots.try_lock() {
            Some(mut q) => {
                if q.len() >= self.per_shard_cap {
                    q.pop_front();
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                }
                let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
                ev.seq = seq;
                q.push_back(ev);
                Some(seq)
            }
            None => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Events dropped so far (contention rejections plus ring evictions).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.slots.lock().len()).sum()
    }

    /// True when no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The highest sequence number assigned so far (0 if none).
    pub fn last_seq(&self) -> u64 {
        self.next_seq.load(Ordering::Relaxed) - 1
    }

    /// Copies out all buffered events with `seq > since`, ordered by
    /// sequence number. `since = 0` returns everything buffered.
    pub fn snapshot_since(&self, since: u64) -> Vec<Event> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let q = shard.slots.lock();
            out.extend(q.iter().filter(|e| e.seq > since).cloned());
        }
        out.sort_by_key(|e| e.seq);
        out
    }

    /// Drops all buffered events (drop counter is preserved).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.slots.lock().clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &'static str) -> Event {
        Event {
            seq: 0,
            wall_unix_ns: wall_unix_ns(),
            sim: None,
            level: Level::Info,
            target: "test",
            name,
            fields: vec![("k", Field::U64(1))],
        }
    }

    #[test]
    fn push_and_snapshot_ordered() {
        // One thread lands on one shard, so per-shard capacity (total/8)
        // must exceed the push count for this lossless-path test.
        let ring = EventRing::new(128);
        for _ in 0..10 {
            ring.push(ev("a")).unwrap();
        }
        let all = ring.snapshot_since(0);
        assert_eq!(all.len(), 10);
        let seqs: Vec<u64> = all.iter().map(|e| e.seq).collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_eq!(seqs, sorted);
        let after = ring.snapshot_since(seqs[4]);
        assert_eq!(after.len(), 5);
    }

    #[test]
    fn full_shard_evicts_and_counts() {
        let ring = EventRing::new(8); // 1 slot per shard
        assert_eq!(ring.capacity(), 8);
        // Same thread -> same shard -> capacity 1 visible to this thread.
        ring.push(ev("first")).unwrap();
        ring.push(ev("second")).unwrap();
        assert_eq!(ring.dropped(), 1);
        let all = ring.snapshot_since(0);
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].name, "second");
    }

    #[test]
    fn accounting_identity_holds() {
        let ring = EventRing::new(16);
        let attempts = 1000u64;
        for _ in 0..attempts {
            ring.push(ev("x"));
        }
        assert_eq!(attempts, ring.len() as u64 + ring.dropped());
    }
}
