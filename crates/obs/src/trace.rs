//! Provenance tracing: a sampled probe's path through the pipeline.
//!
//! A **trace** follows one pinglist entry from generation all the way to
//! the SLA row that makes it visible, emitting one span event per stage:
//!
//! ```text
//! generate → probe → upload → append → partial → tick → sla
//! ```
//!
//! Sampling is seeded-deterministic: an entry is traced iff its
//! content-derived id (`fnv1a(src, dst, port, kind, qos)`) is divisible
//! by the sampling modulus (default 1/1024, see [`set_sample_mod`]).
//! Identity is derived from content rather than carried in the record, so
//! no wire or storage schema changes — any stage can recompute the key
//! from the fields it already has.
//!
//! Each stage records its duration into
//! `pingmesh_stage_duration_us{stage=...}`; trace completion records the
//! probe→sla delta into `pingmesh_trace_end_to_end_us`. Durations use
//! sim-time deltas when both endpoints carry a [`SimTime`] stamp and
//! wall-clock deltas otherwise (realmode agents stamp records against
//! per-process epochs, so cross-host sim deltas would be meaningless
//! there).
//!
//! Overhead discipline: every `on_*` hook opens with one relaxed atomic
//! load of a stage gate (armed / riding / pending counts). While nothing
//! is being traced — notably the whole unsampled hot path — the hooks
//! cost that single load and never allocate (pinned by the
//! counting-allocator microbench in `crates/bench`).

use crate::{record_event, Field, Level};
use parking_lot::Mutex;
use pingmesh_types::{PingTarget, Pinglist, ProbeKind, ProbeRecord, QosClass, ServerId, SimTime};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// The pipeline stages a trace passes through, in order.
pub const STAGES: [&str; 7] = [
    "generate", "probe", "upload", "append", "partial", "tick", "sla",
];

/// Default sampling modulus: one entry in 1024 is traced.
pub const DEFAULT_SAMPLE_MOD: u64 = 1024;

/// At most this many entries are armed at once; later arms are dropped
/// (counted in `pingmesh_trace_overflow_total`).
const MAX_ARMED: usize = 1024;

/// Pending (post-append) contexts beyond this are pruned oldest-first.
const MAX_PENDING: usize = 4096;

static SAMPLE_MOD: AtomicU64 = AtomicU64::new(DEFAULT_SAMPLE_MOD);

/// Sets the sampling modulus: an entry is traced iff
/// `entry_trace_id % m == 0`. Clamped to at least 1 (1 = trace everything).
pub fn set_sample_mod(m: u64) {
    SAMPLE_MOD.store(m.max(1), Ordering::Relaxed);
}

/// The current sampling modulus.
pub fn sample_mod() -> u64 {
    SAMPLE_MOD.load(Ordering::Relaxed)
}

/// 64-bit FNV-1a over a word stream, finished with an avalanche mix.
/// Raw FNV-1a's low bits cluster badly on short structured inputs (on a
/// small mesh no entry id is divisible by 4), which silently defeats the
/// `id % sample_mod` gate for power-of-two moduli like the default 1024.
/// The xor-shift/multiply finalizer spreads every input bit across the
/// low bits, and ids stay deterministic across runs and stages.
fn fnv1a(words: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &w in words {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^ (h >> 33)
}

fn kind_words(kind: ProbeKind) -> u64 {
    match kind {
        ProbeKind::TcpSyn => 1 << 32,
        ProbeKind::TcpPayload(n) => (2 << 32) | n as u64,
        ProbeKind::Http => 3 << 32,
    }
}

fn qos_word(qos: QosClass) -> u64 {
    match qos {
        QosClass::High => 1,
        QosClass::Low => 2,
    }
}

/// The content-derived trace id of one pinglist entry. Every stage can
/// recompute this from fields it already carries.
pub fn entry_trace_id(
    src: ServerId,
    dst: ServerId,
    port: u16,
    kind: ProbeKind,
    qos: QosClass,
) -> u64 {
    fnv1a(&[
        src.0 as u64,
        dst.0 as u64,
        port as u64,
        kind_words(kind),
        qos_word(qos),
    ])
}

/// Key identifying one concrete probe record while it rides the pipeline.
fn record_key(rec: &ProbeRecord) -> u64 {
    fnv1a(&[
        rec.src.0 as u64,
        rec.dst.0 as u64,
        rec.src_port as u64,
        rec.ts.as_micros(),
    ])
}

/// An entry armed at pinglist generation, waiting for its first probe.
struct ArmedCtx {
    origin_sim: Option<SimTime>,
    origin_wall: Instant,
}

/// A sampled record in flight between probe and store append.
struct RideCtx {
    trace_id: u64,
    probe_sim: Option<SimTime>,
    probe_wall: Instant,
    last_sim: Option<SimTime>,
    last_wall: Instant,
}

/// A sampled record folded into a window partial, waiting for its tick.
struct PendingCtx {
    trace_id: u64,
    window_start_us: u64,
    probe_sim: Option<SimTime>,
    probe_wall: Instant,
    append_sim: SimTime,
    append_wall: Instant,
    ticked: bool,
}

#[derive(Default)]
struct Table {
    /// trace_id → origin, for entries not yet probed.
    armed: HashMap<u64, ArmedCtx>,
    /// record_key → ride, for records between probe and append.
    riding: HashMap<u64, RideCtx>,
    /// Records folded into partials, waiting on the 10-min tick.
    pending: Vec<PendingCtx>,
}

struct Tracer {
    /// Fast gates: `on_*` hooks bail on one relaxed load when the
    /// corresponding table section is empty.
    armed_n: AtomicUsize,
    riding_n: AtomicUsize,
    pending_n: AtomicUsize,
    table: Mutex<Table>,
}

struct StageMetrics {
    stage: [Arc<crate::Histogram>; 7],
    end_to_end: Arc<crate::Histogram>,
    completed: Arc<crate::Counter>,
    overflow: Arc<crate::Counter>,
}

fn tracer() -> &'static Tracer {
    static TRACER: OnceLock<Tracer> = OnceLock::new();
    TRACER.get_or_init(|| Tracer {
        armed_n: AtomicUsize::new(0),
        riding_n: AtomicUsize::new(0),
        pending_n: AtomicUsize::new(0),
        table: Mutex::new(Table::default()),
    })
}

fn stage_metrics() -> &'static StageMetrics {
    static METRICS: OnceLock<StageMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = crate::registry();
        StageMetrics {
            stage: STAGES.map(|s| r.histogram_with("pingmesh_stage_duration_us", &[("stage", s)])),
            end_to_end: r.histogram("pingmesh_trace_end_to_end_us"),
            completed: r.counter("pingmesh_trace_completed_total"),
            overflow: r.counter("pingmesh_trace_overflow_total"),
        }
    })
}

/// Emits one stage span event and records its duration histogram.
fn emit_stage(stage_idx: usize, trace_id: u64, duration_us: u64, sim: Option<SimTime>) {
    stage_metrics().stage[stage_idx].record_micros(duration_us);
    record_event(
        Level::Info,
        "obs.trace",
        "trace_span",
        vec![
            ("trace_id", Field::U64(trace_id)),
            ("stage", Field::Str(STAGES[stage_idx].to_string())),
            ("duration_us", Field::U64(duration_us)),
        ],
        sim,
    );
}

/// Sim delta when both stamps exist, wall delta otherwise.
fn delta_us(
    from_sim: Option<SimTime>,
    from_wall: Instant,
    to_sim: Option<SimTime>,
    to_wall: Instant,
) -> u64 {
    match (from_sim, to_sim) {
        (Some(a), Some(b)) => b.as_micros().saturating_sub(a.as_micros()),
        _ => to_wall
            .saturating_duration_since(from_wall)
            .as_micros()
            .min(u64::MAX as u128) as u64,
    }
}

/// Clears all tracer state (tests and drills; not needed in production).
pub fn reset() {
    let t = tracer();
    let mut tab = t.table.lock();
    tab.armed.clear();
    tab.riding.clear();
    tab.pending.clear();
    t.armed_n.store(0, Ordering::Relaxed);
    t.riding_n.store(0, Ordering::Relaxed);
    t.pending_n.store(0, Ordering::Relaxed);
}

/// Number of armed (not yet probed) traced entries. Test/diagnostic aid.
pub fn armed_count() -> usize {
    tracer().armed_n.load(Ordering::Relaxed)
}

/// Arms sampled entries from freshly generated pinglists: called by the
/// controller path with the full generation in hand. VIP targets are
/// skipped (their resolved backend is unknown until probe time). Pass the
/// generation's sim timestamp when running under the simulator.
pub fn arm_from_pinglists(lists: &[Pinglist], sim: Option<SimTime>) {
    if !crate::enabled() {
        return;
    }
    let m = sample_mod();
    let t = tracer();
    let now_wall = Instant::now();
    let mut tab = t.table.lock();
    for pl in lists {
        for entry in &pl.entries {
            let dst = match entry.target {
                PingTarget::Server { id, .. } => id,
                PingTarget::Vip { .. } => continue,
            };
            let id = entry_trace_id(pl.server, dst, entry.port, entry.kind, entry.qos);
            if !id.is_multiple_of(m) {
                continue;
            }
            // One live trace per entry id: skip if already armed or in
            // flight from a previous generation.
            if tab.armed.contains_key(&id)
                || tab.riding.values().any(|r| r.trace_id == id)
                || tab.pending.iter().any(|p| p.trace_id == id)
            {
                continue;
            }
            if tab.armed.len() >= MAX_ARMED {
                stage_metrics().overflow.inc();
                continue;
            }
            tab.armed.insert(
                id,
                ArmedCtx {
                    origin_sim: sim,
                    origin_wall: now_wall,
                },
            );
            emit_stage(0, id, 0, sim);
        }
    }
    t.armed_n.store(tab.armed.len(), Ordering::Relaxed);
}

/// Notes a produced probe record (agent side, right after the record is
/// built). Consumes the armed entry on its first record — one concrete
/// probe rides per traced entry per arming.
#[inline]
pub fn on_probe(rec: &ProbeRecord) {
    let t = tracer();
    if t.armed_n.load(Ordering::Relaxed) == 0 {
        return;
    }
    let id = entry_trace_id(rec.src, rec.dst, rec.dst_port, rec.kind, rec.qos);
    let mut tab = t.table.lock();
    let Some(armed) = tab.armed.remove(&id) else {
        return;
    };
    t.armed_n.store(tab.armed.len(), Ordering::Relaxed);
    let now_wall = Instant::now();
    let sim = armed.origin_sim.map(|_| rec.ts);
    let dur = delta_us(armed.origin_sim, armed.origin_wall, sim, now_wall);
    emit_stage(1, id, dur, sim.or(Some(rec.ts)));
    tab.riding.insert(
        record_key(rec),
        RideCtx {
            trace_id: id,
            probe_sim: sim,
            probe_wall: now_wall,
            last_sim: sim,
            last_wall: now_wall,
        },
    );
    t.riding_n.store(tab.riding.len(), Ordering::Relaxed);
}

/// Notes an upload batch leaving an agent. Pass the agent's sim clock
/// when available.
pub fn on_upload_batch(batch: &[ProbeRecord], sim: Option<SimTime>) {
    let t = tracer();
    if t.riding_n.load(Ordering::Relaxed) == 0 {
        return;
    }
    let now_wall = Instant::now();
    let mut tab = t.table.lock();
    for rec in batch {
        let key = record_key(rec);
        if let Some(ride) = tab.riding.get_mut(&key) {
            let to_sim = ride.last_sim.and(sim);
            let dur = delta_us(ride.last_sim, ride.last_wall, to_sim, now_wall);
            let (id, ev_sim) = (ride.trace_id, to_sim.or(sim));
            ride.last_sim = to_sim.or(ride.last_sim);
            ride.last_wall = now_wall;
            emit_stage(2, id, dur, ev_sim);
        }
    }
}

/// Notes a batch landing in the store at sim-time `t`, folding into the
/// window partial of width `window_us`. Emits both the `append` span
/// (upload → store) and the `partial` span (how deep into its window the
/// record landed) and parks the trace until that window's tick.
pub fn on_append_batch(batch: &[ProbeRecord], at: SimTime, window_us: u64) {
    let tr = tracer();
    if tr.riding_n.load(Ordering::Relaxed) == 0 {
        return;
    }
    let now_wall = Instant::now();
    let window_us = window_us.max(1);
    let mut tab = tr.table.lock();
    for rec in batch {
        let key = record_key(rec);
        let Some(ride) = tab.riding.remove(&key) else {
            continue;
        };
        let to_sim = ride.last_sim.map(|_| at);
        let dur = delta_us(ride.last_sim, ride.last_wall, to_sim, now_wall);
        emit_stage(3, ride.trace_id, dur, Some(at));
        let window_start_us = at.as_micros() / window_us * window_us;
        emit_stage(4, ride.trace_id, at.as_micros() - window_start_us, Some(at));
        if tab.pending.len() >= MAX_PENDING {
            tab.pending.remove(0);
            stage_metrics().overflow.inc();
        }
        tab.pending.push(PendingCtx {
            trace_id: ride.trace_id,
            window_start_us,
            probe_sim: ride.probe_sim,
            probe_wall: ride.probe_wall,
            append_sim: at,
            append_wall: now_wall,
            ticked: false,
        });
    }
    tr.riding_n.store(tab.riding.len(), Ordering::Relaxed);
    tr.pending_n.store(tab.pending.len(), Ordering::Relaxed);
}

/// Notes the 10-minute tick covering `[window_start, window_end)` firing
/// at sim-time `now` (window end + ingest lag). The `tick` span is the
/// wait from store append to the merge that finally reads the record.
pub fn on_tick(window_start: SimTime, window_end: SimTime, now: SimTime) {
    let t = tracer();
    if t.pending_n.load(Ordering::Relaxed) == 0 {
        return;
    }
    let now_wall = Instant::now();
    let mut tab = t.table.lock();
    for p in tab.pending.iter_mut() {
        if p.ticked
            || p.window_start_us < window_start.as_micros()
            || p.window_start_us >= window_end.as_micros()
        {
            continue;
        }
        p.ticked = true;
        let dur = delta_us(Some(p.append_sim), p.append_wall, Some(now), now_wall);
        emit_stage(5, p.trace_id, dur, Some(now));
    }
}

/// Notes the SLA rows for `[window_start, window_end)` having been
/// inserted at sim-time `now`: finalizes every trace the tick marked,
/// emitting the `sla` span (tick compute, wall time) and the
/// probe-to-visible end-to-end histogram. Traces whose window passed
/// without a tick (late records) are pruned here.
pub fn on_sla(window_start: SimTime, window_end: SimTime, now: SimTime) {
    let t = tracer();
    if t.pending_n.load(Ordering::Relaxed) == 0 {
        return;
    }
    let now_wall = Instant::now();
    let m = stage_metrics();
    let mut tab = t.table.lock();
    tab.pending.retain(|p| {
        let in_window = p.window_start_us >= window_start.as_micros()
            && p.window_start_us < window_end.as_micros();
        if in_window && p.ticked {
            // Sim delta is 0 by construction (tick and sla share `now`);
            // the wall delta is the actual tick compute time.
            let dur = now_wall
                .saturating_duration_since(p.append_wall)
                .as_micros()
                .min(u64::MAX as u128) as u64;
            emit_stage(6, p.trace_id, dur, Some(now));
            let e2e = delta_us(
                p.probe_sim,
                p.probe_wall,
                p.probe_sim.map(|_| now),
                now_wall,
            );
            m.end_to_end.record_micros(e2e);
            m.completed.inc();
            return false;
        }
        // Prune stale windows that will never tick again.
        if p.window_start_us + (window_end.as_micros() - window_start.as_micros())
            <= window_start.as_micros()
        {
            m.overflow.inc();
            return false;
        }
        true
    });
    t.pending_n.store(tab.pending.len(), Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use pingmesh_types::{DcId, PinglistEntry, PodId, PodsetId, ProbeOutcome, SimDuration};

    fn entry(dst: ServerId) -> PinglistEntry {
        PinglistEntry {
            target: PingTarget::Server {
                id: dst,
                ip: std::net::Ipv4Addr::new(10, 0, 0, 1),
            },
            port: 80,
            kind: ProbeKind::TcpSyn,
            qos: QosClass::High,
            interval: SimDuration::from_secs(10),
        }
    }

    fn record(src: ServerId, dst: ServerId, ts: SimTime) -> ProbeRecord {
        ProbeRecord {
            ts,
            src,
            dst,
            src_pod: PodId(0),
            dst_pod: PodId(1),
            src_podset: PodsetId(0),
            dst_podset: PodsetId(0),
            src_dc: DcId(0),
            dst_dc: DcId(0),
            kind: ProbeKind::TcpSyn,
            qos: QosClass::High,
            src_port: 50_000,
            dst_port: 80,
            outcome: ProbeOutcome::Success {
                rtt: SimDuration::from_micros(400),
            },
        }
    }

    #[test]
    fn trace_id_is_deterministic_and_content_derived() {
        let a = entry_trace_id(
            ServerId(1),
            ServerId(2),
            80,
            ProbeKind::TcpSyn,
            QosClass::High,
        );
        let b = entry_trace_id(
            ServerId(1),
            ServerId(2),
            80,
            ProbeKind::TcpSyn,
            QosClass::High,
        );
        assert_eq!(a, b);
        let c = entry_trace_id(
            ServerId(1),
            ServerId(3),
            80,
            ProbeKind::TcpSyn,
            QosClass::High,
        );
        assert_ne!(a, c);
        assert_ne!(
            entry_trace_id(
                ServerId(1),
                ServerId(2),
                80,
                ProbeKind::TcpPayload(800),
                QosClass::High
            ),
            a
        );
    }

    #[test]
    fn full_lifecycle_emits_every_stage_under_one_id() {
        crate::set_enabled(true);
        reset();
        set_sample_mod(1);
        let before = crate::events().last_seq();

        let src = ServerId(41);
        let dst = ServerId(42);
        let lists = vec![Pinglist {
            server: src,
            generation: 1,
            entries: vec![entry(dst)],
        }];
        arm_from_pinglists(&lists, Some(SimTime(0)));
        assert_eq!(armed_count(), 1);

        let rec = record(src, dst, SimTime(5_000_000));
        on_probe(&rec);
        assert_eq!(armed_count(), 0);
        on_upload_batch(&[rec], Some(SimTime(6_000_000)));
        let window_us = SimDuration::from_mins(10).as_micros();
        on_append_batch(&[rec], SimTime(7_000_000), window_us);
        on_tick(SimTime(0), SimTime(window_us), SimTime(window_us * 2));
        on_sla(SimTime(0), SimTime(window_us), SimTime(window_us * 2));

        let id = entry_trace_id(src, dst, 80, ProbeKind::TcpSyn, QosClass::High);
        let evs = crate::events().snapshot_since(before);
        let mut seen: Vec<String> = Vec::new();
        for ev in &evs {
            if ev.name != "trace_span" {
                continue;
            }
            let matches_id = ev
                .fields
                .iter()
                .any(|(k, v)| *k == "trace_id" && *v == Field::U64(id));
            if !matches_id {
                continue;
            }
            if let Some((_, Field::Str(s))) = ev.fields.iter().find(|(k, _)| *k == "stage") {
                seen.push(s.clone());
            }
        }
        assert_eq!(seen, STAGES.to_vec(), "all stages in order for one id");
        // Probe stage measured 5 s of sim time from generation to probe.
        set_sample_mod(DEFAULT_SAMPLE_MOD);
        reset();
    }

    #[test]
    fn unsampled_records_pass_untouched() {
        crate::set_enabled(true);
        reset();
        // Modulus so large nothing samples (fnv output is "random").
        set_sample_mod(u64::MAX);
        let lists = vec![Pinglist {
            server: ServerId(1),
            generation: 1,
            entries: vec![entry(ServerId(2))],
        }];
        arm_from_pinglists(&lists, Some(SimTime(0)));
        assert_eq!(armed_count(), 0, "nothing sampled");
        on_probe(&record(ServerId(1), ServerId(2), SimTime(1)));
        set_sample_mod(DEFAULT_SAMPLE_MOD);
        reset();
    }

    #[test]
    fn rearming_a_live_trace_is_idempotent() {
        crate::set_enabled(true);
        reset();
        set_sample_mod(1);
        let lists = vec![Pinglist {
            server: ServerId(7),
            generation: 1,
            entries: vec![entry(ServerId(8))],
        }];
        arm_from_pinglists(&lists, Some(SimTime(0)));
        arm_from_pinglists(&lists, Some(SimTime(1)));
        assert_eq!(armed_count(), 1, "re-arm of an armed id is a no-op");
        set_sample_mod(DEFAULT_SAMPLE_MOD);
        reset();
    }
}
