//! Span-style scoped timers: measure a region, emit one event on exit
//! carrying the wall-clock duration (and virtual-time bounds when the
//! region runs under the simulator).

use crate::event::{Field, Level};
use pingmesh_types::SimTime;
use std::time::Instant;

/// A scoped timer. Create with [`crate::span`]; on drop it emits an
/// `Info` event named after the span with a `duration_us` field.
/// When observability is disabled at creation time the guard is inert
/// (no event, no allocation).
pub struct Span {
    target: &'static str,
    name: &'static str,
    start: Instant,
    sim_start: Option<SimTime>,
    sim_end: Option<SimTime>,
    armed: bool,
}

impl Span {
    pub(crate) fn new(target: &'static str, name: &'static str, armed: bool) -> Span {
        Span {
            target,
            name,
            start: Instant::now(),
            sim_start: None,
            sim_end: None,
            armed,
        }
    }

    /// Attaches the virtual time at which the spanned region started.
    pub fn sim_start(mut self, t: SimTime) -> Span {
        self.sim_start = Some(t);
        self
    }

    /// Records the virtual time at which the spanned region ended.
    pub fn set_sim_end(&mut self, t: SimTime) {
        self.sim_end = Some(t);
    }

    /// Wall-clock time elapsed since the span started.
    pub fn elapsed(&self) -> std::time::Duration {
        self.start.elapsed()
    }

    /// Ends the span now (otherwise it ends when dropped).
    pub fn finish(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.armed || !crate::enabled() {
            return;
        }
        let wall_us = self.start.elapsed().as_micros().min(u64::MAX as u128) as u64;
        let mut fields = vec![("duration_us", Field::U64(wall_us))];
        if let (Some(s), Some(e)) = (self.sim_start, self.sim_end) {
            fields.push(("sim_duration_us", Field::U64(e.since(s).as_micros())));
        }
        crate::record_event(Level::Info, self.target, self.name, fields, self.sim_end);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_emits_duration_event() {
        crate::set_enabled(true);
        let before = crate::events().last_seq();
        {
            let _s = crate::span("obs.test", "span_region");
        }
        let evs = crate::events().snapshot_since(before);
        let ev = evs
            .iter()
            .find(|e| e.name == "span_region")
            .expect("span event recorded");
        assert_eq!(ev.target, "obs.test");
        assert!(ev
            .fields
            .iter()
            .any(|(k, v)| *k == "duration_us" && matches!(v, Field::U64(_))));
    }

    #[test]
    fn span_with_sim_bounds_reports_sim_duration() {
        crate::set_enabled(true);
        let before = crate::events().last_seq();
        {
            let mut s = crate::span("obs.test", "sim_span").sim_start(SimTime(1_000));
            s.set_sim_end(SimTime(5_000));
        }
        let evs = crate::events().snapshot_since(before);
        let ev = evs.iter().find(|e| e.name == "sim_span").unwrap();
        assert!(ev
            .fields
            .iter()
            .any(|(k, v)| *k == "sim_duration_us" && *v == Field::U64(4_000)));
        assert_eq!(ev.sim, Some(SimTime(5_000)));
    }
}
