//! The metrics registry: named counters, gauges (direct and callback),
//! and log-bucketed latency histograms, with label support and a
//! point-in-time snapshot API.
//!
//! Naming convention (enforced by debug assertion): `pingmesh_<crate>_<name>`,
//! lowercase `[a-z0-9_]`. Counters end in `_total` by convention.

use parking_lot::{Mutex, RwLock};
use pingmesh_types::{LatencyHistogram, SimDuration};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A metric's identity: name plus sorted label pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricId {
    /// Metric name, e.g. `pingmesh_agent_probes_sent_total`.
    pub name: String,
    /// Label pairs, sorted by key.
    pub labels: Vec<(String, String)>,
}

impl MetricId {
    fn new(name: &str, labels: &[(&str, &str)]) -> MetricId {
        debug_assert!(
            !name.is_empty()
                && name
                    .bytes()
                    .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_'),
            "metric name `{name}` must be lowercase snake_case"
        );
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricId {
            name: name.to_string(),
            labels,
        }
    }
}

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge holding an arbitrary `f64`.
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adds `delta` (CAS loop; gauges are low-frequency).
    pub fn add(&self, delta: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self
                .bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(now) => cur = now,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A latency histogram metric, backed by the same log-bucketed
/// [`LatencyHistogram`] the paper pipeline aggregates with.
#[derive(Debug, Default)]
pub struct Histogram {
    inner: Mutex<LatencyHistogram>,
}

impl Histogram {
    /// Records a sample in microseconds.
    pub fn record_micros(&self, us: u64) {
        self.inner.lock().record(SimDuration::from_micros(us));
    }

    /// Records a virtual-time duration.
    pub fn record(&self, d: SimDuration) {
        self.inner.lock().record(d);
    }

    /// Records a wall-clock duration.
    pub fn record_wall(&self, d: std::time::Duration) {
        self.record_micros(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Copies out the underlying histogram.
    pub fn snapshot(&self) -> LatencyHistogram {
        self.inner.lock().clone()
    }
}

/// Point-in-time summary of one histogram, with cumulative buckets for
/// Prometheus-style encoding.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Total samples.
    pub count: u64,
    /// Smallest sample (µs), if any.
    pub min_us: Option<u64>,
    /// Largest sample (µs), if any.
    pub max_us: Option<u64>,
    /// Mean sample (µs), if any.
    pub mean_us: Option<u64>,
    /// Median (µs), if any.
    pub p50_us: Option<u64>,
    /// 99th percentile (µs), if any.
    pub p99_us: Option<u64>,
    /// 99.9th percentile (µs), if any.
    pub p999_us: Option<u64>,
    /// `(upper_bound_us, cumulative_count)` over non-empty buckets.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Summarizes a [`LatencyHistogram`].
    pub fn of(h: &LatencyHistogram) -> HistogramSnapshot {
        let count = h.count();
        let buckets = h
            .cdf_points()
            .into_iter()
            .map(|(d, frac)| (d.as_micros(), (frac * count as f64).round() as u64))
            .collect();
        HistogramSnapshot {
            count,
            min_us: h.min().map(|d| d.as_micros()),
            max_us: h.max().map(|d| d.as_micros()),
            mean_us: h.mean().map(|d| d.as_micros()),
            p50_us: h.p50().map(|d| d.as_micros()),
            p99_us: h.p99().map(|d| d.as_micros()),
            p999_us: h.quantile(0.999).map(|d| d.as_micros()),
            buckets,
        }
    }
}

/// One sampled metric value.
#[derive(Debug, Clone)]
pub enum SampleValue {
    /// Counter reading.
    Counter(u64),
    /// Gauge reading (direct or callback).
    Gauge(f64),
    /// Histogram summary.
    Histogram(HistogramSnapshot),
}

/// A point-in-time snapshot of every registered metric, in deterministic
/// (name, labels) order.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// All samples.
    pub samples: Vec<(MetricId, SampleValue)>,
}

impl Snapshot {
    /// Finds a sample by metric name (first label set wins).
    pub fn get(&self, name: &str) -> Option<&SampleValue> {
        self.samples
            .iter()
            .find(|(id, _)| id.name == name)
            .map(|(_, v)| v)
    }

    /// Convenience: a counter's value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name)? {
            SampleValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// Convenience: a gauge's value by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.get(name)? {
            SampleValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }
}

type CallbackGauge = Box<dyn Fn() -> f64 + Send + Sync>;

/// The metrics registry. Handles returned by the `counter`/`gauge`/
/// `histogram` accessors are `Arc`s — instrumentation sites cache them
/// and touch only an atomic on the hot path.
#[derive(Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<MetricId, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<MetricId, Arc<Gauge>>>,
    callbacks: RwLock<BTreeMap<MetricId, CallbackGauge>>,
    histograms: RwLock<BTreeMap<MetricId, Arc<Histogram>>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Gets or creates an unlabeled counter.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.counter_with(name, &[])
    }

    /// Gets or creates a labeled counter.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let id = MetricId::new(name, labels);
        if let Some(c) = self.counters.read().get(&id) {
            return c.clone();
        }
        self.counters
            .write()
            .entry(id)
            .or_insert_with(|| Arc::new(Counter::default()))
            .clone()
    }

    /// Gets or creates an unlabeled gauge.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.gauge_with(name, &[])
    }

    /// Gets or creates a labeled gauge.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let id = MetricId::new(name, labels);
        if let Some(g) = self.gauges.read().get(&id) {
            return g.clone();
        }
        self.gauges
            .write()
            .entry(id)
            .or_insert_with(|| Arc::new(Gauge::default()))
            .clone()
    }

    /// Registers (or replaces) a callback gauge, sampled at snapshot time.
    /// Useful to bridge foreign atomics into the registry without copies.
    pub fn callback_gauge(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        f: impl Fn() -> f64 + Send + Sync + 'static,
    ) {
        let id = MetricId::new(name, labels);
        self.callbacks.write().insert(id, Box::new(f));
    }

    /// Gets or creates an unlabeled histogram.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with(name, &[])
    }

    /// Gets or creates a labeled histogram.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        let id = MetricId::new(name, labels);
        if let Some(h) = self.histograms.read().get(&id) {
            return h.clone();
        }
        self.histograms
            .write()
            .entry(id)
            .or_insert_with(|| Arc::new(Histogram::default()))
            .clone()
    }

    /// Samples every registered metric at this instant, in deterministic
    /// order (counters, then gauges, then callback gauges, then histograms,
    /// each sorted by id).
    pub fn snapshot(&self) -> Snapshot {
        let mut samples = Vec::new();
        for (id, c) in self.counters.read().iter() {
            samples.push((id.clone(), SampleValue::Counter(c.get())));
        }
        for (id, g) in self.gauges.read().iter() {
            samples.push((id.clone(), SampleValue::Gauge(g.get())));
        }
        for (id, f) in self.callbacks.read().iter() {
            samples.push((id.clone(), SampleValue::Gauge(f())));
        }
        for (id, h) in self.histograms.read().iter() {
            samples.push((
                id.clone(),
                SampleValue::Histogram(HistogramSnapshot::of(&h.snapshot())),
            ));
        }
        Snapshot { samples }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_identity_and_accumulation() {
        let r = Registry::new();
        let a = r.counter("pingmesh_test_hits_total");
        let b = r.counter("pingmesh_test_hits_total");
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn labels_distinguish_series() {
        let r = Registry::new();
        let ok = r.counter_with("pingmesh_test_req_total", &[("code", "200")]);
        let err = r.counter_with("pingmesh_test_req_total", &[("code", "500")]);
        ok.add(3);
        err.inc();
        assert!(!Arc::ptr_eq(&ok, &err));
        let snap = r.snapshot();
        assert_eq!(snap.samples.len(), 2);
    }

    #[test]
    fn label_order_is_normalized() {
        let r = Registry::new();
        let a = r.counter_with("pingmesh_test_m_total", &[("b", "2"), ("a", "1")]);
        let b = r.counter_with("pingmesh_test_m_total", &[("a", "1"), ("b", "2")]);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn gauge_set_add_get() {
        let r = Registry::new();
        let g = r.gauge("pingmesh_test_depth");
        g.set(2.5);
        g.add(1.0);
        assert!((g.get() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn callback_gauge_sampled_at_snapshot() {
        let r = Registry::new();
        let src = Arc::new(AtomicU64::new(7));
        let src2 = src.clone();
        r.callback_gauge("pingmesh_test_bridge", &[], move || {
            src2.load(Ordering::Relaxed) as f64
        });
        assert_eq!(r.snapshot().gauge("pingmesh_test_bridge"), Some(7.0));
        src.store(9, Ordering::Relaxed);
        assert_eq!(r.snapshot().gauge("pingmesh_test_bridge"), Some(9.0));
    }

    #[test]
    fn histogram_snapshot_has_quantiles_and_buckets() {
        let r = Registry::new();
        let h = r.histogram("pingmesh_test_rtt_us");
        for us in [100u64, 200, 300, 400, 50_000] {
            h.record_micros(us);
        }
        let snap = r.snapshot();
        let Some(SampleValue::Histogram(hs)) = snap.get("pingmesh_test_rtt_us") else {
            panic!("histogram sample missing");
        };
        assert_eq!(hs.count, 5);
        assert_eq!(hs.min_us, Some(100));
        assert_eq!(hs.max_us, Some(50_000));
        assert!(hs.p50_us.is_some());
        assert!(!hs.buckets.is_empty());
        // Buckets are cumulative and end at the total count.
        assert_eq!(hs.buckets.last().unwrap().1, 5);
        let mut prev = 0;
        for &(_, c) in &hs.buckets {
            assert!(c >= prev);
            prev = c;
        }
    }

    #[test]
    fn snapshot_is_deterministically_ordered() {
        let r = Registry::new();
        r.counter("pingmesh_test_b_total").inc();
        r.counter("pingmesh_test_a_total").inc();
        let names: Vec<String> = r
            .snapshot()
            .samples
            .iter()
            .map(|(id, _)| id.name.clone())
            .collect();
        assert_eq!(
            names,
            vec!["pingmesh_test_a_total", "pingmesh_test_b_total"]
        );
    }
}
