//! Observability substrate for the Pingmesh reproduction.
//!
//! Three pillars, all dependency-free and safe to call from any thread:
//!
//! * **Events** — typed, structured records carrying wall time and (when
//!   emitted under the simulator) virtual [`SimTime`], buffered in a
//!   lock-sharded bounded ring ([`EventRing`]) that never blocks the
//!   emitting thread and counts every dropped event exactly.
//! * **Spans** — scoped timers ([`Span`]) that emit one duration event
//!   when the guarded region exits.
//! * **Metrics** — a [`Registry`] of named counters, gauges (direct and
//!   callback-bridged), and log-bucketed latency histograms (reusing
//!   [`pingmesh_types::LatencyHistogram`]), with point-in-time snapshots.
//!
//! Exports: [`encode::snapshot_to_prometheus`] (served by the realmode
//! collector at `GET /metrics`), [`encode::events_to_jsonl`] (served at
//! `GET /events?since=`), and [`encode::snapshot_to_json`] (bench
//! telemetry manifests).
//!
//! Everything routes through process-global state ([`registry()`],
//! [`events()`]) so instrumentation sites need no plumbing. The global
//! [`set_enabled`] switch gates event emission; when disabled, emission
//! macros return before allocating anything, keeping the probe hot path
//! allocation-free (verified by `crates/bench/benches/microbench.rs`).
//!
//! Metric naming convention: `pingmesh_<crate>_<name>`, lowercase
//! snake_case, counters suffixed `_total`.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod encode;
mod event;
mod metrics;
pub mod slo;
mod span;
pub mod trace;

pub use event::{Event, EventRing, Field, Level};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricId, Registry, SampleValue, Snapshot,
};
pub use span::Span;

use parking_lot::RwLock;
use pingmesh_types::SimTime;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Whether observability is currently enabled. Cheap (one relaxed load);
/// emission sites check this before building any payload.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Globally enables or disables event emission. Metrics handles keep
/// working either way (they are plain atomics); the switch gates event
/// construction, ring writes, and sinks.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Default capacity of the global event ring.
pub const DEFAULT_EVENT_CAPACITY: usize = 8192;

/// The process-global event ring.
pub fn events() -> &'static EventRing {
    static RING: OnceLock<EventRing> = OnceLock::new();
    RING.get_or_init(|| EventRing::new(DEFAULT_EVENT_CAPACITY))
}

/// The process-global metrics registry. On first touch, the plain
/// atomics `pingmesh-types` maintains (it sits below this crate and
/// cannot register metrics itself) are bridged in as callback gauges.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let r = Registry::new();
        use pingmesh_types::telemetry;
        use std::sync::atomic::Ordering;
        r.callback_gauge("pingmesh_types_histograms_created", &[], || {
            telemetry::HISTOGRAMS_CREATED.load(Ordering::Relaxed) as f64
        });
        r.callback_gauge("pingmesh_types_histogram_merges", &[], || {
            telemetry::HISTOGRAM_MERGES.load(Ordering::Relaxed) as f64
        });
        r.callback_gauge("pingmesh_types_rtts_classified", &[], || {
            telemetry::RTTS_CLASSIFIED.load(Ordering::Relaxed) as f64
        });
        // Build identity and process uptime, Prometheus-style: build_info
        // is a constant 1 whose labels carry the identity; uptime counts
        // seconds since this registry (≈ the process) came up.
        r.callback_gauge(
            "pingmesh_build_info",
            &[
                ("version", env!("CARGO_PKG_VERSION")),
                (
                    "commit",
                    option_env!("PINGMESH_BUILD_COMMIT").unwrap_or("unknown"),
                ),
            ],
            || 1.0,
        );
        let started = std::time::Instant::now();
        r.callback_gauge("pingmesh_uptime_seconds", &[], move || {
            started.elapsed().as_secs_f64()
        });
        r
    })
}

type Sink = Box<dyn Fn(&Event) + Send + Sync>;

static SINK: RwLock<Option<Sink>> = RwLock::new(None);

/// Installs a sink invoked for every recorded event (after ring storage).
pub fn install_sink(f: impl Fn(&Event) + Send + Sync + 'static) {
    *SINK.write() = Some(Box::new(f));
}

/// Installs a sink that prints each event as one human-readable line on
/// stderr — the bench binaries use this so stdout carries only figure
/// data.
pub fn install_stderr_sink() {
    install_sink(|ev| eprintln!("{}", encode::event_to_line(ev)));
}

/// Removes any installed sink.
pub fn clear_sink() {
    *SINK.write() = None;
}

/// Records a structured event into the global ring (and sink, if any).
/// No-op while observability is disabled. Prefer the [`emit!`] macro,
/// which skips field construction entirely when disabled.
pub fn record_event(
    level: Level,
    target: &'static str,
    name: &'static str,
    fields: Vec<(&'static str, Field)>,
    sim: Option<SimTime>,
) {
    if !enabled() {
        return;
    }
    let ev = Event {
        seq: 0,
        wall_unix_ns: event::wall_unix_ns(),
        sim,
        level,
        target,
        name,
        fields,
    };
    if let Some(sink) = SINK.read().as_ref() {
        sink(&ev);
    }
    events().push(ev);
}

/// Starts a scoped timer; the returned [`Span`] emits a `duration_us`
/// event when dropped. Inert (and allocation-free) when disabled.
pub fn span(target: &'static str, name: &'static str) -> Span {
    Span::new(target, name, enabled())
}

/// Emits a structured event: `emit!(Info, "crate.module", "event_name",
/// "key" => value, ...)`. Values go through [`Field::from`], so integers,
/// floats, bools, and strings all work. When observability is disabled
/// this expands to a single branch — no allocation, no field evaluation.
#[macro_export]
macro_rules! emit {
    ($level:ident, $target:expr, $name:expr $(, $k:literal => $v:expr)* $(,)?) => {
        if $crate::enabled() {
            $crate::record_event(
                $crate::Level::$level,
                $target,
                $name,
                vec![$(($k, $crate::Field::from($v))),*],
                None,
            );
        }
    };
}

/// Like [`emit!`] but stamps the event with a virtual [`SimTime`]:
/// `emit_sim!(sim_time; Info, "netsim.engine", "tick", "depth" => d)`.
#[macro_export]
macro_rules! emit_sim {
    ($sim:expr; $level:ident, $target:expr, $name:expr $(, $k:literal => $v:expr)* $(,)?) => {
        if $crate::enabled() {
            $crate::record_event(
                $crate::Level::$level,
                $target,
                $name,
                vec![$(($k, $crate::Field::from($v))),*],
                Some($sim),
            );
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn emit_lands_in_global_ring() {
        set_enabled(true);
        let before = events().last_seq();
        emit!(Info, "obs.test", "lib_emit", "n" => 3u64, "ok" => true);
        let evs = events().snapshot_since(before);
        let ev = evs.iter().find(|e| e.name == "lib_emit").unwrap();
        assert_eq!(ev.level, Level::Info);
        assert!(ev.fields.contains(&("n", Field::U64(3))));
        assert!(ev.fields.contains(&("ok", Field::Bool(true))));
    }

    #[test]
    fn emit_sim_carries_virtual_time() {
        set_enabled(true);
        let before = events().last_seq();
        emit_sim!(SimTime(77); Debug, "obs.test", "sim_emit");
        let evs = events().snapshot_since(before);
        assert_eq!(
            evs.iter().find(|e| e.name == "sim_emit").unwrap().sim,
            Some(SimTime(77))
        );
    }

    #[test]
    fn disabled_gates_emission_and_field_evaluation() {
        set_enabled(true);
        let before = events().last_seq();
        set_enabled(false);
        let evaluated = AtomicUsize::new(0);
        let expensive = || {
            evaluated.fetch_add(1, Ordering::Relaxed);
            1u64
        };
        emit!(Info, "obs.test", "gated", "v" => expensive());
        assert_eq!(evaluated.load(Ordering::Relaxed), 0, "fields not built");
        set_enabled(true);
        emit!(Info, "obs.test", "ungated", "v" => expensive());
        assert_eq!(evaluated.load(Ordering::Relaxed), 1);
        let names: Vec<&str> = events()
            .snapshot_since(before)
            .iter()
            .map(|e| e.name)
            .collect::<Vec<_>>();
        assert!(!names.contains(&"gated"));
        assert!(names.contains(&"ungated"));
    }

    #[test]
    fn sink_sees_events() {
        set_enabled(true);
        static HITS: AtomicUsize = AtomicUsize::new(0);
        install_sink(|ev| {
            if ev.name == "sink_probe" {
                HITS.fetch_add(1, Ordering::Relaxed);
            }
        });
        emit!(Info, "obs.test", "sink_probe");
        clear_sink();
        emit!(Info, "obs.test", "sink_probe");
        assert_eq!(HITS.load(Ordering::Relaxed), 1);
    }
}
