//! The agent state machine driven by the discrete-event simulation.
//!
//! One [`Agent`] instance runs per simulated server. The orchestrator
//! (in `pingmesh-core`) delivers three kinds of stimuli, mirroring the
//! real agent's event loop:
//!
//! * controller poll results ([`Agent::on_controller_poll`]),
//! * due probes ([`Agent::due_probes`]) whose network outcomes are fed
//!   back through [`Agent::record_outcome`], and
//! * upload opportunities ([`Agent::begin_upload`] /
//!   [`Agent::on_upload_result`]).
//!
//! All §3.4.2 safety behaviours hold by construction: sanitization and
//! fail-closed logic live in [`crate::guard`], bounded buffering in
//! [`crate::buffer`].

use crate::buffer::ResultBuffer;
use crate::config::AgentConfig;
use crate::guard::{GuardDecision, SafetyGuard};
use crate::scheduler::{DueProbe, ProbeScheduler};
use pingmesh_topology::Topology;
use pingmesh_types::{
    AgentCounters, CounterSnapshot, Pinglist, ProbeOutcome, ProbeRecord, ServerId, SimTime,
};
use std::sync::{Arc, OnceLock};

/// Fleet-wide agent metrics. Thousands of [`Agent`] instances share these
/// handles, so they are resolved once; each touch is an atomic add.
pub(crate) struct AgentMetrics {
    pub(crate) probes_sent: Arc<pingmesh_obs::Counter>,
    pub(crate) guard_trips: Arc<pingmesh_obs::Counter>,
    pub(crate) sanitized: Arc<pingmesh_obs::Counter>,
    pub(crate) uploads_started: Arc<pingmesh_obs::Counter>,
    pub(crate) upload_retries: Arc<pingmesh_obs::Counter>,
    pub(crate) records_discarded: Arc<pingmesh_obs::Counter>,
    pub(crate) upload_batch_size: Arc<pingmesh_obs::Histogram>,
}

pub(crate) fn metrics() -> &'static AgentMetrics {
    static M: OnceLock<AgentMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let r = pingmesh_obs::registry();
        AgentMetrics {
            probes_sent: r.counter("pingmesh_agent_probes_sent_total"),
            guard_trips: r.counter("pingmesh_agent_guard_trips_total"),
            sanitized: r.counter("pingmesh_agent_sanitized_entries_total"),
            uploads_started: r.counter("pingmesh_agent_uploads_started_total"),
            upload_retries: r.counter("pingmesh_agent_upload_retries_total"),
            records_discarded: r.counter("pingmesh_agent_records_discarded_total"),
            upload_batch_size: r.histogram("pingmesh_agent_upload_batch_size"),
        }
    })
}

/// What a controller poll produced (transport-agnostic: the orchestrator
/// adapts the in-process SLB, the real agent adapts HTTP).
#[derive(Debug, Clone)]
pub enum ControllerPollOutcome {
    /// A pinglist was served.
    Pinglist(Pinglist),
    /// The controller answered but had no pinglist (fleet stop switch).
    NoPinglist,
    /// The controller (VIP) was unreachable.
    Unreachable,
}

/// One simulated Pingmesh agent.
#[derive(Debug)]
pub struct Agent {
    server: ServerId,
    topo: Arc<Topology>,
    guard: SafetyGuard,
    scheduler: ProbeScheduler,
    buffer: ResultBuffer,
    counters: AgentCounters,
    generation: u64,
    sanitized_entries: u64,
    // Lifetime probe accounting (never reset, unlike the PA window
    // counters): every outcome fed back through `record_outcome` lands in
    // `probes_observed`, and the subset whose target did not resolve to a
    // physical server (so no record was produced) in `unresolved_probes`.
    // The correctness harness balances the fleet's conservation equation
    // (observed = stored + buffered + discarded + unresolved) on these.
    probes_observed: u64,
    unresolved_probes: u64,
    // Last cumulative buffer-discard count folded into the fleet metric
    // (the windowed counter resets, so the delta needs its own baseline).
    discarded_seen: u64,
    // Recycled wake-path buffer: handed out by `due_probes`, returned by
    // `recycle_due`, so steady-state wakes don't allocate.
    due_scratch: Vec<DueProbe>,
}

impl Agent {
    /// Creates an idle agent for `server`.
    pub fn new(server: ServerId, topo: Arc<Topology>, config: AgentConfig) -> Self {
        Self {
            server,
            topo,
            guard: SafetyGuard::new(),
            scheduler: ProbeScheduler::new(server),
            buffer: ResultBuffer::new(config),
            counters: AgentCounters::new(),
            generation: 0,
            sanitized_entries: 0,
            probes_observed: 0,
            unresolved_probes: 0,
            discarded_seen: 0,
            due_scratch: Vec::new(),
        }
    }

    /// The server this agent runs on.
    pub fn server(&self) -> ServerId {
        self.server
    }

    /// Active pinglist generation (0 = none yet).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Whether the agent is fail-closed (not probing).
    pub fn is_stopped(&self) -> bool {
        self.guard.is_stopped()
    }

    /// Number of peers currently scheduled.
    pub fn peer_count(&self) -> usize {
        self.scheduler.peer_count()
    }

    /// Entries the guard had to clamp over this agent's lifetime —
    /// non-zero means the controller misbehaved.
    pub fn sanitized_entries(&self) -> u64 {
        self.sanitized_entries
    }

    // Counts a fail-closed transition (edge-triggered: the guard keeps
    // answering `StopProbing` while stopped, but only the first stop is a
    // trip).
    fn note_guard_trip(&self, reason: &'static str, now: SimTime) {
        metrics().guard_trips.inc();
        pingmesh_obs::emit_sim!(now; Warn, "agent.guard", "guard_trip",
            "server" => self.server.0 as u64, "reason" => reason);
    }

    /// Folds a controller poll result into the agent.
    pub fn on_controller_poll(&mut self, outcome: ControllerPollOutcome, now: SimTime) {
        let was_stopped = self.guard.is_stopped();
        match outcome {
            ControllerPollOutcome::Pinglist(mut pl) => {
                let clamped = SafetyGuard::sanitize(&mut pl) as u64;
                if clamped > 0 {
                    metrics().sanitized.add(clamped);
                    pingmesh_obs::emit_sim!(now; Warn, "agent.guard", "entries_sanitized",
                        "server" => self.server.0 as u64, "entries" => clamped);
                }
                self.sanitized_entries += clamped;
                self.guard.on_pinglist_received();
                // Reinstall only on a new generation: rebuilding the
                // schedule resets probe phases, which we only want when
                // the list actually changed.
                if pl.generation != self.generation {
                    self.generation = pl.generation;
                    self.scheduler.install(&pl, now);
                }
            }
            ControllerPollOutcome::NoPinglist => {
                if self.guard.on_empty_controller() == GuardDecision::StopProbing {
                    if !was_stopped {
                        self.note_guard_trip("no_pinglist", now);
                    }
                    self.scheduler.clear();
                    self.generation = 0;
                }
            }
            ControllerPollOutcome::Unreachable => {
                if self.guard.on_controller_failure() == GuardDecision::StopProbing {
                    if !was_stopped {
                        self.note_guard_trip("controller_unreachable", now);
                    }
                    self.scheduler.clear();
                    self.generation = 0;
                }
            }
        }
    }

    /// When the agent next needs to act (to launch a probe).
    pub fn next_wakeup(&self) -> Option<SimTime> {
        self.scheduler.next_due()
    }

    /// Probes due at `now`. Empty while fail-closed (the scheduler is
    /// cleared on stop, but double-check for safety).
    ///
    /// The returned `Vec` is the agent's recycled wake-path scratch; hand
    /// it back via [`Agent::recycle_due`] after draining so the next wake
    /// reuses its capacity instead of allocating.
    pub fn due_probes(&mut self, now: SimTime) -> Vec<DueProbe> {
        let mut due = std::mem::take(&mut self.due_scratch);
        due.clear();
        if !self.guard.is_stopped() {
            self.scheduler.pop_due_into(now, &mut due);
        }
        due
    }

    /// Returns a drained `due_probes` buffer for reuse on the next wake.
    pub fn recycle_due(&mut self, mut due: Vec<DueProbe>) {
        due.clear();
        if due.capacity() > self.due_scratch.capacity() {
            self.due_scratch = due;
        }
    }

    /// Feeds a probe's network outcome back: updates counters and buffers
    /// a record. `dst` is the physical server that was reached (VIPs
    /// resolve to a DIP); probes whose target could not be resolved are
    /// counted but produce no record.
    pub fn record_outcome(
        &mut self,
        due: &DueProbe,
        dst: Option<ServerId>,
        outcome: ProbeOutcome,
        now: SimTime,
    ) {
        self.counters.observe(outcome);
        metrics().probes_sent.inc();
        self.probes_observed += 1;
        let Some(dst) = dst else {
            self.unresolved_probes += 1;
            return;
        };
        let s = self.topo.server(self.server);
        let d = self.topo.server(dst);
        let rec = ProbeRecord {
            ts: now,
            src: self.server,
            dst,
            src_pod: s.pod,
            dst_pod: d.pod,
            src_podset: s.podset,
            dst_podset: d.podset,
            src_dc: s.dc,
            dst_dc: d.dc,
            kind: due.entry.kind,
            qos: due.entry.qos,
            src_port: due.src_port,
            dst_port: due.entry.port,
            outcome,
        };
        // Provenance: one relaxed load when nothing is armed.
        pingmesh_obs::trace::on_probe(&rec);
        self.buffer.push(rec);
    }

    /// Whether an upload should start now.
    pub fn upload_due(&self, now: SimTime) -> bool {
        self.buffer.upload_due(now)
    }

    /// Starts an upload; returns the batch for the uploader.
    pub fn begin_upload(&mut self) -> Option<Vec<ProbeRecord>> {
        let batch = self.buffer.begin_upload();
        if let Some(b) = &batch {
            metrics().uploads_started.inc();
            metrics().upload_batch_size.record_micros(b.len() as u64);
        }
        batch
    }

    /// Reports the uploader's verdict; returns `true` if the caller
    /// should retry the batch it already holds (see
    /// [`crate::buffer::ResultBuffer::on_upload_result`]).
    pub fn on_upload_result(&mut self, ok: bool) -> bool {
        let retry = self.buffer.on_upload_result(ok);
        if !ok && retry {
            metrics().upload_retries.inc();
        }
        self.counters.records_discarded = self.buffer.discarded();
        let newly = self.buffer.discarded().saturating_sub(self.discarded_seen);
        if newly > 0 {
            self.discarded_seen = self.buffer.discarded();
            metrics().records_discarded.add(newly);
        }
        retry
    }

    /// Returns a finished upload batch's capacity for reuse.
    pub fn recycle_batch(&mut self, batch: Vec<ProbeRecord>) {
        self.buffer.recycle(batch);
    }

    /// Marks bytes as uploaded (called by the orchestrator on success).
    pub fn note_uploaded(&mut self, bytes: u64) {
        self.counters.bytes_uploaded += bytes;
    }

    /// Cumulative records discarded over the agent's lifetime (the PA
    /// counter window resets every collection; this one never does).
    pub fn discarded_total(&self) -> u64 {
        self.buffer.discarded()
    }

    /// Lifetime count of probe outcomes fed back through
    /// [`Agent::record_outcome`].
    pub fn probes_observed(&self) -> u64 {
        self.probes_observed
    }

    /// Lifetime count of probes whose target never resolved to a physical
    /// server — counted but recordless (the conservation ledger's
    /// "evaporated" column).
    pub fn unresolved_probes(&self) -> u64 {
        self.unresolved_probes
    }

    /// Records currently buffered, awaiting a future upload.
    pub fn buffered_records(&self) -> u64 {
        self.buffer.len() as u64
    }

    /// Whether an upload batch is in the uploader's hands right now.
    pub fn has_pending_upload(&self) -> bool {
        self.buffer.has_pending()
    }

    /// Live counters.
    pub fn counters(&self) -> &AgentCounters {
        &self.counters
    }

    /// PA collection: export a snapshot and reset the window.
    pub fn collect_counters(&mut self) -> CounterSnapshot {
        let snap = self.counters.snapshot();
        self.counters.reset_window();
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pingmesh_topology::TopologySpec;
    use pingmesh_types::{PingTarget, PinglistEntry, ProbeKind, QosClass, SimDuration};
    use std::net::Ipv4Addr;

    fn topo() -> Arc<Topology> {
        Arc::new(Topology::build(TopologySpec::single_tiny()).unwrap())
    }

    fn pinglist(generation: u64) -> Pinglist {
        Pinglist {
            server: ServerId(0),
            generation,
            entries: vec![PinglistEntry {
                target: PingTarget::Server {
                    id: ServerId(1),
                    ip: Ipv4Addr::new(10, 0, 0, 1),
                },
                port: 8100,
                kind: ProbeKind::TcpSyn,
                qos: QosClass::High,
                interval: SimDuration::from_secs(10),
            }],
        }
    }

    fn agent() -> Agent {
        Agent::new(ServerId(0), topo(), AgentConfig::default())
    }

    #[test]
    fn pinglist_install_and_probing() {
        let mut a = agent();
        assert_eq!(a.peer_count(), 0);
        a.on_controller_poll(ControllerPollOutcome::Pinglist(pinglist(1)), SimTime::ZERO);
        assert_eq!(a.peer_count(), 1);
        assert_eq!(a.generation(), 1);
        let t = a.next_wakeup().unwrap();
        let due = a.due_probes(t);
        assert_eq!(due.len(), 1);
        a.record_outcome(
            &due[0],
            Some(ServerId(1)),
            ProbeOutcome::Success {
                rtt: SimDuration::from_micros(300),
            },
            t,
        );
        assert_eq!(a.counters().probes_sent, 1);
        assert_eq!(a.counters().probes_succeeded, 1);
    }

    #[test]
    fn same_generation_does_not_reset_schedule() {
        let mut a = agent();
        a.on_controller_poll(ControllerPollOutcome::Pinglist(pinglist(1)), SimTime::ZERO);
        let first_due = a.next_wakeup().unwrap();
        // Re-poll with the same generation much later: schedule unchanged.
        a.on_controller_poll(
            ControllerPollOutcome::Pinglist(pinglist(1)),
            SimTime(5_000_000),
        );
        assert_eq!(a.next_wakeup().unwrap(), first_due);
        // A new generation reinstalls.
        a.on_controller_poll(
            ControllerPollOutcome::Pinglist(pinglist(2)),
            SimTime(5_000_000),
        );
        assert_eq!(a.generation(), 2);
    }

    #[test]
    fn three_unreachable_polls_fail_close() {
        let mut a = agent();
        a.on_controller_poll(ControllerPollOutcome::Pinglist(pinglist(1)), SimTime::ZERO);
        a.on_controller_poll(ControllerPollOutcome::Unreachable, SimTime(1));
        a.on_controller_poll(ControllerPollOutcome::Unreachable, SimTime(2));
        assert!(!a.is_stopped());
        a.on_controller_poll(ControllerPollOutcome::Unreachable, SimTime(3));
        assert!(a.is_stopped());
        assert_eq!(a.peer_count(), 0);
        assert!(a.due_probes(SimTime(100_000_000)).is_empty());
        // Recovery: a pinglist resumes probing.
        a.on_controller_poll(ControllerPollOutcome::Pinglist(pinglist(5)), SimTime(4));
        assert!(!a.is_stopped());
        assert_eq!(a.peer_count(), 1);
    }

    #[test]
    fn empty_controller_stops_probing_immediately() {
        let mut a = agent();
        a.on_controller_poll(ControllerPollOutcome::Pinglist(pinglist(1)), SimTime::ZERO);
        a.on_controller_poll(ControllerPollOutcome::NoPinglist, SimTime(1));
        assert!(a.is_stopped());
        assert_eq!(a.peer_count(), 0);
    }

    #[test]
    fn sanitization_is_counted() {
        let mut a = agent();
        let mut pl = pinglist(1);
        pl.entries[0].interval = SimDuration::from_secs(1); // below the floor
        a.on_controller_poll(ControllerPollOutcome::Pinglist(pl), SimTime::ZERO);
        assert_eq!(a.sanitized_entries(), 1);
    }

    #[test]
    fn records_carry_denormalized_scope() {
        let mut a = agent();
        a.on_controller_poll(ControllerPollOutcome::Pinglist(pinglist(1)), SimTime::ZERO);
        let t = a.next_wakeup().unwrap();
        let due = a.due_probes(t);
        a.record_outcome(
            &due[0],
            Some(ServerId(1)),
            ProbeOutcome::Success {
                rtt: SimDuration::from_micros(200),
            },
            t,
        );
        let batch = a.begin_upload().unwrap();
        let rec = batch[0];
        let topo = topo();
        assert_eq!(rec.src_pod, topo.server(ServerId(0)).pod);
        assert_eq!(rec.dst_pod, topo.server(ServerId(1)).pod);
        assert_eq!(rec.src_dc, rec.dst_dc);
        assert!(rec.is_intra_pod());
    }

    #[test]
    fn unresolved_targets_count_but_produce_no_record() {
        let mut a = agent();
        a.on_controller_poll(ControllerPollOutcome::Pinglist(pinglist(1)), SimTime::ZERO);
        let t = a.next_wakeup().unwrap();
        let due = a.due_probes(t);
        a.record_outcome(&due[0], None, ProbeOutcome::Timeout, t);
        assert_eq!(a.counters().probes_failed, 1);
        assert!(a.begin_upload().is_none());
    }

    #[test]
    fn counter_collection_resets_window() {
        let mut a = agent();
        a.on_controller_poll(ControllerPollOutcome::Pinglist(pinglist(1)), SimTime::ZERO);
        let t = a.next_wakeup().unwrap();
        let due = a.due_probes(t);
        a.record_outcome(
            &due[0],
            Some(ServerId(1)),
            ProbeOutcome::Success {
                rtt: SimDuration::from_micros(250),
            },
            t,
        );
        a.note_uploaded(100);
        let snap = a.collect_counters();
        assert_eq!(snap.probes_sent, 1);
        assert_eq!(snap.bytes_uploaded, 100);
        assert_eq!(a.counters().probes_sent, 0, "window reset");
    }
}
