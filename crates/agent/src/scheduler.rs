//! Probe scheduling: when to ping which peer.
//!
//! Each pinglist entry fires every `interval`. Initial phases are spread
//! deterministically by hashing (server, entry index) so that a freshly
//! deployed fleet does not synchronize its probes ("easily balance the
//! probing activity among all the servers", §6.1), and so that the
//! controller and agents need no coordination.
//!
//! Ephemeral source ports rotate per probe: "Every probing needs to be a
//! new connection and uses a new TCP source port. This is to explore the
//! multi-path nature of the network as much as possible" (§3.4.1).

use pingmesh_types::{Pinglist, PinglistEntry, ServerId, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// First ephemeral port used by agents.
pub(crate) const EPHEMERAL_LO: u16 = 32_768;

/// A probe that is due now.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DueProbe {
    /// Index of the entry in the active pinglist.
    pub entry_index: usize,
    /// The pinglist entry itself.
    pub entry: PinglistEntry,
    /// Fresh ephemeral source port for this probe.
    pub src_port: u16,
}

/// Per-agent probe scheduler.
#[derive(Debug)]
pub struct ProbeScheduler {
    server: ServerId,
    entries: Vec<PinglistEntry>,
    /// Min-heap of (next_due, entry_index).
    heap: BinaryHeap<Reverse<(SimTime, usize)>>,
    next_port: u16,
}

impl ProbeScheduler {
    /// Creates an idle scheduler (no pinglist installed).
    pub fn new(server: ServerId) -> Self {
        Self {
            server,
            entries: Vec::new(),
            heap: BinaryHeap::new(),
            next_port: EPHEMERAL_LO,
        }
    }

    /// Installs a pinglist, replacing the previous schedule. Entry phases
    /// are spread deterministically inside each entry's interval.
    pub fn install(&mut self, pl: &Pinglist, now: SimTime) {
        self.entries = pl.entries.clone();
        self.heap.clear();
        for (i, e) in self.entries.iter().enumerate() {
            let phase = Self::phase_of(self.server, i, e.interval.as_micros());
            self.heap
                .push(Reverse((now + pingmesh_types::SimDuration(phase), i)));
        }
    }

    /// Removes all peers (fail-closed).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.heap.clear();
    }

    /// Number of scheduled peers.
    pub fn peer_count(&self) -> usize {
        self.entries.len()
    }

    pub(crate) fn phase_of(server: ServerId, idx: usize, interval_us: u64) -> u64 {
        if interval_us == 0 {
            return 0;
        }
        let mut z = (server.0 as u64) << 32 | idx as u64;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        (z ^ (z >> 31)) % interval_us
    }

    fn fresh_port(&mut self) -> u16 {
        let p = self.next_port;
        self.next_port = if self.next_port == u16::MAX {
            EPHEMERAL_LO
        } else {
            self.next_port + 1
        };
        p
    }

    /// When the next probe is due, if any.
    pub fn next_due(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse((t, _))| *t)
    }

    /// Pops every probe due at or before `now`, rescheduling each entry at
    /// `now + interval`.
    pub fn pop_due(&mut self, now: SimTime) -> Vec<DueProbe> {
        let mut due = Vec::new();
        self.pop_due_into(now, &mut due);
        due
    }

    /// Like [`ProbeScheduler::pop_due`], but appends into a caller-owned
    /// buffer so a recycled scratch `Vec` makes the steady-state wake path
    /// allocation-free.
    pub fn pop_due_into(&mut self, now: SimTime, out: &mut Vec<DueProbe>) {
        while let Some(&Reverse((t, idx))) = self.heap.peek() {
            if t > now {
                break;
            }
            self.heap.pop();
            let entry = self.entries[idx];
            let src_port = self.fresh_port();
            self.heap.push(Reverse((now + entry.interval, idx)));
            out.push(DueProbe {
                entry_index: idx,
                entry,
                src_port,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pingmesh_types::{PingTarget, ProbeKind, QosClass, SimDuration};
    use std::net::Ipv4Addr;

    fn pinglist(n: usize, interval_s: u64) -> Pinglist {
        Pinglist {
            server: ServerId(7),
            generation: 1,
            entries: (0..n)
                .map(|i| PinglistEntry {
                    target: PingTarget::Server {
                        id: ServerId(100 + i as u32),
                        ip: Ipv4Addr::new(10, 0, 0, i as u8),
                    },
                    port: 8100,
                    kind: ProbeKind::TcpSyn,
                    qos: QosClass::High,
                    interval: SimDuration::from_secs(interval_s),
                })
                .collect(),
        }
    }

    #[test]
    fn phases_spread_within_interval() {
        let mut s = ProbeScheduler::new(ServerId(7));
        s.install(&pinglist(100, 30), SimTime::ZERO);
        // All first fires happen within one interval.
        let first = s.next_due().unwrap();
        assert!(first <= SimTime(30_000_000));
        let all = s.pop_due(SimTime(30_000_000));
        assert_eq!(all.len(), 100);
        // Phases are not all identical (spread!).
        let mut ports_and_entries: Vec<usize> = all.iter().map(|d| d.entry_index).collect();
        ports_and_entries.dedup();
        assert!(ports_and_entries.len() > 1);
    }

    #[test]
    fn entries_fire_periodically() {
        let mut s = ProbeScheduler::new(ServerId(1));
        s.install(&pinglist(1, 10), SimTime::ZERO);
        let t1 = s.next_due().unwrap();
        let d1 = s.pop_due(t1);
        assert_eq!(d1.len(), 1);
        let t2 = s.next_due().unwrap();
        assert_eq!(t2, t1 + SimDuration::from_secs(10));
        let d2 = s.pop_due(t2);
        assert_eq!(d2.len(), 1);
        assert_eq!(d2[0].entry_index, 0);
    }

    #[test]
    fn ports_are_fresh_per_probe() {
        let mut s = ProbeScheduler::new(ServerId(1));
        s.install(&pinglist(5, 10), SimTime::ZERO);
        let mut seen = std::collections::HashSet::new();
        // Entries fire at staggered phases; keep popping until 50 probes
        // have been launched.
        while seen.len() < 50 {
            let t = s.next_due().unwrap();
            for d in s.pop_due(t) {
                assert!(seen.insert(d.src_port), "port {} reused", d.src_port);
            }
        }
        assert_eq!(seen.len(), 50);
    }

    #[test]
    fn port_rotation_wraps_without_leaving_ephemeral_range() {
        let mut s = ProbeScheduler::new(ServerId(1));
        s.next_port = u16::MAX;
        assert_eq!(s.fresh_port(), u16::MAX);
        assert_eq!(s.fresh_port(), EPHEMERAL_LO);
    }

    #[test]
    fn clear_stops_everything() {
        let mut s = ProbeScheduler::new(ServerId(1));
        s.install(&pinglist(4, 10), SimTime::ZERO);
        assert_eq!(s.peer_count(), 4);
        s.clear();
        assert_eq!(s.peer_count(), 0);
        assert!(s.next_due().is_none());
        assert!(s.pop_due(SimTime(1_000_000_000)).is_empty());
    }

    #[test]
    fn reinstall_replaces_schedule() {
        let mut s = ProbeScheduler::new(ServerId(1));
        s.install(&pinglist(4, 10), SimTime::ZERO);
        s.install(&pinglist(2, 10), SimTime(5_000_000));
        assert_eq!(s.peer_count(), 2);
        let all = s.pop_due(SimTime(15_000_000 + 10_000_000));
        // Only the 2 new entries fire (old heap cleared), each posssibly
        // twice given the window.
        assert!(all.iter().all(|d| d.entry_index < 2));
    }

    #[test]
    fn phase_is_deterministic() {
        assert_eq!(
            ProbeScheduler::phase_of(ServerId(3), 5, 1_000_000),
            ProbeScheduler::phase_of(ServerId(3), 5, 1_000_000)
        );
        assert_eq!(ProbeScheduler::phase_of(ServerId(3), 5, 0), 0);
    }
}
