//! Agent configuration.

use pingmesh_types::constants::UPLOAD_RETRIES;
use pingmesh_types::SimDuration;
use serde::{Deserialize, Serialize};

/// Tunable (non-safety) parameters of the agent. Safety limits are *not*
/// here — they are hard-coded in [`pingmesh_types::constants`], exactly as
/// the paper hard-codes them in the agent source.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AgentConfig {
    /// How often the agent polls the controller for a fresh pinglist.
    pub controller_poll_interval: SimDuration,
    /// Upload the buffered results when this many records accumulate…
    pub upload_batch_records: usize,
    /// …or when the oldest buffered record reaches this age.
    pub upload_max_age: SimDuration,
    /// In-memory result buffer cap in bytes; records beyond it are
    /// dropped (counted as discarded) so a broken upload path can never
    /// grow the agent's footprint.
    pub buffer_cap_bytes: usize,
    /// Upload retry attempts before the batch is discarded.
    pub upload_retries: u32,
    /// Local log file size cap in bytes ("The size of log files is
    /// limited to a configurable size", §3.4.2).
    pub log_cap_bytes: usize,
}

impl Default for AgentConfig {
    fn default() -> Self {
        Self {
            controller_poll_interval: SimDuration::from_mins(10),
            upload_batch_records: 2_000,
            upload_max_age: SimDuration::from_mins(10),
            buffer_cap_bytes: 8 * 1024 * 1024,
            upload_retries: UPLOAD_RETRIES,
            log_cap_bytes: 4 * 1024 * 1024,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = AgentConfig::default();
        assert!(c.upload_batch_records > 0);
        assert!(c.buffer_cap_bytes >= 1024);
        assert_eq!(c.upload_retries, UPLOAD_RETRIES);
        assert!(c.controller_poll_interval.as_micros() > 0);
    }

    #[test]
    fn serde_roundtrip() {
        let c = AgentConfig::default();
        let s = serde_json::to_string(&c).unwrap();
        let back: AgentConfig = serde_json::from_str(&s).unwrap();
        assert_eq!(c, back);
    }
}
