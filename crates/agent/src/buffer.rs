//! Bounded result buffering with retry-then-discard upload semantics.
//!
//! "Once a timer times out or the size of the measurement results exceeds
//! a threshold, the Pingmesh Agent uploads the results to Cosmos. ... If a
//! server cannot upload its latency data, it will retry several times.
//! After that it will stop trying and discard the in-memory data. This is
//! to ensure the Pingmesh Agent uses bounded memory resource. The
//! Pingmesh Agent also writes the latency data to local disk as log
//! files. The size of log files is limited to a configurable size."
//! (§3.4.2)

use crate::config::AgentConfig;
use pingmesh_types::{ProbeRecord, SimTime};
use std::collections::VecDeque;

/// Bookkeeping for a batch currently in the uploader's hands. The records
/// themselves are owned by the caller for the whole retry cycle (handed
/// out by [`ResultBuffer::begin_upload`]), so failed uploads no longer
/// clone the batch.
#[derive(Debug, Clone, Copy)]
pub struct PendingUpload {
    /// Number of records in the in-flight batch.
    pub len: usize,
    /// Upload attempts made so far.
    pub attempts: u32,
}

/// The agent's in-memory result buffer plus capped local log.
#[derive(Debug)]
pub struct ResultBuffer {
    config: AgentConfig,
    records: Vec<ProbeRecord>,
    oldest: Option<SimTime>,
    bytes: usize,
    pending: Option<PendingUpload>,
    /// Recycled batch capacity: an empty `Vec` returned via
    /// [`ResultBuffer::recycle`], swapped in on the next `begin_upload` so
    /// steady-state uploads reuse one allocation.
    scratch: Vec<ProbeRecord>,
    /// Records dropped (buffer overflow or upload give-up).
    discarded: u64,
    /// Capped local log: newest lines win.
    log: VecDeque<String>,
    log_bytes: usize,
}

impl ResultBuffer {
    /// Creates an empty buffer.
    pub fn new(config: AgentConfig) -> Self {
        Self {
            config,
            records: Vec::new(),
            oldest: None,
            bytes: 0,
            pending: None,
            scratch: Vec::new(),
            discarded: 0,
            log: VecDeque::new(),
            log_bytes: 0,
        }
    }

    /// Number of buffered (not yet batched) records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the buffer holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total records discarded so far.
    pub fn discarded(&self) -> u64 {
        self.discarded
    }

    /// Approximate buffered bytes.
    pub fn buffered_bytes(&self) -> usize {
        self.bytes
    }

    /// Appends a record; drops it (counting) if the byte cap is reached.
    pub fn push(&mut self, rec: ProbeRecord) {
        let sz = rec.wire_size();
        if self.bytes + sz > self.config.buffer_cap_bytes {
            self.discarded += 1;
            return;
        }
        if self.oldest.is_none() {
            self.oldest = Some(rec.ts);
        }
        self.bytes += sz;
        self.log_line(&rec);
        self.records.push(rec);
    }

    fn log_line(&mut self, rec: &ProbeRecord) {
        let line = format!(
            "{},{},{},{:?}",
            rec.ts.as_micros(),
            rec.src,
            rec.dst,
            rec.outcome
        );
        self.log_bytes += line.len();
        self.log.push_back(line);
        while self.log_bytes > self.config.log_cap_bytes {
            if let Some(old) = self.log.pop_front() {
                self.log_bytes -= old.len();
            } else {
                break;
            }
        }
    }

    /// The capped local log (oldest first).
    pub fn log_lines(&self) -> impl Iterator<Item = &str> {
        self.log.iter().map(|s| s.as_str())
    }

    /// Whether an upload should fire now (batch size or age trigger), and
    /// no batch is already in flight.
    pub fn upload_due(&self, now: SimTime) -> bool {
        if self.pending.is_some() || self.records.is_empty() {
            return false;
        }
        self.records.len() >= self.config.upload_batch_records
            || self
                .oldest
                .is_some_and(|o| now.since(o) >= self.config.upload_max_age)
    }

    /// Cuts the current records into a batch owned by the caller for the
    /// whole retry cycle. The internal buffer swaps onto recycled scratch
    /// capacity, so steady-state uploads allocate nothing. Returns `None`
    /// if a batch is already pending or nothing is buffered.
    pub fn begin_upload(&mut self) -> Option<Vec<ProbeRecord>> {
        if self.pending.is_some() || self.records.is_empty() {
            return None;
        }
        debug_assert!(self.scratch.is_empty());
        let records = std::mem::replace(&mut self.records, std::mem::take(&mut self.scratch));
        self.bytes = 0;
        self.oldest = None;
        self.pending = Some(PendingUpload {
            len: records.len(),
            attempts: 1,
        });
        Some(records)
    }

    /// Reports the uploader's result. Returns `true` if the caller should
    /// retry with the batch it already holds: on failure the batch stays
    /// pending until the retry budget is exhausted, then it is discarded
    /// (and the caller should [`ResultBuffer::recycle`] it).
    pub fn on_upload_result(&mut self, ok: bool) -> bool {
        let Some(mut p) = self.pending.take() else {
            return false;
        };
        if ok {
            return false;
        }
        if p.attempts > self.config.upload_retries {
            self.discarded += p.len as u64;
            return false;
        }
        p.attempts += 1;
        self.pending = Some(p);
        true
    }

    /// Returns a finished batch's capacity for reuse by the next upload.
    pub fn recycle(&mut self, mut batch: Vec<ProbeRecord>) {
        batch.clear();
        if batch.capacity() > self.scratch.capacity() {
            self.scratch = batch;
        }
    }

    /// Records uploaded successfully? (Used by counters.)
    pub fn has_pending(&self) -> bool {
        self.pending.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pingmesh_types::{
        DcId, PodId, PodsetId, ProbeKind, ProbeOutcome, QosClass, ServerId, SimDuration,
    };

    fn rec(ts: u64) -> ProbeRecord {
        ProbeRecord {
            ts: SimTime(ts),
            src: ServerId(0),
            dst: ServerId(1),
            src_pod: PodId(0),
            dst_pod: PodId(0),
            src_podset: PodsetId(0),
            dst_podset: PodsetId(0),
            src_dc: DcId(0),
            dst_dc: DcId(0),
            kind: ProbeKind::TcpSyn,
            qos: QosClass::High,
            src_port: 40_000,
            dst_port: 8_100,
            outcome: ProbeOutcome::Success {
                rtt: SimDuration::from_micros(250),
            },
        }
    }

    fn small_config() -> AgentConfig {
        AgentConfig {
            upload_batch_records: 3,
            upload_max_age: SimDuration::from_secs(60),
            buffer_cap_bytes: 64 * 10, // ten records
            upload_retries: 2,
            log_cap_bytes: 200,
            ..AgentConfig::default()
        }
    }

    #[test]
    fn batch_size_triggers_upload() {
        let mut b = ResultBuffer::new(small_config());
        b.push(rec(1));
        b.push(rec(2));
        assert!(!b.upload_due(SimTime(10)));
        b.push(rec(3));
        assert!(b.upload_due(SimTime(10)));
        let batch = b.begin_upload().unwrap();
        assert_eq!(batch.len(), 3);
        assert!(b.is_empty());
    }

    #[test]
    fn age_triggers_upload() {
        let mut b = ResultBuffer::new(small_config());
        b.push(rec(0));
        assert!(!b.upload_due(SimTime(59_000_000)));
        assert!(b.upload_due(SimTime(60_000_000)));
    }

    #[test]
    fn no_double_batches_in_flight() {
        let mut b = ResultBuffer::new(small_config());
        for i in 0..3 {
            b.push(rec(i));
        }
        assert!(b.begin_upload().is_some());
        b.push(rec(10));
        b.push(rec(11));
        b.push(rec(12));
        // A batch is pending: neither due nor beginnable.
        assert!(!b.upload_due(SimTime(100)));
        assert!(b.begin_upload().is_none());
        // Success clears the pending slot.
        assert!(!b.on_upload_result(true));
        assert!(b.upload_due(SimTime(100)));
    }

    #[test]
    fn failed_uploads_retry_then_discard() {
        let mut b = ResultBuffer::new(small_config());
        for i in 0..3 {
            b.push(rec(i));
        }
        let batch = b.begin_upload().unwrap();
        assert_eq!(batch.len(), 3);
        // retries allowed: 2 → attempts 2 and 3 ask the caller to retry
        // the batch it already holds.
        assert!(b.on_upload_result(false));
        assert!(b.on_upload_result(false));
        // third failure exhausts the budget: discard.
        assert!(!b.on_upload_result(false));
        assert_eq!(b.discarded(), 3);
        assert!(!b.has_pending());
        b.recycle(batch);
    }

    #[test]
    fn recycled_capacity_is_reused_without_reallocating() {
        let mut b = ResultBuffer::new(small_config());
        let cycle = |b: &mut ResultBuffer| {
            for i in 0..3 {
                b.push(rec(i));
            }
            let batch = b.begin_upload().unwrap();
            assert_eq!(batch.len(), 3);
            assert!(!b.on_upload_result(true));
            let ptr = batch.as_ptr();
            b.recycle(batch);
            ptr
        };
        // A recycled batch becomes the accumulation buffer of the next
        // cycle and is handed back the cycle after: at steady state the
        // same two allocations ping-pong forever.
        let a = cycle(&mut b);
        let bp = cycle(&mut b);
        for _ in 0..8 {
            assert_eq!(cycle(&mut b), a);
            assert_eq!(cycle(&mut b), bp);
        }
    }

    #[test]
    fn buffer_cap_drops_excess_records() {
        let mut b = ResultBuffer::new(small_config());
        for i in 0..20 {
            b.push(rec(i));
        }
        assert_eq!(b.len(), 10, "cap = ten records");
        assert_eq!(b.discarded(), 10);
        assert!(b.buffered_bytes() <= small_config().buffer_cap_bytes);
    }

    #[test]
    fn local_log_is_byte_capped() {
        let mut b = ResultBuffer::new(small_config());
        for i in 0..50 {
            b.push(rec(i));
            // keep buffer under its cap so pushes aren't dropped
            if b.len() >= 3 {
                b.begin_upload();
                b.on_upload_result(true);
            }
        }
        let total: usize = b.log_lines().map(|l| l.len()).sum();
        assert!(total <= 200, "log stays capped: {total}");
        // Newest lines survive.
        let last = b.log_lines().last().unwrap().to_string();
        assert!(last.starts_with("49,"));
    }

    #[test]
    fn upload_result_without_pending_is_noop() {
        let mut b = ResultBuffer::new(small_config());
        assert!(!b.on_upload_result(false));
        assert_eq!(b.discarded(), 0);
    }
}
