//! The agent's fail-closed safety envelope (paper §3.4.2).
//!
//! The guard owns two responsibilities:
//!
//! 1. **Sanitizing pinglists.** Whatever the controller sends, the agent
//!    clamps every entry to the hard-coded limits: probe interval at least
//!    [`MIN_PROBE_INTERVAL`], payload at most [`MAX_PAYLOAD_BYTES`].
//!    "These limits are hard coded in the source code. By doing so, we put
//!    a hard limit on the worst-case traffic volume that Pingmesh can
//!    bring into the network."
//! 2. **Fail-closed controller tracking.** "If a Pingmesh Agent cannot
//!    connect to its controller for 3 times, or if the controller is up
//!    but there is no pinglist file available, the Pingmesh Agent will
//!    remove all its existing ping peers and stop all its ping
//!    activities. (It will still react to pings though.)"

use pingmesh_types::constants::{
    CONTROLLER_FAILURES_BEFORE_STOP, MAX_PAYLOAD_BYTES, MIN_PROBE_INTERVAL,
};
use pingmesh_types::{Pinglist, ProbeKind};

/// Outcome of folding a controller interaction into the guard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardDecision {
    /// Keep probing with the (possibly new) pinglist.
    Continue,
    /// Remove all peers and stop probing (keep responding).
    StopProbing,
}

/// Fail-closed state machine + pinglist sanitizer.
#[derive(Debug, Clone, Default)]
pub struct SafetyGuard {
    consecutive_failures: u32,
    stopped: bool,
}

impl SafetyGuard {
    /// Fresh guard (probing allowed once a pinglist arrives).
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the agent is currently fail-closed.
    pub fn is_stopped(&self) -> bool {
        self.stopped
    }

    /// Consecutive controller failures so far.
    pub fn failures(&self) -> u32 {
        self.consecutive_failures
    }

    /// The controller answered with a pinglist: reset the failure counter
    /// and resume probing.
    pub fn on_pinglist_received(&mut self) -> GuardDecision {
        self.consecutive_failures = 0;
        self.stopped = false;
        GuardDecision::Continue
    }

    /// The controller answered but had **no pinglist** — the fleet stop
    /// switch. Stop immediately.
    pub fn on_empty_controller(&mut self) -> GuardDecision {
        self.consecutive_failures = 0;
        self.stopped = true;
        GuardDecision::StopProbing
    }

    /// The controller was unreachable. Stop after the 3rd consecutive
    /// failure.
    pub fn on_controller_failure(&mut self) -> GuardDecision {
        self.consecutive_failures += 1;
        if self.consecutive_failures >= CONTROLLER_FAILURES_BEFORE_STOP {
            self.stopped = true;
            GuardDecision::StopProbing
        } else {
            GuardDecision::Continue
        }
    }

    /// Clamps a pinglist against the hard-coded safety limits. Returns the
    /// number of entries that had to be adjusted (exported as a counter —
    /// a non-zero value means the controller is misbehaving).
    pub fn sanitize(pl: &mut Pinglist) -> usize {
        let mut adjusted = 0;
        for e in &mut pl.entries {
            if e.interval < MIN_PROBE_INTERVAL {
                e.interval = MIN_PROBE_INTERVAL;
                adjusted += 1;
            }
            if let ProbeKind::TcpPayload(b) = e.kind {
                if b as usize > MAX_PAYLOAD_BYTES {
                    e.kind = ProbeKind::TcpPayload(MAX_PAYLOAD_BYTES as u32);
                    adjusted += 1;
                }
            }
        }
        adjusted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pingmesh_types::{PingTarget, PinglistEntry, QosClass, ServerId, SimDuration};
    use std::net::Ipv4Addr;

    fn list(interval_s: u64, kind: ProbeKind) -> Pinglist {
        Pinglist {
            server: ServerId(0),
            generation: 1,
            entries: vec![PinglistEntry {
                target: PingTarget::Server {
                    id: ServerId(1),
                    ip: Ipv4Addr::new(10, 0, 0, 1),
                },
                port: 8100,
                kind,
                qos: QosClass::High,
                interval: SimDuration::from_secs(interval_s),
            }],
        }
    }

    #[test]
    fn sanitize_clamps_interval_and_payload() {
        let mut pl = list(1, ProbeKind::TcpPayload(1_000_000));
        let adjusted = SafetyGuard::sanitize(&mut pl);
        assert_eq!(adjusted, 2);
        assert_eq!(pl.entries[0].interval, MIN_PROBE_INTERVAL);
        assert_eq!(
            pl.entries[0].kind,
            ProbeKind::TcpPayload(MAX_PAYLOAD_BYTES as u32)
        );
    }

    #[test]
    fn sanitize_leaves_valid_lists_alone() {
        let mut pl = list(30, ProbeKind::TcpSyn);
        assert_eq!(SafetyGuard::sanitize(&mut pl), 0);
        assert_eq!(pl.entries[0].interval, SimDuration::from_secs(30));
    }

    #[test]
    fn three_failures_fail_close() {
        let mut g = SafetyGuard::new();
        assert_eq!(g.on_controller_failure(), GuardDecision::Continue);
        assert_eq!(g.on_controller_failure(), GuardDecision::Continue);
        assert!(!g.is_stopped());
        assert_eq!(g.on_controller_failure(), GuardDecision::StopProbing);
        assert!(g.is_stopped());
        assert_eq!(g.failures(), 3);
    }

    #[test]
    fn success_resets_failure_count() {
        let mut g = SafetyGuard::new();
        g.on_controller_failure();
        g.on_controller_failure();
        assert_eq!(g.on_pinglist_received(), GuardDecision::Continue);
        assert_eq!(g.failures(), 0);
        // Needs three more failures to stop again.
        g.on_controller_failure();
        g.on_controller_failure();
        assert!(!g.is_stopped());
    }

    #[test]
    fn resume_rearms_the_full_failure_budget() {
        // The §3.4.2 recovery guarantee: a fail-closed agent that receives
        // a valid pinglist leaves the stopped state with its consecutive-
        // failure counter back at zero — it gets the full budget of 3
        // fresh failures before stopping again, not a hair trigger.
        let mut g = SafetyGuard::new();
        for _ in 0..CONTROLLER_FAILURES_BEFORE_STOP {
            g.on_controller_failure();
        }
        assert!(g.is_stopped());
        assert_eq!(g.on_pinglist_received(), GuardDecision::Continue);
        assert!(!g.is_stopped());
        assert_eq!(g.failures(), 0);
        // Two more failures stay under the threshold…
        g.on_controller_failure();
        g.on_controller_failure();
        assert!(!g.is_stopped());
        // …and the third stops again.
        assert_eq!(g.on_controller_failure(), GuardDecision::StopProbing);
        assert!(g.is_stopped());
    }

    #[test]
    fn empty_controller_stops_immediately() {
        let mut g = SafetyGuard::new();
        assert_eq!(g.on_empty_controller(), GuardDecision::StopProbing);
        assert!(g.is_stopped());
        // And a later pinglist resumes probing.
        assert_eq!(g.on_pinglist_received(), GuardDecision::Continue);
        assert!(!g.is_stopped());
    }
}
