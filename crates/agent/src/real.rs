//! Real-socket probing and responding (tokio).
//!
//! "The Pingmesh Agent needs to act as both client and server. The client
//! part launches pings and the server part responds to the pings"
//! (§3.4.1). The paper's agent is built on a purpose-made asynchronous
//! network library over IOCP; the tokio reactor is the direct Linux
//! analogue. Three probe forms are supported, as in the paper:
//!
//! * **TCP SYN ping** — the RTT is the time `TcpStream::connect` takes
//!   (kernel completes connect on SYN-ACK receipt);
//! * **TCP payload ping** — after connect, a length-prefixed payload is
//!   sent and the peer echoes it; the payload RTT is measured separately;
//! * **HTTP ping** — a `GET /ping` answered by the agent's embedded
//!   responder.
//!
//! Every probe opens a fresh connection from a fresh ephemeral source
//! port (the OS assigns one per `connect`), exploring the ECMP fabric
//! exactly as §3.4.1 requires.

use pingmesh_types::constants::MAX_PAYLOAD_BYTES;
use std::io;
use std::net::SocketAddr;
use std::time::{Duration, Instant};
use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::{TcpListener, TcpStream};

/// Result of one real TCP probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RealProbeResult {
    /// SYN / SYN-ACK round trip (connect time).
    pub connect_rtt: Duration,
    /// Payload echo round trip, when a payload was exchanged.
    pub payload_rtt: Option<Duration>,
}

/// Launches a TCP ping: fresh connection, optional payload echo.
///
/// The `timeout` guards both the connect and the payload exchange; on
/// expiry the probe reports `TimedOut` (the caller maps this to
/// [`pingmesh_types::ProbeOutcome::Timeout`]).
pub async fn tcp_ping(
    addr: SocketAddr,
    payload: Option<&[u8]>,
    timeout: Duration,
) -> io::Result<RealProbeResult> {
    if let Some(p) = payload {
        if p.len() > MAX_PAYLOAD_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "payload exceeds the hard-coded 64 KB cap",
            ));
        }
    }
    let started = Instant::now();
    let mut stream = tokio::time::timeout(timeout, TcpStream::connect(addr))
        .await
        .map_err(|_| io::Error::new(io::ErrorKind::TimedOut, "connect timed out"))??;
    let connect_rtt = started.elapsed();
    stream.set_nodelay(true)?;

    let payload_rtt = match payload {
        None => None,
        Some(p) => {
            let t0 = Instant::now();
            let exchange = async {
                stream.write_u32(p.len() as u32).await?;
                stream.write_all(p).await?;
                stream.flush().await?;
                let n = stream.read_u32().await? as usize;
                if n != p.len() {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "echo length mismatch",
                    ));
                }
                let mut buf = vec![0u8; n];
                stream.read_exact(&mut buf).await?;
                if buf != p {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "echo content mismatch",
                    ));
                }
                Ok(())
            };
            tokio::time::timeout(timeout, exchange)
                .await
                .map_err(|_| io::Error::new(io::ErrorKind::TimedOut, "payload timed out"))??;
            Some(t0.elapsed())
        }
    };
    Ok(RealProbeResult {
        connect_rtt,
        payload_rtt,
    })
}

/// Launches an HTTP ping against the agent's embedded HTTP responder.
pub async fn http_ping(addr: SocketAddr, timeout: Duration) -> io::Result<Duration> {
    let t0 = Instant::now();
    let exchange = async {
        let mut stream = TcpStream::connect(addr).await?;
        stream.set_nodelay(true)?;
        let req = pingmesh_httpx::Request::get("/ping");
        pingmesh_httpx::write_request(&mut stream, &req)
            .await
            .map_err(to_io)?;
        let resp = pingmesh_httpx::read_response(&mut stream)
            .await
            .map_err(to_io)?;
        if resp.status != 200 {
            return Err(io::Error::other(format!("http status {}", resp.status)));
        }
        Ok(())
    };
    tokio::time::timeout(timeout, exchange)
        .await
        .map_err(|_| io::Error::new(io::ErrorKind::TimedOut, "http ping timed out"))??;
    Ok(t0.elapsed())
}

fn to_io(e: pingmesh_httpx::HttpError) -> io::Error {
    match e {
        pingmesh_httpx::HttpError::Io(e) => e,
        other => io::Error::other(other.to_string()),
    }
}

async fn handle_echo_conn(mut stream: TcpStream) {
    // SYN-only probes connect and immediately close; payload probes send
    // a length-prefixed message to echo. Read with a generous idle
    // timeout so dangling connections cannot accumulate.
    loop {
        let n = match tokio::time::timeout(Duration::from_secs(30), stream.read_u32()).await {
            Err(_) | Ok(Err(_)) => return, // closed or idle: SYN-only probe
            Ok(Ok(n)) => n as usize,
        };
        if n > MAX_PAYLOAD_BYTES {
            return; // refuse to echo oversized payloads (safety cap)
        }
        let mut buf = vec![0u8; n];
        if stream.read_exact(&mut buf).await.is_err() {
            return;
        }
        if stream.write_u32(n as u32).await.is_err()
            || stream.write_all(&buf).await.is_err()
            || stream.flush().await.is_err()
        {
            return;
        }
    }
}

/// Runs the TCP echo responder (the agent's "server part") until dropped.
pub async fn serve_echo(listener: TcpListener) {
    loop {
        match listener.accept().await {
            Ok((stream, _)) => {
                let _ = stream.set_nodelay(true);
                tokio::spawn(handle_echo_conn(stream));
            }
            Err(_) => tokio::task::yield_now().await,
        }
    }
}

/// Runs the HTTP responder (answers `GET /ping` with `200 pong`).
pub async fn serve_http(listener: TcpListener) {
    loop {
        match listener.accept().await {
            Ok((mut stream, _)) => {
                tokio::spawn(async move {
                    if let Ok(req) = pingmesh_httpx::read_request(&mut stream).await {
                        let resp = if req.method == "GET" && req.path == "/ping" {
                            pingmesh_httpx::Response::ok(b"pong".to_vec())
                        } else {
                            pingmesh_httpx::Response::not_found()
                        };
                        let _ = pingmesh_httpx::write_response(&mut stream, &resp).await;
                    }
                });
            }
            Err(_) => tokio::task::yield_now().await,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    async fn echo_server() -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().unwrap();
        tokio::spawn(serve_echo(listener));
        addr
    }

    #[tokio::test]
    async fn syn_ping_measures_connect() {
        let addr = echo_server().await;
        let r = tcp_ping(addr, None, Duration::from_secs(2)).await.unwrap();
        assert!(r.connect_rtt < Duration::from_secs(1));
        assert!(r.payload_rtt.is_none());
    }

    #[tokio::test]
    async fn payload_ping_echoes() {
        let addr = echo_server().await;
        let payload = vec![0xABu8; 1_000];
        let r = tcp_ping(addr, Some(&payload), Duration::from_secs(2))
            .await
            .unwrap();
        assert!(r.payload_rtt.is_some());
    }

    #[tokio::test]
    async fn multiple_payload_sizes_roundtrip() {
        let addr = echo_server().await;
        for size in [1usize, 100, 1_500, 64 * 1024] {
            let payload = vec![7u8; size];
            let r = tcp_ping(addr, Some(&payload), Duration::from_secs(5))
                .await
                .unwrap();
            assert!(r.payload_rtt.is_some(), "size {size}");
        }
    }

    #[tokio::test]
    async fn oversized_payload_is_rejected_client_side() {
        let addr = echo_server().await;
        let payload = vec![0u8; MAX_PAYLOAD_BYTES + 1];
        let err = tcp_ping(addr, Some(&payload), Duration::from_secs(2))
            .await
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[tokio::test]
    async fn ping_to_dead_port_fails() {
        let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().unwrap();
        drop(listener);
        let err = tcp_ping(addr, None, Duration::from_secs(2)).await;
        assert!(err.is_err());
    }

    #[tokio::test]
    async fn http_ping_roundtrip() {
        let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().unwrap();
        tokio::spawn(serve_http(listener));
        let rtt = http_ping(addr, Duration::from_secs(2)).await.unwrap();
        assert!(rtt < Duration::from_secs(1));
    }

    #[tokio::test]
    async fn concurrent_probes_share_one_responder() {
        // The paper's agent handles thousands of concurrent connections;
        // check the responder multiplexes at a modest scale.
        let addr = echo_server().await;
        let mut tasks = Vec::new();
        for i in 0..100 {
            tasks.push(tokio::spawn(async move {
                let payload = vec![i as u8; 512];
                tcp_ping(addr, Some(&payload), Duration::from_secs(5)).await
            }));
        }
        for t in tasks {
            assert!(t.await.unwrap().is_ok());
        }
    }
}
