//! The Pingmesh Agent.
//!
//! "Every server runs a Pingmesh Agent. Its task is simple: downloads
//! pinglist from the Pingmesh Controller; pings the servers in the
//! pinglist; then uploads the ping result to DSA." (§3.4) — and yet "the
//! Pingmesh Agent is one of the most challenging part to implement"
//! because it must be **fail-closed** and almost free:
//!
//! * hard-coded floor on the probe interval and cap on the payload size
//!   ([`guard`]),
//! * stop probing after 3 consecutive controller failures or when the
//!   controller serves no pinglist (while still *answering* probes),
//! * bounded in-memory results with retry-then-discard upload semantics
//!   and a capped local log ([`buffer`]),
//! * deterministic spreading of probes over time ([`scheduler`]) and a
//!   fresh ephemeral source port per probe,
//! * exported perf counters (P50/P99/drop rate) for the fast PA pipeline.
//!
//! [`sim::Agent`] is the driver used at fleet scale inside the discrete-
//! event simulation; [`real`] contains the tokio TCP/HTTP prober and
//! responder used in real-socket mode — the analogue of the paper's
//! purpose-built IOCP network library.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod buffer;
pub mod config;
pub mod guard;
pub mod real;
pub mod scheduler;
pub mod sim;
pub mod soa;

pub use buffer::ResultBuffer;
pub use config::AgentConfig;
pub use guard::SafetyGuard;
pub use scheduler::ProbeScheduler;
pub use sim::{Agent, ControllerPollOutcome};
pub use soa::{AgentFleet, AgentView};
