//! Struct-of-arrays agent fleet: the hot-state layout used at scale.
//!
//! [`crate::sim::Agent`] keeps each agent's schedule in its own
//! `BinaryHeap` behind its own allocations — fine for hundreds of agents,
//! but a 100k-agent simulation turns every wake into a pointer chase
//! through 100k scattered heaps. [`AgentFleet`] holds the same state
//! flattened into parallel arenas (the same move `InlineVec` made for
//! `Path.hops`):
//!
//! * all pinglist entries live in one `Vec<PinglistEntry>` arena, each
//!   agent owning a contiguous [`Segment`] of it;
//! * per-entry next-due times live in a parallel `Vec<SimTime>` arena, so
//!   a due-scan is a cache-linear sweep of one agent's segment;
//! * per-agent scalars (cached next wake, ephemeral port cursor,
//!   generation, lifetime ledgers) are plain `Vec`s indexed by the fleet
//!   index.
//!
//! Behaviour is identical to `Agent` (the differential test below drives
//! both through the same script): same sanitize/guard transitions, same
//! deterministic probe phases, same port rotation, same due order
//! (`(due time, entry index)` — the heap's pop order). The sharded
//! orchestrator gives each shard its own `AgentFleet` over its podset's
//! servers, so fleets are mutated thread-locally and need no locks.

use crate::buffer::ResultBuffer;
use crate::config::AgentConfig;
use crate::guard::{GuardDecision, SafetyGuard};
use crate::scheduler::{DueProbe, ProbeScheduler, EPHEMERAL_LO};
use crate::sim::{metrics, ControllerPollOutcome};
use pingmesh_topology::Topology;
use pingmesh_types::{
    AgentCounters, CounterSnapshot, Pinglist, ProbeOutcome, ProbeRecord, ServerId, SimTime,
};
use std::sync::Arc;

/// "No wake pending" sentinel in the `next_wake` arena (scans stay
/// branch-free: the min of an empty segment is simply the sentinel).
const NEVER: SimTime = SimTime(u64::MAX);

/// One agent's slice of the entry/due arenas.
#[derive(Debug, Clone, Copy, Default)]
struct Segment {
    start: u32,
    len: u32,
    cap: u32,
}

/// The flattened agent fleet. Every per-agent operation takes the agent's
/// fleet index (assigned by [`AgentFleet::push_server`], dense from 0).
pub struct AgentFleet {
    topo: Arc<Topology>,
    config: AgentConfig,
    servers: Vec<ServerId>,
    // --- hot state: arenas + per-agent scalars ---
    segs: Vec<Segment>,
    entries: Vec<pingmesh_types::PinglistEntry>,
    due: Vec<SimTime>,
    next_wake: Vec<SimTime>,
    next_port: Vec<u16>,
    generation: Vec<u64>,
    // --- cold per-agent state ---
    guards: Vec<SafetyGuard>,
    buffers: Vec<ResultBuffer>,
    counters: Vec<AgentCounters>,
    sanitized_entries: Vec<u64>,
    probes_observed: Vec<u64>,
    unresolved_probes: Vec<u64>,
    discarded_seen: Vec<u64>,
    // Recycled wake-path scratch (calls within a shard are sequential, so
    // one per fleet suffices): due picks and the output buffer.
    picks_scratch: Vec<(SimTime, u32)>,
    due_scratch: Vec<DueProbe>,
}

impl AgentFleet {
    /// Creates an empty fleet.
    pub fn new(topo: Arc<Topology>, config: AgentConfig) -> Self {
        Self {
            topo,
            config,
            servers: Vec::new(),
            segs: Vec::new(),
            entries: Vec::new(),
            due: Vec::new(),
            next_wake: Vec::new(),
            next_port: Vec::new(),
            generation: Vec::new(),
            guards: Vec::new(),
            buffers: Vec::new(),
            counters: Vec::new(),
            sanitized_entries: Vec::new(),
            probes_observed: Vec::new(),
            unresolved_probes: Vec::new(),
            discarded_seen: Vec::new(),
            picks_scratch: Vec::new(),
            due_scratch: Vec::new(),
        }
    }

    /// Adds an idle agent for `server`; returns its fleet index.
    pub fn push_server(&mut self, server: ServerId) -> usize {
        let idx = self.servers.len();
        self.servers.push(server);
        self.segs.push(Segment::default());
        self.next_wake.push(NEVER);
        self.next_port.push(EPHEMERAL_LO);
        self.generation.push(0);
        self.guards.push(SafetyGuard::new());
        self.buffers.push(ResultBuffer::new(self.config.clone()));
        self.counters.push(AgentCounters::new());
        self.sanitized_entries.push(0);
        self.probes_observed.push(0);
        self.unresolved_probes.push(0);
        self.discarded_seen.push(0);
        idx
    }

    /// Number of agents in the fleet.
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// Whether the fleet is empty.
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty()
    }

    /// The server of agent `idx`.
    pub fn server(&self, idx: usize) -> ServerId {
        self.servers[idx]
    }

    /// Active pinglist generation of agent `idx` (0 = none yet).
    pub fn generation(&self, idx: usize) -> u64 {
        self.generation[idx]
    }

    /// Whether agent `idx` is fail-closed (not probing).
    pub fn is_stopped(&self, idx: usize) -> bool {
        self.guards[idx].is_stopped()
    }

    /// Number of peers agent `idx` currently schedules.
    pub fn peer_count(&self, idx: usize) -> usize {
        self.segs[idx].len as usize
    }

    /// Entries the guard had to clamp over agent `idx`'s lifetime.
    pub fn sanitized_entries(&self, idx: usize) -> u64 {
        self.sanitized_entries[idx]
    }

    fn note_guard_trip(&self, idx: usize, reason: &'static str, now: SimTime) {
        metrics().guard_trips.inc();
        pingmesh_obs::emit_sim!(now; Warn, "agent.guard", "guard_trip",
            "server" => self.servers[idx].0 as u64, "reason" => reason);
    }

    /// Installs a pinglist into agent `idx`'s arena segment: in place when
    /// the segment has capacity, else at the arena tail (the old slice is
    /// abandoned — reinstalls are rare, one per pinglist generation).
    fn install(&mut self, idx: usize, pl: &Pinglist, now: SimTime) {
        let server = self.servers[idx];
        let n = pl.entries.len();
        let seg = &mut self.segs[idx];
        let grow = n as u32 > seg.cap;
        if grow {
            seg.start = self.entries.len() as u32;
            seg.cap = n as u32;
            self.entries.reserve(n);
            self.due.reserve(n);
        }
        seg.len = n as u32;
        let start = seg.start as usize;
        let mut min_due = NEVER;
        for (i, e) in pl.entries.iter().enumerate() {
            let phase = ProbeScheduler::phase_of(server, i, e.interval.as_micros());
            let due = now + pingmesh_types::SimDuration(phase);
            if grow {
                self.entries.push(*e);
                self.due.push(due);
            } else {
                self.entries[start + i] = *e;
                self.due[start + i] = due;
            }
            min_due = min_due.min(due);
        }
        self.next_wake[idx] = min_due;
    }

    fn clear_schedule(&mut self, idx: usize) {
        self.segs[idx].len = 0;
        self.next_wake[idx] = NEVER;
    }

    /// Folds a controller poll result into agent `idx` (same transitions
    /// as [`crate::sim::Agent::on_controller_poll`]).
    pub fn on_controller_poll(&mut self, idx: usize, outcome: ControllerPollOutcome, now: SimTime) {
        let was_stopped = self.guards[idx].is_stopped();
        match outcome {
            ControllerPollOutcome::Pinglist(mut pl) => {
                let clamped = SafetyGuard::sanitize(&mut pl) as u64;
                if clamped > 0 {
                    metrics().sanitized.add(clamped);
                    pingmesh_obs::emit_sim!(now; Warn, "agent.guard", "entries_sanitized",
                        "server" => self.servers[idx].0 as u64, "entries" => clamped);
                }
                self.sanitized_entries[idx] += clamped;
                self.guards[idx].on_pinglist_received();
                if pl.generation != self.generation[idx] {
                    self.generation[idx] = pl.generation;
                    self.install(idx, &pl, now);
                }
            }
            ControllerPollOutcome::NoPinglist => {
                if self.guards[idx].on_empty_controller() == GuardDecision::StopProbing {
                    if !was_stopped {
                        self.note_guard_trip(idx, "no_pinglist", now);
                    }
                    self.clear_schedule(idx);
                    self.generation[idx] = 0;
                }
            }
            ControllerPollOutcome::Unreachable => {
                if self.guards[idx].on_controller_failure() == GuardDecision::StopProbing {
                    if !was_stopped {
                        self.note_guard_trip(idx, "controller_unreachable", now);
                    }
                    self.clear_schedule(idx);
                    self.generation[idx] = 0;
                }
            }
        }
    }

    /// When agent `idx` next needs to act.
    pub fn next_wakeup(&self, idx: usize) -> Option<SimTime> {
        let t = self.next_wake[idx];
        (t != NEVER).then_some(t)
    }

    /// Probes of agent `idx` due at `now`: a linear sweep of the agent's
    /// due segment, emitted in the legacy heap's pop order
    /// `(due time, entry index)` so port assignment matches `Agent`
    /// exactly. Hand the buffer back via [`AgentFleet::recycle_due`].
    pub fn due_probes(&mut self, idx: usize, now: SimTime) -> Vec<DueProbe> {
        let mut out = std::mem::take(&mut self.due_scratch);
        out.clear();
        if self.guards[idx].is_stopped() {
            return out;
        }
        let seg = self.segs[idx];
        let (start, len) = (seg.start as usize, seg.len as usize);
        let mut picks = std::mem::take(&mut self.picks_scratch);
        picks.clear();
        for i in 0..len {
            let t = self.due[start + i];
            if t <= now {
                picks.push((t, i as u32));
            }
        }
        picks.sort_unstable();
        for &(_, i) in picks.iter() {
            let i = i as usize;
            let entry = self.entries[start + i];
            let p = self.next_port[idx];
            self.next_port[idx] = if p == u16::MAX { EPHEMERAL_LO } else { p + 1 };
            self.due[start + i] = now + entry.interval;
            out.push(DueProbe {
                entry_index: i,
                entry,
                src_port: p,
            });
        }
        if !picks.is_empty() {
            let mut min_due = NEVER;
            for i in 0..len {
                min_due = min_due.min(self.due[start + i]);
            }
            self.next_wake[idx] = min_due;
        }
        picks.clear();
        self.picks_scratch = picks;
        out
    }

    /// Returns a drained `due_probes` buffer for reuse on the next wake.
    pub fn recycle_due(&mut self, mut due: Vec<DueProbe>) {
        due.clear();
        if due.capacity() > self.due_scratch.capacity() {
            self.due_scratch = due;
        }
    }

    /// Feeds a probe's network outcome back into agent `idx` (same
    /// bookkeeping as [`crate::sim::Agent::record_outcome`]).
    pub fn record_outcome(
        &mut self,
        idx: usize,
        due: &DueProbe,
        dst: Option<ServerId>,
        outcome: ProbeOutcome,
        now: SimTime,
    ) {
        self.counters[idx].observe(outcome);
        metrics().probes_sent.inc();
        self.probes_observed[idx] += 1;
        let Some(dst) = dst else {
            self.unresolved_probes[idx] += 1;
            return;
        };
        let src = self.servers[idx];
        let s = self.topo.server(src);
        let d = self.topo.server(dst);
        let rec = ProbeRecord {
            ts: now,
            src,
            dst,
            src_pod: s.pod,
            dst_pod: d.pod,
            src_podset: s.podset,
            dst_podset: d.podset,
            src_dc: s.dc,
            dst_dc: d.dc,
            kind: due.entry.kind,
            qos: due.entry.qos,
            src_port: due.src_port,
            dst_port: due.entry.port,
            outcome,
        };
        pingmesh_obs::trace::on_probe(&rec);
        self.buffers[idx].push(rec);
    }

    /// Whether agent `idx` should start an upload now.
    pub fn upload_due(&self, idx: usize, now: SimTime) -> bool {
        self.buffers[idx].upload_due(now)
    }

    /// Starts an upload for agent `idx`; returns the batch.
    pub fn begin_upload(&mut self, idx: usize) -> Option<Vec<ProbeRecord>> {
        let batch = self.buffers[idx].begin_upload();
        if let Some(b) = &batch {
            metrics().uploads_started.inc();
            metrics().upload_batch_size.record_micros(b.len() as u64);
        }
        batch
    }

    /// Reports the uploader's verdict for agent `idx`; returns `true` if
    /// the caller should retry the batch it already holds.
    pub fn on_upload_result(&mut self, idx: usize, ok: bool) -> bool {
        let retry = self.buffers[idx].on_upload_result(ok);
        if !ok && retry {
            metrics().upload_retries.inc();
        }
        self.counters[idx].records_discarded = self.buffers[idx].discarded();
        let newly = self.buffers[idx]
            .discarded()
            .saturating_sub(self.discarded_seen[idx]);
        if newly > 0 {
            self.discarded_seen[idx] = self.buffers[idx].discarded();
            metrics().records_discarded.add(newly);
        }
        retry
    }

    /// Returns a finished upload batch's capacity to agent `idx`.
    pub fn recycle_batch(&mut self, idx: usize, batch: Vec<ProbeRecord>) {
        self.buffers[idx].recycle(batch);
    }

    /// Marks bytes as uploaded for agent `idx`.
    pub fn note_uploaded(&mut self, idx: usize, bytes: u64) {
        self.counters[idx].bytes_uploaded += bytes;
    }

    /// Cumulative records agent `idx` discarded over its lifetime.
    pub fn discarded_total(&self, idx: usize) -> u64 {
        self.buffers[idx].discarded()
    }

    /// Lifetime probe outcomes fed back into agent `idx`.
    pub fn probes_observed(&self, idx: usize) -> u64 {
        self.probes_observed[idx]
    }

    /// Lifetime unresolved (recordless) probes of agent `idx`.
    pub fn unresolved_probes(&self, idx: usize) -> u64 {
        self.unresolved_probes[idx]
    }

    /// Records agent `idx` currently buffers.
    pub fn buffered_records(&self, idx: usize) -> u64 {
        self.buffers[idx].len() as u64
    }

    /// Whether agent `idx` has an upload batch in flight.
    pub fn has_pending_upload(&self, idx: usize) -> bool {
        self.buffers[idx].has_pending()
    }

    /// Live counters of agent `idx`.
    pub fn counters(&self, idx: usize) -> &AgentCounters {
        &self.counters[idx]
    }

    /// PA collection for agent `idx`: snapshot and reset the window.
    pub fn collect_counters(&mut self, idx: usize) -> CounterSnapshot {
        let snap = self.counters[idx].snapshot();
        self.counters[idx].reset_window();
        snap
    }

    /// A read-only single-agent view (the accessor surface `Agent` had,
    /// minus `&mut` operations — what oracles and watchdogs consume).
    pub fn view(&self, idx: usize) -> AgentView<'_> {
        AgentView { fleet: self, idx }
    }
}

/// Read-only view of one agent in an [`AgentFleet`], method-compatible
/// with the accessor surface of [`crate::sim::Agent`] so fleet-wide
/// invariant checks (`orch.agent(s).probes_observed()` …) are agnostic to
/// the storage layout.
#[derive(Clone, Copy)]
pub struct AgentView<'a> {
    fleet: &'a AgentFleet,
    idx: usize,
}

impl AgentView<'_> {
    /// The server this agent runs on.
    pub fn server(&self) -> ServerId {
        self.fleet.server(self.idx)
    }

    /// Active pinglist generation (0 = none yet).
    pub fn generation(&self) -> u64 {
        self.fleet.generation(self.idx)
    }

    /// Whether the agent is fail-closed (not probing).
    pub fn is_stopped(&self) -> bool {
        self.fleet.is_stopped(self.idx)
    }

    /// Number of peers currently scheduled.
    pub fn peer_count(&self) -> usize {
        self.fleet.peer_count(self.idx)
    }

    /// Entries the guard had to clamp over this agent's lifetime.
    pub fn sanitized_entries(&self) -> u64 {
        self.fleet.sanitized_entries(self.idx)
    }

    /// When the agent next needs to act.
    pub fn next_wakeup(&self) -> Option<SimTime> {
        self.fleet.next_wakeup(self.idx)
    }

    /// Lifetime probe outcomes fed back.
    pub fn probes_observed(&self) -> u64 {
        self.fleet.probes_observed(self.idx)
    }

    /// Lifetime unresolved (recordless) probes.
    pub fn unresolved_probes(&self) -> u64 {
        self.fleet.unresolved_probes(self.idx)
    }

    /// Records currently buffered.
    pub fn buffered_records(&self) -> u64 {
        self.fleet.buffered_records(self.idx)
    }

    /// Whether an upload batch is in flight.
    pub fn has_pending_upload(&self) -> bool {
        self.fleet.has_pending_upload(self.idx)
    }

    /// Cumulative records discarded.
    pub fn discarded_total(&self) -> u64 {
        self.fleet.discarded_total(self.idx)
    }

    /// Live counters.
    pub fn counters(&self) -> &AgentCounters {
        self.fleet.counters(self.idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Agent;
    use pingmesh_topology::TopologySpec;
    use pingmesh_types::{PingTarget, PinglistEntry, ProbeKind, QosClass, SimDuration};
    use std::net::Ipv4Addr;

    fn topo() -> Arc<Topology> {
        Arc::new(Topology::build(TopologySpec::single_tiny()).unwrap())
    }

    fn pinglist(server: ServerId, generation: u64, n: usize) -> Pinglist {
        Pinglist {
            server,
            generation,
            entries: (0..n)
                .map(|i| PinglistEntry {
                    target: PingTarget::Server {
                        id: ServerId(1 + i as u32),
                        ip: Ipv4Addr::new(10, 0, 0, 1 + i as u8),
                    },
                    port: 8100,
                    kind: ProbeKind::TcpSyn,
                    qos: QosClass::High,
                    interval: SimDuration::from_secs(10 + i as u64),
                })
                .collect(),
        }
    }

    /// The load-bearing test: a fleet agent and a legacy `Agent` driven
    /// through the same script must agree on everything observable —
    /// wake times, due probes (order and ports), counters, ledgers.
    #[test]
    fn fleet_agent_matches_legacy_agent_step_for_step() {
        let topo = topo();
        let mut legacy = Agent::new(ServerId(0), topo.clone(), AgentConfig::default());
        let mut fleet = AgentFleet::new(topo, AgentConfig::default());
        let idx = fleet.push_server(ServerId(0));

        let polls = [
            ControllerPollOutcome::Pinglist(pinglist(ServerId(0), 1, 5)),
            ControllerPollOutcome::Unreachable,
            ControllerPollOutcome::Pinglist(pinglist(ServerId(0), 1, 5)), // same gen: no reinstall
            ControllerPollOutcome::Pinglist(pinglist(ServerId(0), 2, 3)), // shrink in place
            ControllerPollOutcome::Pinglist(pinglist(ServerId(0), 3, 7)), // grow to tail
        ];
        let mut now = SimTime::ZERO;
        for poll in polls {
            legacy.on_controller_poll(poll.clone(), now);
            fleet.on_controller_poll(idx, poll, now);
            assert_eq!(legacy.generation(), fleet.generation(idx));
            assert_eq!(legacy.peer_count(), fleet.peer_count(idx));
            assert_eq!(legacy.next_wakeup(), fleet.next_wakeup(idx));

            // Run a few wake rounds and compare the due streams.
            for _ in 0..4 {
                let Some(t) = legacy.next_wakeup() else { break };
                assert_eq!(fleet.next_wakeup(idx), Some(t));
                now = t;
                let dl = legacy.due_probes(now);
                let df = fleet.due_probes(idx, now);
                assert_eq!(dl, df, "due stream diverged at {now:?}");
                for d in &dl {
                    let outcome = if d.entry_index % 3 == 0 {
                        ProbeOutcome::Timeout
                    } else {
                        ProbeOutcome::Success {
                            rtt: SimDuration::from_micros(300),
                        }
                    };
                    let dst = (d.entry_index % 4 != 1).then_some(ServerId(1));
                    legacy.record_outcome(d, dst, outcome, now);
                    fleet.record_outcome(idx, d, dst, outcome, now);
                }
                legacy.recycle_due(dl);
                fleet.recycle_due(df);
            }
            assert_eq!(legacy.probes_observed(), fleet.probes_observed(idx));
            assert_eq!(legacy.unresolved_probes(), fleet.unresolved_probes(idx));
            assert_eq!(legacy.buffered_records(), fleet.buffered_records(idx));
            assert_eq!(legacy.counters(), fleet.counters(idx));
        }

        // Upload path parity.
        assert_eq!(
            legacy.upload_due(now + SimDuration::from_secs(3600)),
            fleet.upload_due(idx, now + SimDuration::from_secs(3600))
        );
        let bl = legacy.begin_upload();
        let bf = fleet.begin_upload(idx);
        assert_eq!(bl, bf);
        if let (Some(bl), Some(bf)) = (bl, bf) {
            assert_eq!(
                legacy.on_upload_result(false),
                fleet.on_upload_result(idx, false)
            );
            assert_eq!(
                legacy.on_upload_result(true),
                fleet.on_upload_result(idx, true)
            );
            legacy.recycle_batch(bl);
            fleet.recycle_batch(idx, bf);
        }
        assert_eq!(legacy.has_pending_upload(), fleet.has_pending_upload(idx));
        assert_eq!(legacy.discarded_total(), fleet.discarded_total(idx));
        assert_eq!(legacy.collect_counters(), fleet.collect_counters(idx));
    }

    #[test]
    fn guard_transitions_clear_schedule() {
        let mut fleet = AgentFleet::new(topo(), AgentConfig::default());
        let idx = fleet.push_server(ServerId(0));
        fleet.on_controller_poll(
            idx,
            ControllerPollOutcome::Pinglist(pinglist(ServerId(0), 1, 3)),
            SimTime::ZERO,
        );
        assert_eq!(fleet.peer_count(idx), 3);
        fleet.on_controller_poll(idx, ControllerPollOutcome::NoPinglist, SimTime(1));
        assert!(fleet.is_stopped(idx));
        assert_eq!(fleet.peer_count(idx), 0);
        assert_eq!(fleet.next_wakeup(idx), None);
        assert!(fleet.due_probes(idx, SimTime(100_000_000)).is_empty());
        // Recovery reinstalls (new generation) and resumes.
        fleet.on_controller_poll(
            idx,
            ControllerPollOutcome::Pinglist(pinglist(ServerId(0), 4, 2)),
            SimTime(2),
        );
        assert!(!fleet.is_stopped(idx));
        assert_eq!(fleet.peer_count(idx), 2);
        assert!(fleet.next_wakeup(idx).is_some());
    }

    #[test]
    fn segments_grow_and_reuse_without_cross_talk() {
        let mut fleet = AgentFleet::new(topo(), AgentConfig::default());
        let a = fleet.push_server(ServerId(0));
        let b = fleet.push_server(ServerId(5));
        fleet.on_controller_poll(
            a,
            ControllerPollOutcome::Pinglist(pinglist(ServerId(0), 1, 4)),
            SimTime::ZERO,
        );
        fleet.on_controller_poll(
            b,
            ControllerPollOutcome::Pinglist(pinglist(ServerId(5), 1, 2)),
            SimTime::ZERO,
        );
        // Growing a's segment relocates it to the arena tail; b unaffected.
        fleet.on_controller_poll(
            a,
            ControllerPollOutcome::Pinglist(pinglist(ServerId(0), 2, 9)),
            SimTime(50),
        );
        assert_eq!(fleet.peer_count(a), 9);
        assert_eq!(fleet.peer_count(b), 2);
        let tb = fleet.next_wakeup(b).unwrap();
        let due_b = fleet.due_probes(b, tb);
        assert!(!due_b.is_empty());
        assert!(due_b.iter().all(|d| d.entry_index < 2));
    }
}
