//! Re-export of the shared backoff policy.
//!
//! The implementation lives in [`pingmesh_types::backoff`] so that the
//! durable store (crates/dsa) can retry WAL writes with the same seeded,
//! jittered policy without depending on realmode. This module keeps the
//! historical `realmode::Backoff` path (and the crate-internal RNG
//! helpers used by the chaos harness) stable.

pub use pingmesh_types::backoff::Backoff;
pub(crate) use pingmesh_types::backoff::{next_u64, seed_state};
