//! Capped exponential backoff with deterministic, seeded jitter.
//!
//! Every retry loop in realmode (pinglist polls, record uploads) spaces
//! its attempts with this policy instead of retrying back-to-back. The
//! jitter matters at fleet scale: when a collector or controller comes
//! back after an outage, thousands of agents would otherwise retry in the
//! same millisecond and knock it over again (the classic thundering
//! herd). Each agent derives its seed from its server id, so the fleet
//! decorrelates while any single agent's behaviour stays exactly
//! reproducible — a requirement for the deterministic chaos drill.
//!
//! Implemented on `std` only (one xorshift64* generator), per the
//! workspace's no-crates.io constraint.

use std::time::Duration;

/// Folds an arbitrary seed into a valid xorshift64* state (never zero).
pub(crate) fn seed_state(seed: u64) -> u64 {
    seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1
}

/// Advances an xorshift64* state, returning the next pseudo-random u64.
pub(crate) fn next_u64(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Backoff policy: delays grow `base * 2^attempt`, capped at `cap`, and
/// each delay is "full-jittered" — drawn uniformly from
/// `[delay/2, delay]` — so retries spread out instead of synchronizing.
#[derive(Debug, Clone)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    attempt: u32,
    rng: u64,
}

impl Backoff {
    /// A policy starting at `base`, never exceeding `cap`, jittered by a
    /// generator seeded with `seed` (same seed ⇒ same delay sequence).
    pub fn new(base: Duration, cap: Duration, seed: u64) -> Self {
        Self {
            base,
            cap,
            attempt: 0,
            rng: seed_state(seed),
        }
    }

    /// Default control-plane policy: 50 ms base, 2 s cap.
    pub fn control_plane(seed: u64) -> Self {
        Self::new(Duration::from_millis(50), Duration::from_secs(2), seed)
    }

    /// Number of delays handed out since creation or the last
    /// [`Backoff::reset`].
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// The next delay to sleep before retrying: exponential in the number
    /// of attempts so far, capped, jittered into `[delay/2, delay]`.
    pub fn next_delay(&mut self) -> Duration {
        let exp = self.attempt.min(20); // 2^20 * base saturates any cap we use
        self.attempt = self.attempt.saturating_add(1);
        let uncapped = self
            .base
            .checked_mul(1u32 << exp)
            .unwrap_or(Duration::MAX)
            .min(self.cap);
        let micros = uncapped.as_micros() as u64;
        if micros == 0 {
            return Duration::ZERO;
        }
        let half = micros / 2;
        let jittered = half + next_u64(&mut self.rng) % (micros - half + 1);
        Duration::from_micros(jittered)
    }

    /// Re-arms the policy after a success: the next failure starts back
    /// at the base delay.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = Backoff::control_plane(42);
        let mut b = Backoff::control_plane(42);
        let sa: Vec<_> = (0..16).map(|_| a.next_delay()).collect();
        let sb: Vec<_> = (0..16).map(|_| b.next_delay()).collect();
        assert_eq!(sa, sb, "fixed seed must reproduce the exact delays");
    }

    #[test]
    fn different_seeds_decorrelate() {
        let mut a = Backoff::control_plane(1);
        let mut b = Backoff::control_plane(2);
        let sa: Vec<_> = (0..8).map(|_| a.next_delay()).collect();
        let sb: Vec<_> = (0..8).map(|_| b.next_delay()).collect();
        assert_ne!(sa, sb, "different agents must not retry in lockstep");
    }

    #[test]
    fn delays_grow_then_cap() {
        let mut b = Backoff::new(Duration::from_millis(10), Duration::from_millis(500), 7);
        let mut prev_ceiling = Duration::ZERO;
        for attempt in 0..12 {
            let d = b.next_delay();
            let ceiling = Duration::from_millis(10)
                .checked_mul(1 << attempt.min(20))
                .unwrap_or(Duration::MAX)
                .min(Duration::from_millis(500));
            assert!(d <= ceiling, "attempt {attempt}: {d:?} > {ceiling:?}");
            assert!(
                d >= ceiling / 2,
                "attempt {attempt}: {d:?} below jitter floor {:?}",
                ceiling / 2
            );
            assert!(ceiling >= prev_ceiling, "ceiling must be monotone");
            prev_ceiling = ceiling;
        }
        // Deep into the sequence the cap is in force.
        assert!(b.next_delay() <= Duration::from_millis(500));
    }

    #[test]
    fn reset_rearms_the_base_delay() {
        let mut b = Backoff::new(Duration::from_millis(10), Duration::from_secs(10), 3);
        for _ in 0..6 {
            b.next_delay();
        }
        assert_eq!(b.attempts(), 6);
        b.reset();
        assert_eq!(b.attempts(), 0);
        // First post-reset delay is back in the base bracket.
        assert!(b.next_delay() <= Duration::from_millis(10));
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut b = Backoff::control_plane(0);
        // Must not get stuck at zero or panic.
        let d1 = b.next_delay();
        let d2 = b.next_delay();
        assert!(d1 > Duration::ZERO && d2 > Duration::ZERO);
    }
}
