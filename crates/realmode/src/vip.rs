//! Real-socket controller VIP: replica round-robin with failover.
//!
//! The paper's controller is "a set of servers behind a single VIP"
//! (§3.3.2): the SLB spreads agent requests over the replicas and pulls
//! dead ones out of rotation. Simulation mode models this with
//! `pingmesh_controller::ControllerCluster`; this is the real-socket
//! twin. An agent configured with N replica addresses round-robins its
//! polls across them and, when the picked replica times out or refuses,
//! fails over to the next — so the cluster answers as long as one
//! replica is alive, and no single replica outage ever fail-closes the
//! fleet.
//!
//! Every replica attempt is bounded by the caller's per-call deadline,
//! so a poll through the VIP takes at most `replicas × deadline` even
//! with every replica stalled.

use pingmesh_types::{Pinglist, PingmeshError, ServerId};
use std::net::SocketAddr;
use std::time::Duration;

/// The VIP's spreading policy, factored out of [`ControllerVip`] so any
/// replicated endpoint (controller replicas, the serve tier's query
/// replicas) shares one rotation: each call starts one slot after the
/// last and walks every replica once, so load spreads evenly and a
/// caller that fails over always has a full failover order.
#[derive(Debug, Clone)]
pub struct RoundRobin {
    len: usize,
    cursor: usize,
}

impl RoundRobin {
    /// A rotation over `len` replicas (at least one required).
    pub fn new(len: usize) -> Self {
        assert!(len > 0, "a VIP needs at least one replica");
        Self { len, cursor: 0 }
    }

    /// Number of replicas in rotation.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Always false: an empty rotation cannot be constructed.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Advances the cursor and returns this call's visit order: the
    /// picked replica first, then every other replica as failovers.
    pub fn order(&mut self) -> impl Iterator<Item = usize> {
        let (n, start) = (self.len, self.cursor);
        self.cursor = (self.cursor + 1) % n;
        (0..n).map(move |k| (start + k) % n)
    }

    /// Advances the cursor and returns just the picked replica.
    pub fn pick(&mut self) -> usize {
        self.order().next().expect("rotation is never empty")
    }
}

/// A set of controller replica addresses behind one logical VIP.
#[derive(Debug, Clone)]
pub struct ControllerVip {
    replicas: Vec<SocketAddr>,
    rotation: RoundRobin,
}

impl ControllerVip {
    /// A VIP over `replicas` (at least one address required).
    pub fn new(replicas: Vec<SocketAddr>) -> Self {
        let rotation = RoundRobin::new(replicas.len());
        Self { replicas, rotation }
    }

    /// The single-replica (unreplicated) case.
    pub fn single(addr: SocketAddr) -> Self {
        Self::new(vec![addr])
    }

    /// Replica addresses behind this VIP.
    pub fn replicas(&self) -> &[SocketAddr] {
        &self.replicas
    }

    /// Fetches `server`'s pinglist through the VIP: starts at the
    /// round-robin cursor and fails over replica by replica. Returns the
    /// first replica's answer that arrives within `deadline`; errors only
    /// when every replica failed (with the last error). Timeouts and
    /// failovers are counted in the global metrics registry.
    pub async fn fetch_pinglist(
        &mut self,
        server: ServerId,
        deadline: Duration,
    ) -> Result<Option<Pinglist>, PingmeshError> {
        let n = self.replicas.len();
        let registry = pingmesh_obs::registry();
        let mut last_err = None;
        for (k, slot) in self.rotation.order().enumerate() {
            let addr = self.replicas[slot];
            match pingmesh_controller::fetch_pinglist_with(addr, server, deadline).await {
                Ok(r) => {
                    if k > 0 {
                        registry.counter("pingmesh_realmode_failovers_total").inc();
                        pingmesh_obs::emit!(Info, "realmode.vip", "failover",
                            "skipped" => k as u64);
                    }
                    return Ok(r);
                }
                Err(e) => {
                    if matches!(e, PingmeshError::Timeout(_)) {
                        registry.counter("pingmesh_realmode_timeouts_total").inc();
                    }
                    last_err = Some(e);
                }
            }
        }
        pingmesh_obs::emit!(Warn, "realmode.vip", "all_replicas_down",
            "replicas" => n as u64);
        Err(last_err.expect("at least one replica attempted"))
    }
}

impl From<SocketAddr> for ControllerVip {
    fn from(addr: SocketAddr) -> Self {
        Self::single(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pingmesh_controller::{GeneratorConfig, PinglistGenerator, WebState};
    use pingmesh_topology::{Topology, TopologySpec};
    use std::sync::Arc;
    use tokio::net::TcpListener;

    async fn live_replica() -> SocketAddr {
        let topo = Topology::build(TopologySpec::single_tiny()).unwrap();
        let set = PinglistGenerator::new(GeneratorConfig::default()).generate_all(&topo, 1);
        let state = Arc::new(WebState::new());
        state.set_pinglists(set);
        let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().unwrap();
        tokio::spawn(pingmesh_controller::serve(listener, state));
        addr
    }

    fn dead_addr() -> SocketAddr {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap()
        // listener dropped: nothing accepts here
    }

    #[test]
    fn round_robin_spreads_evenly_and_covers_all_on_failover() {
        let mut rr = RoundRobin::new(3);
        // Successive picks rotate through every slot.
        let picks: Vec<usize> = (0..6).map(|_| rr.pick()).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
        // A failover walk visits every replica exactly once, starting at
        // the rotated cursor.
        let order: Vec<usize> = rr.order().collect();
        assert_eq!(order, vec![0, 1, 2]);
        let order: Vec<usize> = rr.order().collect();
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[tokio::test]
    async fn single_replica_round_trips() {
        let mut vip = ControllerVip::single(live_replica().await);
        let pl = vip
            .fetch_pinglist(ServerId(0), Duration::from_secs(5))
            .await
            .unwrap()
            .unwrap();
        assert!(!pl.entries.is_empty());
    }

    #[tokio::test]
    async fn fails_over_past_a_dead_replica() {
        let live = live_replica().await;
        let mut vip = ControllerVip::new(vec![dead_addr(), live]);
        let before = pingmesh_obs::registry()
            .counter("pingmesh_realmode_failovers_total")
            .get();
        // Whatever the cursor position, every fetch succeeds.
        for _ in 0..4 {
            let got = vip
                .fetch_pinglist(ServerId(1), Duration::from_secs(5))
                .await
                .unwrap();
            assert!(got.is_some());
        }
        let after = pingmesh_obs::registry()
            .counter("pingmesh_realmode_failovers_total")
            .get();
        assert!(
            after > before,
            "round-robin must have landed on the dead replica at least once"
        );
    }

    #[tokio::test]
    async fn all_replicas_dead_errors_within_bounded_time() {
        let mut vip = ControllerVip::new(vec![dead_addr(), dead_addr()]);
        let t0 = std::time::Instant::now();
        let err = vip
            .fetch_pinglist(ServerId(0), Duration::from_millis(300))
            .await
            .unwrap_err();
        assert!(
            matches!(
                err,
                PingmeshError::ControllerUnavailable(_) | PingmeshError::Timeout(_)
            ),
            "{err}"
        );
        // 2 replicas × 300 ms deadline, plus slack.
        assert!(t0.elapsed() < Duration::from_secs(3), "{:?}", t0.elapsed());
    }
}
