//! A miniature Pingmesh deployment on localhost, exchanging real packets.
//!
//! [`LocalCluster::start`] spins up, over actual TCP sockets:
//!
//! * one or more controller web-service replicas with generated
//!   pinglists (behind a client-side VIP, per [`ClusterOptions`]),
//! * the record collector,
//! * one TCP-echo responder and one HTTP responder per topology server
//!   (registered in the shared [`PeerDirectory`]), and
//! * hands out fully wired [`RealAgent`]s on demand.
//!
//! With [`ClusterOptions::chaos`] every control-plane endpoint sits
//! behind a [`ChaosProxy`], so a drill can kill, stall, degrade, and
//! restore the controller replicas and the collector independently at
//! runtime — the real-socket twin of the simulator's down-windows.

use crate::agent_loop::{RealAgent, RealAgentConfig};
use crate::chaos::{ChaosHandle, ChaosProxy};
use crate::collector::{serve_collector, Collector};
use crate::directory::{PeerDirectory, PeerEndpoints};
use pingmesh_agent::real::{serve_echo, serve_http};
use pingmesh_controller::{serve, GeneratorConfig, PinglistGenerator, WebState};
use pingmesh_dsa::ExpectedPairs;
use pingmesh_serve::{serve_query, QueryTier};
use pingmesh_topology::{Topology, TopologySpec};
use pingmesh_types::ServerId;
use std::net::SocketAddr;
use std::sync::Arc;
use tokio::net::TcpListener;

/// Deployment shape knobs for [`LocalCluster::start_with`].
#[derive(Debug, Clone)]
pub struct ClusterOptions {
    /// Controller web-service replicas behind the (client-side) VIP.
    pub controller_replicas: usize,
    /// Query-tier replicas over the collector's store (0 = no serve
    /// tier). Each replica owns its result cache; clients spread load
    /// across them with the same [`RoundRobin`] rotation as the
    /// controller VIP.
    ///
    /// [`RoundRobin`]: crate::vip::RoundRobin
    pub serve_replicas: usize,
    /// Put every controller replica and the collector behind a
    /// [`ChaosProxy`] so faults can be injected at runtime.
    pub chaos: bool,
    /// Seed driving every chaos proxy's probabilistic decisions.
    pub seed: u64,
}

impl Default for ClusterOptions {
    fn default() -> Self {
        Self {
            controller_replicas: 1,
            serve_replicas: 0,
            chaos: false,
            seed: 0,
        }
    }
}

/// Handles to a running localhost deployment.
pub struct LocalCluster {
    topo: Arc<Topology>,
    generator_config: GeneratorConfig,
    controller_addrs: Vec<SocketAddr>,
    controller_states: Vec<Arc<WebState>>,
    controller_proxies: Vec<ChaosProxy>,
    collector_addr: SocketAddr,
    collector: Collector,
    collector_proxy: Option<ChaosProxy>,
    serve_addrs: Vec<SocketAddr>,
    serve_tiers: Vec<QueryTier>,
    directory: PeerDirectory,
}

impl LocalCluster {
    /// Builds the topology, generates pinglists, starts every service and
    /// responder with default options (one replica, no chaos). All tasks
    /// are detached; they die with the runtime.
    pub async fn start(spec: TopologySpec, generator_config: GeneratorConfig) -> Self {
        Self::start_with(spec, generator_config, ClusterOptions::default()).await
    }

    /// [`LocalCluster::start`] with explicit [`ClusterOptions`].
    pub async fn start_with(
        spec: TopologySpec,
        generator_config: GeneratorConfig,
        options: ClusterOptions,
    ) -> Self {
        assert!(options.controller_replicas >= 1, "need ≥1 replica");
        let topo = Arc::new(Topology::build(spec).expect("valid topology"));

        // Controller replicas. Each replica is stateless and serves an
        // identically generated pinglist set (the generator is
        // deterministic for a given topology), mirroring the paper's
        // "set of servers behind one VIP".
        let generator = PinglistGenerator::new(generator_config.clone());
        let mut controller_addrs = Vec::new();
        let mut controller_states = Vec::new();
        let mut controller_proxies = Vec::new();
        for i in 0..options.controller_replicas {
            let state = Arc::new(WebState::new());
            state.set_pinglists(generator.generate_all(&topo, 1));
            let listener = TcpListener::bind("127.0.0.1:0").await.expect("bind");
            let upstream = listener.local_addr().expect("addr");
            tokio::spawn(serve(listener, state.clone()));
            let agent_facing = if options.chaos {
                let proxy = ChaosProxy::start(upstream, options.seed.wrapping_add(i as u64))
                    .await
                    .expect("proxy");
                let addr = proxy.addr();
                controller_proxies.push(proxy);
                addr
            } else {
                upstream
            };
            controller_addrs.push(agent_facing);
            controller_states.push(state);
        }

        // Collector.
        let collector = Collector::new();
        let listener = TcpListener::bind("127.0.0.1:0").await.expect("bind");
        let upstream = listener.local_addr().expect("addr");
        tokio::spawn(serve_collector(listener, collector.clone()));
        let (collector_addr, collector_proxy) = if options.chaos {
            let proxy = ChaosProxy::start(upstream, options.seed.wrapping_add(0x1000))
                .await
                .expect("proxy");
            (proxy.addr(), Some(proxy))
        } else {
            (upstream, None)
        };

        // Query-tier replicas: each shares the collector's store but
        // owns a private result cache — the paper's "visualization
        // web service" front-end, scaled out behind the same
        // round-robin rotation as the controller VIP.
        let mut serve_addrs = Vec::new();
        let mut serve_tiers = Vec::new();
        for _ in 0..options.serve_replicas {
            let tier = QueryTier::new(Arc::clone(collector.store()));
            let listener = TcpListener::bind("127.0.0.1:0").await.expect("bind");
            serve_addrs.push(listener.local_addr().expect("addr"));
            tokio::spawn(serve_query(listener, tier.clone()));
            serve_tiers.push(tier);
        }

        // Responders for every server.
        let directory = PeerDirectory::new();
        for server in topo.servers() {
            let echo = TcpListener::bind("127.0.0.1:0").await.expect("bind");
            let echo_addr = echo.local_addr().expect("addr");
            tokio::spawn(serve_echo(echo));
            let http = TcpListener::bind("127.0.0.1:0").await.expect("bind");
            let http_addr = http.local_addr().expect("addr");
            tokio::spawn(serve_http(http));
            directory.register(
                server,
                PeerEndpoints {
                    echo: echo_addr,
                    http: http_addr,
                },
            );
        }

        Self {
            topo,
            generator_config,
            controller_addrs,
            controller_states,
            controller_proxies,
            collector_addr,
            collector,
            collector_proxy,
            serve_addrs,
            serve_tiers,
            directory,
        }
    }

    /// The deployment topology.
    pub fn topology(&self) -> &Arc<Topology> {
        &self.topo
    }

    /// The first controller replica's agent-facing address.
    pub fn controller_addr(&self) -> SocketAddr {
        self.controller_addrs[0]
    }

    /// Agent-facing addresses of every controller replica.
    pub fn controller_addrs(&self) -> &[SocketAddr] {
        &self.controller_addrs
    }

    /// The first replica's state handle (swap/clear pinglists at runtime).
    pub fn controller_state(&self) -> &Arc<WebState> {
        &self.controller_states[0]
    }

    /// State handle of replica `i`.
    pub fn controller_state_of(&self, i: usize) -> &Arc<WebState> {
        &self.controller_states[i]
    }

    /// Chaos control for controller replica `i` (chaos mode only).
    pub fn controller_chaos(&self, i: usize) -> &ChaosHandle {
        self.controller_proxies[i].handle()
    }

    /// The collector's agent-facing address.
    pub fn collector_addr(&self) -> SocketAddr {
        self.collector_addr
    }

    /// The collector handle (stats, outage injection, store access).
    pub fn collector(&self) -> &Collector {
        &self.collector
    }

    /// Chaos control for the collector path (chaos mode only).
    pub fn collector_chaos(&self) -> &ChaosHandle {
        self.collector_proxy
            .as_ref()
            .expect("cluster started without chaos")
            .handle()
    }

    /// Addresses of every query-tier replica (empty unless
    /// [`ClusterOptions::serve_replicas`] > 0).
    pub fn serve_addrs(&self) -> &[SocketAddr] {
        &self.serve_addrs
    }

    /// Query-tier replica `i`'s handle (cache/stats inspection).
    pub fn serve_tier(&self, i: usize) -> &QueryTier {
        &self.serve_tiers[i]
    }

    /// The shared peer directory.
    pub fn directory(&self) -> &PeerDirectory {
        &self.directory
    }

    /// The pod-pair coverage expectation for a deployment where only
    /// `servers` run agents. The generator is deterministic for a given
    /// topology and config, so this regenerates the same pinglists the
    /// controller replicas serve and keeps only the named sources —
    /// install the result with [`Collector::set_expected_pairs`] to arm
    /// the coverage SLO.
    ///
    /// [`Collector::set_expected_pairs`]: crate::collector::Collector::set_expected_pairs
    pub fn expected_pairs_for(&self, servers: &[ServerId]) -> ExpectedPairs {
        let set = PinglistGenerator::new(self.generator_config.clone()).generate_all(&self.topo, 1);
        let lists: Vec<_> = set
            .lists
            .into_iter()
            .filter(|pl| servers.contains(&pl.server))
            .collect();
        ExpectedPairs::from_pinglists(&self.topo, &lists)
    }

    /// A fully wired agent for one of the topology's servers, configured
    /// with every controller replica behind its VIP.
    pub fn agent(&self, server: ServerId) -> RealAgent {
        RealAgent::new(
            RealAgentConfig::with_controllers(
                server,
                self.controller_addrs.clone(),
                self.collector_addr,
            ),
            self.topo.clone(),
            self.directory.clone(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[tokio::test]
    async fn cluster_starts_all_services() {
        let cluster =
            LocalCluster::start(TopologySpec::single_tiny(), GeneratorConfig::default()).await;
        assert_eq!(cluster.directory().len(), cluster.topology().server_count());
        // The controller serves a pinglist over real HTTP.
        let pl = pingmesh_controller::fetch_pinglist(cluster.controller_addr(), ServerId(0))
            .await
            .unwrap()
            .unwrap();
        assert!(!pl.entries.is_empty());
        // The collector starts empty.
        assert_eq!(cluster.collector().stats().records, 0);
    }

    #[tokio::test]
    async fn multiple_agents_share_the_deployment() {
        let cluster =
            LocalCluster::start(TopologySpec::single_tiny(), GeneratorConfig::default()).await;
        let mut total = 0u64;
        for s in [ServerId(0), ServerId(5), ServerId(9)] {
            let mut a = cluster.agent(s);
            a.poll_controller().await;
            total += a.probe_round_once().await as u64;
            a.flush(true).await;
        }
        assert_eq!(cluster.collector().stats().records, total);
        assert!(total > 0);
    }

    #[tokio::test]
    async fn serve_replicas_answer_queries_over_the_collected_store() {
        let cluster = LocalCluster::start_with(
            TopologySpec::single_tiny(),
            GeneratorConfig::default(),
            ClusterOptions {
                serve_replicas: 2,
                ..ClusterOptions::default()
            },
        )
        .await;
        assert_eq!(cluster.serve_addrs().len(), 2);
        // Probe and upload so the store has content.
        let mut a = cluster.agent(ServerId(0));
        a.poll_controller().await;
        assert!(a.probe_round_once().await > 0);
        a.flush(true).await;
        // Every replica answers the live-status query over real sockets,
        // spreading connections with the shared round-robin rotation.
        let mut rr = crate::vip::RoundRobin::new(cluster.serve_addrs().len());
        for _ in 0..4 {
            let addr = cluster.serve_addrs()[rr.pick()];
            let mut stream = tokio::net::TcpStream::connect(addr).await.unwrap();
            pingmesh_httpx::write_request(
                &mut stream,
                &pingmesh_httpx::Request::get("/api/windows"),
            )
            .await
            .unwrap();
            let resp = pingmesh_httpx::read_response(&mut stream).await.unwrap();
            assert_eq!(resp.status, 200);
            let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
            assert_eq!(v["empty"], serde_json::Value::Bool(false));
        }
        // Both replicas saw traffic and can be inspected via their tiers.
        assert!(cluster.serve_tier(0).cache().is_empty());
        assert!(cluster.serve_tier(1).cache().is_empty());
    }

    #[tokio::test]
    async fn replicated_chaos_cluster_serves_through_proxies() {
        let cluster = LocalCluster::start_with(
            TopologySpec::single_tiny(),
            GeneratorConfig::default(),
            ClusterOptions {
                controller_replicas: 2,
                chaos: true,
                seed: 11,
                ..ClusterOptions::default()
            },
        )
        .await;
        assert_eq!(cluster.controller_addrs().len(), 2);
        // Both replicas answer through their proxies.
        for &addr in cluster.controller_addrs() {
            let pl = pingmesh_controller::fetch_pinglist(addr, ServerId(0))
                .await
                .unwrap()
                .unwrap();
            assert!(!pl.entries.is_empty());
        }
        // The proxies counted the traffic.
        assert!(cluster.controller_chaos(0).connections() > 0);
        assert!(cluster.controller_chaos(1).connections() > 0);
        // An agent probes and uploads through the collector proxy.
        let mut a = cluster.agent(ServerId(1));
        a.poll_controller().await;
        assert!(a.probe_round_once().await > 0);
        a.flush(true).await;
        assert!(cluster.collector().stats().records > 0);
        assert!(cluster.collector_chaos().connections() > 0);
    }
}
