//! A miniature Pingmesh deployment on localhost, exchanging real packets.
//!
//! [`LocalCluster::start`] spins up, over actual TCP sockets:
//!
//! * the controller web service with generated pinglists,
//! * the record collector,
//! * one TCP-echo responder and one HTTP responder per topology server
//!   (registered in the shared [`PeerDirectory`]), and
//! * hands out fully wired [`RealAgent`]s on demand.

use crate::agent_loop::{RealAgent, RealAgentConfig};
use crate::collector::{serve_collector, Collector};
use crate::directory::{PeerDirectory, PeerEndpoints};
use pingmesh_agent::real::{serve_echo, serve_http};
use pingmesh_controller::{serve, GeneratorConfig, PinglistGenerator, WebState};
use pingmesh_topology::{Topology, TopologySpec};
use pingmesh_types::ServerId;
use std::net::SocketAddr;
use std::sync::Arc;
use tokio::net::TcpListener;

/// Handles to a running localhost deployment.
pub struct LocalCluster {
    topo: Arc<Topology>,
    controller_addr: SocketAddr,
    controller_state: Arc<WebState>,
    collector_addr: SocketAddr,
    collector: Collector,
    directory: PeerDirectory,
}

impl LocalCluster {
    /// Builds the topology, generates pinglists, starts every service and
    /// responder. All tasks are detached; they die with the runtime.
    pub async fn start(spec: TopologySpec, generator_config: GeneratorConfig) -> Self {
        let topo = Arc::new(Topology::build(spec).expect("valid topology"));

        // Controller.
        let generator = PinglistGenerator::new(generator_config);
        let controller_state = Arc::new(WebState::new());
        controller_state.set_pinglists(generator.generate_all(&topo, 1));
        let listener = TcpListener::bind("127.0.0.1:0").await.expect("bind");
        let controller_addr = listener.local_addr().expect("addr");
        tokio::spawn(serve(listener, controller_state.clone()));

        // Collector.
        let collector = Collector::new();
        let listener = TcpListener::bind("127.0.0.1:0").await.expect("bind");
        let collector_addr = listener.local_addr().expect("addr");
        tokio::spawn(serve_collector(listener, collector.clone()));

        // Responders for every server.
        let directory = PeerDirectory::new();
        for server in topo.servers() {
            let echo = TcpListener::bind("127.0.0.1:0").await.expect("bind");
            let echo_addr = echo.local_addr().expect("addr");
            tokio::spawn(serve_echo(echo));
            let http = TcpListener::bind("127.0.0.1:0").await.expect("bind");
            let http_addr = http.local_addr().expect("addr");
            tokio::spawn(serve_http(http));
            directory.register(
                server,
                PeerEndpoints {
                    echo: echo_addr,
                    http: http_addr,
                },
            );
        }

        Self {
            topo,
            controller_addr,
            controller_state,
            collector_addr,
            collector,
            directory,
        }
    }

    /// The deployment topology.
    pub fn topology(&self) -> &Arc<Topology> {
        &self.topo
    }

    /// The controller's address (for agents or manual fetches).
    pub fn controller_addr(&self) -> SocketAddr {
        self.controller_addr
    }

    /// The controller's state handle (swap/clear pinglists at runtime).
    pub fn controller_state(&self) -> &Arc<WebState> {
        &self.controller_state
    }

    /// The collector's address.
    pub fn collector_addr(&self) -> SocketAddr {
        self.collector_addr
    }

    /// The collector handle (stats, outage injection, store access).
    pub fn collector(&self) -> &Collector {
        &self.collector
    }

    /// The shared peer directory.
    pub fn directory(&self) -> &PeerDirectory {
        &self.directory
    }

    /// A fully wired agent for one of the topology's servers.
    pub fn agent(&self, server: ServerId) -> RealAgent {
        RealAgent::new(
            RealAgentConfig::new(server, self.controller_addr, self.collector_addr),
            self.topo.clone(),
            self.directory.clone(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[tokio::test]
    async fn cluster_starts_all_services() {
        let cluster =
            LocalCluster::start(TopologySpec::single_tiny(), GeneratorConfig::default()).await;
        assert_eq!(cluster.directory().len(), cluster.topology().server_count());
        // The controller serves a pinglist over real HTTP.
        let pl = pingmesh_controller::fetch_pinglist(cluster.controller_addr(), ServerId(0))
            .await
            .unwrap()
            .unwrap();
        assert!(!pl.entries.is_empty());
        // The collector starts empty.
        assert_eq!(cluster.collector().stats().records, 0);
    }

    #[tokio::test]
    async fn multiple_agents_share_the_deployment() {
        let cluster =
            LocalCluster::start(TopologySpec::single_tiny(), GeneratorConfig::default()).await;
        let mut total = 0u64;
        for s in [ServerId(0), ServerId(5), ServerId(9)] {
            let mut a = cluster.agent(s);
            a.poll_controller().await;
            total += a.probe_round_once().await as u64;
            a.flush(true).await;
        }
        assert_eq!(cluster.collector().stats().records, total);
        assert!(total > 0);
    }
}
