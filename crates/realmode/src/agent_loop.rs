//! The full real-socket agent: download pinglist → ping → upload.
//!
//! Identical semantics to the simulated agent, against real sockets:
//!
//! * pinglist fetched from the controller over HTTP, with the §3.4.2
//!   fail-closed rules (3 consecutive failures or "no pinglist" → drop
//!   all peers, keep responding);
//! * every probe on a fresh connection (the OS assigns a fresh ephemeral
//!   port per connect);
//! * results buffered and uploaded to the collector, retry-then-discard;
//! * perf counters (P50 / P99 / drop rate) exported for the PA path.
//!
//! [`RealAgent::run`] is the faithful always-on loop (probe cadence
//! clamped to the hard 10-second floor); [`RealAgent::probe_round_once`]
//! runs a single round immediately for demos and tests.

use crate::backoff::Backoff;
use crate::collector::upload_records_with;
use crate::directory::PeerDirectory;
use crate::vip::ControllerVip;
use pingmesh_agent::guard::SafetyGuard;
use pingmesh_agent::real::{http_ping, tcp_ping};
use pingmesh_topology::Topology;
use pingmesh_types::constants::{MIN_PROBE_INTERVAL, UPLOAD_RETRIES};
use pingmesh_types::{
    AgentCounters, CounterSnapshot, PingTarget, Pinglist, ProbeKind, ProbeOutcome, ProbeRecord,
    ServerId, SimDuration, SimTime,
};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How the agent turns a pinglist entry into a socket address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Addressing {
    /// Probe the entry's IP and port directly — production behaviour,
    /// where the pinglist's addresses are the peers' real addresses.
    #[default]
    Direct,
    /// Translate the peer's server id through a [`PeerDirectory`] —
    /// the localhost mode, where every simulated server shares one host
    /// and gets its own port pair.
    Directory,
}

/// Configuration of one real agent.
#[derive(Debug, Clone)]
pub struct RealAgentConfig {
    /// This agent's server identity.
    pub me: ServerId,
    /// The controller VIP: one or more replica addresses, round-robined
    /// with per-poll failover (paper §3.3.2's SLB, client-side).
    pub controller: ControllerVip,
    /// The collector address records are uploaded to.
    pub collector: SocketAddr,
    /// Per-probe timeout.
    pub probe_timeout: Duration,
    /// Per-phase deadline for every control-plane call (connect, request
    /// write, response read — against controller replicas and collector).
    pub call_deadline: Duration,
    /// Seed for the jittered retry/poll backoff. Runs with the same seed
    /// retry on an identical schedule.
    pub backoff_seed: u64,
    /// Upload when this many records are buffered.
    pub upload_batch: usize,
    /// Max probes in flight at once (the paper's agent spreads load
    /// across cores; we bound concurrency instead).
    pub max_inflight: usize,
    /// Peer address resolution mode.
    pub addressing: Addressing,
}

impl RealAgentConfig {
    /// Sensible defaults for a localhost deployment with an unreplicated
    /// controller.
    pub fn new(me: ServerId, controller: SocketAddr, collector: SocketAddr) -> Self {
        Self::with_controllers(me, vec![controller], collector)
    }

    /// Defaults with several controller replicas behind one logical VIP.
    pub fn with_controllers(
        me: ServerId,
        controllers: Vec<SocketAddr>,
        collector: SocketAddr,
    ) -> Self {
        Self {
            me,
            controller: ControllerVip::new(controllers),
            collector,
            probe_timeout: Duration::from_secs(2),
            call_deadline: Duration::from_secs(5),
            // Decorrelate agents so a fleet doesn't retry in lockstep,
            // while staying reproducible for a given server id.
            backoff_seed: 0x5EED ^ me.0 as u64,
            upload_batch: 500,
            max_inflight: 32,
            addressing: Addressing::Directory,
        }
    }
}

/// The real-socket agent.
pub struct RealAgent {
    config: RealAgentConfig,
    topo: Arc<Topology>,
    directory: PeerDirectory,
    guard: SafetyGuard,
    pinglist: Option<Pinglist>,
    buffer: Vec<ProbeRecord>,
    counters: AgentCounters,
    discarded: u64,
    produced: u64,
    epoch: Instant,
}

impl RealAgent {
    /// Creates an idle agent.
    pub fn new(config: RealAgentConfig, topo: Arc<Topology>, directory: PeerDirectory) -> Self {
        Self {
            config,
            topo,
            directory,
            guard: SafetyGuard::new(),
            pinglist: None,
            buffer: Vec::new(),
            counters: AgentCounters::new(),
            discarded: 0,
            produced: 0,
            epoch: Instant::now(),
        }
    }

    /// This agent's identity.
    pub fn server(&self) -> ServerId {
        self.config.me
    }

    /// Mutable access to the configuration — drills retarget controllers
    /// and tighten deadlines on a live agent.
    pub fn config_mut(&mut self) -> &mut RealAgentConfig {
        &mut self.config
    }

    /// Whether the agent is fail-closed.
    pub fn is_stopped(&self) -> bool {
        self.guard.is_stopped()
    }

    /// Active peer count.
    pub fn peer_count(&self) -> usize {
        self.pinglist.as_ref().map_or(0, |pl| pl.entries.len())
    }

    /// Records discarded because uploads kept failing.
    pub fn discarded(&self) -> u64 {
        self.discarded
    }

    /// Lifetime count of probe records this agent has produced (whether
    /// or not they were ultimately uploaded) — one side of the
    /// completeness SLO's conservation ledger.
    pub fn produced(&self) -> u64 {
        self.produced
    }

    /// Records currently buffered awaiting upload. Buffered records are
    /// lag, not loss — the completeness ledger subtracts them from the
    /// produced side.
    pub fn buffered(&self) -> u64 {
        self.buffer.len() as u64
    }

    /// Counter snapshot for the PA path (resets the window).
    pub fn collect_counters(&mut self) -> CounterSnapshot {
        let snap = self.counters.snapshot();
        self.counters.reset_window();
        snap
    }

    fn now(&self) -> SimTime {
        SimTime(self.epoch.elapsed().as_micros() as u64)
    }

    /// Polls the controller VIP once, applying the fail-closed rules.
    ///
    /// Stale-pinglist grace: a failed poll before the §3.4.2 threshold
    /// keeps the cached pinglist — the agent probes stale rather than go
    /// dark during a short controller blip. Only crossing the threshold
    /// (or an explicit "no pinglist" answer) drops the peers.
    pub async fn poll_controller(&mut self) {
        let was_stopped = self.guard.is_stopped();
        let fetched = self
            .config
            .controller
            .fetch_pinglist(self.config.me, self.config.call_deadline)
            .await;
        match fetched {
            Ok(Some(mut pl)) => {
                SafetyGuard::sanitize(&mut pl);
                self.guard.on_pinglist_received();
                self.pinglist = Some(pl);
            }
            Ok(None) => {
                self.guard.on_empty_controller();
                self.pinglist = None;
            }
            Err(_) => {
                if self.guard.on_controller_failure()
                    == pingmesh_agent::guard::GuardDecision::StopProbing
                {
                    self.pinglist = None;
                }
            }
        }
        match (was_stopped, self.guard.is_stopped()) {
            (false, true) => {
                pingmesh_obs::registry()
                    .counter("pingmesh_realmode_fail_closed_transitions_total")
                    .inc();
                pingmesh_obs::emit!(Warn, "realmode.agent", "fail_closed",
                    "server" => self.config.me.0 as u64);
            }
            (true, false) => {
                pingmesh_obs::registry()
                    .counter("pingmesh_realmode_resumes_total")
                    .inc();
                pingmesh_obs::emit!(Info, "realmode.agent", "resumed",
                    "server" => self.config.me.0 as u64);
            }
            _ => {}
        }
    }

    /// Runs one probe round: one probe per pinglist entry, concurrently
    /// (bounded), recording outcomes. Returns the number of probes sent.
    pub async fn probe_round_once(&mut self) -> usize {
        if self.guard.is_stopped() {
            return 0;
        }
        let Some(pl) = self.pinglist.clone() else {
            return 0;
        };
        let timeout = self.config.probe_timeout;
        let mut inflight = tokio::task::JoinSet::new();
        let mut sent = 0usize;
        for entry in pl.entries.iter().copied() {
            let PingTarget::Server { id: peer, ip } = entry.target else {
                continue; // VIP targets need the production LB; skip here
            };
            let endpoints = match self.config.addressing {
                Addressing::Directory => match self.directory.lookup(peer) {
                    Some(e) => e,
                    None => continue,
                },
                Addressing::Direct => crate::directory::PeerEndpoints {
                    // Production addressing: the pinglist's IP and port
                    // are the peer agent's actual endpoints; HTTP probes
                    // use the conventional HTTP port on the same host.
                    echo: SocketAddr::from((ip, entry.port)),
                    http: SocketAddr::from((ip, 80)),
                },
            };
            if inflight.len() >= self.config.max_inflight {
                if let Some(done) = inflight.join_next().await {
                    self.absorb(done.expect("probe task panicked"));
                }
            }
            sent += 1;
            inflight.spawn(async move {
                let outcome = match entry.kind {
                    ProbeKind::TcpSyn => tcp_ping(endpoints.echo, None, timeout)
                        .await
                        .map(|r| r.connect_rtt)
                        .ok(),
                    ProbeKind::TcpPayload(n) => {
                        let payload = vec![0xA5u8; n as usize];
                        tcp_ping(endpoints.echo, Some(&payload), timeout)
                            .await
                            .ok()
                            .and_then(|r| r.payload_rtt)
                    }
                    ProbeKind::Http => http_ping(endpoints.http, timeout).await.ok(),
                };
                (entry, peer, outcome)
            });
        }
        while let Some(done) = inflight.join_next().await {
            self.absorb(done.expect("probe task panicked"));
        }
        sent
    }

    fn absorb(
        &mut self,
        (entry, peer, rtt): (pingmesh_types::PinglistEntry, ServerId, Option<Duration>),
    ) {
        let outcome = match rtt {
            Some(d) => ProbeOutcome::Success {
                rtt: SimDuration::from_micros(d.as_micros().max(1) as u64),
            },
            None => ProbeOutcome::Timeout,
        };
        self.counters.observe(outcome);
        let s = self.topo.server(self.config.me);
        let d = self.topo.server(peer);
        let rec = ProbeRecord {
            ts: self.now(),
            src: self.config.me,
            dst: peer,
            src_pod: s.pod,
            dst_pod: d.pod,
            src_podset: s.podset,
            dst_podset: d.podset,
            src_dc: s.dc,
            dst_dc: d.dc,
            kind: entry.kind,
            qos: entry.qos,
            src_port: 0, // the OS picked the ephemeral port
            dst_port: entry.port,
            outcome,
        };
        self.produced += 1;
        pingmesh_obs::trace::on_probe(&rec);
        self.buffer.push(rec);
    }

    /// Uploads the buffer if it reached the batch size; `force` flushes
    /// regardless. Retries then discards, per §3.4.2.
    pub async fn flush(&mut self, force: bool) {
        if self.buffer.is_empty() || (!force && self.buffer.len() < self.config.upload_batch) {
            return;
        }
        let batch = std::mem::take(&mut self.buffer);
        pingmesh_obs::trace::on_upload_batch(&batch, Some(self.now()));
        let mut backoff = Backoff::control_plane(self.config.backoff_seed);
        for attempt in 0..=UPLOAD_RETRIES {
            match upload_records_with(self.config.collector, &batch, self.config.call_deadline)
                .await
            {
                Ok(()) => {
                    self.counters.bytes_uploaded +=
                        batch.iter().map(|r| r.wire_size() as u64).sum::<u64>();
                    return;
                }
                Err(e) if attempt < UPLOAD_RETRIES => {
                    let registry = pingmesh_obs::registry();
                    registry.counter("pingmesh_realmode_retries_total").inc();
                    if matches!(e, pingmesh_types::PingmeshError::Timeout(_)) {
                        registry.counter("pingmesh_realmode_timeouts_total").inc();
                    }
                    tokio::time::sleep(backoff.next_delay()).await;
                }
                Err(_) => {
                    self.discarded += batch.len() as u64;
                    self.counters.records_discarded = self.discarded;
                    pingmesh_obs::registry()
                        .counter("pingmesh_realmode_discarded_records_total")
                        .add(batch.len() as u64);
                    return;
                }
            }
        }
    }

    /// The always-on loop: poll the controller, then run probe rounds at
    /// the configured cadence — clamped to the hard 10-second floor so a
    /// full round never probes any pair more often than the paper's
    /// limit. Runs until `shutdown` resolves.
    pub async fn run(
        mut self,
        round_interval: Duration,
        poll_interval: Duration,
        shutdown: tokio::sync::watch::Receiver<bool>,
    ) -> Self {
        let floor = Duration::from_micros(MIN_PROBE_INTERVAL.as_micros());
        let round_interval = round_interval.max(floor);
        let mut next_poll = Instant::now();
        // While the controller is failing, re-poll on a capped jittered
        // backoff instead of the full poll interval — the agent recovers
        // quickly after an outage without hammering a struggling VIP.
        let mut poll_backoff = Backoff::control_plane(self.config.backoff_seed);
        let mut shutdown = shutdown;
        loop {
            if *shutdown.borrow() {
                break;
            }
            if Instant::now() >= next_poll {
                self.poll_controller().await;
                next_poll = if self.guard.failures() > 0 {
                    Instant::now() + poll_backoff.next_delay()
                } else {
                    poll_backoff.reset();
                    Instant::now() + poll_interval
                };
            }
            self.probe_round_once().await;
            self.flush(false).await;
            tokio::select! {
                _ = tokio::time::sleep(round_interval) => {}
                _ = shutdown.changed() => {}
            }
        }
        self.flush(true).await;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::LocalCluster;
    use pingmesh_controller::GeneratorConfig;
    use pingmesh_topology::TopologySpec;

    #[tokio::test]
    async fn full_loop_fetch_probe_upload() {
        let cluster =
            LocalCluster::start(TopologySpec::single_tiny(), GeneratorConfig::default()).await;
        let mut agent = cluster.agent(ServerId(0));
        agent.poll_controller().await;
        assert!(!agent.is_stopped());
        assert!(agent.peer_count() > 0);
        let sent = agent.probe_round_once().await;
        assert!(sent > 0, "must probe peers");
        assert_eq!(agent.counters.probes_sent as usize, sent);
        assert!(agent.counters.probes_succeeded > 0);
        agent.flush(true).await;
        let stats = cluster.collector().stats();
        assert_eq!(stats.records, sent as u64);
    }

    #[tokio::test]
    async fn controller_loss_fail_closes_after_three_polls() {
        let cluster =
            LocalCluster::start(TopologySpec::single_tiny(), GeneratorConfig::default()).await;
        let mut agent = cluster.agent(ServerId(1));
        agent.poll_controller().await;
        assert!(agent.peer_count() > 0);
        // Point the agent at a dead controller.
        let dead = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        agent.config.controller = ControllerVip::single(dead);
        agent.poll_controller().await;
        agent.poll_controller().await;
        // Stale-pinglist grace: below the threshold the cached list is
        // kept and the agent still probes.
        assert!(!agent.is_stopped());
        assert!(agent.peer_count() > 0);
        agent.poll_controller().await;
        assert!(agent.is_stopped());
        assert_eq!(agent.peer_count(), 0);
        assert_eq!(agent.probe_round_once().await, 0);
    }

    #[tokio::test]
    async fn fail_closed_agent_resumes_on_valid_pinglist() {
        let cluster =
            LocalCluster::start(TopologySpec::single_tiny(), GeneratorConfig::default()).await;
        let mut agent = cluster.agent(ServerId(4));
        let live = agent.config.controller.clone();
        let dead = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        agent.config.controller = ControllerVip::single(dead);
        for _ in 0..3 {
            agent.poll_controller().await;
        }
        assert!(agent.is_stopped());
        let resumes_before = pingmesh_obs::registry()
            .counter("pingmesh_realmode_resumes_total")
            .get();
        // Controller comes back: one successful poll re-arms the guard
        // (failure budget back to zero) and probing resumes.
        agent.config.controller = live;
        agent.poll_controller().await;
        assert!(!agent.is_stopped());
        assert_eq!(agent.guard.failures(), 0);
        assert!(agent.peer_count() > 0);
        assert!(agent.probe_round_once().await > 0);
        let resumes_after = pingmesh_obs::registry()
            .counter("pingmesh_realmode_resumes_total")
            .get();
        assert_eq!(resumes_after, resumes_before + 1);
    }

    #[tokio::test]
    async fn agent_fails_over_across_controller_replicas() {
        let cluster =
            LocalCluster::start(TopologySpec::single_tiny(), GeneratorConfig::default()).await;
        let dead = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let mut config = RealAgentConfig::with_controllers(
            ServerId(6),
            vec![dead, cluster.controller_addr()],
            cluster.collector_addr(),
        );
        config.call_deadline = Duration::from_secs(2);
        let mut agent = RealAgent::new(
            config,
            cluster.topology().clone(),
            cluster.directory().clone(),
        );
        // Every poll succeeds despite the dead replica in rotation.
        for _ in 0..3 {
            agent.poll_controller().await;
            assert!(!agent.is_stopped());
            assert!(agent.peer_count() > 0);
        }
    }

    #[tokio::test]
    async fn run_loop_probes_until_shutdown_and_flushes() {
        let cluster =
            LocalCluster::start(TopologySpec::single_tiny(), GeneratorConfig::default()).await;
        let agent = cluster.agent(ServerId(3));
        let (tx, rx) = tokio::sync::watch::channel(false);
        let handle = tokio::spawn(agent.run(
            Duration::from_secs(3600), // one round, then sleep until shutdown
            Duration::from_secs(3600),
            rx,
        ));
        // Give the loop time for its first poll + round, then stop it.
        tokio::time::sleep(Duration::from_millis(500)).await;
        tx.send(true).unwrap();
        let agent = handle.await.unwrap();
        assert!(agent.counters.probes_sent > 0, "the loop must have probed");
        // The final flush delivered everything.
        assert!(agent.buffer.is_empty());
        assert_eq!(
            cluster.collector().stats().records,
            agent.counters.probes_sent
        );
    }

    #[tokio::test]
    async fn upload_outage_discards_after_retries() {
        let cluster =
            LocalCluster::start(TopologySpec::single_tiny(), GeneratorConfig::default()).await;
        let mut agent = cluster.agent(ServerId(2));
        agent.poll_controller().await;
        agent.probe_round_once().await;
        cluster.collector().set_accepting(false);
        let retries_before = pingmesh_obs::registry()
            .counter("pingmesh_realmode_retries_total")
            .get();
        let t0 = Instant::now();
        agent.flush(true).await;
        assert!(agent.discarded() > 0, "retries exhausted must discard");
        // Memory is bounded: the buffer is empty again.
        assert!(agent.buffer.is_empty());
        // Retries are spaced by jittered exponential backoff, not fired
        // back-to-back: 3 retries with a 50 ms base wait at least
        // 25 + 50 + 100 ms worst-jitter-low, so well over 100 ms total.
        let retries_after = pingmesh_obs::registry()
            .counter("pingmesh_realmode_retries_total")
            .get();
        assert_eq!(retries_after, retries_before + u64::from(UPLOAD_RETRIES));
        assert!(
            t0.elapsed() >= Duration::from_millis(100),
            "backoff must actually delay: {:?}",
            t0.elapsed()
        );
    }

    #[tokio::test]
    async fn flush_backoff_schedule_is_seed_deterministic() {
        // Two agents with the same seed produce the same retry delays.
        let a = Backoff::control_plane(42).next_delay();
        let b = Backoff::control_plane(42).next_delay();
        assert_eq!(a, b);
        let c = Backoff::control_plane(43).next_delay();
        // Different seeds *may* collide on one draw, but the full
        // 4-delay schedule must differ.
        let seq = |seed| {
            let mut bo = Backoff::control_plane(seed);
            (0..4).map(|_| bo.next_delay()).collect::<Vec<_>>()
        };
        assert_ne!(seq(42), seq(43), "{a:?} {b:?} {c:?}");
    }
}
