//! Live (real-socket) auto-mitigation drill.
//!
//! The simulation exercises the [`MitigationEngine`] against simulated
//! switches; this module runs the **same** engine against real TCP
//! endpoints, exactly as the engine's type parameter anticipates: here
//! `D = usize`, a controller replica index. The drill closes the loop
//! over actual sockets:
//!
//! 1. **Detect** — a live health probe (`GET /pinglist/{server}` with a
//!    short deadline) against every replica still in rotation. A failed
//!    probe is a deterministic, remotely-observed symptom, so it is
//!    reported as a [`FindingKind::Blackhole`] with confidence 1.0.
//! 2. **Drain** — the engine decides under the tier-budget guard
//!    (never hold more than `max_drain_fraction` of the replica set out
//!    of rotation) and per-replica cooldown; a drained replica is
//!    removed from the address set that [`ControllerVip`] load-balances
//!    over, so agents stop being routed to it.
//! 3. **Verify** — after `min_soak`, the engine schedules targeted
//!    confirmation probes; only a **live successful fetch** through the
//!    replica un-drains it.
//! 4. **Un-drain / escalate** — a verified replica re-enters rotation
//!    under cooldown; one that stays broken for `max_verify_attempts`
//!    is escalated and held for humans.
//!
//! Chaos injection for the drill comes from [`crate::chaos::ChaosProxy`]:
//! pointing a replica slot at a proxy and flipping its [`Toxic`] between
//! `Refuse` and `Pass` produces the fault and the recovery without
//! killing any real task.
//!
//! [`Toxic`]: crate::chaos::Toxic

use crate::vip::ControllerVip;
use pingmesh_controller::{
    fetch_pinglist_with, Decision, FindingKind, MitigationConfig, MitigationEngine, VerifyOutcome,
};
use pingmesh_types::{ServerId, SimTime};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// Replicas form a single flat tier in the live drill.
const REPLICA_TIER: u32 = 0;

/// What one [`LiveMitigator::scan`] pass did, for drill assertions and
/// operator logs.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ScanReport {
    /// Replica indices probed for detection this pass (drained replicas
    /// are skipped — they are probed by the verification path instead).
    pub probed: Vec<usize>,
    /// Replicas drained this pass.
    pub drained: Vec<usize>,
    /// Replicas verified healthy and returned to rotation this pass.
    pub undrained: Vec<usize>,
    /// Replicas that failed a verification probe and stayed drained.
    pub kept_drained: Vec<usize>,
    /// Replicas escalated to humans this pass (recurrence, exhausted
    /// verification, or a tier-budget page).
    pub escalated: Vec<usize>,
}

/// Closed-loop mitigation over a set of live controller replicas.
///
/// Wraps a [`MitigationEngine`] keyed by replica index and drives it
/// from real socket probes on a wall-clock timeline (the engine's
/// virtual [`SimTime`] is microseconds since this mitigator was built,
/// so the same soak/cooldown arithmetic the simulation verifies applies
/// unchanged to wall time).
pub struct LiveMitigator {
    engine: MitigationEngine<usize>,
    replicas: Vec<SocketAddr>,
    epoch: Instant,
    probe_deadline: Duration,
}

impl LiveMitigator {
    /// Builds a mitigator over `replicas` with the given engine config.
    ///
    /// `probe_deadline` bounds every health probe; a replica that cannot
    /// answer a pinglist fetch within it is treated as down. Drills use
    /// a short deadline (hundreds of milliseconds) so a `Stall` toxic is
    /// detected quickly.
    pub fn new(
        replicas: Vec<SocketAddr>,
        config: MitigationConfig,
        probe_deadline: Duration,
    ) -> Self {
        LiveMitigator {
            engine: MitigationEngine::new(config),
            replicas,
            epoch: Instant::now(),
            probe_deadline,
        }
    }

    /// Current time on the mitigator's clock: wall microseconds since
    /// construction, as the engine's virtual time.
    pub fn now(&self) -> SimTime {
        SimTime(self.epoch.elapsed().as_micros() as u64)
    }

    /// The underlying engine (state, transitions, counters) for
    /// assertions and the `pingmesh-top` panel.
    pub fn engine(&self) -> &MitigationEngine<usize> {
        &self.engine
    }

    /// Replica addresses currently in rotation (not held out by the
    /// engine). Feed this to [`ControllerVip::new`] after each scan.
    pub fn in_rotation(&self) -> Vec<SocketAddr> {
        self.replicas
            .iter()
            .enumerate()
            .filter(|(i, _)| !self.engine.is_drained(*i))
            .map(|(_, &a)| a)
            .collect()
    }

    /// A fresh VIP over the replicas currently in rotation.
    ///
    /// Panics if every replica is drained — the tier-budget guard makes
    /// that unreachable for any fraction below 1.0.
    pub fn vip(&self) -> ControllerVip {
        ControllerVip::new(self.in_rotation())
    }

    /// One live health probe: can this replica answer a pinglist fetch
    /// for `server` within the deadline?
    async fn probe(&self, addr: SocketAddr, server: ServerId) -> bool {
        fetch_pinglist_with(addr, server, self.probe_deadline)
            .await
            .is_ok()
    }

    /// One detect → drain → verify → un-drain pass over every replica.
    ///
    /// Detection probes replicas still in rotation and reports failures
    /// to the engine; verification probes replicas whose soak has
    /// elapsed and records the outcome. Call this on a short interval
    /// (the drill calls it in a loop) — each pass is bounded by
    /// `replicas × probe_deadline`.
    pub async fn scan(&mut self, server: ServerId) -> ScanReport {
        let mut report = ScanReport::default();

        // Detection: probe the in-rotation set.
        for i in 0..self.replicas.len() {
            if self.engine.is_drained(i) {
                continue;
            }
            report.probed.push(i);
            if self.probe(self.replicas[i], server).await {
                continue;
            }
            // A refused/stalled fetch is deterministic, so confidence 1.0.
            let now = self.now();
            match self.engine.report(
                i,
                REPLICA_TIER,
                self.replicas.len(),
                FindingKind::Blackhole,
                1.0,
                now,
            ) {
                Decision::Drain => report.drained.push(i),
                Decision::DrainAndEscalate => {
                    report.drained.push(i);
                    report.escalated.push(i);
                }
                Decision::Rejected(_) => {}
            }
        }

        // Verification: targeted confirmation probes through drained
        // replicas whose soak has elapsed.
        let due = self.engine.due_verifications(self.now());
        for i in due {
            let healthy = self.probe(self.replicas[i], server).await;
            match self.engine.record_verification(i, healthy, self.now()) {
                VerifyOutcome::Undrain => report.undrained.push(i),
                VerifyOutcome::KeepDrained => report.kept_drained.push(i),
                VerifyOutcome::Escalated => report.escalated.push(i),
            }
        }

        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::{ChaosProxy, Toxic};
    use pingmesh_controller::{GeneratorConfig, MitigationState, PinglistGenerator, WebState};
    use pingmesh_topology::{Topology, TopologySpec};
    use std::sync::Arc;
    use tokio::net::TcpListener;

    async fn live_replica() -> SocketAddr {
        let topo = Topology::build(TopologySpec::single_tiny()).unwrap();
        let set = PinglistGenerator::new(GeneratorConfig::default()).generate_all(&topo, 1);
        let state = Arc::new(WebState::new());
        state.set_pinglists(set);
        let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().unwrap();
        tokio::spawn(pingmesh_controller::serve(listener, state));
        addr
    }

    fn drill_config() -> MitigationConfig {
        MitigationConfig {
            // Budget of 1 out of 3 replicas.
            max_drain_fraction: 0.34,
            min_soak: pingmesh_types::SimDuration::from_millis(50),
            cooldown: pingmesh_types::SimDuration::from_millis(200),
            max_verify_attempts: 3,
            recurrence_window: pingmesh_types::SimDuration::from_secs(30),
            min_confidence: 0.5,
        }
    }

    /// The full closed loop over real sockets: a `Refuse` toxic on one
    /// replica is detected by a live probe, the replica is drained out
    /// of the VIP rotation (agents keep fetching via the survivors), a
    /// verification probe while it is still broken keeps it drained,
    /// and only after the toxic clears does a live probe verify it back
    /// into rotation.
    #[tokio::test]
    async fn live_drill_detect_drain_verify_undrain() {
        let sick_upstream = live_replica().await;
        let proxy = ChaosProxy::start(sick_upstream, 7).await.unwrap();
        let replicas = vec![proxy.addr(), live_replica().await, live_replica().await];
        let chaos = proxy.handle().clone();

        let mut mit =
            LiveMitigator::new(replicas.clone(), drill_config(), Duration::from_millis(300));

        // Healthy baseline: nothing drains.
        let r = mit.scan(ServerId(0)).await;
        assert_eq!(r.probed, vec![0, 1, 2]);
        assert!(r.drained.is_empty());
        assert_eq!(mit.in_rotation().len(), 3);

        // Break replica 0 and detect it.
        chaos.set_toxic(Toxic::Refuse);
        let r = mit.scan(ServerId(0)).await;
        assert_eq!(r.drained, vec![0], "refused probe must drain replica 0");
        assert_eq!(mit.engine().state_of(0), Some(MitigationState::Drained));
        assert_eq!(mit.in_rotation(), vec![replicas[1], replicas[2]]);

        // The control plane stays up through the VIP during the drain.
        let pl = mit
            .vip()
            .fetch_pinglist(ServerId(0), Duration::from_secs(5))
            .await
            .expect("survivors must serve")
            .expect("pinglist present");
        assert!(!pl.entries.is_empty());

        // Soak elapses while the replica is still broken: the
        // verification probe fails live and the drain holds.
        tokio::time::sleep(Duration::from_millis(60)).await;
        let r = mit.scan(ServerId(0)).await;
        assert_eq!(r.kept_drained, vec![0]);
        assert!(r.undrained.is_empty());
        assert_eq!(mit.in_rotation().len(), 2);

        // Fix the replica; the next due verification probes it live and
        // un-drains it.
        chaos.set_toxic(Toxic::Pass);
        tokio::time::sleep(Duration::from_millis(60)).await;
        let r = mit.scan(ServerId(0)).await;
        assert_eq!(r.undrained, vec![0], "healthy probe must un-drain");
        assert_eq!(mit.engine().state_of(0), Some(MitigationState::Undrained));
        assert_eq!(mit.in_rotation().len(), 3);
        assert_eq!(mit.engine().drains(), 1);
        assert_eq!(mit.engine().undrains(), 1);
        assert_eq!(mit.engine().escalations(), 0);

        // Flap guard: breaking it again inside the cooldown is rejected,
        // so the replica does not bounce in and out of rotation.
        chaos.set_toxic(Toxic::Refuse);
        let r = mit.scan(ServerId(0)).await;
        assert!(r.drained.is_empty(), "cooldown must reject the re-drain");
        assert_eq!(mit.in_rotation().len(), 3);
        assert_eq!(mit.engine().drains(), 1);
    }

    /// The tier-budget guard holds over live sockets: with a budget of
    /// one replica, a second simultaneous failure is blocked (and
    /// paged), so the VIP never loses more than the budgeted fraction
    /// of its rotation to automation.
    #[tokio::test]
    async fn live_tier_budget_blocks_second_drain() {
        let up0 = live_replica().await;
        let up1 = live_replica().await;
        let p0 = ChaosProxy::start(up0, 11).await.unwrap();
        let p1 = ChaosProxy::start(up1, 13).await.unwrap();
        let replicas = vec![p0.addr(), p1.addr(), live_replica().await];

        let mut mit =
            LiveMitigator::new(replicas.clone(), drill_config(), Duration::from_millis(300));

        p0.handle().set_toxic(Toxic::Refuse);
        p1.handle().set_toxic(Toxic::Refuse);
        let r = mit.scan(ServerId(0)).await;

        // Exactly one drain fits the budget; the other failure pages.
        assert_eq!(r.drained.len(), 1, "budget is floor(0.34 * 3) = 1");
        assert_eq!(mit.in_rotation().len(), 2);
        assert_eq!(mit.engine().drains(), 1);
        assert!(
            mit.engine().escalations() >= 1,
            "blocked drain must escalate to humans"
        );

        // The VIP still answers from the untouched replica.
        let pl = mit
            .vip()
            .fetch_pinglist(ServerId(0), Duration::from_secs(5))
            .await
            .expect("rotation must keep serving")
            .expect("pinglist present");
        assert!(!pl.entries.is_empty());
    }
}
