//! Real-socket Pingmesh deployment.
//!
//! Everything the simulation mode exercises at fleet scale, over actual
//! TCP connections: the Controller's RESTful pinglist service
//! (`pingmesh-controller::web`), a record **collector** standing in for
//! Cosmos's upload front-end ([`collector`]), per-server TCP/HTTP
//! **responders**, a **peer directory** mapping topology server ids to
//! socket addresses ([`directory`]), and the full **agent run loop**
//! ([`agent_loop`]) with the paper's fail-closed, bounded-resource
//! semantics.
//!
//! [`cluster::LocalCluster`] wires all of it on localhost: a miniature
//! Pingmesh deployment exchanging real packets, used by the
//! `real_cluster` example and the integration tests.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod agent_loop;
pub mod backoff;
pub mod chaos;
pub mod cluster;
pub mod collector;
pub mod directory;
pub mod mitigate;
pub mod vip;
pub mod watchdog;

pub use agent_loop::{RealAgent, RealAgentConfig};
pub use backoff::Backoff;
pub use chaos::{ChaosHandle, ChaosProxy, Toxic};
pub use cluster::{ClusterOptions, LocalCluster};
pub use collector::{
    serve_collector, upload_records, Collector, HealthReport, SloJson, StageHealth,
};
pub use directory::PeerDirectory;
pub use mitigate::{LiveMitigator, ScanReport};
pub use vip::ControllerVip;
pub use watchdog::RealWatchdog;
