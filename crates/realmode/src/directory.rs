//! The peer directory: topology server ids → socket addresses.
//!
//! In production, a pinglist entry's target IP *is* the peer's address.
//! In the localhost deployment every simulated server shares one host, so
//! each gets its own (echo, http) port pair; the directory performs the
//! translation the production network does implicitly.

use parking_lot::RwLock;
use pingmesh_types::ServerId;
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::Arc;

/// The socket endpoints of one server's responders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerEndpoints {
    /// TCP echo responder (SYN + payload probes).
    pub echo: SocketAddr,
    /// HTTP responder (HTTP probes).
    pub http: SocketAddr,
}

/// Thread-safe server → endpoints map, shared by every local agent.
#[derive(Debug, Clone, Default)]
pub struct PeerDirectory {
    inner: Arc<RwLock<HashMap<ServerId, PeerEndpoints>>>,
}

impl PeerDirectory {
    /// Empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a server's endpoints.
    pub fn register(&self, server: ServerId, endpoints: PeerEndpoints) {
        self.inner.write().insert(server, endpoints);
    }

    /// Removes a server (its responders went away).
    pub fn deregister(&self, server: ServerId) {
        self.inner.write().remove(&server);
    }

    /// Looks a server up.
    pub fn lookup(&self, server: ServerId) -> Option<PeerEndpoints> {
        self.inner.read().get(&server).copied()
    }

    /// Number of registered servers.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// Whether the directory is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ep(port: u16) -> PeerEndpoints {
        PeerEndpoints {
            echo: format!("127.0.0.1:{port}").parse().unwrap(),
            http: format!("127.0.0.1:{}", port + 1).parse().unwrap(),
        }
    }

    #[test]
    fn register_lookup_deregister() {
        let d = PeerDirectory::new();
        assert!(d.is_empty());
        d.register(ServerId(3), ep(9000));
        assert_eq!(d.lookup(ServerId(3)), Some(ep(9000)));
        assert_eq!(d.lookup(ServerId(4)), None);
        assert_eq!(d.len(), 1);
        d.deregister(ServerId(3));
        assert!(d.lookup(ServerId(3)).is_none());
    }

    #[test]
    fn clones_share_state() {
        let d = PeerDirectory::new();
        let d2 = d.clone();
        d.register(ServerId(1), ep(9100));
        assert_eq!(d2.lookup(ServerId(1)), Some(ep(9100)));
    }

    #[test]
    fn register_replaces() {
        let d = PeerDirectory::new();
        d.register(ServerId(1), ep(9100));
        d.register(ServerId(1), ep(9200));
        assert_eq!(d.lookup(ServerId(1)), Some(ep(9200)));
        assert_eq!(d.len(), 1);
    }
}
