//! Real-socket deployment watchdog (paper §3.5).
//!
//! "All the components of Pingmesh have watchdogs to watch whether they
//! are running correctly or not." The simulator's
//! [`pingmesh_core::Watchdog`] audits virtual state; [`RealWatchdog`] is
//! its real-socket twin: it probes the live control plane over actual
//! TCP — through whatever chaos proxies sit in front of it, so it sees
//! exactly what the agents see — and reports the same machine-readable
//! [`WatchdogFinding`]s.
//!
//! Checks performed per [`RealWatchdog::check`]:
//!
//! * every controller replica's `/health`, each bounded by the
//!   watchdog's own call deadline → [`ControllerClusterDown`] when none
//!   answers, [`NoPinglistsServed`] when replicas answer but serve no
//!   pinglist;
//! * agent fail-closed state and discard counters →
//!   [`AgentsStopped`] / [`RecordsDiscarded`];
//! * collector ingest progress: the record count must grow within the
//!   store horizon while agents are probing → [`StaleStore`];
//! * data-quality SLOs: the watchdog feeds the collector the windowed
//!   completeness ledger (stored vs produced-minus-buffered since the
//!   previous check) and re-evaluates every installed SLO →
//!   [`SloDegraded`] for each one out of target;
//! * durable-store IO health: WAL write errors since the previous check
//!   and the fail-closed flag → [`StoreIoErrors`].
//!
//! Every finding increments
//! `pingmesh_realmode_watchdog_findings_total{class}`.
//!
//! [`SloDegraded`]: WatchdogFinding::SloDegraded
//!
//! [`ControllerClusterDown`]: WatchdogFinding::ControllerClusterDown
//! [`NoPinglistsServed`]: WatchdogFinding::NoPinglistsServed
//! [`AgentsStopped`]: WatchdogFinding::AgentsStopped
//! [`RecordsDiscarded`]: WatchdogFinding::RecordsDiscarded
//! [`StaleStore`]: WatchdogFinding::StaleStore
//! [`StoreIoErrors`]: WatchdogFinding::StoreIoErrors

use crate::agent_loop::RealAgent;
use crate::cluster::LocalCluster;
use pingmesh_core::WatchdogFinding;
use pingmesh_types::{ServerId, SimDuration};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// Watchdog over a live real-socket deployment. Stateful: store-progress
/// tracking compares consecutive checks.
#[derive(Debug)]
pub struct RealWatchdog {
    /// Ingest must make progress within this horizon (while probing).
    pub store_horizon: Duration,
    /// Per-phase deadline for the watchdog's own health probes.
    pub call_deadline: Duration,
    last_records: u64,
    last_progress: Instant,
    last_discarded: u64,
    last_stored: u64,
    last_deliverable: u64,
    last_io_errors: u64,
}

impl RealWatchdog {
    /// A watchdog with the given freshness horizon. Progress tracking
    /// starts now.
    pub fn new(store_horizon: Duration) -> Self {
        Self {
            store_horizon,
            call_deadline: Duration::from_secs(2),
            last_records: 0,
            last_progress: Instant::now(),
            last_discarded: 0,
            last_stored: 0,
            last_deliverable: 0,
            last_io_errors: 0,
        }
    }

    /// Probes one replica's `/health` through its agent-facing address.
    async fn replica_healthy(&self, addr: SocketAddr) -> bool {
        let connect =
            tokio::time::timeout(self.call_deadline, tokio::net::TcpStream::connect(addr));
        let Ok(Ok(mut stream)) = connect.await else {
            return false;
        };
        let req = pingmesh_httpx::Request::get("/health");
        if pingmesh_httpx::write_request_with(&mut stream, &req, self.call_deadline)
            .await
            .is_err()
        {
            return false;
        }
        matches!(
            pingmesh_httpx::read_response_with(&mut stream, self.call_deadline).await,
            Ok(resp) if resp.status == 200
        )
    }

    /// Audits the deployment: controller replicas over the wire, agents
    /// and the collector through their local handles. Findings are also
    /// counted in the global metrics registry.
    pub async fn check(
        &mut self,
        cluster: &LocalCluster,
        agents: &[&RealAgent],
    ) -> Vec<WatchdogFinding> {
        let mut findings = Vec::new();

        // Controller health, as seen through the chaos proxies.
        let mut any_up = false;
        for &addr in cluster.controller_addrs() {
            if self.replica_healthy(addr).await {
                any_up = true;
                break;
            }
        }
        if !any_up {
            findings.push(WatchdogFinding::ControllerClusterDown);
        } else {
            // At least one replica answers; does it serve pinglists? A
            // probe for any known server id suffices — 503 means the
            // fleet stop switch is thrown.
            let probe = cluster.topology().servers().next().unwrap_or(ServerId(0));
            let served = pingmesh_controller::fetch_pinglist_with(
                cluster.controller_addr(),
                probe,
                self.call_deadline,
            )
            .await;
            if matches!(served, Ok(None)) {
                findings.push(WatchdogFinding::NoPinglistsServed);
            }
        }

        // Agent health.
        let stopped = agents.iter().filter(|a| a.is_stopped()).count();
        if stopped > 0 {
            findings.push(WatchdogFinding::AgentsStopped(stopped));
        }
        // Agent discard totals are cumulative; report only records lost
        // since the previous check, so a healed upload path clears the
        // finding instead of carrying the outage's tally forever.
        let discarded: u64 = agents.iter().map(|a| a.discarded()).sum();
        if discarded > self.last_discarded {
            findings.push(WatchdogFinding::RecordsDiscarded(
                discarded - self.last_discarded,
            ));
        }
        self.last_discarded = discarded;

        // Report path: records must keep arriving while anyone probes.
        let records = cluster.collector().stats().records;
        let probing = stopped < agents.len();
        if records > self.last_records {
            self.last_records = records;
            self.last_progress = Instant::now();
        } else if probing && self.last_progress.elapsed() > self.store_horizon {
            findings.push(WatchdogFinding::StaleStore {
                newest_age: Some(SimDuration::from_micros(
                    self.last_progress.elapsed().as_micros() as u64,
                )),
            });
        } else if !probing {
            // Nothing probing: staleness is expected, don't double-report
            // it on top of AgentsStopped. Reset the clock so recovery is
            // judged from the resume, not the outage.
            self.last_progress = Instant::now();
        }

        // Completeness ledger: records that should have reached the store
        // since the previous check (produced minus still-buffered —
        // buffering is lag, not loss) versus records that actually did.
        // The collector owns the evaluation so its `/healthz` and `/slo`
        // endpoints and this watchdog agree by construction.
        let produced: u64 = agents.iter().map(|a| a.produced()).sum();
        let buffered: u64 = agents.iter().map(|a| a.buffered()).sum();
        let deliverable = produced.saturating_sub(buffered);
        let stored_delta = records.saturating_sub(self.last_stored);
        let deliverable_delta = deliverable.saturating_sub(self.last_deliverable);
        cluster
            .collector()
            .set_completeness(stored_delta, deliverable_delta);
        self.last_stored = records;
        self.last_deliverable = deliverable;
        for status in cluster.collector().slo_statuses() {
            if !status.healthy {
                findings.push(WatchdogFinding::SloDegraded {
                    kind: status.kind,
                    burn_permille: (status.burn_rate * 1000.0).round().max(0.0) as u64,
                });
            }
        }

        // Durable-store IO health: errors since the previous check, plus
        // the fail-closed flag (a failed-closed WAL refuses every upload
        // until a checkpoint rewrites it). Recovery resets the counters,
        // so the delta saturates to zero across a restart.
        let (io_errors, failed_closed) = match cluster.collector().store().lock().durability_stats()
        {
            Some(d) => (d.io_errors, d.failed),
            None => (0, false),
        };
        let io_delta = io_errors.saturating_sub(self.last_io_errors);
        if io_delta > 0 || failed_closed {
            findings.push(WatchdogFinding::StoreIoErrors {
                errors: io_delta,
                failed_closed,
            });
        }
        self.last_io_errors = io_errors;

        let registry = pingmesh_obs::registry();
        for f in &findings {
            registry
                .counter_with(
                    "pingmesh_realmode_watchdog_findings_total",
                    &[("class", f.class())],
                )
                .inc();
        }
        findings
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::Toxic;
    use crate::cluster::ClusterOptions;
    use pingmesh_controller::GeneratorConfig;
    use pingmesh_topology::TopologySpec;

    #[tokio::test]
    async fn healthy_cluster_has_no_findings() {
        let cluster =
            LocalCluster::start(TopologySpec::single_tiny(), GeneratorConfig::default()).await;
        let mut agent = cluster.agent(ServerId(0));
        agent.poll_controller().await;
        agent.probe_round_once().await;
        agent.flush(true).await;
        let mut wd = RealWatchdog::new(Duration::from_secs(60));
        let findings = wd.check(&cluster, &[&agent]).await;
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[tokio::test]
    async fn stalled_controller_and_stopped_agents_are_reported() {
        let cluster = LocalCluster::start_with(
            TopologySpec::single_tiny(),
            GeneratorConfig::default(),
            ClusterOptions {
                controller_replicas: 1,
                chaos: true,
                seed: 3,
                ..ClusterOptions::default()
            },
        )
        .await;
        let mut agent = cluster.agent(ServerId(1));
        agent.poll_controller().await;
        // Kill the only controller replica; the agent fail-closes after
        // three polls and the watchdog sees both conditions.
        cluster.controller_chaos(0).set_toxic(Toxic::Refuse);
        for _ in 0..3 {
            agent.poll_controller().await;
        }
        assert!(agent.is_stopped());
        let mut wd = RealWatchdog::new(Duration::from_secs(60));
        wd.call_deadline = Duration::from_millis(500);
        let findings = wd.check(&cluster, &[&agent]).await;
        assert!(
            findings.contains(&WatchdogFinding::ControllerClusterDown),
            "{findings:?}"
        );
        assert!(
            findings
                .iter()
                .any(|f| matches!(f, WatchdogFinding::AgentsStopped(1))),
            "{findings:?}"
        );
        // Restore: the findings clear on the next check.
        cluster.controller_chaos(0).set_toxic(Toxic::Pass);
        agent.poll_controller().await;
        assert!(!agent.is_stopped());
        let findings = wd.check(&cluster, &[&agent]).await;
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[tokio::test]
    async fn wal_io_errors_surface_as_store_io_findings() {
        use pingmesh_dsa::store::StreamName;
        use pingmesh_types::{
            DcId, PodId, PodsetId, ProbeKind, ProbeOutcome, ProbeRecord, QosClass, SimTime,
        };
        let cluster =
            LocalCluster::start(TopologySpec::single_tiny(), GeneratorConfig::default()).await;
        let agent = cluster.agent(ServerId(0));
        let mut wd = RealWatchdog::new(Duration::from_secs(60));
        wd.check(&cluster, &[&agent]).await; // baseline, no findings carried
                                             // The background compactor would heal a failed-closed WAL
                                             // (failed → always checkpoint-due) before the watchdog
                                             // looks; stop it so the failure stays observable.
        cluster.collector().stop_background_compaction();
        // Exhaust the WAL retry budget: the next append fails closed.
        cluster.collector().store().lock().inject_wal_io_errors(5);
        let rec = ProbeRecord {
            ts: SimTime(1),
            src: ServerId(0),
            dst: ServerId(1),
            src_pod: PodId(0),
            dst_pod: PodId(0),
            src_podset: PodsetId(0),
            dst_podset: PodsetId(0),
            src_dc: DcId(0),
            dst_dc: DcId(0),
            kind: ProbeKind::TcpSyn,
            qos: QosClass::High,
            src_port: 40_000,
            dst_port: 8_100,
            outcome: ProbeOutcome::Timeout,
        };
        {
            let mut store = cluster.collector().store().lock();
            assert!(
                !store.append(StreamName { dc: DcId(0) }, &[rec], SimTime(1)),
                "append must fail closed after exhausting retries"
            );
        }
        let findings = wd.check(&cluster, &[&agent]).await;
        assert!(
            findings.iter().any(|f| matches!(
                f,
                WatchdogFinding::StoreIoErrors {
                    failed_closed: true,
                    ..
                }
            )),
            "{findings:?}"
        );
    }

    #[tokio::test]
    async fn cleared_pinglists_surface_as_no_pinglists_served() {
        let cluster =
            LocalCluster::start(TopologySpec::single_tiny(), GeneratorConfig::default()).await;
        cluster.controller_state().clear_pinglists();
        let agent = cluster.agent(ServerId(2));
        let mut wd = RealWatchdog::new(Duration::from_secs(60));
        let findings = wd.check(&cluster, &[&agent]).await;
        assert!(
            findings.contains(&WatchdogFinding::NoPinglistsServed),
            "{findings:?}"
        );
    }
}
