//! The record collector: Cosmos's upload front-end over real HTTP.
//!
//! "The Pingmesh Agent periodically uploads the aggregated records to
//! Cosmos. Similar to the Pingmesh Controller, the front-end of Cosmos
//! uses load-balancer and VIP to scale out." (§3.5)
//!
//! Endpoints:
//!
//! * `POST /upload` — body: JSON array of [`ProbeRecord`]s. `200` on
//!   success; `503` while the store is marked down (drives the agents'
//!   retry-then-discard path).
//! * `GET /stats` — JSON `{records, logical_bytes, physical_bytes}`.
//! * `GET /metrics` — Prometheus-style text encoding of the global
//!   [`pingmesh_obs`] registry snapshot.
//! * `GET /events?since=SEQ` — JSON-lines dump of buffered events with
//!   sequence numbers greater than `SEQ` (`since=0` or no query: all
//!   currently buffered events). The response carries exact drop
//!   accounting in `x-pingmesh-events-dropped` (lifetime ring drops) and
//!   `x-pingmesh-events-last-seq` headers, so a scraper can tell loss
//!   from quiet.
//! * `GET /healthz` — machine-readable pipeline health: per-stage
//!   provenance span counts/latencies plus data-quality SLO status and
//!   (for durable stores) WAL/segment durability statistics.
//! * `GET /slo` — just the SLO evaluations, as a JSON array.
//!
//! The collector's store is **durable by default**: [`Collector::new`]
//! roots a WAL + segment directory in a fresh scratch path (removed when
//! the last clone drops) so every acknowledged upload survives a crash.
//! [`Collector::in_memory`] opts out; [`Collector::durable_at`] pins the
//! data directory for an externally managed lifetime. The
//! `crash_and_recover*` chaos hooks rebuild the store from disk alone,
//! exactly as a restarted process would.

use parking_lot::Mutex;
use pingmesh_dsa::store::{CosmosStore, StreamName};
use pingmesh_dsa::{unique_dir, DirGuard, DurabilityStats, ExpectedPairs, QualityConfig};
use pingmesh_httpx::{Conn, Request, Response};
use pingmesh_obs::slo::{self, SloKind, SloStatus};
use pingmesh_obs::SampleValue;
use pingmesh_types::{PingmeshError, ProbeRecord, SimTime};
use serde::Serialize;
use std::collections::BTreeSet;
use std::io;
use std::net::SocketAddr;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tokio::net::{TcpListener, TcpStream};

/// Group commit: fsync the WAL once this many acknowledged bytes sit
/// unsynced, so upload throughput amortizes the sync cost.
const GROUP_COMMIT_BYTES: u64 = 4 * 1024 * 1024;

/// Group commit: fsync the WAL once the oldest unsynced byte is this
/// old (µs), bounding crash exposure under trickle traffic.
const GROUP_COMMIT_LAG_US: u64 = 500_000;

/// How often the background compactor wakes to check the WAL. Each
/// check is one lock acquisition and a stat read — cheap against a
/// 500 ms group-commit lag bound.
const COMPACTOR_POLL: Duration = Duration::from_millis(20);

/// Collector statistics, served on `GET /stats`.
#[derive(Debug, Clone, Copy, Serialize, serde::Deserialize)]
pub struct CollectorStats {
    /// Records stored.
    pub records: u64,
    /// Bytes before replication.
    pub logical_bytes: u64,
    /// Bytes including replication.
    pub physical_bytes: u64,
}

/// One SLO evaluation in the `/healthz` and `/slo` JSON surfaces.
#[derive(Debug, Clone, Serialize, serde::Deserialize)]
pub struct SloJson {
    /// SLO kind: `coverage`, `completeness`, `freshness`, or
    /// `wal_flush_lag`.
    pub slo: String,
    /// Measured value (ratio, or age in µs for freshness).
    pub value: f64,
    /// Configured target.
    pub target: f64,
    /// Whether the value meets the target.
    pub healthy: bool,
    /// Error-budget burn rate (1.0 = exactly at target).
    pub burn_rate: f64,
}

/// One pipeline stage in the `/healthz` JSON surface.
#[derive(Debug, Clone, Serialize, serde::Deserialize)]
pub struct StageHealth {
    /// Stage name (one of [`pingmesh_obs::trace::STAGES`]).
    pub stage: String,
    /// Provenance spans recorded for this stage so far.
    pub spans: u64,
    /// Median stage duration, µs (0 until a span lands).
    pub p50_us: u64,
    /// 99th-percentile stage duration, µs (0 until a span lands).
    pub p99_us: u64,
}

/// The machine-readable health report served on `GET /healthz`.
#[derive(Debug, Clone, Serialize, serde::Deserialize)]
pub struct HealthReport {
    /// True when every evaluated SLO is within target.
    pub healthy: bool,
    /// Every pipeline stage, in pipeline order, with span statistics.
    pub stages: Vec<StageHealth>,
    /// The data-quality SLO evaluations.
    pub slos: Vec<SloJson>,
    /// Durable-store statistics (`None` when running in-memory).
    pub durability: Option<DurabilityStats>,
}

/// Mutable SLO inputs shared between the watchdog (which installs
/// expectations) and the HTTP surface (which evaluates them on demand).
struct SloState {
    cfg: QualityConfig,
    expected: Option<ExpectedPairs>,
    /// Windowed `(stored, produced)` record counts, fed by the watchdog
    /// (only it can see agent-side production counters).
    completeness: Option<(u64, u64)>,
}

/// The collector: a shared store behind an HTTP front-end.
#[derive(Clone)]
pub struct Collector {
    store: Arc<Mutex<CosmosStore>>,
    accepting: Arc<AtomicBool>,
    /// Reference point for freshness: record timestamps are agent-epoch
    /// micros, and agents start moments after the collector, so ages
    /// measured against this epoch overestimate by the startup skew —
    /// pick freshness targets with a margin for it.
    epoch: Instant,
    slo: Arc<Mutex<SloState>>,
    /// Keeps the default scratch data directory alive across clones;
    /// removed from disk when the last clone drops. `None` when the
    /// store is in-memory or the caller owns the directory.
    data_dir: Option<Arc<DirGuard>>,
    /// WAL-growth threshold (bytes) for background compaction.
    compact_threshold: Arc<AtomicU64>,
    /// The background compactor, shared across clones and joined when
    /// the last clone drops. `None` for in-memory stores.
    compactor: Option<Arc<Compactor>>,
}

/// Owns the background compaction thread: WAL group-commit syncs under
/// trickle traffic and segment compaction both run here, off the upload
/// request path, so an upload's latency never includes a WAL rewrite.
/// The manifest commit inside a checkpoint stays synchronous with the
/// store lock held — readers and uploads always see a consistent store —
/// but no request thread ever performs it.
struct Compactor {
    stop: Arc<AtomicBool>,
    thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Drop for Compactor {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.lock().take() {
            let _ = t.join();
        }
    }
}

/// One compactor pass: lag-triggered group-commit fsync, then a
/// checkpoint if the WAL has outgrown `threshold`. Failures surface via
/// the store's IO counters and fail-closed flag — and a failed-closed
/// WAL is always checkpoint-due, so the next pass retries the heal.
fn compactor_pass(store: &Mutex<CosmosStore>, threshold: u64) {
    let mut store = store.lock();
    if let Some(d) = store.durability_stats() {
        if d.unsynced_bytes > 0 && d.flush_lag_us >= GROUP_COMMIT_LAG_US {
            let _ = store.sync_wal();
        }
    }
    if matches!(store.maybe_checkpoint_with(threshold), Ok(true)) {
        pingmesh_obs::registry()
            .counter("pingmesh_realmode_background_checkpoints_total")
            .inc();
    }
}

impl Default for Collector {
    fn default() -> Self {
        Self::new()
    }
}

impl Collector {
    /// A collector over a durable store rooted in a fresh scratch
    /// directory (removed when the last clone drops). Acknowledged
    /// uploads are WAL-logged before they land in memory, so a crashed
    /// collector recovers them. Falls back to a purely in-memory store
    /// (counting `pingmesh_realmode_collector_durable_fallback_total`)
    /// if the scratch directory cannot be initialised.
    pub fn new() -> Self {
        let dir = unique_dir("collector");
        match CosmosStore::durable(&dir, 250_000, 3) {
            Ok(store) => Self::from_store(store, Some(Arc::new(DirGuard::new(dir)))),
            Err(_) => {
                pingmesh_obs::registry()
                    .counter("pingmesh_realmode_collector_durable_fallback_total")
                    .inc();
                Self::in_memory()
            }
        }
    }

    /// A collector over a purely in-memory store: no WAL, no segments,
    /// nothing survives a crash. For benchmarks and tests that measure
    /// the store itself rather than its durability.
    pub fn in_memory() -> Self {
        Self::from_store(CosmosStore::with_defaults(), None)
    }

    /// A collector over a durable store rooted at `dir`, which the
    /// caller owns (nothing is removed on drop). Opening an existing
    /// directory runs crash recovery first.
    pub fn durable_at(dir: &Path) -> io::Result<Self> {
        Ok(Self::from_store(
            CosmosStore::durable(dir, 250_000, 3)?,
            None,
        ))
    }

    fn from_store(store: CosmosStore, data_dir: Option<Arc<DirGuard>>) -> Self {
        let durable = store.durable_dir().is_some();
        let store = Arc::new(Mutex::new(store));
        let compact_threshold = Arc::new(AtomicU64::new(pingmesh_dsa::store::WAL_CHECKPOINT_BYTES));
        let compactor = durable.then(|| {
            let stop = Arc::new(AtomicBool::new(false));
            let thread = {
                let (store, stop, threshold) = (
                    Arc::clone(&store),
                    Arc::clone(&stop),
                    Arc::clone(&compact_threshold),
                );
                std::thread::spawn(move || {
                    while !stop.load(Ordering::SeqCst) {
                        compactor_pass(&store, threshold.load(Ordering::SeqCst));
                        std::thread::sleep(COMPACTOR_POLL);
                    }
                })
            };
            Arc::new(Compactor {
                stop,
                thread: Mutex::new(Some(thread)),
            })
        });
        Self {
            store,
            accepting: Arc::new(AtomicBool::new(true)),
            epoch: Instant::now(),
            slo: Arc::new(Mutex::new(SloState {
                cfg: QualityConfig::default(),
                expected: None,
                completeness: None,
            })),
            data_dir,
            compact_threshold,
            compactor,
        }
    }

    /// Lowers (or raises) the WAL-growth threshold that triggers
    /// background compaction. Tests use a small value so a checkpoint
    /// becomes due after a few uploads.
    pub fn set_compaction_threshold(&self, bytes: u64) {
        self.compact_threshold.store(bytes, Ordering::SeqCst);
    }

    /// Stops the background compactor (joining its thread). After this,
    /// nothing compacts the store — the upload path never does — so the
    /// WAL grows until the process restarts. An ops escape hatch, and
    /// how the append-path regression test proves uploads don't compact.
    pub fn stop_background_compaction(&self) {
        if let Some(c) = &self.compactor {
            c.stop.store(true, Ordering::SeqCst);
            if let Some(t) = c.thread.lock().take() {
                let _ = t.join();
            }
        }
    }

    /// The scratch data directory this collector owns (`None` when
    /// in-memory, or when the caller rooted it via
    /// [`Collector::durable_at`]).
    pub fn scratch_dir(&self) -> Option<&Path> {
        self.data_dir.as_deref().map(DirGuard::path)
    }

    /// Chaos hook: simulates a process crash right now. All in-memory
    /// state is discarded and the store is rebuilt from disk alone
    /// (manifest + segments + WAL replay), exactly as a restarted
    /// collector would. Every holder of the shared store handle observes
    /// the recovered state, and the mutation-epoch handle is adopted so
    /// read tiers revalidate instead of serving dangling fingerprints.
    /// Returns `Ok(false)` (doing nothing) for in-memory collectors.
    pub fn crash_and_recover(&self) -> io::Result<bool> {
        let mut store = self.store.lock();
        let Some(dir) = store.durable_dir().map(Path::to_path_buf) else {
            return Ok(false);
        };
        let (cap, repl) = (store.extent_cap(), store.replication());
        let epoch = store.epoch_handle();
        *store = CosmosStore::recover_with(&dir, cap, repl, Some(epoch))?;
        Ok(true)
    }

    /// Chaos hook: crash mid-append — leaves a torn, never-acknowledged
    /// WAL frame for `records` at the log tail, then recovers. The torn
    /// tail must be truncated away: it was never acknowledged to any
    /// agent, so losing it loses nothing.
    pub fn crash_and_recover_mid_append(&self, records: &[ProbeRecord]) -> io::Result<bool> {
        if !records.is_empty() {
            let mut store = self.store.lock();
            if store.durable_dir().is_none() {
                return Ok(false);
            }
            let stream = StreamName {
                dc: records[0].src_dc,
            };
            store.simulate_torn_append(stream, records)?;
        }
        self.crash_and_recover()
    }

    /// Chaos hook: crash mid-compaction — the next generation's segment
    /// files and WAL are on disk but the manifest still names the old
    /// generation, then recovers. Recovery must follow the manifest and
    /// garbage-collect the orphaned new-generation files.
    pub fn crash_and_recover_mid_compaction(&self) -> io::Result<bool> {
        {
            let mut store = self.store.lock();
            if store.durable_dir().is_none() {
                return Ok(false);
            }
            store.simulate_compaction_crash()?;
        }
        self.crash_and_recover()
    }

    /// Replaces the data-quality targets used by `/healthz` and `/slo`.
    pub fn set_quality_config(&self, cfg: QualityConfig) {
        self.slo.lock().cfg = cfg;
    }

    /// Installs the expected pod-pair set, enabling the coverage SLO.
    pub fn set_expected_pairs(&self, expected: ExpectedPairs) {
        self.slo.lock().expected = Some(expected);
    }

    /// Updates the windowed completeness ledger: `stored` records that
    /// reached the store out of `produced` records agents emitted.
    pub fn set_completeness(&self, stored: u64, produced: u64) {
        self.slo.lock().completeness = Some((stored, produced));
    }

    /// Evaluates the data-quality SLOs against the live store right now.
    /// Coverage requires [`Self::set_expected_pairs`], completeness
    /// requires [`Self::set_completeness`]; freshness always evaluates
    /// (an empty store counts as stale since the epoch). Publishes the
    /// `pingmesh_slo_*` gauges as a side effect.
    pub fn slo_statuses(&self) -> Vec<SloStatus> {
        let now = SimTime(self.epoch.elapsed().as_micros() as u64);
        let state = self.slo.lock();
        let store = self.store.lock();
        let mut out = Vec::with_capacity(4);
        if let Some(expected) = &state.expected {
            let horizon = state.cfg.coverage_horizon.as_micros();
            let from = SimTime(now.as_micros().saturating_sub(horizon));
            let mut observed: BTreeSet<(pingmesh_types::PodId, pingmesh_types::PodId)> =
                BTreeSet::new();
            for chunk in store.scan_all_window_chunks(from, now) {
                for r in chunk {
                    if expected.contains(r.src_pod, r.dst_pod) {
                        observed.insert((r.src_pod, r.dst_pod));
                    }
                }
            }
            let value = if expected.is_empty() {
                1.0
            } else {
                observed.len() as f64 / expected.len() as f64
            };
            out.push(slo::evaluate(
                SloKind::Coverage,
                value,
                state.cfg.coverage_target,
            ));
        }
        if let Some((stored, produced)) = state.completeness {
            let value = if produced == 0 {
                1.0
            } else {
                stored.min(produced) as f64 / produced as f64
            };
            out.push(slo::evaluate(
                SloKind::Completeness,
                value,
                state.cfg.completeness_target,
            ));
        }
        let newest = store.newest_ts_per_stream();
        let registry = pingmesh_obs::registry();
        let mut worst_age = if newest.is_empty() {
            now.as_micros()
        } else {
            0
        };
        for (stream, ts) in &newest {
            let age = now.as_micros().saturating_sub(ts.as_micros());
            worst_age = worst_age.max(age);
            let label = format!("{}", stream.dc);
            registry
                .gauge_with("pingmesh_dsa_freshness_us", &[("stream", label.as_str())])
                .set(age as f64);
        }
        out.push(slo::evaluate(
            SloKind::Freshness,
            worst_age as f64,
            state.cfg.freshness_target.as_micros() as f64,
        ));
        if let Some(d) = store.durability_stats() {
            // Crash exposure: how old the oldest acknowledged-but-
            // unsynced WAL byte is. In-memory stores skip the SLO —
            // everything is crash-exposed there by design.
            out.push(slo::evaluate(
                SloKind::WalFlushLag,
                d.flush_lag_us as f64,
                state.cfg.wal_flush_lag_target.as_micros() as f64,
            ));
        }
        slo::publish(&out);
        out
    }

    /// Builds the `/healthz` payload: SLO status plus a per-stage view of
    /// the provenance-span histograms in the global registry. Stages with
    /// no spans yet report zero counts rather than disappearing, so a
    /// dashboard always renders the full pipeline.
    pub fn health_report(&self) -> HealthReport {
        let slos: Vec<SloJson> = self
            .slo_statuses()
            .iter()
            .map(|s| SloJson {
                slo: s.kind.as_str().to_string(),
                value: s.value,
                target: s.target,
                healthy: s.healthy,
                burn_rate: s.burn_rate,
            })
            .collect();
        let snap = pingmesh_obs::registry().snapshot();
        let stages = pingmesh_obs::trace::STAGES
            .iter()
            .map(|&stage| {
                let sample = snap.samples.iter().find(|(id, _)| {
                    id.name == "pingmesh_stage_duration_us"
                        && id.labels.iter().any(|(k, v)| k == "stage" && v == stage)
                });
                match sample {
                    Some((_, SampleValue::Histogram(h))) => StageHealth {
                        stage: stage.to_string(),
                        spans: h.count,
                        p50_us: h.p50_us.unwrap_or(0),
                        p99_us: h.p99_us.unwrap_or(0),
                    },
                    _ => StageHealth {
                        stage: stage.to_string(),
                        spans: 0,
                        p50_us: 0,
                        p99_us: 0,
                    },
                }
            })
            .collect();
        let healthy = slos.iter().all(|s| s.healthy);
        let durability = self.store.lock().durability_stats();
        HealthReport {
            healthy,
            stages,
            slos,
            durability,
        }
    }

    /// The shared store (scan it for analysis).
    pub fn store(&self) -> &Arc<Mutex<CosmosStore>> {
        &self.store
    }

    /// Simulates a storage outage: uploads get `503` until re-enabled.
    pub fn set_accepting(&self, accepting: bool) {
        self.accepting.store(accepting, Ordering::SeqCst);
    }

    /// Current statistics.
    pub fn stats(&self) -> CollectorStats {
        let store = self.store.lock();
        CollectorStats {
            records: store.record_count(),
            logical_bytes: store.logical_bytes(),
            physical_bytes: store.physical_bytes(),
        }
    }

    /// Handles one parsed request (pure; unit-testable without sockets).
    pub fn respond(&self, req: &Request) -> Response {
        let registry = pingmesh_obs::registry();
        let (path, query) = match req.path.split_once('?') {
            Some((p, q)) => (p, Some(q)),
            None => (req.path.as_str(), None),
        };
        // Fixed route set keeps metric label cardinality bounded even when
        // clients request arbitrary paths.
        let route = match path {
            "/upload" => "upload",
            "/stats" => "stats",
            "/metrics" => "metrics",
            "/events" => "events",
            "/healthz" => "healthz",
            "/slo" => "slo",
            _ => "other",
        };
        registry
            .counter_with("pingmesh_realmode_requests_total", &[("route", route)])
            .inc();
        match (req.method.as_str(), path) {
            ("POST", "/upload") => {
                if !self.accepting.load(Ordering::SeqCst) {
                    registry
                        .counter("pingmesh_realmode_uploads_rejected_total")
                        .inc();
                    return Response::unavailable();
                }
                let Ok(records) = serde_json::from_slice::<Vec<ProbeRecord>>(&req.body) else {
                    return Response::bad_request("malformed record batch");
                };
                if records.is_empty() {
                    return Response::ok(b"empty".to_vec());
                }
                let mut store = self.store.lock();
                // Batches are per-agent and agents live in one DC; the
                // first record names the stream.
                let stream = StreamName {
                    dc: records[0].src_dc,
                };
                // The upload timestamp is the newest record's; the real
                // store cares only about content timestamps.
                let t = records.iter().map(|r| r.ts).max().unwrap_or(SimTime::ZERO);
                if !store.append(stream, &records, t) {
                    // The WAL failed closed (or the store is down): the
                    // batch was NOT acknowledged and the agent's
                    // retry-then-discard path takes over. Never claim
                    // "stored" for data that would not survive a crash.
                    registry
                        .counter("pingmesh_realmode_uploads_rejected_total")
                        .inc();
                    return Response::unavailable();
                }
                registry
                    .counter("pingmesh_realmode_uploaded_records_total")
                    .add(records.len() as u64);
                // Group commit: fsync once the unsynced tail is big
                // enough that the sync amortizes across many acks. The
                // lag-triggered sync and WAL compaction run on the
                // background compactor thread, never here — an upload's
                // latency must not include a WAL rewrite.
                if let Some(d) = store.durability_stats() {
                    if d.unsynced_bytes >= GROUP_COMMIT_BYTES {
                        let _ = store.sync_wal();
                    }
                }
                Response::ok(b"stored".to_vec())
            }
            ("GET", "/stats") => {
                let Ok(body) = serde_json::to_vec(&self.stats()) else {
                    return Response::internal_error("stats serialize failed");
                };
                let mut resp = Response::ok(body);
                resp.headers
                    .push(("content-type".into(), "application/json".into()));
                resp
            }
            ("GET", "/metrics") => {
                let body = pingmesh_obs::encode::snapshot_to_prometheus(&registry.snapshot());
                let mut resp = Response::ok(body.into_bytes());
                resp.headers
                    .push(("content-type".into(), "text/plain; version=0.0.4".into()));
                resp
            }
            ("GET", "/events") => {
                // `?since=SEQ` returns only events with seq > SEQ, so a
                // scraper can poll incrementally. Malformed values are 400
                // rather than silently treated as zero.
                let since = match query
                    .and_then(|q| q.split('&').find_map(|kv| kv.strip_prefix("since=")))
                {
                    Some(v) => match v.parse::<u64>() {
                        Ok(n) => n,
                        Err(_) => return Response::bad_request("bad since= value"),
                    },
                    None => 0,
                };
                let ring = pingmesh_obs::events();
                let evs = ring.snapshot_since(since);
                let body = pingmesh_obs::encode::events_to_jsonl(&evs);
                let mut resp = Response::ok(body.into_bytes());
                resp.headers
                    .push(("content-type".into(), "application/x-ndjson".into()));
                // Exact drop accounting: with these two headers a client
                // can compute how many events it can never see as
                // (last_seq − since) − returned_count, and attribute them
                // to ring drops via the lifetime drop counter delta.
                resp.headers.push((
                    "x-pingmesh-events-dropped".into(),
                    ring.dropped().to_string(),
                ));
                resp.headers.push((
                    "x-pingmesh-events-last-seq".into(),
                    ring.last_seq().to_string(),
                ));
                resp
            }
            ("GET", "/healthz") => {
                let Ok(body) = serde_json::to_vec(&self.health_report()) else {
                    return Response::internal_error("healthz serialize failed");
                };
                let mut resp = Response::ok(body);
                resp.headers
                    .push(("content-type".into(), "application/json".into()));
                resp
            }
            ("GET", "/slo") => {
                let Ok(body) = serde_json::to_vec(&self.health_report().slos) else {
                    return Response::internal_error("slo serialize failed");
                };
                let mut resp = Response::ok(body);
                resp.headers
                    .push(("content-type".into(), "application/json".into()));
                resp
            }
            _ => Response::not_found(),
        }
    }
}

/// Responses above this size flush in deadline-bounded chunks, so one
/// huge `/events` dump to a slow-draining scraper can neither blow a
/// single write deadline nor wedge the connection task (satisfying the
/// same bounded-I/O discipline as every other collector write).
const CHUNKED_FLUSH_THRESHOLD: usize = 64 * 1024;

async fn handle_conn(collector: Collector, stream: TcpStream) {
    let mut conn = Conn::new(stream);
    loop {
        let req = match conn.read_request().await {
            Ok(r) => r,
            Err(_) => break,
        };
        let keep = req.keep_alive();
        let mut resp = collector.respond(&req);
        if keep {
            resp.set_keep_alive();
        }
        conn.queue_response(&resp);
        // Serve a pipelined burst before flushing; large bodies go out
        // in deadline-bounded chunks rather than one unbounded write.
        if !(keep && conn.buffered_request_ready()) {
            let flushed = if conn.queued_bytes() > CHUNKED_FLUSH_THRESHOLD {
                conn.flush_chunked_with(CHUNKED_FLUSH_THRESHOLD, pingmesh_httpx::DEFAULT_IO_TIMEOUT)
                    .await
            } else {
                conn.flush().await
            };
            if flushed.is_err() {
                break;
            }
        }
        if !keep {
            break;
        }
    }
}

/// Runs the collector HTTP service until dropped.
pub async fn serve_collector(listener: TcpListener, collector: Collector) {
    loop {
        match listener.accept().await {
            Ok((stream, _)) => {
                tokio::spawn(handle_conn(collector.clone(), stream));
            }
            Err(_) => tokio::task::yield_now().await,
        }
    }
}

/// Agent-side upload client: POSTs a record batch to the collector.
/// Bounded by the httpx default deadline per phase.
pub async fn upload_records(
    addr: SocketAddr,
    records: &[ProbeRecord],
) -> Result<(), PingmeshError> {
    upload_records_with(addr, records, pingmesh_httpx::DEFAULT_IO_TIMEOUT).await
}

/// Like [`upload_records`], with an explicit per-phase `deadline`:
/// connect, request write, and response read each get at most `deadline`,
/// so a stalled or black-holed collector can never wedge an agent's
/// upload path. Deadline expiry surfaces as [`PingmeshError::Timeout`].
pub async fn upload_records_with(
    addr: SocketAddr,
    records: &[ProbeRecord],
    deadline: std::time::Duration,
) -> Result<(), PingmeshError> {
    let body = serde_json::to_vec(records).map_err(|e| PingmeshError::Parse(e.to_string()))?;
    let mut stream = tokio::time::timeout(deadline, TcpStream::connect(addr))
        .await
        .map_err(|_| PingmeshError::Timeout(format!("connect to collector {addr}")))?
        .map_err(|e| PingmeshError::UploadFailed(e.to_string()))?;
    let req = Request::post("/upload", body);
    pingmesh_httpx::write_request_with(&mut stream, &req, deadline)
        .await
        .map_err(|e| upload_err(e, "upload request"))?;
    let resp = pingmesh_httpx::read_response_with(&mut stream, deadline)
        .await
        .map_err(|e| upload_err(e, "upload response"))?;
    if resp.status == 200 {
        Ok(())
    } else {
        Err(PingmeshError::UploadFailed(format!(
            "collector status {}",
            resp.status
        )))
    }
}

/// Fetches collector statistics (default deadline per phase).
pub async fn fetch_stats(addr: SocketAddr) -> Result<CollectorStats, PingmeshError> {
    fetch_stats_with(addr, pingmesh_httpx::DEFAULT_IO_TIMEOUT).await
}

/// Like [`fetch_stats`], with an explicit per-phase `deadline`.
pub async fn fetch_stats_with(
    addr: SocketAddr,
    deadline: std::time::Duration,
) -> Result<CollectorStats, PingmeshError> {
    let mut stream = tokio::time::timeout(deadline, TcpStream::connect(addr))
        .await
        .map_err(|_| PingmeshError::Timeout(format!("connect to collector {addr}")))?
        .map_err(|e| PingmeshError::UploadFailed(e.to_string()))?;
    pingmesh_httpx::write_request_with(&mut stream, &Request::get("/stats"), deadline)
        .await
        .map_err(|e| upload_err(e, "stats request"))?;
    let resp = pingmesh_httpx::read_response_with(&mut stream, deadline)
        .await
        .map_err(|e| upload_err(e, "stats response"))?;
    serde_json::from_slice(&resp.body).map_err(|e| PingmeshError::Parse(e.to_string()))
}

fn upload_err(e: pingmesh_httpx::HttpError, what: &str) -> PingmeshError {
    match e {
        pingmesh_httpx::HttpError::Timeout => PingmeshError::Timeout(what.to_string()),
        other => PingmeshError::UploadFailed(other.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pingmesh_types::{
        DcId, PodId, PodsetId, ProbeKind, ProbeOutcome, QosClass, ServerId, SimDuration,
    };

    fn rec(ts: u64) -> ProbeRecord {
        ProbeRecord {
            ts: SimTime(ts),
            src: ServerId(0),
            dst: ServerId(1),
            src_pod: PodId(0),
            dst_pod: PodId(0),
            src_podset: PodsetId(0),
            dst_podset: PodsetId(0),
            src_dc: DcId(0),
            dst_dc: DcId(0),
            kind: ProbeKind::TcpSyn,
            qos: QosClass::High,
            src_port: 40_000,
            dst_port: 8_100,
            outcome: ProbeOutcome::Success {
                rtt: SimDuration::from_micros(123),
            },
        }
    }

    #[test]
    fn respond_upload_and_stats() {
        let c = Collector::new();
        let batch = vec![rec(1), rec(2)];
        let req = Request::post("/upload", serde_json::to_vec(&batch).unwrap());
        assert_eq!(c.respond(&req).status, 200);
        assert_eq!(c.stats().records, 2);
        let stats_resp = c.respond(&Request::get("/stats"));
        let stats: CollectorStats = serde_json::from_slice(&stats_resp.body).unwrap();
        assert_eq!(stats.records, 2);
        assert!(stats.physical_bytes >= stats.logical_bytes);
    }

    #[test]
    fn malformed_and_unknown_requests() {
        let c = Collector::new();
        assert_eq!(
            c.respond(&Request::post("/upload", b"not json".to_vec()))
                .status,
            400
        );
        assert_eq!(c.respond(&Request::get("/nope")).status, 404);
        assert_eq!(c.respond(&Request::get("/upload")).status, 404);
        // Empty batch is accepted but stores nothing.
        assert_eq!(
            c.respond(&Request::post("/upload", b"[]".to_vec())).status,
            200
        );
        assert_eq!(c.stats().records, 0);
    }

    fn wal_checkpoints(c: &Collector) -> u64 {
        c.store()
            .lock()
            .durability_stats()
            .map_or(0, |d| d.checkpoints)
    }

    #[test]
    fn append_path_never_compacts_inline() {
        let c = Collector::new();
        assert!(c.store().lock().durable_dir().is_some(), "durable store");
        // With the compactor stopped, nothing else may checkpoint; set a
        // threshold small enough that uploads alone would have forced
        // several inline checkpoints under the old behaviour.
        c.stop_background_compaction();
        c.set_compaction_threshold(4 * 1024);
        // Opening the store may commit a recovery checkpoint of its own;
        // measure upload-time checkpoints against this baseline.
        let base = wal_checkpoints(&c);
        let mut uploaded = 0u64;
        for i in 0..40u64 {
            let batch: Vec<ProbeRecord> = (0..50).map(|j| rec(i * 50 + j)).collect();
            let req = Request::post("/upload", serde_json::to_vec(&batch).unwrap());
            assert_eq!(c.respond(&req).status, 200);
            uploaded += 50;
        }
        let stats = c.store().lock().durability_stats().expect("durable");
        assert!(
            stats.wal_bytes > 4 * 1024,
            "the WAL outgrew the threshold ({} bytes)",
            stats.wal_bytes
        );
        assert_eq!(
            stats.checkpoints, base,
            "no upload may pay for a checkpoint — that is the background \
             compactor's job"
        );
        assert_eq!(c.stats().records, uploaded);
        // The work was deferred, not dropped: a direct compactor pass
        // performs exactly the checkpoint the uploads never ran.
        compactor_pass(c.store(), 4 * 1024);
        assert_eq!(wal_checkpoints(&c), base + 1);
        assert_eq!(c.stats().records, uploaded, "compaction loses nothing");
    }

    #[test]
    fn background_compactor_checkpoints_without_any_request() {
        let c = Collector::new();
        c.set_compaction_threshold(4 * 1024);
        let base = wal_checkpoints(&c);
        for i in 0..20u64 {
            let batch: Vec<ProbeRecord> = (0..50).map(|j| rec(i * 50 + j)).collect();
            let req = Request::post("/upload", serde_json::to_vec(&batch).unwrap());
            assert_eq!(c.respond(&req).status, 200);
        }
        // No further requests: the compactor thread must pick the
        // checkpoint up on its own within a few poll intervals.
        let deadline = Instant::now() + Duration::from_secs(10);
        while wal_checkpoints(&c) <= base && Instant::now() < deadline {
            std::thread::sleep(COMPACTOR_POLL);
        }
        assert!(
            wal_checkpoints(&c) > base,
            "background compactor never checkpointed"
        );
        assert_eq!(c.stats().records, 1000);
    }

    #[test]
    fn adversarial_uploads_get_400_and_never_wedge_the_collector() {
        let c = Collector::new();
        let valid = serde_json::to_vec(&vec![rec(1), rec(2)]).unwrap();
        // A valid batch truncated mid-record (simulates a connection cut
        // after content-length was already honoured by a buggy client).
        let truncated = valid[..valid.len() / 2].to_vec();
        // Structurally valid JSON of the wrong shape.
        let cases: Vec<Vec<u8>> = vec![
            truncated,
            b"{\"records\": 3}".to_vec(),
            b"[{\"ts\": \"yesterday\"}]".to_vec(),
            b"null".to_vec(),
            b"[null]".to_vec(),
            vec![0xff, 0xfe, 0x00, 0x80], // invalid UTF-8
            vec![b'['; 4096],             // deeply nested open brackets
        ];
        for (i, body) in cases.into_iter().enumerate() {
            assert_eq!(
                c.respond(&Request::post("/upload", body)).status,
                400,
                "case {i} must be rejected, not panic"
            );
        }
        assert_eq!(c.stats().records, 0, "nothing adversarial was stored");
        // The collector still serves every route after the abuse.
        assert_eq!(c.respond(&Request::post("/upload", valid)).status, 200);
        assert_eq!(c.stats().records, 2);
        for route in ["/stats", "/metrics", "/events", "/healthz", "/slo"] {
            assert_eq!(c.respond(&Request::get(route)).status, 200, "{route}");
        }
    }

    #[test]
    fn outage_mode_returns_503() {
        let c = Collector::new();
        c.set_accepting(false);
        let batch = vec![rec(1)];
        let req = Request::post("/upload", serde_json::to_vec(&batch).unwrap());
        assert_eq!(c.respond(&req).status, 503);
        assert_eq!(c.stats().records, 0);
        c.set_accepting(true);
        assert_eq!(c.respond(&req).status, 200);
    }

    #[test]
    fn metrics_endpoint_serves_prometheus_text() {
        let c = Collector::new();
        // Touch a metric through the normal path first so the exposition
        // is non-trivial.
        let batch = vec![rec(1)];
        let req = Request::post("/upload", serde_json::to_vec(&batch).unwrap());
        assert_eq!(c.respond(&req).status, 200);
        let resp = c.respond(&Request::get("/metrics"));
        assert_eq!(resp.status, 200);
        let text = String::from_utf8(resp.body).unwrap();
        assert!(text.contains("pingmesh_realmode_requests_total"));
        assert!(text.contains("pingmesh_realmode_uploaded_records_total"));
        assert!(text.contains("# TYPE"));
    }

    #[test]
    fn healthz_reports_every_stage_and_installed_slos() {
        let c = Collector::new();
        let resp = c.respond(&Request::get("/healthz"));
        assert_eq!(resp.status, 200);
        let report: HealthReport = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(report.stages.len(), pingmesh_obs::trace::STAGES.len());
        for (st, name) in report.stages.iter().zip(pingmesh_obs::trace::STAGES) {
            assert_eq!(st.stage, name, "stages render in pipeline order");
        }
        // Freshness always evaluates; the ratio SLOs appear only once
        // their inputs are installed.
        assert!(report.slos.iter().any(|s| s.slo == "freshness"));
        assert!(!report.slos.iter().any(|s| s.slo == "completeness"));
        c.set_expected_pairs(ExpectedPairs::default());
        c.set_completeness(90, 100);
        let resp = c.respond(&Request::get("/slo"));
        assert_eq!(resp.status, 200);
        let slos: Vec<SloJson> = serde_json::from_slice(&resp.body).unwrap();
        let cov = slos.iter().find(|s| s.slo == "coverage").unwrap();
        assert!(cov.healthy, "no expected pairs → vacuously covered");
        let comp = slos.iter().find(|s| s.slo == "completeness").unwrap();
        assert!((comp.value - 0.9).abs() < 1e-9);
        assert!(!comp.healthy, "0.9 misses the default 0.95 target");
        assert!(comp.burn_rate > 0.0);
    }

    #[test]
    fn events_endpoint_carries_drop_accounting_headers() {
        pingmesh_obs::set_enabled(true);
        let c = Collector::new();
        pingmesh_obs::emit!(Info, "realmode.test", "drop_header_probe");
        let resp = c.respond(&Request::get("/events?since=0"));
        assert_eq!(resp.status, 200);
        let header = |name: &str| {
            resp.headers
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v.parse::<u64>().unwrap())
                .unwrap_or_else(|| panic!("missing header {name}"))
        };
        let last_seq = header("x-pingmesh-events-last-seq");
        assert!(last_seq >= 1);
        assert_eq!(last_seq, pingmesh_obs::events().last_seq());
        assert_eq!(
            header("x-pingmesh-events-dropped"),
            pingmesh_obs::events().dropped()
        );
    }

    #[test]
    fn events_endpoint_filters_by_since() {
        pingmesh_obs::set_enabled(true);
        let c = Collector::new();
        let before = pingmesh_obs::events().last_seq();
        pingmesh_obs::emit!(Info, "realmode.test", "events_endpoint_probe", "n" => 1u64);
        let resp = c.respond(&Request::get(&format!("/events?since={before}")));
        assert_eq!(resp.status, 200);
        let body = String::from_utf8(resp.body).unwrap();
        assert!(body.contains("events_endpoint_probe"), "body: {body}");
        // Everything has been seen: the incremental poll comes back empty.
        let after = pingmesh_obs::events().last_seq();
        let resp = c.respond(&Request::get(&format!("/events?since={after}")));
        assert!(!String::from_utf8(resp.body)
            .unwrap()
            .contains("events_endpoint_probe"));
        // Malformed cursor is a client error.
        assert_eq!(c.respond(&Request::get("/events?since=xyz")).status, 400);
    }

    #[tokio::test]
    async fn metrics_and_events_scrape_over_real_sockets() {
        pingmesh_obs::set_enabled(true);
        let c = Collector::new();
        let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().unwrap();
        tokio::spawn(serve_collector(listener, c.clone()));

        upload_records(addr, &[rec(1), rec(2)]).await.unwrap();
        pingmesh_obs::emit!(Info, "realmode.test", "scrape_marker");

        async fn get(addr: SocketAddr, path: &str) -> Response {
            let mut stream = TcpStream::connect(addr).await.unwrap();
            pingmesh_httpx::write_request(&mut stream, &Request::get(path))
                .await
                .unwrap();
            pingmesh_httpx::read_response(&mut stream).await.unwrap()
        }

        let metrics = get(addr, "/metrics").await;
        assert_eq!(metrics.status, 200);
        let text = String::from_utf8(metrics.body).unwrap();
        assert!(text.contains("pingmesh_realmode_uploaded_records_total"));

        let events = get(addr, "/events?since=0").await;
        assert_eq!(events.status, 200);
        let body = String::from_utf8(events.body).unwrap();
        assert!(body.contains("scrape_marker"), "body: {body}");
    }

    #[tokio::test]
    async fn upload_over_real_sockets() {
        let c = Collector::new();
        let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().unwrap();
        tokio::spawn(serve_collector(listener, c.clone()));

        let batch: Vec<ProbeRecord> = (0..100).map(rec).collect();
        upload_records(addr, &batch).await.unwrap();
        let stats = fetch_stats(addr).await.unwrap();
        assert_eq!(stats.records, 100);
        // And the shared store is directly scannable for analysis.
        assert_eq!(
            c.store()
                .lock()
                .scan_all_window(SimTime(0), SimTime(1_000))
                .count(),
            100
        );
    }

    #[tokio::test]
    async fn keep_alive_connection_serves_many_requests() {
        let c = Collector::new();
        let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().unwrap();
        tokio::spawn(serve_collector(listener, c.clone()));

        let stream = TcpStream::connect(addr).await.unwrap();
        let mut conn = Conn::new(stream);
        let deadline = std::time::Duration::from_secs(10);
        // Upload, stats, and healthz all ride one connection.
        let batch = vec![rec(1), rec(2), rec(3)];
        let mut up = Request::post("/upload", serde_json::to_vec(&batch).unwrap());
        up.set_keep_alive();
        conn.queue_request(&up);
        conn.flush_with(deadline).await.unwrap();
        assert_eq!(conn.read_response_with(deadline).await.unwrap().status, 200);
        for path in ["/stats", "/healthz", "/stats"] {
            let mut req = Request::get(path);
            req.set_keep_alive();
            conn.queue_request(&req);
            conn.flush_with(deadline).await.unwrap();
            let resp = conn.read_response_with(deadline).await.unwrap();
            assert_eq!(resp.status, 200, "{path}");
        }
        let stats: CollectorStats = {
            let mut req = Request::get("/stats");
            req.set_keep_alive();
            conn.queue_request(&req);
            conn.flush_with(deadline).await.unwrap();
            serde_json::from_slice(&conn.read_response_with(deadline).await.unwrap().body).unwrap()
        };
        assert_eq!(stats.records, 3);
    }

    #[tokio::test]
    async fn large_events_response_survives_chunked_flush() {
        pingmesh_obs::set_enabled(true);
        let c = Collector::new();
        let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().unwrap();
        tokio::spawn(serve_collector(listener, c.clone()));

        // Fill the ring far enough that the JSON-lines dump exceeds the
        // chunked-flush threshold, then fetch it in one conditional-free
        // GET over a keep-alive connection and verify it arrives whole.
        let since = pingmesh_obs::events().last_seq();
        for i in 0..4000u64 {
            pingmesh_obs::emit!(Info, "realmode.test", "bulk_event_payload_padding_padding",
                "i" => i, "j" => i * 31, "k" => i * 977);
        }
        let stream = TcpStream::connect(addr).await.unwrap();
        let mut conn = Conn::new(stream);
        let deadline = std::time::Duration::from_secs(10);
        let mut req = Request::get(&format!("/events?since={since}"));
        req.set_keep_alive();
        conn.queue_request(&req);
        conn.flush_with(deadline).await.unwrap();
        let resp = conn.read_response_with(deadline).await.unwrap();
        assert_eq!(resp.status, 200);
        assert!(
            resp.body.len() > CHUNKED_FLUSH_THRESHOLD,
            "dump must exercise the chunked path ({} bytes)",
            resp.body.len()
        );
        let text = String::from_utf8(resp.body).unwrap();
        // Content-length framing plus chunked flushing must deliver every
        // line intact: each non-empty line parses as one JSON event.
        for line in text.lines().filter(|l| !l.is_empty()) {
            let v: serde_json::Value = serde_json::from_str(line).expect("intact JSONL line");
            assert!(v.get("seq").is_some(), "line: {line}");
        }
        // The connection is still usable after the big dump.
        let mut req = Request::get("/stats");
        req.set_keep_alive();
        conn.queue_request(&req);
        conn.flush_with(deadline).await.unwrap();
        assert_eq!(conn.read_response_with(deadline).await.unwrap().status, 200);
    }

    #[tokio::test]
    async fn upload_to_stalled_collector_times_out_not_hangs() {
        // A collector that accepts and never reads must cost the agent at
        // most its per-phase deadline.
        let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().unwrap();
        let holder = tokio::spawn(async move {
            let mut held = Vec::new();
            while let Ok((stream, _)) = listener.accept().await {
                held.push(stream);
            }
        });
        let t0 = std::time::Instant::now();
        let err = upload_records_with(addr, &[rec(1)], std::time::Duration::from_millis(250))
            .await
            .unwrap_err();
        assert!(matches!(err, PingmeshError::Timeout(_)), "{err}");
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(3),
            "{:?}",
            t0.elapsed()
        );
        holder.abort();
    }

    #[test]
    fn collector_is_durable_by_default_and_recovers_acked_uploads() {
        let c = Collector::new();
        assert!(c.store().lock().durable_dir().is_some(), "durable default");
        let batch = vec![rec(1), rec(2), rec(3)];
        let req = Request::post("/upload", serde_json::to_vec(&batch).unwrap());
        assert_eq!(c.respond(&req).status, 200);
        assert!(c.crash_and_recover().unwrap());
        assert_eq!(c.stats().records, 3, "every acknowledged record survives");
        // The recovered store keeps serving uploads and scans.
        let more = vec![rec(10)];
        let req = Request::post("/upload", serde_json::to_vec(&more).unwrap());
        assert_eq!(c.respond(&req).status, 200);
        assert_eq!(c.stats().records, 4);
        assert_eq!(
            c.store()
                .lock()
                .scan_all_window(SimTime(0), SimTime(1_000))
                .count(),
            4
        );
    }

    #[test]
    fn crash_mid_append_loses_only_the_unacked_tail() {
        let c = Collector::new();
        let acked = vec![rec(1), rec(2)];
        let req = Request::post("/upload", serde_json::to_vec(&acked).unwrap());
        assert_eq!(c.respond(&req).status, 200);
        // The torn frame was never acknowledged to any agent, so
        // truncating it away loses nothing the system promised to keep.
        let torn = vec![rec(50), rec(51)];
        assert!(c.crash_and_recover_mid_append(&torn).unwrap());
        assert_eq!(c.stats().records, 2);
        let stats = c.store().lock().durability_stats().unwrap();
        assert!(stats.truncated_entries > 0, "torn tail was truncated");
    }

    #[test]
    fn crash_mid_compaction_recovers_from_the_old_manifest() {
        let c = Collector::new();
        let batch: Vec<ProbeRecord> = (0..500u64).map(rec).collect();
        let req = Request::post("/upload", serde_json::to_vec(&batch).unwrap());
        assert_eq!(c.respond(&req).status, 200);
        assert!(c.crash_and_recover_mid_compaction().unwrap());
        assert_eq!(c.stats().records, 500, "orphaned generation is ignored");
        let req = Request::post("/upload", serde_json::to_vec(&vec![rec(9_999)]).unwrap());
        assert_eq!(c.respond(&req).status, 200, "store accepts after recovery");
    }

    #[test]
    fn in_memory_collector_skips_durability_surfaces() {
        let c = Collector::in_memory();
        assert!(!c.crash_and_recover().unwrap(), "nothing to recover");
        let resp = c.respond(&Request::get("/healthz"));
        let report: HealthReport = serde_json::from_slice(&resp.body).unwrap();
        assert!(report.durability.is_none());
        assert!(!report.slos.iter().any(|s| s.slo == "wal_flush_lag"));
    }

    #[test]
    fn healthz_reports_wal_durability_and_flush_lag_slo() {
        let c = Collector::new();
        let req = Request::post("/upload", serde_json::to_vec(&vec![rec(1)]).unwrap());
        assert_eq!(c.respond(&req).status, 200);
        let resp = c.respond(&Request::get("/healthz"));
        let report: HealthReport = serde_json::from_slice(&resp.body).unwrap();
        let d = report.durability.expect("durable by default");
        assert_eq!(d.wal_entries, 1);
        assert!(report.slos.iter().any(|s| s.slo == "wal_flush_lag"));
    }

    #[tokio::test]
    async fn upload_to_down_collector_fails() {
        let c = Collector::new();
        c.set_accepting(false);
        let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().unwrap();
        tokio::spawn(serve_collector(listener, c.clone()));
        let err = upload_records(addr, &[rec(1)]).await.unwrap_err();
        assert!(matches!(err, PingmeshError::UploadFailed(_)));
    }
}
