//! A dependency-free fault-injecting TCP proxy for chaos drills.
//!
//! [`ChaosProxy`] interposes on localhost between the agents and a
//! controller or collector endpoint and injects scripted "toxics" —
//! the failure modes a real data-center control plane exhibits and that
//! the paper's always-on design (§3.3.2, §3.4.2, §3.5) must survive:
//!
//! * [`Toxic::Refuse`] — accept, then slam the connection shut (a
//!   crashed service whose port is still bound, or an LB draining a
//!   dead backend);
//! * [`Toxic::Stall`] — accept and then forward *nothing* (slowloris /
//!   a wedged process holding sockets open). The only defence is a
//!   client-side deadline;
//! * [`Toxic::Latency`] — fixed plus seeded-jitter delay before the
//!   response bytes flow;
//! * [`Toxic::Truncate`] — forward only a prefix of the response body,
//!   then half-close (a mid-transfer crash);
//! * [`Toxic::Reset`] — forward a prefix, then tear the whole
//!   connection down abruptly (under the std socket API this surfaces
//!   to the client as an EOF/It close mid-body, the closest portable
//!   approximation of an RST);
//! * [`Toxic::Flaky`] — apply an inner toxic to a seeded-deterministic
//!   subset of connections (per-mille probability).
//!
//! The active toxic is swappable at runtime through [`ChaosHandle`], so a
//! drill script can kill, degrade, and restore an endpoint mid-run. With
//! a fixed seed the proxy's probabilistic decisions are a pure function
//! of the connection order, keeping drills reproducible.

use crate::backoff::{next_u64, seed_state};
use parking_lot::Mutex;
use std::net::{Shutdown, SocketAddr};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::{OwnedReadHalf, OwnedWriteHalf, TcpListener, TcpStream};

/// Cadence at which a stalled connection re-checks whether the stall has
/// been lifted (so "restore" unblocks held sockets promptly).
const STALL_POLL: Duration = Duration::from_millis(20);
/// Hard ceiling on how long a stalled connection is held; a safety net so
/// an abandoned proxy cannot accumulate sockets forever.
const STALL_MAX: Duration = Duration::from_secs(30);

/// One injectable fault. See the module docs for the taxonomy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Toxic {
    /// Transparent pass-through (the healthy state).
    Pass,
    /// Accept, then immediately close the connection.
    Refuse,
    /// Accept and hold the connection open, forwarding nothing, until the
    /// toxic is changed (or a hard internal ceiling).
    Stall,
    /// Delay the response by `delay` plus a seeded jitter in
    /// `[0, jitter]`, then forward normally.
    Latency {
        /// Fixed component of the injected delay.
        delay: Duration,
        /// Upper bound of the uniformly drawn jitter component.
        jitter: Duration,
    },
    /// Forward only the first `after` response bytes, then half-close
    /// the client connection (clean FIN, short body).
    Truncate {
        /// Response bytes forwarded before the cut.
        after: usize,
    },
    /// Forward only the first `after` response bytes, then shut the
    /// connection down in both directions mid-body.
    Reset {
        /// Response bytes forwarded before the teardown.
        after: usize,
    },
    /// Apply `toxic` to roughly `permille`/1000 of connections (decided
    /// per-connection by the proxy's seeded generator), pass the rest.
    Flaky {
        /// Probability of applying the inner toxic, in per-mille.
        permille: u16,
        /// The fault injected when the roll hits.
        toxic: Box<Toxic>,
    },
}

impl Toxic {
    /// Short static label for metrics (bounded cardinality).
    fn kind(&self) -> &'static str {
        match self {
            Toxic::Pass => "pass",
            Toxic::Refuse => "refuse",
            Toxic::Stall => "stall",
            Toxic::Latency { .. } => "latency",
            Toxic::Truncate { .. } => "truncate",
            Toxic::Reset { .. } => "reset",
            Toxic::Flaky { .. } => "flaky",
        }
    }
}

struct ChaosState {
    toxic: Mutex<Toxic>,
    rng: Mutex<u64>,
    connections: AtomicU64,
    injected: AtomicU64,
}

/// Runtime control surface of a [`ChaosProxy`] (cheaply cloneable).
#[derive(Clone)]
pub struct ChaosHandle {
    state: Arc<ChaosState>,
}

impl ChaosHandle {
    /// Swaps the active toxic; applies to connections accepted from now
    /// on, and lifts an in-progress [`Toxic::Stall`] hold.
    pub fn set_toxic(&self, toxic: Toxic) {
        pingmesh_obs::registry()
            .counter_with("pingmesh_chaos_toxic_set_total", &[("kind", toxic.kind())])
            .inc();
        pingmesh_obs::emit!(Info, "realmode.chaos", "toxic_set", "kind" => toxic.kind());
        *self.state.toxic.lock() = toxic;
    }

    /// The currently active toxic.
    pub fn toxic(&self) -> Toxic {
        self.state.toxic.lock().clone()
    }

    /// Connections accepted so far.
    pub fn connections(&self) -> u64 {
        self.state.connections.load(Ordering::Relaxed)
    }

    /// Connections that had a fault injected (anything but pass-through).
    pub fn injected(&self) -> u64 {
        self.state.injected.load(Ordering::Relaxed)
    }
}

/// A fault-injecting TCP proxy bound on localhost in front of `upstream`.
pub struct ChaosProxy {
    addr: SocketAddr,
    handle: ChaosHandle,
    accept_task: tokio::task::JoinHandle<()>,
}

impl ChaosProxy {
    /// Binds a fresh localhost port and starts proxying to `upstream`
    /// with [`Toxic::Pass`] active. `seed` drives every probabilistic
    /// decision the proxy makes (jitter draws, flaky rolls).
    pub async fn start(upstream: SocketAddr, seed: u64) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0").await?;
        let addr = listener.local_addr()?;
        let state = Arc::new(ChaosState {
            toxic: Mutex::new(Toxic::Pass),
            rng: Mutex::new(seed_state(seed)),
            connections: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        });
        let handle = ChaosHandle {
            state: state.clone(),
        };
        let accept_task = tokio::spawn(async move {
            loop {
                match listener.accept().await {
                    Ok((client, _)) => {
                        let state = state.clone();
                        tokio::spawn(handle_conn(state, client, upstream));
                    }
                    Err(_) => tokio::task::yield_now().await,
                }
            }
        });
        Ok(ChaosProxy {
            addr,
            handle,
            accept_task,
        })
    }

    /// The proxy's listening address (point clients here).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The runtime control handle.
    pub fn handle(&self) -> &ChaosHandle {
        &self.handle
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        // Stop accepting; in-flight connection tasks finish on their own.
        self.accept_task.abort();
    }
}

/// Resolves the *effective* toxic for one connection: unwraps
/// [`Toxic::Flaky`] by rolling the seeded generator.
fn effective_toxic(state: &ChaosState) -> Toxic {
    let snapshot = state.toxic.lock().clone();
    match snapshot {
        Toxic::Flaky { permille, toxic } => {
            let roll = next_u64(&mut state.rng.lock()) % 1000;
            if roll < u64::from(permille) {
                *toxic
            } else {
                Toxic::Pass
            }
        }
        other => other,
    }
}

async fn handle_conn(state: Arc<ChaosState>, client: TcpStream, upstream: SocketAddr) {
    state.connections.fetch_add(1, Ordering::Relaxed);
    let toxic = effective_toxic(&state);
    let registry = pingmesh_obs::registry();
    if toxic != Toxic::Pass {
        state.injected.fetch_add(1, Ordering::Relaxed);
        registry
            .counter_with(
                "pingmesh_chaos_faults_injected_total",
                &[("kind", toxic.kind())],
            )
            .inc();
    }
    match toxic {
        Toxic::Refuse => {
            let _ = client.shutdown_now(Shutdown::Both);
            // dropped: the client sees an immediate close
        }
        Toxic::Stall => {
            // Hold the socket open and forward nothing. The client's only
            // way out is its own deadline — exactly what the drill
            // verifies. Lifting the stall (or the ceiling) drops the
            // connection so "restore" unsticks everything promptly.
            let held_under = state.toxic.lock().clone();
            let t0 = std::time::Instant::now();
            while *state.toxic.lock() == held_under && t0.elapsed() < STALL_MAX {
                tokio::time::sleep(STALL_POLL).await;
            }
            let _ = client.shutdown_now(Shutdown::Both);
        }
        Toxic::Pass => proxy_through(client, upstream, None, None, false).await,
        Toxic::Latency { delay, jitter } => {
            let extra = if jitter.is_zero() {
                Duration::ZERO
            } else {
                let micros = jitter.as_micros() as u64;
                Duration::from_micros(next_u64(&mut state.rng.lock()) % (micros + 1))
            };
            proxy_through(client, upstream, Some(delay + extra), None, false).await;
        }
        Toxic::Truncate { after } => {
            proxy_through(client, upstream, None, Some(after), false).await
        }
        Toxic::Reset { after } => proxy_through(client, upstream, None, Some(after), true).await,
        Toxic::Flaky { .. } => unreachable!("unwrapped by effective_toxic"),
    }
}

/// Connects upstream and pumps bytes both ways. `response_delay` is slept
/// before the first upstream→client chunk; `response_budget` caps the
/// upstream→client bytes, after which the client connection is
/// half-closed (`abrupt == false`) or fully torn down (`abrupt == true`).
async fn proxy_through(
    client: TcpStream,
    upstream: SocketAddr,
    response_delay: Option<Duration>,
    response_budget: Option<usize>,
    abrupt: bool,
) {
    let upstream =
        match tokio::time::timeout(Duration::from_secs(5), TcpStream::connect(upstream)).await {
            Ok(Ok(s)) => s,
            _ => {
                let _ = client.shutdown_now(Shutdown::Both);
                return;
            }
        };
    let Ok((cr, cw)) = client.into_split() else {
        return;
    };
    let Ok((ur, uw)) = upstream.into_split() else {
        return;
    };
    // Request direction: client → upstream, unmodified.
    let request_pump = tokio::spawn(async move {
        let _ = pump(cr, uw, None).await;
    });
    // Response direction: upstream → client, where the toxics bite.
    if let Some(d) = response_delay {
        tokio::time::sleep(d).await;
    }
    let (cw, exhausted) = pump(ur, cw, response_budget).await;
    let _ = cw.shutdown_now(if abrupt && exhausted {
        Shutdown::Both
    } else {
        Shutdown::Write
    });
    // The shutdown above unblocks the request pump (same fd) if the
    // teardown was abrupt; otherwise it ends when either side closes.
    let _ = request_pump.await;
}

/// Copies bytes from `r` to `w` until EOF, error, or `budget` exhaustion.
/// Returns the writer (so the caller can shut it down) and whether the
/// budget ran out.
async fn pump(
    mut r: OwnedReadHalf,
    mut w: OwnedWriteHalf,
    budget: Option<usize>,
) -> (OwnedWriteHalf, bool) {
    let mut remaining = budget;
    let mut chunk = [0u8; 4096];
    loop {
        let n = match r.read(&mut chunk).await {
            Ok(0) | Err(_) => return (w, false),
            Ok(n) => n,
        };
        let allowed = match remaining {
            None => n,
            Some(rem) => n.min(rem),
        };
        if allowed > 0 && w.write_all(&chunk[..allowed]).await.is_err() {
            return (w, false);
        }
        if let Some(rem) = &mut remaining {
            *rem -= allowed;
            if *rem == 0 {
                return (w, true);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pingmesh_httpx::{read_request, write_response, HttpError, Request, Response};

    /// A one-shot HTTP upstream answering every request with `body`.
    async fn upstream_server(body: Vec<u8>) -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().unwrap();
        tokio::spawn(async move {
            loop {
                let Ok((mut stream, _)) = listener.accept().await else {
                    continue;
                };
                let body = body.clone();
                tokio::spawn(async move {
                    if read_request(&mut stream).await.is_ok() {
                        let _ = write_response(&mut stream, &Response::ok(body)).await;
                    }
                });
            }
        });
        addr
    }

    async fn get_via(addr: SocketAddr, deadline: Duration) -> Result<Response, HttpError> {
        let mut stream = tokio::time::timeout(deadline, TcpStream::connect(addr))
            .await
            .map_err(|_| HttpError::Timeout)?
            .map_err(HttpError::Io)?;
        pingmesh_httpx::write_request_with(&mut stream, &Request::get("/x"), deadline).await?;
        pingmesh_httpx::read_response_with(&mut stream, deadline).await
    }

    #[tokio::test]
    async fn pass_through_is_transparent() {
        let up = upstream_server(b"hello".to_vec()).await;
        let proxy = ChaosProxy::start(up, 1).await.unwrap();
        let resp = get_via(proxy.addr(), Duration::from_secs(5)).await.unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"hello");
        assert_eq!(proxy.handle().connections(), 1);
        assert_eq!(proxy.handle().injected(), 0);
    }

    #[tokio::test]
    async fn refuse_fails_fast_not_slow() {
        let up = upstream_server(b"hello".to_vec()).await;
        let proxy = ChaosProxy::start(up, 1).await.unwrap();
        proxy.handle().set_toxic(Toxic::Refuse);
        let t0 = std::time::Instant::now();
        let err = get_via(proxy.addr(), Duration::from_secs(5)).await;
        assert!(err.is_err(), "refused connection must error");
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "refusal must be prompt, not a deadline burn"
        );
        assert_eq!(proxy.handle().injected(), 1);
    }

    #[tokio::test]
    async fn stall_burns_exactly_the_deadline() {
        let up = upstream_server(b"hello".to_vec()).await;
        let proxy = ChaosProxy::start(up, 1).await.unwrap();
        proxy.handle().set_toxic(Toxic::Stall);
        let t0 = std::time::Instant::now();
        let err = get_via(proxy.addr(), Duration::from_millis(300)).await;
        assert!(matches!(err, Err(HttpError::Timeout)), "{err:?}");
        let elapsed = t0.elapsed();
        assert!(elapsed >= Duration::from_millis(250), "{elapsed:?}");
        assert!(elapsed < Duration::from_secs(3), "{elapsed:?}");
        // Restoring lifts the stall and new connections flow again.
        proxy.handle().set_toxic(Toxic::Pass);
        let resp = get_via(proxy.addr(), Duration::from_secs(5)).await.unwrap();
        assert_eq!(resp.body, b"hello");
    }

    #[tokio::test]
    async fn latency_delays_but_delivers() {
        let up = upstream_server(b"hello".to_vec()).await;
        let proxy = ChaosProxy::start(up, 99).await.unwrap();
        proxy.handle().set_toxic(Toxic::Latency {
            delay: Duration::from_millis(150),
            jitter: Duration::from_millis(50),
        });
        let t0 = std::time::Instant::now();
        let resp = get_via(proxy.addr(), Duration::from_secs(5)).await.unwrap();
        assert_eq!(resp.body, b"hello");
        assert!(t0.elapsed() >= Duration::from_millis(150));
    }

    #[tokio::test]
    async fn truncate_yields_short_body_error() {
        let up = upstream_server(vec![b'x'; 4096]).await;
        let proxy = ChaosProxy::start(up, 1).await.unwrap();
        // Cut after 64 bytes — inside the response (head alone is bigger
        // than nothing but the body certainly doesn't fit).
        proxy.handle().set_toxic(Toxic::Truncate { after: 64 });
        let err = get_via(proxy.addr(), Duration::from_secs(5)).await;
        assert!(
            matches!(
                err,
                Err(HttpError::UnexpectedEof) | Err(HttpError::Malformed(_))
            ),
            "truncated response must not parse: {err:?}"
        );
    }

    #[tokio::test]
    async fn reset_mid_body_errors_promptly() {
        let up = upstream_server(vec![b'y'; 8192]).await;
        let proxy = ChaosProxy::start(up, 1).await.unwrap();
        proxy.handle().set_toxic(Toxic::Reset { after: 100 });
        let t0 = std::time::Instant::now();
        let err = get_via(proxy.addr(), Duration::from_secs(5)).await;
        assert!(err.is_err(), "reset connection must error");
        assert!(t0.elapsed() < Duration::from_secs(3), "must fail fast");
    }

    #[tokio::test]
    async fn flaky_is_deterministic_under_a_fixed_seed() {
        async fn run_trial(seed: u64) -> Vec<bool> {
            let up = upstream_server(b"ok".to_vec()).await;
            let proxy = ChaosProxy::start(up, seed).await.unwrap();
            proxy.handle().set_toxic(Toxic::Flaky {
                permille: 400,
                toxic: Box::new(Toxic::Refuse),
            });
            let mut outcomes = Vec::new();
            for _ in 0..20 {
                outcomes.push(get_via(proxy.addr(), Duration::from_secs(2)).await.is_ok());
            }
            outcomes
        }
        let a = run_trial(7).await;
        let b = run_trial(7).await;
        let c = run_trial(8).await;
        assert_eq!(a, b, "same seed ⇒ same fault schedule");
        assert!(a.iter().any(|ok| *ok), "some connections must pass");
        assert!(a.iter().any(|ok| !*ok), "some connections must fail");
        // Not a hard guarantee in general, but with 20 draws at p=0.4 two
        // different seeds colliding exactly is effectively impossible.
        assert_ne!(a, c, "different seeds ⇒ different schedules");
    }
}
