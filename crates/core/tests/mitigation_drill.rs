//! End-to-end mitigation drills: the closed loop, detect → drain →
//! verify → un-drain, run against the full simulated deployment.
//!
//! Three scenarios:
//! * a type-1 black-hole across podset 0's Leaf tier — the whole-podset
//!   symptom escalates past the ToR reload path, traceroute pins a Leaf,
//!   the engine drains it, verification fails while the fault is live and
//!   passes once it clears, and a recurring fault on the same device
//!   after its verified un-drain is drained again and held for humans;
//! * the tier drain-budget guard — with a budget that floors to zero the
//!   engine refuses to act and pages instead;
//! * a podset power-down — the Figure-8(b) signature drains the podset
//!   out of pinglist generation and re-includes it once power returns.

use pingmesh_core::controller::{FindingKind, MitigationConfig, MitigationState};
use pingmesh_core::netsim::faults::{ActiveFault, FaultKind};
use pingmesh_core::netsim::DcProfile;
use pingmesh_core::topology::{ServiceMap, Topology, TopologySpec};
use pingmesh_core::types::{PingTarget, PodsetId, SimDuration, SimTime, SwitchId};
use pingmesh_core::{MitDevice, Orchestrator, OrchestratorConfig};
use std::sync::Arc;

fn mins(m: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_mins(m)
}

fn orch_with(config: OrchestratorConfig) -> Orchestrator {
    let topo = Arc::new(Topology::build(TopologySpec::single_tiny()).unwrap());
    Orchestrator::new(topo, vec![DcProfile::ideal()], ServiceMap::new(), config)
}

/// Black-holes the whole Leaf tier of podset 0: a corrupted-TCAM fault on
/// both leaves, so every affected (src, dst) pair fails on *every* ECMP
/// path — the deterministic whole-podset symptom §5.1 escalates on.
fn blackhole_podset0_leaves(o: &mut Orchestrator, from: SimTime, until: Option<SimTime>) {
    let leaves: Vec<SwitchId> = o.net().topology().leaves_of_podset(PodsetId(0)).collect();
    assert_eq!(leaves.len(), 2);
    for leaf in leaves {
        o.net_mut().faults_mut().add_switch_fault(
            leaf,
            ActiveFault {
                kind: FaultKind::BlackholeIp { frac: 0.7 },
                from,
                until,
            },
        );
    }
}

/// The headline drill: detection → drain → (failed, then passed)
/// verification → un-drain → recurrence escalation.
#[test]
fn blackhole_drill_detect_drain_verify_undrain_escalate() {
    let mut o = orch_with(OrchestratorConfig::default());
    // Fault lives from the start (so the first hourly window [0,60) shows
    // the deterministic symptom) until minute 85 (the "vendor fixed it"
    // moment) — the minute-80 verification must fail, the minute-90 one
    // must pass.
    blackhole_podset0_leaves(&mut o, SimTime::ZERO, Some(mins(85)));

    // The hourly black-hole job fires at minute 70, sees every ToR of
    // podset 0 symptomatic, escalates, and the traceroute campaign pins
    // a Leaf, which the engine drains out of ECMP.
    o.run_until(mins(75));
    assert!(
        !o.outputs().escalations.is_empty(),
        "whole-podset symptom must escalate"
    );
    assert!(
        !o.outputs().traceroutes.is_empty(),
        "escalation must be localized by traceroute"
    );
    assert_eq!(o.mitigation().drains(), 1);
    let drained = o.mitigation().drained_devices();
    let MitDevice::Switch(leaf) = drained[0] else {
        panic!("a switch must be drained, got {drained:?}");
    };
    assert!(
        o.net()
            .topology()
            .leaves_of_podset(PodsetId(0))
            .any(|l| l == leaf),
        "the drained device must be a podset-0 Leaf, got {leaf}"
    );
    assert!(o.net().faults().is_isolated(leaf), "drain actuated in ECMP");
    assert_eq!(
        o.mitigation().kind_of(MitDevice::Switch(leaf)),
        Some(FindingKind::Blackhole)
    );

    // Minute-80 verification runs against the still-live fault and keeps
    // the drain; after the fault clears at 85, the minute-90 attempt
    // proves the device healthy and un-drains it.
    o.run_until(mins(91));
    let dev = MitDevice::Switch(leaf);
    assert_eq!(
        o.mitigation().state_of(dev),
        Some(MitigationState::Undrained)
    );
    assert!(!o.net().faults().is_isolated(leaf), "back in ECMP");
    assert_eq!(o.mitigation().undrains(), 1);
    assert!(
        o.mitigation()
            .transitions()
            .iter()
            .any(|t| t.reason == "still_unhealthy"),
        "the live-fault verification attempt must have failed first"
    );

    // Recurrence: the same device goes bad again (this time dropping
    // packets at random). The incident for window [90,100) fires at
    // minute 110, lands inside the cooldown, and is suppressed — no
    // flapping; the [100,110) incident at minute 120 is past the cooldown
    // but inside the recurrence window, so the engine drains the device
    // again and holds it for humans.
    let mut o2 = o; // (rebind to make the phase change obvious)
    o2.net_mut().faults_mut().add_switch_fault(
        leaf,
        ActiveFault {
            kind: FaultKind::SilentRandomDrop { prob: 0.05 },
            from: mins(92),
            until: None,
        },
    );
    o2.run_until(mins(122));
    assert_eq!(
        o2.mitigation().state_of(dev),
        Some(MitigationState::Escalated)
    );
    assert!(o2.net().faults().is_isolated(leaf), "held drained for RMA");
    assert!(o2.mitigation().escalations() >= 1);
    assert!(
        o2.mitigation()
            .transitions()
            .iter()
            .any(|t| t.reason == "recurrence"),
        "the escalation must be logged as a recurrence"
    );
    assert_eq!(
        o2.mitigation().drains(),
        2,
        "exactly one re-drain — the cooldown suppressed the early finding"
    );

    // Recovery is visible in the data: the first post-un-drain window has
    // no deterministically failing pairs (the recurring fault drops
    // packets at random; it never kills a pair outright).
    let agg = o2
        .pipeline()
        .store
        .merged_window_aggregate(mins(90), mins(100));
    assert!(
        agg.pairs.values().all(|v| !v.is_deterministic_failure()),
        "post-recovery window must be clean of deterministic failures"
    );

    // Every transition the engine took is counted in the obs registry.
    let counted: u64 = ["pending", "drained", "verifying", "undrained", "escalated"]
        .iter()
        .map(|s| {
            pingmesh_obs::registry()
                .counter_with("pingmesh_mitigation_transitions_total", &[("to", s)])
                .get()
        })
        .sum();
    assert!(
        counted >= o2.mitigation().transitions().len() as u64,
        "obs transition counters must cover the log ({counted} < {})",
        o2.mitigation().transitions().len()
    );
}

/// The fail-safe: a drain budget that floors to zero means the engine
/// never touches the tier — it pages instead, and nothing is isolated.
#[test]
fn tier_guard_blocks_drain_and_pages() {
    let mut o = orch_with(OrchestratorConfig {
        mitigation: MitigationConfig {
            // 4 leaves in the DC: floor(0.1 × 4) = 0 — nothing drainable.
            max_drain_fraction: 0.1,
            ..MitigationConfig::default()
        },
        ..OrchestratorConfig::default()
    });
    blackhole_podset0_leaves(&mut o, SimTime::ZERO, None);
    o.run_until(mins(72));
    assert!(
        !o.outputs().escalations.is_empty(),
        "detection still works with the guard closed"
    );
    assert_eq!(o.mitigation().drains(), 0, "the guard must block the drain");
    let topo = o.net().topology().clone();
    for leaf in topo.leaves_of_podset(PodsetId(0)) {
        assert!(!o.net().faults().is_isolated(leaf));
    }
    assert!(
        o.mitigation().escalations() >= 1,
        "a blocked drain is a page to humans"
    );
}

/// Podset power-down: the watchdog signature (podset silent as a source,
/// deterministically unreachable as a destination) drains the podset out
/// of pinglist generation; outside-in confirmation probes bring it back
/// once power returns.
#[test]
fn podset_power_down_drains_pinglists_then_reincludes() {
    let mut o = orch_with(OrchestratorConfig {
        mitigation: MitigationConfig {
            // 2 podsets in the DC: floor(0.5 × 2) = 1 — one may drain.
            max_drain_fraction: 0.5,
            ..MitigationConfig::default()
        },
        ..OrchestratorConfig::default()
    });
    let ps = PodsetId(1);
    let dev = MitDevice::Podset(ps);
    o.run_until(mins(22));
    // Power out from minute 22 to minute 52.
    o.net_mut()
        .faults_mut()
        .set_podset_down(ps, mins(22), Some(mins(52)));

    // The first fully-dark window is [30,40); its job fires at minute 50
    // and the podset is cut out of pinglist generation.
    o.run_until(mins(55));
    assert!(o.mitigation().is_drained(dev), "podset drained");
    assert!(o.excluded_podsets().contains(&ps));
    assert_eq!(
        o.mitigation().kind_of(dev),
        Some(FindingKind::PodsetPowerDown)
    );
    // The regenerated pinglists cut the dark podset out of the mesh:
    // servers elsewhere no longer target it, and its own servers get
    // empty lists (the controller is the source of truth; agents pick the
    // new generation up at their next poll).
    let topo = o.net().topology().clone();
    let outside_server = topo
        .servers()
        .find(|&s| topo.server(s).podset != ps)
        .unwrap();
    let now = o.now();
    let list = o
        .cluster()
        .fetch_keyed(outside_server, now)
        .unwrap()
        .expect("healthy server keeps a pinglist");
    assert!(
        list.entries.iter().all(|e| match e.target {
            PingTarget::Server { id, .. } => topo.server(id).podset != ps,
            PingTarget::Vip { .. } => true,
        }),
        "no probes may target the drained podset"
    );
    let dark_server = topo
        .servers()
        .find(|&s| topo.server(s).podset == ps)
        .unwrap();
    let dark_list = o.cluster().fetch_keyed(dark_server, now).unwrap().unwrap();
    assert!(
        dark_list.entries.is_empty(),
        "the dark podset's servers get empty lists"
    );

    // Power is back at minute 52; the minute-60 verification probes the
    // podset from every other podset, sees it answer, and re-includes it.
    o.run_until(mins(75));
    assert_eq!(
        o.mitigation().state_of(dev),
        Some(MitigationState::Undrained)
    );
    assert!(o.excluded_podsets().is_empty(), "podset back in the mesh");
    assert!(o.mitigation().undrains() >= 1);
    // The re-include regenerated pinglists again: the podset is a probe
    // target once more, and its own servers have non-empty lists.
    let now = o.now();
    let back = o.cluster().fetch_keyed(dark_server, now).unwrap().unwrap();
    assert!(
        !back.entries.is_empty(),
        "re-included servers probe the mesh again"
    );
}
