//! Pingmesh facade: end-to-end orchestration of the full system.
//!
//! This crate wires every substrate together the way Autopilot glued the
//! production deployment: the simulated network (`pingmesh-netsim`), the
//! controller cluster behind its VIP (`pingmesh-controller`), one agent
//! per server (`pingmesh-agent`), and the DSA pipeline
//! (`pingmesh-dsa`) — all driven by one discrete-event queue on a shared
//! virtual clock.
//!
//! * [`orchestrator::Orchestrator`] — build a deployment, inject faults,
//!   `run_until` a virtual time, inspect SLAs / alerts / findings.
//! * [`repair::RepairService`] — the §5.1 repair loop: reloads
//!   black-holed ToRs under the 20-reloads-per-day budget, and isolates
//!   silently-dropping switches located by traceroute (§5.2).
//!
//! # Example
//!
//! Stand up a deployment, run half a virtual hour, read the DC SLA:
//!
//! ```
//! use pingmesh_core::{Orchestrator, OrchestratorConfig};
//! use pingmesh_core::netsim::DcProfile;
//! use pingmesh_core::topology::{ServiceMap, Topology, TopologySpec};
//! use pingmesh_core::types::{DcId, SimDuration, SimTime};
//! use std::sync::Arc;
//!
//! let topo = Arc::new(Topology::build(TopologySpec::single_tiny()).unwrap());
//! let mut o = Orchestrator::new(
//!     topo,
//!     vec![DcProfile::us_central()],
//!     ServiceMap::new(),
//!     OrchestratorConfig::default(),
//! );
//! o.run_until(SimTime::ZERO + SimDuration::from_mins(30));
//!
//! let row = o
//!     .pipeline()
//!     .db
//!     .latest(pingmesh_core::dsa::ScopeKey::Dc(DcId(0)))
//!     .expect("the 10-minute job has produced a DC SLA row");
//! assert!(row.p50_us > 0);
//! assert!(row.drop_rate < 1e-3);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod mitigation;
pub mod orchestrator;
pub mod repair;
pub mod watchdog;

pub use mitigation::{plan_podset_verification, plan_switch_verification, MitDevice, PlannedProbe};
pub use orchestrator::{Orchestrator, OrchestratorConfig, SimOutputs};
pub use repair::RepairService;
pub use watchdog::{detect_podset_power_down, Watchdog, WatchdogFinding};

// Re-export the component crates so downstream users (examples, the
// bench harness) can depend on `pingmesh-core` alone.
pub use pingmesh_agent as agent;
pub use pingmesh_controller as controller;
pub use pingmesh_dsa as dsa;
pub use pingmesh_netsim as netsim;
pub use pingmesh_topology as topology;
pub use pingmesh_types as types;
