//! The network repair service.
//!
//! Closes the loop from detection to mitigation:
//!
//! * **Black-holes** are "fixed by reloading the switch" (§5.1); the
//!   repair service performs the reload, but "we limit the algorithm to
//!   reload at most 20 switches per day. This is to limit the maximum
//!   number of switch reboots." Requests beyond the daily budget are
//!   deferred to the next day's budget.
//! * **Silent random drops** "cannot be fixed by switch reload and we
//!   have to RMA the faulty switch or components" (§5.2); the repair
//!   service isolates the switch from live traffic and queues it for
//!   RMA.

use pingmesh_netsim::SimNet;
use pingmesh_types::constants::MAX_SWITCH_RELOADS_PER_DAY;
use pingmesh_types::{SimDuration, SimTime, SwitchId};

/// How long a reloading switch stays down.
const RELOAD_OUTAGE: SimDuration = SimDuration::from_secs(120);

/// The repair service.
#[derive(Debug, Default)]
pub struct RepairService {
    reloads_today: u32,
    today: u64,
    /// Log of performed reloads: (time, switch).
    pub reload_log: Vec<(SimTime, SwitchId)>,
    /// Reloads refused because the daily budget was exhausted.
    pub deferred: Vec<SwitchId>,
    /// Log of isolations (switch pulled from rotation, awaiting RMA).
    pub isolation_log: Vec<(SimTime, SwitchId)>,
}

impl RepairService {
    /// Fresh service.
    pub fn new() -> Self {
        Self::default()
    }

    fn roll_day(&mut self, now: SimTime) {
        let day = now.as_micros() / SimDuration::from_days(1).as_micros();
        if day != self.today {
            self.today = day;
            self.reloads_today = 0;
        }
    }

    /// Remaining reload budget for the current day.
    pub fn budget_left(&mut self, now: SimTime) -> u32 {
        self.roll_day(now);
        MAX_SWITCH_RELOADS_PER_DAY.saturating_sub(self.reloads_today)
    }

    /// Requests a switch reload. Applies it to the network if the daily
    /// budget allows, otherwise defers. Returns whether the reload
    /// happened.
    pub fn request_reload(&mut self, net: &mut SimNet, sw: SwitchId, now: SimTime) -> bool {
        self.roll_day(now);
        // Deduplicate: a switch already reloaded today needs no repeat.
        if self
            .reload_log
            .iter()
            .any(|&(t, s)| s == sw && now.since(t) < SimDuration::from_days(1))
        {
            return false;
        }
        if self.reloads_today >= MAX_SWITCH_RELOADS_PER_DAY {
            self.deferred.push(sw);
            return false;
        }
        self.reloads_today += 1;
        net.faults_mut().reload_switch(sw, now, RELOAD_OUTAGE);
        self.reload_log.push((now, sw));
        true
    }

    /// Isolates a switch from live traffic (ECMP routes around it) and
    /// queues it for RMA. Idempotent.
    pub fn isolate_for_rma(&mut self, net: &mut SimNet, sw: SwitchId, now: SimTime) -> bool {
        if net.faults().is_isolated(sw) {
            return false;
        }
        net.faults_mut().isolate_switch(sw);
        self.isolation_log.push((now, sw));
        true
    }

    /// Reloads performed on a given (0-based) simulation day.
    pub fn reloads_on_day(&self, day: u64) -> usize {
        let day_us = SimDuration::from_days(1).as_micros();
        self.reload_log
            .iter()
            .filter(|(t, _)| t.as_micros() / day_us == day)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pingmesh_netsim::DcProfile;
    use pingmesh_topology::{Topology, TopologySpec};
    use std::sync::Arc;

    fn net() -> SimNet {
        let topo = Arc::new(Topology::build(TopologySpec::single_tiny()).unwrap());
        SimNet::new(topo, vec![DcProfile::ideal()], 1)
    }

    #[test]
    fn reload_budget_is_capped_per_day() {
        let mut net = net();
        let mut svc = RepairService::new();
        let mut done = 0;
        for i in 0..30u32 {
            if svc.request_reload(&mut net, SwitchId::tor(i % 8), SimTime(i as u64)) {
                done += 1;
            }
        }
        // tiny topo has only 8 tors, and dedup also kicks in: at most 8.
        assert_eq!(done, 8);
        // With distinct spines we can exhaust the budget of 20.
        let mut svc = RepairService::new();
        let mut done = 0;
        for i in 0..30u32 {
            if svc.request_reload(&mut net, SwitchId::spine(i), SimTime(i as u64)) {
                done += 1;
            }
        }
        assert_eq!(done, 20);
        assert_eq!(svc.deferred.len(), 10);
        assert_eq!(svc.budget_left(SimTime(100)), 0);
    }

    #[test]
    fn budget_resets_next_day() {
        let mut net = net();
        let mut svc = RepairService::new();
        for i in 0..20u32 {
            assert!(svc.request_reload(&mut net, SwitchId::spine(i), SimTime(i as u64)));
        }
        assert!(!svc.request_reload(&mut net, SwitchId::spine(20), SimTime(21)));
        let next_day = SimTime::ZERO + SimDuration::from_days(1) + SimDuration::from_secs(1);
        assert_eq!(svc.budget_left(next_day), 20);
        assert!(svc.request_reload(&mut net, SwitchId::spine(21), next_day));
        assert_eq!(svc.reloads_on_day(0), 20);
        assert_eq!(svc.reloads_on_day(1), 1);
    }

    #[test]
    fn same_switch_not_reloaded_twice_a_day() {
        let mut net = net();
        let mut svc = RepairService::new();
        assert!(svc.request_reload(&mut net, SwitchId::tor(0), SimTime(0)));
        assert!(!svc.request_reload(&mut net, SwitchId::tor(0), SimTime(1_000)));
        assert_eq!(svc.reload_log.len(), 1);
    }

    #[test]
    fn isolation_is_idempotent_and_applies() {
        let mut net = net();
        let mut svc = RepairService::new();
        let sw = SwitchId::spine(2);
        assert!(svc.isolate_for_rma(&mut net, sw, SimTime(5)));
        assert!(net.faults().is_isolated(sw));
        assert!(!svc.isolate_for_rma(&mut net, sw, SimTime(6)));
        assert_eq!(svc.isolation_log.len(), 1);
    }
}
