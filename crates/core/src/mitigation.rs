//! Simulation-side actuation for the controller's mitigation engine.
//!
//! The engine (`pingmesh_controller::mitigate`) is a pure state machine;
//! this module supplies what the orchestrator needs to drive it against
//! the simulated fabric:
//!
//! * [`MitDevice`] — the drainable-device id: a switch (taken out of
//!   ECMP via the route tables' exclusion support) or a whole podset
//!   (taken out of pinglist generation after a power-down);
//! * tier bookkeeping — the engine's "never drain >N% of a tier" guard
//!   needs each device's tier key and tier population, both DC-scoped
//!   (draining a quarter of *this* DC's spines, not of the world's);
//! * the verification planner — deterministic enumeration of confirmation
//!   probes whose ECMP path traverses a specific switch, used to prove a
//!   drained device healthy before it is returned to service.

use pingmesh_topology::Topology;
use pingmesh_types::{PodsetId, ServerId, SwitchId, SwitchTier};

/// A device the mitigation engine can drain in the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MitDevice {
    /// A fabric switch, drained via route-table ECMP exclusion.
    Switch(SwitchId),
    /// A whole podset (power-down), drained out of pinglist generation.
    Podset(PodsetId),
}

impl std::fmt::Display for MitDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MitDevice::Switch(s) => write!(f, "{s}"),
            MitDevice::Podset(p) => write!(f, "{p}"),
        }
    }
}

/// The engine's tier key for a switch: tier × DC, so budgets are scoped
/// to one data center's population of that tier.
pub fn switch_tier_key(topo: &Topology, sw: SwitchId) -> u32 {
    let dc = topo.dc_of_switch(sw).map_or(0, |d| d.0);
    let tier = match sw.tier {
        SwitchTier::Tor => 0u32,
        SwitchTier::Leaf => 1,
        SwitchTier::Spine => 2,
        SwitchTier::Border => 3,
    };
    dc * 8 + tier
}

/// The engine's tier key for a podset (its own budget class, per DC).
pub fn podset_tier_key(topo: &Topology, ps: PodsetId) -> u32 {
    let dc = topo.podset(ps).dc.0;
    dc * 8 + 4
}

/// How many devices share a switch's tier within its DC.
pub fn switch_tier_size(topo: &Topology, sw: SwitchId) -> usize {
    let Some(dc) = topo.dc_of_switch(sw) else {
        return 0;
    };
    match sw.tier {
        SwitchTier::Tor => topo.pods_in_dc(dc).count(),
        SwitchTier::Leaf => topo
            .podsets_in_dc(dc)
            .map(|ps| topo.leaf_slice_of_podset(ps).len())
            .sum(),
        SwitchTier::Spine => topo.spine_slice_of_dc(dc).len(),
        SwitchTier::Border => topo.borders_of_dc(dc).count(),
    }
}

/// How many podsets share a podset's DC.
pub fn podset_tier_size(topo: &Topology, ps: PodsetId) -> usize {
    topo.podsets_in_dc(topo.podset(ps).dc).count()
}

/// A planned confirmation probe: the (src, dst, src_port) of a flow
/// whose current ECMP path traverses the switch under verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedProbe {
    /// Probing server.
    pub src: ServerId,
    /// Destination server.
    pub dst: ServerId,
    /// Source port (chosen so the five-tuple hashes through the device).
    pub src_port: u16,
}

/// Destination port of confirmation probes (the agents' TCP listen port).
pub const VERIFY_DST_PORT: u16 = 8_100;
/// Source-port base of confirmation probes — outside the ranges agents
/// and traceroute campaigns use, so the keyed RNG streams never collide.
pub const VERIFY_PORT_BASE: u16 = 33_000;

/// Plans up to `want` confirmation probes through `sw`, walking a
/// deterministic enumeration of cross-pod server pairs in the switch's
/// DC and port-hunting each pair until the resolved path traverses the
/// switch. `resolve` must report the path the fabric would use *with the
/// switch back in service* — verification runs with the exclusion lifted.
///
/// The enumeration is pure topology + the resolver, so every shard
/// layout plans the identical probe set.
pub fn plan_switch_verification<F, I>(
    topo: &Topology,
    sw: SwitchId,
    want: usize,
    max_tries: usize,
    resolve: F,
) -> Vec<PlannedProbe>
where
    F: Fn(ServerId, ServerId, u16) -> I,
    I: IntoIterator<Item = SwitchId>,
{
    let Some(dc) = topo.dc_of_switch(sw) else {
        return Vec::new();
    };
    let mut plan = Vec::new();
    let mut tries = 0usize;
    let pods: Vec<_> = topo.pods_in_dc(dc).collect();
    'outer: for (pi, &pod) in pods.iter().enumerate() {
        for src in topo.servers_in_pod(pod) {
            // A couple of cross-pod peers per source, pinglist-style:
            // the same-index server of the next pods over.
            let idx = topo.server(src).index_in_pod;
            for step in 1..=2usize {
                let peer_pod = pods[(pi + step) % pods.len()];
                if peer_pod == pod {
                    continue;
                }
                let Some(dst) = topo.nth_server_of_pod(peer_pod, idx) else {
                    continue;
                };
                // Port-hunt: ECMP hashes the five-tuple, so varying the
                // source port walks the path set.
                for p in 0..8u16 {
                    if tries >= max_tries || plan.len() >= want {
                        break 'outer;
                    }
                    tries += 1;
                    let src_port = VERIFY_PORT_BASE + (plan.len() as u16) * 64 + p;
                    if resolve(src, dst, src_port).into_iter().any(|s| s == sw) {
                        plan.push(PlannedProbe { src, dst, src_port });
                        break;
                    }
                }
            }
        }
    }
    plan
}

/// Plans confirmation probes into a podset after a power-down: a healthy
/// source in each *other* podset of the DC probes the same-index servers
/// of the dark podset. Success means power is back.
pub fn plan_podset_verification(topo: &Topology, ps: PodsetId, want: usize) -> Vec<PlannedProbe> {
    let dc = topo.podset(ps).dc;
    let srcs: Vec<ServerId> = topo
        .podsets_in_dc(dc)
        .filter(|&other| other != ps)
        .filter_map(|other| {
            topo.pods_in_podset(other)
                .next()
                .and_then(|pod| topo.servers_in_pod(pod).next())
        })
        .collect();
    if srcs.is_empty() {
        return Vec::new();
    }
    let mut plan = Vec::new();
    for (i, pod) in topo.pods_in_podset(ps).enumerate() {
        for dst in topo.servers_in_pod(pod) {
            if plan.len() >= want {
                return plan;
            }
            plan.push(PlannedProbe {
                src: srcs[i % srcs.len()],
                dst,
                src_port: VERIFY_PORT_BASE + 1_000 + plan.len() as u16,
            });
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use pingmesh_topology::TopologySpec;

    fn topo() -> Topology {
        Topology::build(TopologySpec::single_tiny()).unwrap()
    }

    #[test]
    fn tier_keys_and_sizes_are_dc_scoped() {
        let t = topo();
        let spine = t.spines_of_dc(pingmesh_types::DcId(0)).next().unwrap();
        let leaf = t.leaves_of_podset(PodsetId(0)).next().unwrap();
        assert_ne!(switch_tier_key(&t, spine), switch_tier_key(&t, leaf));
        assert_eq!(
            switch_tier_size(&t, spine),
            t.spine_slice_of_dc(pingmesh_types::DcId(0)).len()
        );
        assert!(switch_tier_size(&t, leaf) > 0);
        assert_eq!(podset_tier_size(&t, PodsetId(0)), 2);
        assert_ne!(podset_tier_key(&t, PodsetId(0)), switch_tier_key(&t, spine));
    }

    #[test]
    fn switch_plan_is_deterministic_and_respects_resolver() {
        let t = topo();
        let leaf = t.leaves_of_podset(PodsetId(0)).next().unwrap();
        // A resolver that routes every flow through the leaf.
        let all = |_s: ServerId, _d: ServerId, _p: u16| vec![leaf];
        let plan1 = plan_switch_verification(&t, leaf, 6, 256, all);
        let plan2 = plan_switch_verification(&t, leaf, 6, 256, all);
        assert_eq!(plan1, plan2);
        assert_eq!(plan1.len(), 6);
        // A resolver that never traverses it plans nothing.
        let none = |_s: ServerId, _d: ServerId, _p: u16| Vec::<SwitchId>::new();
        assert!(plan_switch_verification(&t, leaf, 6, 256, none).is_empty());
    }

    #[test]
    fn podset_plan_probes_from_outside_in() {
        let t = topo();
        let plan = plan_podset_verification(&t, PodsetId(0), 8);
        assert!(!plan.is_empty() && plan.len() <= 8);
        for p in &plan {
            assert_ne!(t.server(p.src).podset, PodsetId(0), "src must be outside");
            assert_eq!(t.server(p.dst).podset, PodsetId(0), "dst must be inside");
        }
    }
}
