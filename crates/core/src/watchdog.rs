//! Component watchdogs (paper §3.5).
//!
//! "We differentiate Pingmesh as an always-on service from a set of
//! scripts that run periodically. All the components of Pingmesh have
//! watchdogs to watch whether they are running correctly or not, e.g.,
//! whether pinglists are generated correctly, whether the CPU and memory
//! usages are within budget, whether pingmesh data are reported and
//! stored, whether DSA reports network SLAs in time."
//!
//! [`Watchdog::check`] audits a running deployment against exactly those
//! conditions and returns machine-readable findings; a healthy system
//! returns none.

use crate::orchestrator::Orchestrator;
use pingmesh_dsa::WindowAggregate;
use pingmesh_obs::slo::SloKind;
use pingmesh_topology::Topology;
use pingmesh_types::{PodsetId, SimDuration};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// One watchdog finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WatchdogFinding {
    /// The controller cluster serves no pinglists (fleet stopped).
    NoPinglistsServed,
    /// Every controller replica is down.
    ControllerClusterDown,
    /// This many agents are fail-closed (not probing).
    AgentsStopped(usize),
    /// Agents had to sanitize controller-supplied entries — the
    /// controller violated the hard safety limits this many times.
    ControllerViolatedSafetyLimits(u64),
    /// No records have reached the store within the freshness horizon.
    StaleStore {
        /// Newest record age, if any records exist at all.
        newest_age: Option<SimDuration>,
    },
    /// The DSA pipeline has produced no SLA rows within the horizon.
    StaleSlaRows,
    /// Agents discarded this many records (upload path unhealthy).
    RecordsDiscarded(u64),
    /// The PA fast path has produced no samples.
    PaSilent,
    /// A data-quality SLO (quality job, 10-min cadence) is out of target.
    SloDegraded {
        /// Which SLO degraded.
        kind: SloKind,
        /// Error-budget burn rate ×1000 (1000 = exactly at target).
        burn_permille: u64,
    },
    /// The durable store's WAL hit IO errors; if it failed closed, the
    /// collector is refusing uploads until a checkpoint heals the log.
    StoreIoErrors {
        /// WAL write errors observed so far.
        errors: u64,
        /// Whether the WAL has failed closed (appends refused).
        failed_closed: bool,
    },
    /// A podset went dark in the last closed window: none of its servers
    /// reported a probe while the rest of the fabric kept failing to
    /// reach them — the Figure-8(b) podset power-down signature. This is
    /// a mitigation trigger: the podset should be drained from pinglist
    /// generation until power returns.
    PodsetPowerDown {
        /// The dark podset.
        podset: PodsetId,
        /// Fraction ×1000 of pairs towards the podset that failed
        /// deterministically (1000 = every observer agrees it is dark).
        confidence_permille: u64,
    },
}

impl WatchdogFinding {
    /// Short static class label — stable across payload values, suitable
    /// as a bounded-cardinality metric label.
    pub fn class(&self) -> &'static str {
        match self {
            WatchdogFinding::NoPinglistsServed => "no_pinglists",
            WatchdogFinding::ControllerClusterDown => "controller_down",
            WatchdogFinding::AgentsStopped(_) => "agents_stopped",
            WatchdogFinding::ControllerViolatedSafetyLimits(_) => "unsafe_pinglist",
            WatchdogFinding::StaleStore { .. } => "stale_store",
            WatchdogFinding::StaleSlaRows => "stale_sla",
            WatchdogFinding::RecordsDiscarded(_) => "records_discarded",
            WatchdogFinding::PaSilent => "pa_silent",
            WatchdogFinding::SloDegraded { kind, .. } => match kind {
                SloKind::Coverage => "slo_coverage",
                SloKind::Completeness => "slo_completeness",
                SloKind::Freshness => "slo_freshness",
                SloKind::WalFlushLag => "slo_wal_flush_lag",
            },
            WatchdogFinding::StoreIoErrors { .. } => "store_io",
            WatchdogFinding::PodsetPowerDown { .. } => "podset_power_down",
        }
    }
}

impl fmt::Display for WatchdogFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WatchdogFinding::NoPinglistsServed => {
                write!(f, "controller serves no pinglists: fleet is stopped")
            }
            WatchdogFinding::ControllerClusterDown => {
                write!(f, "every controller replica is unreachable")
            }
            WatchdogFinding::AgentsStopped(n) => {
                write!(f, "{n} agents are fail-closed and not probing")
            }
            WatchdogFinding::ControllerViolatedSafetyLimits(n) => {
                write!(f, "agents clamped {n} unsafe pinglist entries")
            }
            WatchdogFinding::StaleStore { newest_age } => match newest_age {
                Some(age) => write!(f, "newest stored record is {age} old"),
                None => write!(f, "the store has never received a record"),
            },
            WatchdogFinding::StaleSlaRows => {
                write!(f, "DSA has not reported SLAs within the horizon")
            }
            WatchdogFinding::RecordsDiscarded(n) => {
                write!(f, "{n} records discarded by agents (upload path unhealthy)")
            }
            WatchdogFinding::PaSilent => write!(f, "the PA fast path has no samples"),
            WatchdogFinding::SloDegraded {
                kind,
                burn_permille,
            } => write!(
                f,
                "data-quality SLO `{}` out of target (burn rate {}.{:03}x)",
                kind.as_str(),
                burn_permille / 1000,
                burn_permille % 1000,
            ),
            WatchdogFinding::StoreIoErrors {
                errors,
                failed_closed,
            } => write!(
                f,
                "durable store hit {errors} WAL IO errors{}",
                if *failed_closed {
                    " and failed closed (uploads refused)"
                } else {
                    " (retries absorbed them)"
                }
            ),
            WatchdogFinding::PodsetPowerDown {
                podset,
                confidence_permille,
            } => write!(
                f,
                "{podset} went dark (power-down; {}.{:01}% of observers agree)",
                confidence_permille / 10,
                confidence_permille % 10,
            ),
        }
    }
}

/// Detects podsets that lost power during a window: the podset has
/// servers, *none* of them reported any probe (as a source), and the
/// rest of the fabric has probe data towards it that fails
/// deterministically — so the silence is the podset's, not the
/// pinglist's. Returns `(podset, confidence)` pairs sorted by podset;
/// confidence is the fraction of observing pairs that failed.
pub fn detect_podset_power_down(agg: &WindowAggregate, topo: &Topology) -> Vec<(PodsetId, f64)> {
    let mut sources_seen: HashSet<PodsetId> = HashSet::new();
    // Per-destination-podset observation counts from *other* podsets.
    let mut observed: HashMap<PodsetId, (u64, u64)> = HashMap::new(); // (failed, total)
    for (k, v) in &agg.pairs {
        if v.total() == 0 {
            continue;
        }
        let src_ps = topo.server(k.src).podset;
        let dst_ps = topo.server(k.dst).podset;
        sources_seen.insert(src_ps);
        if src_ps != dst_ps {
            let e = observed.entry(dst_ps).or_default();
            e.1 += 1;
            if v.successful() == 0 && v.is_deterministic_failure() {
                e.0 += 1;
            }
        }
    }
    let mut dark: Vec<(PodsetId, f64)> = observed
        .into_iter()
        .filter(|(ps, (_, total))| !sources_seen.contains(ps) && *total > 0)
        .map(|(ps, (failed, total))| (ps, failed as f64 / total as f64))
        .filter(|&(_, conf)| conf > 0.5)
        .collect();
    dark.sort_by_key(|a| a.0);
    dark
}

/// Watchdog configuration.
#[derive(Debug, Clone, Copy)]
pub struct Watchdog {
    /// Store freshness horizon: records older than this (and nothing
    /// newer) mean the report path is broken. The paper's end-to-end
    /// budget for the near-real-time path is ~20 minutes.
    pub store_horizon: SimDuration,
    /// SLA-row freshness horizon: one 10-min window + ingest lag + slack.
    pub sla_horizon: SimDuration,
}

impl Default for Watchdog {
    fn default() -> Self {
        Self {
            store_horizon: SimDuration::from_mins(20),
            sla_horizon: SimDuration::from_mins(35),
        }
    }
}

impl Watchdog {
    /// Audits a deployment at its current virtual time.
    pub fn check(&self, o: &Orchestrator) -> Vec<WatchdogFinding> {
        let now = o.now();
        let mut findings = Vec::new();
        let topo = o.net().topology().clone();

        // Controller health.
        if !o.cluster().any_up(now) {
            findings.push(WatchdogFinding::ControllerClusterDown);
        } else if !o.cluster().serves_pinglists() {
            findings.push(WatchdogFinding::NoPinglistsServed);
        }

        // Agent health.
        let stopped = topo.servers().filter(|&s| o.agent(s).is_stopped()).count();
        if stopped > 0 {
            findings.push(WatchdogFinding::AgentsStopped(stopped));
        }
        let sanitized: u64 = topo.servers().map(|s| o.agent(s).sanitized_entries()).sum();
        if sanitized > 0 {
            findings.push(WatchdogFinding::ControllerViolatedSafetyLimits(sanitized));
        }
        let discarded: u64 = topo.servers().map(|s| o.agent(s).discarded_total()).sum();
        if discarded > 0 {
            findings.push(WatchdogFinding::RecordsDiscarded(discarded));
        }

        // Report path: is data reaching the store? Only meaningful once
        // the system has been up long enough to upload anything. The
        // newest-record probe reads extent time bounds — O(extents),
        // no record scan or copy.
        if now.as_micros() > self.store_horizon.as_micros() {
            let newest = o.pipeline().store.newest_ts();
            let fresh = newest.is_some_and(|ts| now.since(ts) <= self.store_horizon);
            if !fresh {
                findings.push(WatchdogFinding::StaleStore {
                    newest_age: newest.map(|ts| now.since(ts)),
                });
            }
        }

        // Analysis path: are SLA rows being produced on time?
        if now.as_micros() > self.sla_horizon.as_micros() {
            let horizon_start = now - self.sla_horizon;
            let fresh = topo.dcs().any(|dc| {
                o.pipeline()
                    .db
                    .latest(pingmesh_dsa::ScopeKey::Dc(dc))
                    .is_some_and(|row| row.window_start >= horizon_start)
            });
            if !fresh {
                findings.push(WatchdogFinding::StaleSlaRows);
            }
        }

        // PA fast path.
        if now.as_micros() > SimDuration::from_mins(10).as_micros()
            && topo.dcs().all(|dc| o.pa().series(dc).is_empty())
        {
            findings.push(WatchdogFinding::PaSilent);
        }

        // Mitigation trigger: a whole podset gone dark (the Figure-8(b)
        // power-down signature) over the last fully-ingested window.
        let w = pingmesh_dsa::PARTIAL_WINDOW;
        if now.as_micros() >= 3 * w.as_micros() {
            let ws = now.window_start(w);
            let agg = o
                .pipeline()
                .store
                .merged_window_aggregate(ws - w - w, ws - w);
            for (podset, conf) in detect_podset_power_down(&agg, &topo) {
                findings.push(WatchdogFinding::PodsetPowerDown {
                    podset,
                    confidence_permille: (conf * 1000.0).round() as u64,
                });
            }
        }

        // Data-quality SLOs, straight off the latest 10-min quality job.
        if let Some(quality) = o.pipeline().latest_quality() {
            for status in &quality.statuses {
                if !status.healthy {
                    findings.push(WatchdogFinding::SloDegraded {
                        kind: status.kind,
                        burn_permille: (status.burn_rate * 1000.0).round().max(0.0) as u64,
                    });
                }
            }
        }

        findings
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::orchestrator::OrchestratorConfig;
    use pingmesh_netsim::DcProfile;
    use pingmesh_topology::{ServiceMap, Topology, TopologySpec};
    use pingmesh_types::SimTime;
    use std::sync::Arc;

    fn orch() -> Orchestrator {
        let topo = Arc::new(Topology::build(TopologySpec::single_tiny()).unwrap());
        Orchestrator::new(
            topo,
            vec![DcProfile::ideal()],
            ServiceMap::new(),
            OrchestratorConfig::default(),
        )
    }

    #[test]
    fn healthy_system_has_no_findings() {
        let mut o = orch();
        o.run_until(SimTime::ZERO + SimDuration::from_mins(45));
        let findings = Watchdog::default().check(&o);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn cleared_pinglists_are_reported() {
        let mut o = orch();
        o.run_until(SimTime::ZERO + SimDuration::from_mins(25));
        o.cluster_mut().clear_pinglists();
        // Agents notice at the next poll and fail-close; the store goes
        // stale after the horizon.
        o.run_until(SimTime::ZERO + SimDuration::from_mins(90));
        let findings = Watchdog::default().check(&o);
        assert!(findings.contains(&WatchdogFinding::NoPinglistsServed));
        assert!(findings
            .iter()
            .any(|f| matches!(f, WatchdogFinding::AgentsStopped(_))));
        assert!(findings
            .iter()
            .any(|f| matches!(f, WatchdogFinding::StaleStore { .. })));
    }

    #[test]
    fn controller_outage_is_reported() {
        let mut o = orch();
        o.run_until(SimTime::ZERO + SimDuration::from_mins(15));
        let now = o.now();
        for i in 0..2 {
            o.cluster_mut().replica_mut(i).add_down_window(now, None);
        }
        o.run_until(SimTime::ZERO + SimDuration::from_mins(20));
        let findings = Watchdog::default().check(&o);
        assert!(findings.contains(&WatchdogFinding::ControllerClusterDown));
    }

    #[test]
    fn store_outage_discards_are_reported() {
        let mut o = orch();
        o.pipeline_mut().store.add_down_window(
            SimTime::ZERO,
            Some(SimTime::ZERO + SimDuration::from_mins(40)),
        );
        o.run_until(SimTime::ZERO + SimDuration::from_mins(50));
        let findings = Watchdog::default().check(&o);
        assert!(findings
            .iter()
            .any(|f| matches!(f, WatchdogFinding::RecordsDiscarded(_))));
    }

    #[test]
    fn findings_render_human_readably() {
        let all = [
            WatchdogFinding::NoPinglistsServed,
            WatchdogFinding::ControllerClusterDown,
            WatchdogFinding::AgentsStopped(3),
            WatchdogFinding::ControllerViolatedSafetyLimits(7),
            WatchdogFinding::StaleStore {
                newest_age: Some(SimDuration::from_mins(30)),
            },
            WatchdogFinding::StaleStore { newest_age: None },
            WatchdogFinding::StaleSlaRows,
            WatchdogFinding::RecordsDiscarded(10),
            WatchdogFinding::PaSilent,
            WatchdogFinding::SloDegraded {
                kind: SloKind::Coverage,
                burn_permille: 2_500,
            },
            WatchdogFinding::SloDegraded {
                kind: SloKind::Completeness,
                burn_permille: 1_000,
            },
            WatchdogFinding::SloDegraded {
                kind: SloKind::Freshness,
                burn_permille: 4_000,
            },
            WatchdogFinding::SloDegraded {
                kind: SloKind::WalFlushLag,
                burn_permille: 1_500,
            },
            WatchdogFinding::StoreIoErrors {
                errors: 5,
                failed_closed: false,
            },
            WatchdogFinding::StoreIoErrors {
                errors: 9,
                failed_closed: true,
            },
            WatchdogFinding::PodsetPowerDown {
                podset: pingmesh_types::PodsetId(2),
                confidence_permille: 985,
            },
        ];
        let rendered: std::collections::HashSet<String> =
            all.iter().map(|f| f.to_string()).collect();
        assert_eq!(rendered.len(), all.len(), "descriptions must be distinct");
    }
}
