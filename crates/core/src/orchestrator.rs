//! The end-to-end orchestrator.
//!
//! Builds a full Pingmesh deployment over a simulated network and drives
//! it on one discrete-event queue:
//!
//! * every server's **agent** polls the controller VIP, launches probes
//!   at its scheduled times, buffers results and uploads them to the
//!   store with retry-then-discard semantics;
//! * the **controller cluster** regenerates pinglists on demand and can
//!   suffer replica outages;
//! * the **PA pipeline** sweeps agent counters every 5 minutes;
//! * the **job manager** fires the 10-min / 1-h / 1-day DSA jobs, whose
//!   findings feed the **repair loop**: black-holed ToRs are reloaded
//!   (≤ 20/day), and silent-drop incidents trigger a traceroute campaign
//!   that isolates the guilty switch — reproducing the full §5
//!   detect-localize-mitigate story.

use crate::repair::RepairService;
use pingmesh_agent::{Agent, AgentConfig, ControllerPollOutcome};
use pingmesh_controller::{ControllerCluster, GeneratorConfig, PinglistGenerator};
use pingmesh_dsa::jobs::{JobManager, Pipeline};
use pingmesh_dsa::store::{CosmosStore, StreamName};
use pingmesh_dsa::{ExpectedPairs, LatencyPattern, PerfCounterAggregator, SilentDropFinding};
use pingmesh_netsim::{tcp_traceroute, DcProfile, EventQueue, SimNet, TracerouteReport};
use pingmesh_topology::{ServiceMap, Topology};
use pingmesh_types::{DcId, PingTarget, ServerId, SimDuration, SimTime, SwitchId};
use std::sync::Arc;

/// Orchestrator configuration.
#[derive(Debug, Clone)]
pub struct OrchestratorConfig {
    /// Agent tunables.
    pub agent: AgentConfig,
    /// Pinglist generation parameters.
    pub generator: GeneratorConfig,
    /// Controller replicas behind the VIP.
    pub controller_replicas: usize,
    /// PA counter collection interval.
    pub pa_interval: SimDuration,
    /// RNG seed for the whole run.
    pub seed: u64,
    /// Whether detection findings drive automatic repair (reloads /
    /// isolations). Disable to observe incidents without mitigation.
    pub auto_repair: bool,
}

impl Default for OrchestratorConfig {
    fn default() -> Self {
        Self {
            agent: AgentConfig::default(),
            generator: GeneratorConfig::default(),
            controller_replicas: 2,
            pa_interval: SimDuration::from_mins(5),
            seed: 0xC0FFEE,
            auto_repair: true,
        }
    }
}

/// Everything the run produced, for inspection by experiments.
#[derive(Debug, Default)]
pub struct SimOutputs {
    /// Alert transitions from the 10-min pipeline.
    pub alerts: Vec<pingmesh_dsa::Alert>,
    /// Per-window pattern verdicts: (window start, DC, pattern).
    pub patterns: Vec<(SimTime, DcId, LatencyPattern)>,
    /// Silent-drop incidents raised.
    pub incidents: Vec<SilentDropFinding>,
    /// Black-hole reload candidates seen per hourly run.
    pub blackhole_candidates: Vec<(SimTime, SwitchId, f64)>,
    /// Podset escalations from black-hole detection.
    pub escalations: Vec<(SimTime, pingmesh_types::PodsetId)>,
    /// Traceroute campaigns run: (time, merged report).
    pub traceroutes: Vec<(SimTime, TracerouteReport)>,
    /// Probes executed in total.
    pub probes_run: u64,
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    AgentPoll(ServerId),
    AgentWake(ServerId),
    PaCollect,
    JobWake,
}

/// The orchestrator.
pub struct Orchestrator {
    net: SimNet,
    agents: Vec<Agent>,
    cluster: ControllerCluster,
    pipeline: Pipeline,
    pa: PerfCounterAggregator,
    jobman: JobManager,
    repair: RepairService,
    queue: EventQueue<Ev>,
    config: OrchestratorConfig,
    outputs: SimOutputs,
    generation: u64,
}

impl Orchestrator {
    /// Builds a deployment: network, controller cluster with generated
    /// pinglists, one agent per server, DSA pipeline, and the initial
    /// event population.
    pub fn new(
        topo: Arc<Topology>,
        profiles: Vec<DcProfile>,
        services: ServiceMap,
        config: OrchestratorConfig,
    ) -> Self {
        let net = SimNet::new(topo.clone(), profiles, config.seed);

        let generator = PinglistGenerator::new(config.generator.clone());
        let mut cluster = ControllerCluster::new(config.controller_replicas);
        let generation = 1;
        let set = generator.generate_all(&topo, generation);
        // Provenance + quality: arm sampled traces and derive the pod
        // pairs this generation is expected to report, while the full
        // generation is still in hand.
        pingmesh_obs::trace::arm_from_pinglists(&set.lists, Some(SimTime::ZERO));
        let expected = Arc::new(ExpectedPairs::from_pinglists(&topo, &set.lists));
        cluster.set_pinglists(set);

        let agents: Vec<Agent> = topo
            .servers()
            .map(|s| Agent::new(s, topo.clone(), config.agent.clone()))
            .collect();

        let mut pipeline = Pipeline::new(topo.clone(), services, CosmosStore::with_defaults());
        pipeline.set_expected_pairs(expected);
        let jobman = JobManager::new();

        let mut queue = EventQueue::new();
        // Stagger the initial controller polls over the first minute so
        // the fleet does not stampede the VIP.
        let n = agents.len().max(1) as u64;
        for (i, a) in agents.iter().enumerate() {
            let offset = (i as u64 * 60_000_000) / n;
            queue.schedule(SimTime(offset), Ev::AgentPoll(a.server()));
        }
        queue.schedule(SimTime::ZERO + config.pa_interval, Ev::PaCollect);
        queue.schedule(jobman.next_wakeup(), Ev::JobWake);

        Self {
            net,
            agents,
            cluster,
            pipeline,
            pa: PerfCounterAggregator::new(),
            jobman,
            repair: RepairService::new(),
            queue,
            config,
            outputs: SimOutputs::default(),
            generation,
        }
    }

    /// The simulated network (inject faults, VIPs, profiles before or
    /// between runs).
    pub fn net_mut(&mut self) -> &mut SimNet {
        &mut self.net
    }

    /// The simulated network (read).
    pub fn net(&self) -> &SimNet {
        &self.net
    }

    /// The controller cluster (read).
    pub fn cluster(&self) -> &ControllerCluster {
        &self.cluster
    }

    /// The controller cluster (schedule outages, clear pinglists).
    pub fn cluster_mut(&mut self) -> &mut ControllerCluster {
        &mut self.cluster
    }

    /// The DSA pipeline (results DB, store, detectors).
    pub fn pipeline(&self) -> &Pipeline {
        &self.pipeline
    }

    /// Mutable DSA pipeline access (tune detector configs).
    pub fn pipeline_mut(&mut self) -> &mut Pipeline {
        &mut self.pipeline
    }

    /// The PA fast path.
    pub fn pa(&self) -> &PerfCounterAggregator {
        &self.pa
    }

    /// Run outputs so far.
    pub fn outputs(&self) -> &SimOutputs {
        &self.outputs
    }

    /// The repair service (reload / isolation logs).
    pub fn repair(&self) -> &RepairService {
        &self.repair
    }

    /// One agent, by server id (diagnostics).
    pub fn agent(&self, s: ServerId) -> &Agent {
        &self.agents[s.index()]
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// The §4.3 troubleshooting drill-down over a stored window, scoped
    /// by `filter`. Reads the store through the zero-copy chunked scan —
    /// borrowed extent slices, no record copies — so an on-call
    /// investigation doesn't perturb the system it is diagnosing.
    pub fn investigate_window(
        &self,
        from: SimTime,
        to: SimTime,
        max_flows: usize,
        filter: impl Fn(&pingmesh_types::ProbeRecord) -> bool,
    ) -> pingmesh_dsa::Investigation {
        let chunks = self.pipeline.store.scan_all_window_chunks(from, to);
        pingmesh_dsa::investigate_chunks(&chunks, self.net.topology(), max_flows, filter)
    }

    /// Regenerates pinglists (e.g. after a topology/config change) and
    /// installs them on the controller cluster. Agents pick the new
    /// generation up at their next poll — the controller never pushes.
    pub fn regenerate_pinglists(&mut self, generator_config: GeneratorConfig) {
        self.generation += 1;
        self.config.generator = generator_config.clone();
        let generator = PinglistGenerator::new(generator_config);
        let set = generator.generate_all(self.net.topology(), self.generation);
        pingmesh_obs::trace::arm_from_pinglists(&set.lists, Some(self.queue.now()));
        self.pipeline
            .set_expected_pairs(Arc::new(ExpectedPairs::from_pinglists(
                self.net.topology(),
                &set.lists,
            )));
        self.cluster.set_pinglists(set);
    }

    /// Runs the simulation until virtual time `end` (inclusive of events
    /// at `end`).
    pub fn run_until(&mut self, end: SimTime) {
        let virtual_start = self.queue.now();
        let wall_start = std::time::Instant::now();
        let mut processed: u64 = 0;
        while let Some(t) = self.queue.peek_time() {
            if t > end {
                break;
            }
            let ev = self.queue.pop().expect("peeked");
            self.handle(ev.time, ev.event);
            processed += 1;
        }
        let now = self.queue.now();
        pingmesh_obs::registry()
            .counter("pingmesh_core_events_total")
            .add(processed);
        if pingmesh_obs::enabled() && processed > 0 {
            let wall_s = wall_start.elapsed().as_secs_f64();
            let virtual_s = now.since(virtual_start).as_secs_f64();
            let ratio = if wall_s > 0.0 {
                virtual_s / wall_s
            } else {
                0.0
            };
            let eps = if wall_s > 0.0 {
                processed as f64 / wall_s
            } else {
                0.0
            };
            pingmesh_obs::registry()
                .gauge("pingmesh_core_events_per_sec")
                .set(eps);
            pingmesh_obs::registry()
                .gauge("pingmesh_core_virtual_wall_ratio")
                .set(ratio);
            pingmesh_obs::emit_sim!(now; Info, "core.orchestrator", "run_until",
                "events" => processed,
                "events_per_sec" => eps,
                "virtual_wall_ratio" => ratio,
                "queue_depth" => self.queue.len() as u64,
            );
        }
    }

    fn handle(&mut self, now: SimTime, ev: Ev) {
        match ev {
            Ev::AgentPoll(s) => self.handle_poll(now, s),
            Ev::AgentWake(s) => self.handle_wake(now, s),
            Ev::PaCollect => self.handle_pa(now),
            Ev::JobWake => self.handle_jobs(now),
        }
    }

    fn handle_poll(&mut self, now: SimTime, s: ServerId) {
        let poll_interval = self.config.agent.controller_poll_interval;
        self.queue.schedule(now + poll_interval, Ev::AgentPoll(s));
        if !self.net.server_is_up(s, now) {
            return; // the server has no power; it will poll when back
        }
        let agent = &mut self.agents[s.index()];
        let had_schedule = agent.next_wakeup().is_some();
        let outcome = match self.cluster.fetch(s, now) {
            Ok(Some(pl)) => ControllerPollOutcome::Pinglist(pl),
            Ok(None) => ControllerPollOutcome::NoPinglist,
            Err(_) => ControllerPollOutcome::Unreachable,
        };
        agent.on_controller_poll(outcome, now);
        // Start a wake chain when a schedule (re)appeared.
        if let Some(t) = agent.next_wakeup() {
            if !had_schedule || t <= now {
                self.queue.schedule(t.max(now), Ev::AgentWake(s));
            }
        }
    }

    fn handle_wake(&mut self, now: SimTime, s: ServerId) {
        if !self.net.server_is_up(s, now) {
            // Powered off: drop this chain; the poll handler will restart
            // probing after power returns (next poll re-fetches the list).
            self.agents[s.index()].on_controller_poll(ControllerPollOutcome::NoPinglist, now);
            return;
        }
        let due = self.agents[s.index()].due_probes(now);
        for probe in &due {
            let target_ip = match probe.entry.target {
                PingTarget::Server { ip, .. } | PingTarget::Vip { ip, .. } => ip,
            };
            let attempt = self.net.probe_qos(
                s,
                target_ip,
                probe.src_port,
                probe.entry.port,
                probe.entry.kind,
                probe.entry.qos,
                now,
            );
            self.outputs.probes_run += 1;
            self.agents[s.index()].record_outcome(probe, attempt.dst, attempt.outcome, now);
        }
        self.agents[s.index()].recycle_due(due);
        // Upload path: batch triggers + synchronous retry-then-discard.
        // The agent owns the batch bookkeeping; we own the batch itself
        // and hand its capacity back afterwards.
        if self.agents[s.index()].upload_due(now) {
            let dc = self.net.topology().server(s).dc;
            if let Some(batch) = self.agents[s.index()].begin_upload() {
                pingmesh_obs::trace::on_upload_batch(&batch, Some(now));
                loop {
                    let ok = self.pipeline.store.append(StreamName { dc }, &batch, now);
                    if ok {
                        let bytes: u64 = batch.iter().map(|r| r.wire_size() as u64).sum();
                        self.agents[s.index()].note_uploaded(bytes);
                        self.agents[s.index()].on_upload_result(true);
                        break;
                    }
                    if !self.agents[s.index()].on_upload_result(false) {
                        break; // retries exhausted: discarded
                    }
                }
                self.agents[s.index()].recycle_batch(batch);
            }
        }
        if let Some(t) = self.agents[s.index()].next_wakeup() {
            self.queue.schedule(t.max(now), Ev::AgentWake(s));
        }
    }

    fn handle_pa(&mut self, now: SimTime) {
        self.queue
            .schedule(now + self.config.pa_interval, Ev::PaCollect);
        let topo = self.net.topology().clone();
        for dc in topo.dcs() {
            let snaps: Vec<_> = topo
                .servers_in_dc(dc)
                .map(|s| self.agents[s.index()].collect_counters())
                .collect();
            self.pa.collect(dc, now, snaps);
        }
    }

    fn handle_jobs(&mut self, now: SimTime) {
        let ticks = self.jobman.due(now);
        self.queue.schedule(self.jobman.next_wakeup(), Ev::JobWake);
        if !ticks.is_empty() {
            // Refresh the completeness denominator from the conservation
            // ledger: every observed probe that resolved and has left the
            // agent's buffer should be a stored record by now — discarded
            // records are the shortfall. (Still-buffered records are lag,
            // not loss; they are excluded rather than counted against.)
            let scheduled: u64 = self
                .agents
                .iter()
                .map(|a| a.probes_observed() - a.unresolved_probes() - a.buffered_records())
                .sum();
            self.pipeline.set_scheduled_probes(scheduled);
        }
        for tick in ticks {
            let out = self.pipeline.run_tick(tick);
            self.outputs.alerts.extend(out.alerts);
            for (dc, pattern) in out.patterns {
                self.outputs.patterns.push((tick.window_start, dc, pattern));
            }
            if let Some(bh) = out.blackholes {
                for c in &bh.reload_candidates {
                    self.outputs
                        .blackhole_candidates
                        .push((now, c.tor, c.score));
                    if self.config.auto_repair {
                        self.repair.request_reload(&mut self.net, c.tor, now);
                    }
                }
                for ps in bh.escalations {
                    self.outputs.escalations.push((now, ps));
                }
            }
            for incident in out.incidents {
                self.localize_and_mitigate(&incident, now);
                self.outputs.incidents.push(incident);
            }
        }
    }

    /// §5.2 in code: traceroute the worst pairs of an incident, rank
    /// switches by attributed loss, isolate the top one.
    fn localize_and_mitigate(&mut self, incident: &SilentDropFinding, now: SimTime) {
        if incident.suspect_pairs.is_empty() {
            return;
        }
        let mut merged = TracerouteReport::default();
        for (i, pair) in incident.suspect_pairs.iter().take(8).enumerate() {
            let report = tcp_traceroute(
                &mut self.net,
                pair.src,
                pair.dst,
                64,
                100,
                20_000 + (i as u16) * 128,
                now,
            );
            merged.merge(&report);
        }
        // A switch is suspect when its attributed loss clearly exceeds
        // what the DC-wide incident rate predicts for a healthy device;
        // half the incident rate separates the faulty switch (whose
        // per-packet loss must be at least the diluted DC rate) from the
        // 1e-5-class background.
        let min_rate = (incident.drop_rate * 0.5).max(5.0 * incident.baseline.max(1e-5));
        let suspects = merged.suspects(min_rate, 500);
        if self.config.auto_repair {
            if let Some(&(sw, _rate)) = suspects.first() {
                self.repair.isolate_for_rma(&mut self.net, sw, now);
            }
        }
        self.outputs.traceroutes.push((now, merged));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pingmesh_topology::{DcSpec, TopologySpec};

    fn small_orchestrator() -> Orchestrator {
        let topo = Arc::new(
            Topology::build(TopologySpec {
                dcs: vec![DcSpec::tiny("t")],
            })
            .unwrap(),
        );
        Orchestrator::new(
            topo,
            vec![DcProfile::ideal()],
            ServiceMap::new(),
            OrchestratorConfig::default(),
        )
    }

    #[test]
    fn agents_probe_and_upload_end_to_end() {
        let mut o = small_orchestrator();
        o.run_until(SimTime::ZERO + SimDuration::from_mins(25));
        assert!(o.outputs().probes_run > 100, "{}", o.outputs().probes_run);
        assert!(
            o.pipeline().store.record_count() > 0,
            "uploads must reach the store"
        );
        // The 10-min job has run and produced DC-level SLA rows.
        let row = o.pipeline().db.latest(pingmesh_dsa::ScopeKey::Dc(DcId(0)));
        assert!(row.is_some());
        let row = row.unwrap();
        assert!(row.samples > 0);
        assert!(row.p50_us > 0);
        assert!(row.drop_rate < 1e-3, "ideal profile has no drops");
    }

    #[test]
    fn window_investigation_reads_store_without_copying() {
        let mut o = small_orchestrator();
        o.run_until(SimTime::ZERO + SimDuration::from_mins(25));
        let copies0 = o.pipeline().store.record_copy_count();
        let inv = o.investigate_window(SimTime::ZERO, o.now(), 8, |_| true);
        assert!(inv.probes > 0, "the window has uploaded probes");
        assert_eq!(inv.bad_probes, 0, "ideal profile has no drops");
        assert_eq!(
            o.pipeline().store.record_copy_count(),
            copies0,
            "the drill-down must use the zero-copy chunked scan"
        );
    }

    #[test]
    fn pa_collects_fleet_counters() {
        let mut o = small_orchestrator();
        o.run_until(SimTime::ZERO + SimDuration::from_mins(12));
        let series = o.pa().series(DcId(0));
        assert!(!series.is_empty());
        assert!(series.iter().any(|s| s.probes_sent > 0));
    }

    #[test]
    fn healthy_run_raises_no_alerts_and_is_normal() {
        let mut o = small_orchestrator();
        o.run_until(SimTime::ZERO + SimDuration::from_mins(40));
        assert!(o.outputs().alerts.is_empty(), "{:?}", o.outputs().alerts);
        assert!(o
            .outputs()
            .patterns
            .iter()
            .all(|&(_, _, p)| p == LatencyPattern::Normal));
        assert!(o.outputs().incidents.is_empty());
    }

    #[test]
    fn controller_outage_fail_closes_then_recovers() {
        let mut o = small_orchestrator();
        // Both replicas down from minute 5 to minute 60.
        let from = SimTime::ZERO + SimDuration::from_mins(5);
        let until = SimTime::ZERO + SimDuration::from_mins(60);
        for i in 0..2 {
            o.cluster_mut()
                .replica_mut(i)
                .add_down_window(from, Some(until));
        }
        // After 3 failed polls (10-min interval), agents stop probing.
        o.run_until(SimTime::ZERO + SimDuration::from_mins(45));
        let stopped = (0..o.agents.len())
            .filter(|&i| o.agents[i].is_stopped())
            .count();
        assert_eq!(stopped, o.agents.len(), "all agents fail-closed");
        let probes_when_stopped = o.outputs().probes_run;
        // Recovery after the outage ends.
        o.run_until(SimTime::ZERO + SimDuration::from_mins(90));
        let resumed = (0..o.agents.len())
            .filter(|&i| !o.agents[i].is_stopped())
            .count();
        assert_eq!(resumed, o.agents.len(), "all agents resumed");
        assert!(o.outputs().probes_run > probes_when_stopped);
    }

    #[test]
    fn regeneration_reaches_agents_via_poll() {
        let mut o = small_orchestrator();
        o.run_until(SimTime::ZERO + SimDuration::from_mins(5));
        o.regenerate_pinglists(GeneratorConfig {
            payload_probes: true,
            ..GeneratorConfig::default()
        });
        o.run_until(SimTime::ZERO + SimDuration::from_mins(30));
        // All agents picked up generation 2.
        assert!(o.agents.iter().all(|a| a.generation() == 2));
    }
}
