//! The end-to-end orchestrator: a sharded discrete-event engine.
//!
//! Builds a full Pingmesh deployment over a simulated network and drives
//! it at paper scale. The fleet is partitioned by **podset** into shards,
//! each owning its own event queue and [`AgentFleet`] (struct-of-arrays
//! hot state); shards advance sim-time in parallel between **tick
//! barriers**:
//!
//! * every server's **agent** polls the controller VIP, launches probes
//!   at its scheduled times, buffers results and uploads them with
//!   retry-then-discard semantics — all inside its shard;
//! * at each barrier the shards' side effects are merged in canonical
//!   order: deferred store uploads sorted by `(time, server)`, switch-
//!   counter deltas summed (commutative), probe/metric counts flushed;
//! * the **PA pipeline** (5-minute counter sweep), the **job manager**
//!   (10-min / 1-h / 1-day DSA jobs) and the **repair loop** (reloads,
//!   traceroute campaigns, isolations — the §5 detect-localize-mitigate
//!   story) run barrier-sequentially with full access to the world.
//!
//! ## Why runs are bit-identical at any shard count
//!
//! Agents never exchange events: a probe resolves instantaneously
//! against the network state, which is immutable during an epoch. The
//! only per-probe randomness comes from [`NetState::probe_keyed`]'s
//! counter-based RNG — a pure function of (run seed, five-tuple, launch
//! time) — so a probe's outcome is independent of execution order. Every
//! remaining cross-shard effect (uploads, counter deltas, probe counts)
//! is either merged in a canonical sort order or commutative. Epoch
//! boundaries line up with the global events (PA, jobs) plus a
//! `barrier_interval` heartbeat, none of which depend on the shard
//! layout. `shards = 1` *is* the serial engine — same code path, no
//! thread spawn.

use crate::mitigation::{self, MitDevice, VERIFY_DST_PORT};
use crate::repair::RepairService;
use crate::watchdog::detect_podset_power_down;
use pingmesh_agent::{AgentConfig, AgentFleet, AgentView, ControllerPollOutcome};
use pingmesh_controller::{
    ControllerCluster, Decision, FindingKind, GeneratorConfig, MitigationConfig, MitigationEngine,
    PinglistGenerator, VerifyOutcome,
};
use pingmesh_dsa::jobs::{JobKind, JobManager, Pipeline};
use pingmesh_dsa::store::{CosmosStore, StreamName};
use pingmesh_dsa::{
    EscalationFinding, ExpectedPairs, LatencyPattern, PerfCounterAggregator, SilentDropFinding,
};
use pingmesh_netsim::net::CounterDelta;
use pingmesh_netsim::{tcp_traceroute, DcProfile, EventQueue, NetState, SimNet, TracerouteReport};
use pingmesh_topology::{ServiceMap, Topology};
use pingmesh_types::{
    DcId, FiveTuple, PingTarget, PodsetId, ProbeKind, ProbeOutcome, ProbeRecord, QosClass,
    ServerId, SimDuration, SimTime, SwitchId, SwitchTier,
};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Orchestrator configuration.
#[derive(Debug, Clone)]
pub struct OrchestratorConfig {
    /// Agent tunables.
    pub agent: AgentConfig,
    /// Pinglist generation parameters.
    pub generator: GeneratorConfig,
    /// Controller replicas behind the VIP.
    pub controller_replicas: usize,
    /// PA counter collection interval.
    pub pa_interval: SimDuration,
    /// RNG seed for the whole run.
    pub seed: u64,
    /// Whether detection findings drive automatic repair (reloads /
    /// isolations). Disable to observe incidents without mitigation.
    pub auto_repair: bool,
    /// Whether detection findings drive the closed-loop mitigation
    /// engine (drain → verify → un-drain). Independent of `auto_repair`
    /// so experiments can keep the §5.1 reload loop while watching
    /// incidents go unmitigated, or vice versa.
    pub auto_mitigate: bool,
    /// Mitigation engine tunables (drain budget, soak, cooldown).
    pub mitigation: MitigationConfig,
    /// Event-queue shards. Podsets are distributed round-robin over
    /// shards; `1` (the default) runs the serial engine inline. Output is
    /// bit-identical at any value.
    pub shards: usize,
    /// Maximum sim-time an epoch may span between barriers. Barriers also
    /// land on every global event (PA sweep, job tick), so this only
    /// bounds how long shards run unsynchronized; it does not affect
    /// results.
    pub barrier_interval: SimDuration,
}

impl Default for OrchestratorConfig {
    fn default() -> Self {
        Self {
            agent: AgentConfig::default(),
            generator: GeneratorConfig::default(),
            controller_replicas: 2,
            pa_interval: SimDuration::from_mins(5),
            seed: 0xC0FFEE,
            auto_repair: true,
            auto_mitigate: true,
            mitigation: MitigationConfig::default(),
            shards: 1,
            barrier_interval: SimDuration::from_mins(1),
        }
    }
}

/// Everything the run produced, for inspection by experiments.
#[derive(Debug, Default)]
pub struct SimOutputs {
    /// Alert transitions from the 10-min pipeline.
    pub alerts: Vec<pingmesh_dsa::Alert>,
    /// Per-window pattern verdicts: (window start, DC, pattern).
    pub patterns: Vec<(SimTime, DcId, LatencyPattern)>,
    /// Silent-drop incidents raised.
    pub incidents: Vec<SilentDropFinding>,
    /// Black-hole reload candidates seen per hourly run.
    pub blackhole_candidates: Vec<(SimTime, SwitchId, f64)>,
    /// Podset escalations from black-hole detection.
    pub escalations: Vec<(SimTime, pingmesh_types::PodsetId)>,
    /// Traceroute campaigns run: (time, merged report).
    pub traceroutes: Vec<(SimTime, TracerouteReport)>,
    /// Probes executed in total.
    pub probes_run: u64,
}

/// Shard-local events carry the agent's fleet index (dense per shard),
/// not the global server id — the hot loop never hashes or searches.
#[derive(Debug, Clone, Copy)]
enum Ev {
    Poll(u32),
    Wake(u32),
}

/// A deferred store upload: decided (and agent-side accounted) at wake
/// time inside a shard, applied to the store at the barrier in canonical
/// `(time, server)` order.
struct DeferredUpload {
    time: SimTime,
    server: ServerId,
    fleet_idx: u32,
    dc: DcId,
    batch: Vec<ProbeRecord>,
}

/// Everything a shard may read during an epoch. All `&self`, shared by
/// every worker thread.
struct EpochCtx<'a> {
    net: &'a NetState,
    seed: u64,
    cluster: &'a ControllerCluster,
    store: &'a CosmosStore,
    topo: &'a Topology,
    poll_interval: SimDuration,
    obs_enabled: bool,
}

/// One podset shard: its event queue, its agents, and the epoch's
/// buffered side effects (merged and drained at each barrier).
struct Shard {
    queue: EventQueue<Ev>,
    fleet: AgentFleet,
    uploads: Vec<DeferredUpload>,
    counter_delta: CounterDelta,
    probes_run: u64,
    timeouts: u64,
    rtts: Vec<SimDuration>,
}

impl Shard {
    fn new(topo: Arc<Topology>, agent_config: AgentConfig) -> Self {
        Self {
            queue: EventQueue::new(),
            fleet: AgentFleet::new(topo, agent_config),
            uploads: Vec::new(),
            counter_delta: CounterDelta::new(),
            probes_run: 0,
            timeouts: 0,
            rtts: Vec::new(),
        }
    }

    /// Runs every shard event with `time ≤ t_end`; returns the number of
    /// events processed.
    fn run_epoch(&mut self, t_end: SimTime, ctx: &EpochCtx<'_>) -> u64 {
        let mut processed = 0;
        while let Some(t) = self.queue.peek_time() {
            if t > t_end {
                break;
            }
            let ev = self.queue.pop().expect("peeked");
            match ev.event {
                Ev::Poll(i) => self.handle_poll(ev.time, i, ctx),
                Ev::Wake(i) => self.handle_wake(ev.time, i, ctx),
            }
            processed += 1;
        }
        processed
    }

    fn handle_poll(&mut self, now: SimTime, i: u32, ctx: &EpochCtx<'_>) {
        self.queue.schedule(now + ctx.poll_interval, Ev::Poll(i));
        let idx = i as usize;
        let s = self.fleet.server(idx);
        if !ctx.net.server_is_up(s, now) {
            return; // the server has no power; it will poll when back
        }
        let had_schedule = self.fleet.next_wakeup(idx).is_some();
        let outcome = match ctx.cluster.fetch_keyed(s, now) {
            Ok(Some(pl)) => ControllerPollOutcome::Pinglist(pl),
            Ok(None) => ControllerPollOutcome::NoPinglist,
            Err(_) => ControllerPollOutcome::Unreachable,
        };
        self.fleet.on_controller_poll(idx, outcome, now);
        // Start a wake chain when a schedule (re)appeared.
        if let Some(t) = self.fleet.next_wakeup(idx) {
            if !had_schedule || t <= now {
                self.queue.schedule(t.max(now), Ev::Wake(i));
            }
        }
    }

    fn handle_wake(&mut self, now: SimTime, i: u32, ctx: &EpochCtx<'_>) {
        let idx = i as usize;
        let s = self.fleet.server(idx);
        if !ctx.net.server_is_up(s, now) {
            // Powered off: drop this chain; the poll handler will restart
            // probing after power returns (next poll re-fetches the list).
            self.fleet
                .on_controller_poll(idx, ControllerPollOutcome::NoPinglist, now);
            return;
        }
        let due = self.fleet.due_probes(idx, now);
        for probe in &due {
            let target_ip = match probe.entry.target {
                PingTarget::Server { ip, .. } | PingTarget::Vip { ip, .. } => ip,
            };
            let attempt = ctx.net.probe_keyed(
                ctx.seed,
                &mut self.counter_delta,
                s,
                target_ip,
                probe.src_port,
                probe.entry.port,
                probe.entry.kind,
                probe.entry.qos,
                now,
            );
            self.probes_run += 1;
            match attempt.outcome {
                ProbeOutcome::Success { rtt } => {
                    if ctx.obs_enabled {
                        self.rtts.push(rtt);
                    }
                }
                ProbeOutcome::Timeout => self.timeouts += 1,
                ProbeOutcome::Refused => {}
            }
            self.fleet
                .record_outcome(idx, probe, attempt.dst, attempt.outcome, now);
        }
        self.fleet.recycle_due(due);
        // Upload path: batch triggers + retry-then-discard. Store liveness
        // is a pure function of `now`, so success is decided here (the
        // retry loop can't change a verdict frozen in sim-time); the store
        // mutation itself is deferred to the barrier.
        if self.fleet.upload_due(idx, now) {
            let dc = ctx.topo.server(s).dc;
            if let Some(batch) = self.fleet.begin_upload(idx) {
                pingmesh_obs::trace::on_upload_batch(&batch, Some(now));
                if ctx.store.is_up(now) {
                    let bytes: u64 = batch.iter().map(|r| r.wire_size() as u64).sum();
                    self.fleet.note_uploaded(idx, bytes);
                    self.fleet.on_upload_result(idx, true);
                    self.uploads.push(DeferredUpload {
                        time: now,
                        server: s,
                        fleet_idx: i,
                        dc,
                        batch,
                    });
                } else {
                    // Every synchronous retry hits the same downed store:
                    // spin the bookkeeping until retries exhaust.
                    while self.fleet.on_upload_result(idx, false) {}
                    self.fleet.recycle_batch(idx, batch);
                }
            }
        }
        if let Some(t) = self.fleet.next_wakeup(idx) {
            self.queue.schedule(t.max(now), Ev::Wake(i));
        }
    }
}

/// The orchestrator.
pub struct Orchestrator {
    net: SimNet,
    shards: Vec<Shard>,
    /// `server.index()` → (shard, fleet index within the shard).
    shard_of: Vec<(u32, u32)>,
    cluster: ControllerCluster,
    pipeline: Pipeline,
    pa: PerfCounterAggregator,
    jobman: JobManager,
    repair: RepairService,
    mitigation: MitigationEngine<MitDevice>,
    /// Podsets currently drained out of pinglist generation (power-down
    /// mitigation). Ordered so regeneration filtering is deterministic.
    excluded_podsets: BTreeSet<PodsetId>,
    config: OrchestratorConfig,
    outputs: SimOutputs,
    generation: u64,
    now: SimTime,
    next_pa: SimTime,
}

impl Orchestrator {
    /// Builds a deployment: network, controller cluster with generated
    /// pinglists, one agent per server (sharded by podset), DSA pipeline,
    /// and the initial event population.
    pub fn new(
        topo: Arc<Topology>,
        profiles: Vec<DcProfile>,
        services: ServiceMap,
        config: OrchestratorConfig,
    ) -> Self {
        let net = SimNet::new(topo.clone(), profiles, config.seed);

        let generator = PinglistGenerator::new(config.generator.clone());
        let mut cluster = ControllerCluster::new(config.controller_replicas);
        let generation = 1;
        let set = generator.generate_all(&topo, generation);
        // Provenance + quality: arm sampled traces and derive the pod
        // pairs this generation is expected to report, while the full
        // generation is still in hand.
        pingmesh_obs::trace::arm_from_pinglists(&set.lists, Some(SimTime::ZERO));
        let expected = Arc::new(ExpectedPairs::from_pinglists(&topo, &set.lists));
        cluster.set_pinglists(set);

        // Partition by podset, podsets round-robin over shards. The
        // assignment is pure topology, so the per-shard server order (and
        // with it every fleet index) is independent of anything else.
        let nshards = config.shards.clamp(1, topo.podset_count().max(1));
        let mut shards: Vec<Shard> = (0..nshards)
            .map(|_| Shard::new(topo.clone(), config.agent.clone()))
            .collect();
        let mut shard_of = vec![(0u32, 0u32); topo.server_count()];
        // Stagger the initial controller polls over the first minute by
        // *global* server index so the fleet does not stampede the VIP —
        // and so the stagger is identical at any shard count.
        let n = topo.server_count().max(1) as u64;
        let mut initial_polls: Vec<Vec<(SimTime, Ev)>> = vec![Vec::new(); nshards];
        for (i, s) in topo.servers().enumerate() {
            let sh = topo.server(s).podset.index() % nshards;
            let idx = shards[sh].fleet.push_server(s) as u32;
            shard_of[s.index()] = (sh as u32, idx);
            let offset = (i as u64 * 60_000_000) / n;
            initial_polls[sh].push((SimTime(offset), Ev::Poll(idx)));
        }
        for (sh, polls) in shards.iter_mut().zip(initial_polls) {
            sh.queue.schedule_batch(polls);
        }

        let mut pipeline = Pipeline::new(topo.clone(), services, CosmosStore::with_defaults());
        pipeline.set_expected_pairs(expected);
        let jobman = JobManager::new();
        let next_pa = SimTime::ZERO + config.pa_interval;

        let mitigation = MitigationEngine::new(config.mitigation);
        Self {
            net,
            shards,
            shard_of,
            cluster,
            pipeline,
            pa: PerfCounterAggregator::new(),
            jobman,
            repair: RepairService::new(),
            mitigation,
            excluded_podsets: BTreeSet::new(),
            config,
            outputs: SimOutputs::default(),
            generation,
            now: SimTime::ZERO,
            next_pa,
        }
    }

    /// The simulated network (inject faults, VIPs, profiles before or
    /// between runs).
    pub fn net_mut(&mut self) -> &mut SimNet {
        &mut self.net
    }

    /// The simulated network (read).
    pub fn net(&self) -> &SimNet {
        &self.net
    }

    /// The controller cluster (read).
    pub fn cluster(&self) -> &ControllerCluster {
        &self.cluster
    }

    /// The controller cluster (schedule outages, clear pinglists).
    pub fn cluster_mut(&mut self) -> &mut ControllerCluster {
        &mut self.cluster
    }

    /// The DSA pipeline (results DB, store, detectors).
    pub fn pipeline(&self) -> &Pipeline {
        &self.pipeline
    }

    /// Mutable DSA pipeline access (tune detector configs).
    pub fn pipeline_mut(&mut self) -> &mut Pipeline {
        &mut self.pipeline
    }

    /// The PA fast path.
    pub fn pa(&self) -> &PerfCounterAggregator {
        &self.pa
    }

    /// Run outputs so far.
    pub fn outputs(&self) -> &SimOutputs {
        &self.outputs
    }

    /// The repair service (reload / isolation logs).
    pub fn repair(&self) -> &RepairService {
        &self.repair
    }

    /// The mitigation engine (drain states, transition log, counters).
    pub fn mitigation(&self) -> &MitigationEngine<MitDevice> {
        &self.mitigation
    }

    /// Podsets currently drained out of pinglist generation.
    pub fn excluded_podsets(&self) -> &BTreeSet<PodsetId> {
        &self.excluded_podsets
    }

    /// One agent, by server id (diagnostics / invariant checks).
    pub fn agent(&self, s: ServerId) -> AgentView<'_> {
        let (sh, idx) = self.shard_of[s.index()];
        self.shards[sh as usize].fleet.view(idx as usize)
    }

    /// Number of event-queue shards actually in use.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The §4.3 troubleshooting drill-down over a stored window, scoped
    /// by `filter`. Reads the store through the zero-copy chunked scan —
    /// borrowed extent slices, no record copies — so an on-call
    /// investigation doesn't perturb the system it is diagnosing.
    pub fn investigate_window(
        &self,
        from: SimTime,
        to: SimTime,
        max_flows: usize,
        filter: impl Fn(&pingmesh_types::ProbeRecord) -> bool,
    ) -> pingmesh_dsa::Investigation {
        let chunks = self.pipeline.store.scan_all_window_chunks(from, to);
        pingmesh_dsa::investigate_chunks(&chunks, self.net.topology(), max_flows, filter)
    }

    /// Regenerates pinglists (e.g. after a topology/config change) and
    /// installs them on the controller cluster. Agents pick the new
    /// generation up at their next poll — the controller never pushes.
    pub fn regenerate_pinglists(&mut self, generator_config: GeneratorConfig) {
        self.generation += 1;
        self.config.generator = generator_config.clone();
        let generator = PinglistGenerator::new(generator_config);
        let mut set = generator.generate_all(self.net.topology(), self.generation);
        // Drained podsets (power-down mitigation) are cut out of the mesh:
        // their servers get empty lists, and nobody else wastes probes on
        // them — exactly the manual pinglist surgery the paper's operators
        // did, automated. VIP entries stay (the VIP maps around the dark
        // DIPs or reports the outage itself).
        if !self.excluded_podsets.is_empty() {
            let topo = self.net.topology();
            for list in &mut set.lists {
                if self
                    .excluded_podsets
                    .contains(&topo.server(list.server).podset)
                {
                    list.entries.clear();
                    continue;
                }
                list.entries.retain(|e| match e.target {
                    PingTarget::Server { id, .. } => {
                        !self.excluded_podsets.contains(&topo.server(id).podset)
                    }
                    PingTarget::Vip { .. } => true,
                });
            }
        }
        pingmesh_obs::trace::arm_from_pinglists(&set.lists, Some(self.now));
        self.pipeline
            .set_expected_pairs(Arc::new(ExpectedPairs::from_pinglists(
                self.net.topology(),
                &set.lists,
            )));
        self.cluster.set_pinglists(set);
    }

    /// Runs the simulation until virtual time `end` (inclusive of events
    /// at `end`): epochs of parallel shard execution separated by
    /// barriers, with global events (PA, jobs) on barrier boundaries.
    pub fn run_until(&mut self, end: SimTime) {
        let virtual_start = self.now;
        let wall_start = std::time::Instant::now();
        let mut processed: u64 = 0;
        while self.now < end {
            let t_epoch = end
                .min(self.next_pa)
                .min(self.jobman.next_wakeup())
                .min(self.now + self.config.barrier_interval);
            let ctx = EpochCtx {
                net: self.net.state(),
                seed: self.net.run_seed(),
                cluster: &self.cluster,
                store: &self.pipeline.store,
                topo: self.net.topology(),
                poll_interval: self.config.agent.controller_poll_interval,
                obs_enabled: pingmesh_obs::enabled(),
            };
            let counts = if self.shards.len() == 1 {
                vec![self.shards[0].run_epoch(t_epoch, &ctx)]
            } else {
                let threads = pingmesh_par::max_threads().min(self.shards.len());
                pingmesh_par::par_map_mut_threads(threads, &mut self.shards, |_, sh| {
                    sh.run_epoch(t_epoch, &ctx)
                })
            };
            processed += counts.iter().sum::<u64>();
            self.barrier_merge();
            self.now = t_epoch;
            if self.now == self.next_pa {
                self.handle_pa(self.now);
            }
            if self.jobman.next_wakeup() <= self.now {
                self.handle_jobs(self.now);
                processed += 1;
            }
        }
        pingmesh_obs::registry()
            .counter("pingmesh_core_events_total")
            .add(processed);
        if pingmesh_obs::enabled() && processed > 0 {
            let wall_s = wall_start.elapsed().as_secs_f64();
            let virtual_s = self.now.since(virtual_start).as_secs_f64();
            let ratio = if wall_s > 0.0 {
                virtual_s / wall_s
            } else {
                0.0
            };
            let eps = if wall_s > 0.0 {
                processed as f64 / wall_s
            } else {
                0.0
            };
            pingmesh_obs::registry()
                .gauge("pingmesh_core_events_per_sec")
                .set(eps);
            pingmesh_obs::registry()
                .gauge("pingmesh_core_virtual_wall_ratio")
                .set(ratio);
            pingmesh_obs::emit_sim!(self.now; Info, "core.orchestrator", "run_until",
                "events" => processed,
                "events_per_sec" => eps,
                "virtual_wall_ratio" => ratio,
                "queue_depth" => self.shards.iter().map(|s| s.queue.len() as u64).sum::<u64>(),
                "shards" => self.shards.len() as u64,
            );
        }
    }

    /// Merges every shard's buffered epoch side effects in canonical
    /// order, making the world state identical to what a serial run would
    /// have produced.
    fn barrier_merge(&mut self) {
        // Deferred uploads, globally sorted by (time, server). The key is
        // unique — an agent produces at most one upload per wake instant —
        // so the order is independent of shard layout.
        let mut uploads: Vec<DeferredUpload> = Vec::new();
        for sh in &mut self.shards {
            uploads.append(&mut sh.uploads);
        }
        uploads.sort_by_key(|u| (u.time, u.server));
        for u in uploads {
            let ok = self
                .pipeline
                .store
                .append(StreamName { dc: u.dc }, &u.batch, u.time);
            debug_assert!(ok, "store liveness was decided at wake time");
            let (sh, _) = self.shard_of[u.server.index()];
            self.shards[sh as usize]
                .fleet
                .recycle_batch(u.fleet_idx as usize, u.batch);
        }
        // Switch counters: per-shard deltas, summed (commutative).
        for sh in &mut self.shards {
            self.net.merge_counters(&sh.counter_delta);
            sh.counter_delta.clear();
        }
        // Probe + queue metrics: one flush per shard per barrier.
        for sh in &mut self.shards {
            self.outputs.probes_run += sh.probes_run;
            self.net
                .flush_probe_metrics(sh.probes_run, sh.timeouts, &sh.rtts);
            sh.probes_run = 0;
            sh.timeouts = 0;
            sh.rtts.clear();
            sh.queue.flush_metrics();
        }
    }

    fn handle_pa(&mut self, now: SimTime) {
        self.next_pa = now + self.config.pa_interval;
        let topo = self.net.topology().clone();
        for dc in topo.dcs() {
            let snaps: Vec<_> = topo
                .servers_in_dc(dc)
                .map(|s| {
                    let (sh, idx) = self.shard_of[s.index()];
                    self.shards[sh as usize]
                        .fleet
                        .collect_counters(idx as usize)
                })
                .collect();
            self.pa.collect(dc, now, snaps);
        }
    }

    fn handle_jobs(&mut self, now: SimTime) {
        let ticks = self.jobman.due(now);
        if !ticks.is_empty() {
            // Refresh the completeness denominator from the conservation
            // ledger: every observed probe that resolved and has left the
            // agent's buffer should be a stored record by now — discarded
            // records are the shortfall. (Still-buffered records are lag,
            // not loss; they are excluded rather than counted against.)
            let scheduled: u64 = self
                .shards
                .iter()
                .map(|sh| {
                    (0..sh.fleet.len())
                        .map(|i| {
                            sh.fleet.probes_observed(i)
                                - sh.fleet.unresolved_probes(i)
                                - sh.fleet.buffered_records(i)
                        })
                        .sum::<u64>()
                })
                .sum();
            self.pipeline.set_scheduled_probes(scheduled);
        }
        for tick in ticks {
            let out = self.pipeline.run_tick(tick);
            self.outputs.alerts.extend(out.alerts);
            for (dc, pattern) in out.patterns {
                self.outputs.patterns.push((tick.window_start, dc, pattern));
            }
            if let Some(bh) = out.blackholes {
                for c in &bh.reload_candidates {
                    self.outputs
                        .blackhole_candidates
                        .push((now, c.tor, c.score));
                    if self.config.auto_repair {
                        self.repair.request_reload(&mut self.net, c.tor, now);
                    }
                }
                for esc in &bh.escalations {
                    self.outputs.escalations.push((now, esc.podset));
                    if self.config.auto_mitigate {
                        self.mitigate_escalation(esc, now);
                    }
                }
            }
            for incident in out.incidents {
                self.localize_and_mitigate(&incident, now);
                self.outputs.incidents.push(incident);
            }
            // Podset power-down check rides the 10-min cadence: the
            // window the tick just closed is exactly the observation
            // the Figure-8(b) signature needs.
            if tick.kind == JobKind::TenMin && self.config.auto_mitigate {
                let agg = self
                    .pipeline
                    .store
                    .merged_window_aggregate(tick.window_start, tick.window_end);
                let topo = self.net.topology().clone();
                for (ps, conf) in detect_podset_power_down(&agg, &topo) {
                    self.report_podset(ps, conf, now);
                }
            }
        }
        // Drained devices whose soak has elapsed get their confirmation
        // probes here — barrier-sequential, so the probe set (and with it
        // the whole run) is identical at any shard count.
        if self.config.auto_mitigate {
            self.run_due_verifications(now);
        }
    }

    /// Routes a switch finding through the mitigation engine; on a Drain
    /// decision the switch leaves ECMP via the route tables' exclusion
    /// support (the same actuator the §5.2 RMA path uses).
    fn report_switch(&mut self, sw: SwitchId, kind: FindingKind, confidence: f64, now: SimTime) {
        let topo = self.net.topology().clone();
        let tier = mitigation::switch_tier_key(&topo, sw);
        let size = mitigation::switch_tier_size(&topo, sw);
        match self
            .mitigation
            .report(MitDevice::Switch(sw), tier, size, kind, confidence, now)
        {
            Decision::Drain | Decision::DrainAndEscalate => {
                self.repair.isolate_for_rma(&mut self.net, sw, now);
            }
            Decision::Rejected(_) => {}
        }
    }

    /// Routes a podset power-down finding through the engine; on Drain
    /// the podset is cut out of pinglist generation.
    fn report_podset(&mut self, ps: PodsetId, confidence: f64, now: SimTime) {
        let topo = self.net.topology().clone();
        let tier = mitigation::podset_tier_key(&topo, ps);
        let size = mitigation::podset_tier_size(&topo, ps);
        match self.mitigation.report(
            MitDevice::Podset(ps),
            tier,
            size,
            FindingKind::PodsetPowerDown,
            confidence,
            now,
        ) {
            Decision::Drain | Decision::DrainAndEscalate => {
                self.excluded_podsets.insert(ps);
                self.regenerate_pinglists(self.config.generator.clone());
            }
            Decision::Rejected(_) => {}
        }
    }

    /// A black-hole podset escalation: traceroute the blackholed pairs,
    /// pin the loss on a Leaf/Spine device, and hand it to the engine.
    fn mitigate_escalation(&mut self, esc: &EscalationFinding, now: SimTime) {
        if esc.suspect_pairs.is_empty() {
            return;
        }
        let mut merged = TracerouteReport::default();
        for (i, pair) in esc.suspect_pairs.iter().take(8).enumerate() {
            // Base ports 21_000+ keep the keyed RNG streams disjoint from
            // the silent-drop campaigns at 20_000+.
            let report = tcp_traceroute(
                &mut self.net,
                pair.src,
                pair.dst,
                64,
                100,
                21_000 + (i as u16) * 128,
                now,
            );
            merged.merge(&report);
        }
        // A type-2 black hole drops its flows deterministically, so the
        // guilty device's attributed loss is far above background noise.
        let candidate = merged
            .suspects(0.05, 100)
            .into_iter()
            .map(|(sw, _)| sw)
            .find(|sw| matches!(sw.tier, SwitchTier::Leaf | SwitchTier::Spine));
        if let Some(sw) = candidate {
            self.report_switch(sw, FindingKind::Blackhole, esc.confidence, now);
        }
        self.outputs.traceroutes.push((now, merged));
    }

    /// Runs confirmation probes for every drained device whose soak
    /// period has elapsed, and acts on the engine's verdicts.
    fn run_due_verifications(&mut self, now: SimTime) {
        for dev in self.mitigation.due_verifications(now) {
            match dev {
                MitDevice::Switch(sw) => self.verify_switch(sw, now),
                MitDevice::Podset(ps) => self.verify_podset(ps, now),
            }
        }
    }

    /// Proves (or fails to prove) a drained switch healthy: lift the
    /// exclusion, plan probes whose ECMP path traverses the device, fire
    /// them against live network state, and re-drain unless ≥90% succeed.
    fn verify_switch(&mut self, sw: SwitchId, now: SimTime) {
        let topo = self.net.topology().clone();
        // Lift the exclusion first: verification must exercise the paths
        // traffic would take with the device back in service.
        self.net.faults_mut().unisolate_switch(sw);
        let plan = {
            let net = &self.net;
            mitigation::plan_switch_verification(&topo, sw, 12, 512, |src, dst, port| {
                let tuple = FiveTuple::tcp(topo.ip_of(src), port, topo.ip_of(dst), VERIFY_DST_PORT);
                net.path_of(src, dst, &tuple).switches().collect::<Vec<_>>()
            })
        };
        let mut delta = CounterDelta::new();
        let mut ok = 0usize;
        for p in &plan {
            let attempt = self.net.state().probe_keyed(
                self.net.run_seed(),
                &mut delta,
                p.src,
                topo.ip_of(p.dst),
                p.src_port,
                VERIFY_DST_PORT,
                ProbeKind::TcpSyn,
                QosClass::High,
                now,
            );
            if matches!(attempt.outcome, ProbeOutcome::Success { .. }) {
                ok += 1;
            }
        }
        self.net.merge_counters(&delta);
        // Healthy needs real evidence: enough probes actually traversed
        // the device, and nearly all of them came back.
        let healthy = plan.len() >= 4 && ok * 10 >= plan.len() * 9;
        match self
            .mitigation
            .record_verification(MitDevice::Switch(sw), healthy, now)
        {
            VerifyOutcome::Undrain => {} // exclusion stays lifted
            VerifyOutcome::KeepDrained | VerifyOutcome::Escalated => {
                self.net.faults_mut().isolate_switch(sw);
            }
        }
    }

    /// Proves a powered-down podset live again by probing it from every
    /// other podset in its DC; on Undrain it rejoins pinglist generation.
    fn verify_podset(&mut self, ps: PodsetId, now: SimTime) {
        let topo = self.net.topology().clone();
        let plan = mitigation::plan_podset_verification(&topo, ps, 12);
        let mut delta = CounterDelta::new();
        let mut ok = 0usize;
        for p in &plan {
            let attempt = self.net.state().probe_keyed(
                self.net.run_seed(),
                &mut delta,
                p.src,
                topo.ip_of(p.dst),
                p.src_port,
                VERIFY_DST_PORT,
                ProbeKind::TcpSyn,
                QosClass::High,
                now,
            );
            if matches!(attempt.outcome, ProbeOutcome::Success { .. }) {
                ok += 1;
            }
        }
        self.net.merge_counters(&delta);
        let healthy = !plan.is_empty() && ok * 2 >= plan.len();
        if let VerifyOutcome::Undrain =
            self.mitigation
                .record_verification(MitDevice::Podset(ps), healthy, now)
        {
            self.excluded_podsets.remove(&ps);
            self.regenerate_pinglists(self.config.generator.clone());
        }
    }

    /// §5.2 in code: traceroute the worst pairs of an incident, rank
    /// switches by attributed loss, isolate the top one.
    fn localize_and_mitigate(&mut self, incident: &SilentDropFinding, now: SimTime) {
        if incident.suspect_pairs.is_empty() {
            return;
        }
        let mut merged = TracerouteReport::default();
        for (i, pair) in incident.suspect_pairs.iter().take(8).enumerate() {
            let report = tcp_traceroute(
                &mut self.net,
                pair.src,
                pair.dst,
                64,
                100,
                20_000 + (i as u16) * 128,
                now,
            );
            merged.merge(&report);
        }
        // A switch is suspect when its attributed loss clearly exceeds
        // what the DC-wide incident rate predicts for a healthy device;
        // half the incident rate separates the faulty switch (whose
        // per-packet loss must be at least the diluted DC rate) from the
        // 1e-5-class background.
        let min_rate = (incident.drop_rate * 0.5).max(5.0 * incident.baseline.max(1e-5));
        let suspects = merged.suspects(min_rate, 500);
        if self.config.auto_mitigate {
            if let Some(&(sw, rate)) = suspects.first() {
                // The incident's own confidence only measures how far the
                // DC-wide rate cleared the alarm bar — a diluted spine
                // fault can be unambiguous yet barely double the bar.
                // The localization is the stronger evidence: the
                // suspect's *attributed* loss rate cleared `min_rate`,
                // and the margin by which it did is how sure we are
                // that this switch (and not background noise) drops the
                // packets. Forward whichever signal is stronger.
                let localization = (1.0 - min_rate / rate.max(f64::MIN_POSITIVE)).clamp(0.0, 1.0);
                let confidence = incident.confidence.max(localization);
                self.report_switch(sw, FindingKind::SilentDrop, confidence, now);
            }
        } else if self.config.auto_repair {
            if let Some(&(sw, _rate)) = suspects.first() {
                self.repair.isolate_for_rma(&mut self.net, sw, now);
            }
        }
        self.outputs.traceroutes.push((now, merged));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pingmesh_topology::{DcSpec, TopologySpec};

    fn small_orchestrator_sharded(shards: usize) -> Orchestrator {
        let topo = Arc::new(
            Topology::build(TopologySpec {
                dcs: vec![DcSpec::tiny("t")],
            })
            .unwrap(),
        );
        Orchestrator::new(
            topo,
            vec![DcProfile::ideal()],
            ServiceMap::new(),
            OrchestratorConfig {
                shards,
                ..OrchestratorConfig::default()
            },
        )
    }

    fn small_orchestrator() -> Orchestrator {
        small_orchestrator_sharded(1)
    }

    #[test]
    fn agents_probe_and_upload_end_to_end() {
        let mut o = small_orchestrator();
        o.run_until(SimTime::ZERO + SimDuration::from_mins(25));
        assert!(o.outputs().probes_run > 100, "{}", o.outputs().probes_run);
        assert!(
            o.pipeline().store.record_count() > 0,
            "uploads must reach the store"
        );
        // The 10-min job has run and produced DC-level SLA rows.
        let row = o.pipeline().db.latest(pingmesh_dsa::ScopeKey::Dc(DcId(0)));
        assert!(row.is_some());
        let row = row.unwrap();
        assert!(row.samples > 0);
        assert!(row.p50_us > 0);
        assert!(row.drop_rate < 1e-3, "ideal profile has no drops");
    }

    #[test]
    fn window_investigation_reads_store_without_copying() {
        let mut o = small_orchestrator();
        o.run_until(SimTime::ZERO + SimDuration::from_mins(25));
        let copies0 = o.pipeline().store.record_copy_count();
        let inv = o.investigate_window(SimTime::ZERO, o.now(), 8, |_| true);
        assert!(inv.probes > 0, "the window has uploaded probes");
        assert_eq!(inv.bad_probes, 0, "ideal profile has no drops");
        assert_eq!(
            o.pipeline().store.record_copy_count(),
            copies0,
            "the drill-down must use the zero-copy chunked scan"
        );
    }

    #[test]
    fn pa_collects_fleet_counters() {
        let mut o = small_orchestrator();
        o.run_until(SimTime::ZERO + SimDuration::from_mins(12));
        let series = o.pa().series(DcId(0));
        assert!(!series.is_empty());
        assert!(series.iter().any(|s| s.probes_sent > 0));
    }

    #[test]
    fn healthy_run_raises_no_alerts_and_is_normal() {
        let mut o = small_orchestrator();
        o.run_until(SimTime::ZERO + SimDuration::from_mins(40));
        assert!(o.outputs().alerts.is_empty(), "{:?}", o.outputs().alerts);
        assert!(o
            .outputs()
            .patterns
            .iter()
            .all(|&(_, _, p)| p == LatencyPattern::Normal));
        assert!(o.outputs().incidents.is_empty());
    }

    #[test]
    fn controller_outage_fail_closes_then_recovers() {
        let mut o = small_orchestrator();
        let servers: Vec<ServerId> = o.net().topology().servers().collect();
        // Both replicas down from minute 5 to minute 60.
        let from = SimTime::ZERO + SimDuration::from_mins(5);
        let until = SimTime::ZERO + SimDuration::from_mins(60);
        for i in 0..2 {
            o.cluster_mut()
                .replica_mut(i)
                .add_down_window(from, Some(until));
        }
        // After 3 failed polls (10-min interval), agents stop probing.
        o.run_until(SimTime::ZERO + SimDuration::from_mins(45));
        let stopped = servers.iter().filter(|&&s| o.agent(s).is_stopped()).count();
        assert_eq!(stopped, servers.len(), "all agents fail-closed");
        let probes_when_stopped = o.outputs().probes_run;
        // Recovery after the outage ends.
        o.run_until(SimTime::ZERO + SimDuration::from_mins(90));
        let resumed = servers
            .iter()
            .filter(|&&s| !o.agent(s).is_stopped())
            .count();
        assert_eq!(resumed, servers.len(), "all agents resumed");
        assert!(o.outputs().probes_run > probes_when_stopped);
    }

    #[test]
    fn regeneration_reaches_agents_via_poll() {
        let mut o = small_orchestrator();
        o.run_until(SimTime::ZERO + SimDuration::from_mins(5));
        o.regenerate_pinglists(GeneratorConfig {
            payload_probes: true,
            ..GeneratorConfig::default()
        });
        o.run_until(SimTime::ZERO + SimDuration::from_mins(30));
        // All agents picked up generation 2.
        let topo = o.net().topology().clone();
        assert!(topo.servers().all(|s| o.agent(s).generation() == 2));
    }

    #[test]
    fn sharded_run_matches_serial_bit_for_bit() {
        let end = SimTime::ZERO + SimDuration::from_mins(22);
        let run = |shards: usize| {
            let mut o = small_orchestrator_sharded(shards);
            o.run_until(end);
            (
                o.outputs().probes_run,
                o.pipeline().store.record_count(),
                o.pipeline().store.logical_bytes(),
                o.pipeline().db.len(),
            )
        };
        let serial = run(1);
        assert!(serial.0 > 100 && serial.1 > 0);
        for shards in [2, 4] {
            assert_eq!(run(shards), serial, "shards={shards} diverged");
        }
    }
}
