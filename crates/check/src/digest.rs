//! Bit-level digests of a quiesced run's observable state.
//!
//! [`state_digest`] condenses everything the shard-determinism gate
//! compares — the `CosmosStore` contents and the SLA rows, plus the
//! run's headline counts — into one `u64`. Two runs of the same scenario
//! at different shard counts must produce the same digest; any divergence
//! in a stored record, an SLA row, or a counter flips it.
//!
//! The store is hashed as a **multiset**: per-record FNV hashes combined
//! with a commutative sum, because extent iteration crosses a `HashMap`
//! of streams whose order is not deterministic. The SLA rows are hashed
//! **sequentially** in `ResultsDb`'s `BTreeMap` order, which is
//! deterministic, so row order differences are caught too.

use pingmesh_core::Orchestrator;
use pingmesh_dsa::ScopeKey;
use pingmesh_types::{ProbeKind, ProbeOutcome, ProbeRecord, QosClass, SimTime};

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

fn fnv1a(h: &mut u64, v: u64) {
    for b in v.to_le_bytes() {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(FNV_PRIME);
    }
}

fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Stable hash of one stored record (every field participates).
pub fn record_hash(r: &ProbeRecord) -> u64 {
    let mut h = FNV_OFFSET;
    let kind = match r.kind {
        ProbeKind::TcpSyn => 1u64 << 32,
        ProbeKind::TcpPayload(b) => (2u64 << 32) | u64::from(b),
        ProbeKind::Http => 3u64 << 32,
    };
    let qos = match r.qos {
        QosClass::High => 1u64,
        QosClass::Low => 2u64,
    };
    let outcome = match r.outcome {
        ProbeOutcome::Success { rtt } => (1u64 << 48) | rtt.as_micros(),
        ProbeOutcome::Timeout => 2u64 << 48,
        ProbeOutcome::Refused => 3u64 << 48,
    };
    for v in [
        r.ts.0,
        u64::from(r.src.0) << 32 | u64::from(r.dst.0),
        u64::from(r.src_pod.0) << 32 | u64::from(r.dst_pod.0),
        u64::from(r.src_podset.0) << 32 | u64::from(r.dst_podset.0),
        u64::from(r.src_dc.0) << 32 | u64::from(r.dst_dc.0),
        u64::from(r.src_port) << 16 | u64::from(r.dst_port),
        kind,
        qos,
        outcome,
    ] {
        fnv1a(&mut h, v);
    }
    h
}

fn scope_code(s: ScopeKey) -> u64 {
    match s {
        ScopeKey::Dc(d) => (1u64 << 56) | d.0 as u64,
        ScopeKey::DcPair(a, b) => (2u64 << 56) | (u64::from(a.0) << 28) | u64::from(b.0),
        ScopeKey::Podset(p) => (3u64 << 56) | p.0 as u64,
        ScopeKey::Pod(p) => (4u64 << 56) | p.0 as u64,
        ScopeKey::Server(s) => (5u64 << 56) | s.0 as u64,
        ScopeKey::Service(s) => (6u64 << 56) | s.0 as u64,
    }
}

/// Order-independent multiset digest of every record in the store, plus
/// its headline counters.
pub fn store_digest(orch: &Orchestrator) -> u64 {
    let store = &orch.pipeline().store;
    let mut multiset: u64 = 0;
    for chunk in store.scan_all_window_chunks(SimTime::ZERO, SimTime(u64::MAX)) {
        for rec in chunk {
            multiset = multiset.wrapping_add(mix64(record_hash(rec)));
        }
    }
    let mut h = FNV_OFFSET;
    for v in [
        multiset,
        store.record_count(),
        store.logical_bytes(),
        store.partial_count() as u64,
    ] {
        fnv1a(&mut h, v);
    }
    h
}

/// Sequential digest of every SLA row in `ResultsDb` key order.
pub fn sla_digest(orch: &Orchestrator) -> u64 {
    let mut h = FNV_OFFSET;
    for row in orch.pipeline().db.rows() {
        for v in [
            row.window_start.0,
            scope_code(row.scope),
            row.drop_rate.to_bits(),
            row.p50_us,
            row.p99_us,
            row.samples,
        ] {
            fnv1a(&mut h, v);
        }
    }
    h
}

fn fnv_str(h: &mut u64, s: &str) {
    for &b in s.as_bytes() {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(FNV_PRIME);
    }
}

/// Sequential digest of the mitigation engine's transition log plus the
/// podsets currently excluded from pinglist generation. The log is
/// appended only under the barrier-sequential job path, so its order is
/// deterministic and any shard-dependent mitigation decision flips this.
pub fn mitigation_digest(orch: &Orchestrator) -> u64 {
    use pingmesh_core::MitDevice;
    let mut h = FNV_OFFSET;
    for t in orch.mitigation().transitions() {
        let dev = match t.device {
            MitDevice::Switch(s) => {
                (1u64 << 48) | (u64::from(s.tier as u8) << 32) | u64::from(s.index)
            }
            MitDevice::Podset(p) => (2u64 << 48) | u64::from(p.0),
        };
        fnv1a(&mut h, t.at.0);
        fnv1a(&mut h, dev);
        fnv_str(&mut h, t.to.label());
        fnv_str(&mut h, t.reason);
    }
    for ps in orch.excluded_podsets() {
        fnv1a(&mut h, u64::from(ps.0));
    }
    h
}

/// The full observable-state digest the shard-determinism gate compares:
/// store contents, SLA rows, probe count, detection outputs, the
/// mitigation transition log, and the fleet's conservation ledger.
pub fn state_digest(orch: &Orchestrator) -> u64 {
    let topo = orch.net().topology();
    let mut observed = 0u64;
    let mut unresolved = 0u64;
    let mut buffered = 0u64;
    let mut discarded = 0u64;
    for s in topo.servers() {
        let a = orch.agent(s);
        observed += a.probes_observed();
        unresolved += a.unresolved_probes();
        buffered += a.buffered_records();
        discarded += a.discarded_total();
    }
    let mut h = FNV_OFFSET;
    for v in [
        store_digest(orch),
        sla_digest(orch),
        orch.outputs().probes_run,
        orch.outputs().alerts.len() as u64,
        orch.outputs().incidents.len() as u64,
        orch.outputs().escalations.len() as u64,
        orch.outputs().blackhole_candidates.len() as u64,
        orch.outputs().traceroutes.len() as u64,
        mitigation_digest(orch),
        observed,
        unresolved,
        buffered,
        discarded,
    ] {
        fnv1a(&mut h, v);
    }
    h
}
