//! Invariant oracles.
//!
//! Each oracle inspects the quiesced state of one run and returns the
//! invariant violations it found. Oracles never mutate the run (the
//! CRDT oracle builds *new* stores and aggregates from copies); a clean
//! run returns no violations from any of them.
//!
//! The five families, per the harness design:
//!
//! 1. **Probe conservation** — every probe an agent observed is stored,
//!    still buffered, discarded, or was unresolvable; nothing vanishes.
//! 2. **CRDT laws** — window aggregates and latency histograms merge
//!    commutatively and associatively, and re-ingesting the same records
//!    shuffled into different batches/extents/streams yields a bit-equal
//!    merged aggregate (shard-partition independence). The store's
//!    merge-based rollup equals a from-raw rebuild at 1, 2, and max
//!    worker threads.
//! 3. **Quantile sanity** — histogram quantiles are monotone in `q`,
//!    stay inside `[min, max]`, and track the exact nearest-rank
//!    quantile of the raw samples to within one log-bucket.
//! 4. **SLA row consistency** — drop rates are finite and in `[0, 1]`,
//!    p50 ≤ p99, and every per-scope family's outcome counts sum to the
//!    aggregate's record count.
//! 5. **Zero-copy scan equivalence** — chunked scans concatenate to
//!    exactly the record-copy scan, without bumping the copy counter.
//! 6. **Data-quality SLOs** — the quality job's coverage and
//!    completeness ratios equal ground truth derived independently: the
//!    copying scan for observed pod pairs, and the probe-conservation
//!    ledger (`stored + discarded`) for the completeness denominator.
//! 7. **Crash recovery** — the run's records re-ingested into a durable
//!    store, checkpointed at a seed-derived point and crashed with a
//!    torn WAL tail, recover to a store observably identical to an
//!    in-memory re-ingest of the same batches: counts, bit-equal merged
//!    aggregates, scans, and every windowed API body. No acknowledged
//!    record is ever lost; the unacknowledged torn tail never surfaces.
//! 8. **Mitigation safety** — a replay of the mitigation engine's
//!    transition log never exceeds any tier's drain budget, never
//!    re-drains a device inside its cooldown, and at quiescence the
//!    engine's state mirrors the fabric: drained switches are out of
//!    ECMP, drained podsets are out of pinglist generation, and nothing
//!    is excluded that the engine does not own.

use crate::rng::XorShift;
use crate::scenario::ScenarioSpec;
use pingmesh_core::Orchestrator;
use pingmesh_dsa::{CosmosStore, ScopeStats, StreamName, WindowAggregate, PARTIAL_WINDOW};
use pingmesh_types::quantile::quantile_in_place;
use pingmesh_types::{DcId, PodId, ProbeRecord, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::sync::Arc;

/// One invariant violation: which oracle tripped, and on what.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Violation {
    /// Oracle family, e.g. `"conservation"`.
    pub oracle: String,
    /// Human-readable description with the offending numbers.
    pub detail: String,
}

fn violation(oracle: &str, detail: String) -> Violation {
    Violation {
        oracle: oracle.to_string(),
        detail,
    }
}

/// Smallest 10-min-aligned time strictly after every stored record.
fn aligned_end(orch: &Orchestrator) -> SimTime {
    let w = PARTIAL_WINDOW.as_micros();
    SimTime((orch.now().0 / w + 1) * w)
}

/// Oracle 1: probe conservation.
///
/// At quiescence: `Σ observed == probes_run` and
/// `Σ observed == stored + Σ buffered + Σ discarded + Σ unresolved`.
/// The upload loop is synchronous, so no batch may still be in flight.
pub fn check_conservation(orch: &Orchestrator) -> Vec<Violation> {
    let mut out = Vec::new();
    let topo = orch.net().topology().clone();
    let mut observed = 0u64;
    let mut buffered = 0u64;
    let mut discarded = 0u64;
    let mut unresolved = 0u64;
    for s in topo.servers() {
        let a = orch.agent(s);
        observed += a.probes_observed();
        buffered += a.buffered_records();
        discarded += a.discarded_total();
        unresolved += a.unresolved_probes();
        if a.has_pending_upload() {
            out.push(violation(
                "conservation",
                format!("server {} has an in-flight upload at quiescence", s.0),
            ));
        }
    }
    let probes_run = orch.outputs().probes_run;
    if observed != probes_run {
        out.push(violation(
            "conservation",
            format!("agents observed {observed} probes but the sim ran {probes_run}"),
        ));
    }
    let stored = orch.pipeline().store.record_count();
    let accounted = stored + buffered + discarded + unresolved;
    if observed != accounted {
        out.push(violation(
            "conservation",
            format!(
                "observed {observed} != stored {stored} + buffered {buffered} \
                 + discarded {discarded} + unresolved {unresolved} = {accounted}"
            ),
        ));
    }
    out
}

/// Oracle 2a: the store's merge-based window rollup is bit-equal to a
/// from-raw rebuild at 1, 2, and max worker threads.
pub fn check_window_partials(orch: &Orchestrator) -> Vec<Violation> {
    let mut out = Vec::new();
    let end = aligned_end(orch);
    let store = &orch.pipeline().store;
    let merged = store.merged_window_aggregate(SimTime::ZERO, end);
    let records = store.collect_window_records(SimTime::ZERO, end);
    let services = orch.pipeline().services();
    for threads in [1, 2, pingmesh_par::max_threads()] {
        let rebuilt = WindowAggregate::build_par_threads_with(&records, threads, Some(services));
        if rebuilt != merged {
            out.push(violation(
                "crdt",
                format!(
                    "merged partials disagree with a {threads}-thread rebuild \
                     ({} vs {} records)",
                    merged.record_count, rebuilt.record_count
                ),
            ));
        }
    }
    out
}

/// Oracle 2b: CRDT merge laws plus shard-partition independence — the
/// run's records, shuffled and re-ingested in different batches into a
/// fresh store with different extents and streams, produce a bit-equal
/// merged aggregate.
pub fn check_crdt_reingest(orch: &Orchestrator, spec: &ScenarioSpec) -> Vec<Violation> {
    let mut out = Vec::new();
    let end = aligned_end(orch);
    let store = &orch.pipeline().store;
    let services = orch.pipeline().services();
    let mut records = store.collect_window_records(SimTime::ZERO, end);
    if records.is_empty() {
        return out;
    }

    // Merge laws on thirds of the record set.
    let third = records.len().div_ceil(3);
    let parts: Vec<WindowAggregate> = records
        .chunks(third)
        .map(|c| WindowAggregate::build_with(c, Some(services)))
        .collect();
    if parts.len() >= 2 {
        let (a, b) = (&parts[0], &parts[1]);
        let mut ab = a.clone();
        ab.merge(b);
        let mut ba = b.clone();
        ba.merge(a);
        if ab != ba {
            out.push(violation(
                "crdt",
                "WindowAggregate::merge is not commutative".into(),
            ));
        }
        if let Some(c) = parts.get(2) {
            let mut ab_c = ab.clone();
            ab_c.merge(c);
            let mut bc = b.clone();
            bc.merge(c);
            let mut a_bc = a.clone();
            a_bc.merge(&bc);
            if ab_c != a_bc {
                out.push(violation(
                    "crdt",
                    "WindowAggregate::merge is not associative".into(),
                ));
            }
        }
    }

    // Shard-partition independence: shuffle, re-batch, re-shard.
    let mut rng = XorShift::new(spec.seed ^ 0xA5A5_5A5A_D00D_FEED);
    rng.shuffle(&mut records);
    let alt_cap = (spec.extent_cap as usize % 97) + 3;
    let mut fresh = CosmosStore::new(alt_cap, 1);
    fresh.set_service_map(Arc::new(services.clone()));
    let dcs: Vec<DcId> = orch.net().topology().dcs().collect();
    let batches = (spec.reingest_batches.max(1) as usize).min(records.len());
    for chunk in records.chunks(records.len().div_ceil(batches)) {
        let dc = dcs[(rng.next_u64() as usize) % dcs.len()];
        fresh.append(StreamName { dc }, chunk, SimTime::ZERO);
    }
    let original = store.merged_window_aggregate(SimTime::ZERO, end);
    let reingested = fresh.merged_window_aggregate(SimTime::ZERO, end);
    if original != reingested {
        out.push(violation(
            "crdt",
            format!(
                "re-ingesting {} records in {} shuffled batches (extent cap {}) \
                 changed the merged aggregate",
                records.len(),
                batches,
                alt_cap
            ),
        ));
    }
    out
}

const Q_GRID: [f64; 9] = [0.0, 0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.99, 1.0];

fn check_hist_monotone(
    label: &str,
    hist: &pingmesh_types::LatencyHistogram,
    out: &mut Vec<Violation>,
) {
    if hist.is_empty() {
        return;
    }
    let (min, max) = (hist.min().unwrap(), hist.max().unwrap());
    let mut prev = None;
    for q in Q_GRID {
        let v = hist.quantile(q).expect("non-empty histogram");
        if v < min || v > max {
            out.push(violation(
                "quantile",
                format!(
                    "{label}: quantile({q}) = {}µs outside [{}, {}]µs",
                    v.as_micros(),
                    min.as_micros(),
                    max.as_micros()
                ),
            ));
        }
        if let Some(p) = prev {
            if v < p {
                out.push(violation(
                    "quantile",
                    format!("{label}: quantile({q}) decreased"),
                ));
            }
        }
        prev = Some(v);
    }
}

/// One log-bucket is a 1/16-octave (≈4.4%) span and the histogram
/// answers with a clamped geometric midpoint, so "within one bucket of
/// exact" is a ≤ ~10% relative error. A couple of µs of absolute slack
/// covers the sub-32 µs octaves where buckets are integer-quantized.
fn within_one_bucket(hist_us: u64, exact_us: u64) -> bool {
    let tol = (exact_us as f64 * 0.12).max(2.0);
    (hist_us as f64 - exact_us as f64).abs() <= tol
}

/// Oracle 3: quantile monotonicity across every histogram the window
/// produced, plus a cross-check of histogram quantiles against the exact
/// nearest-rank quantile of the raw per-DC samples.
pub fn check_quantiles(orch: &Orchestrator) -> Vec<Violation> {
    let mut out = Vec::new();
    let end = aligned_end(orch);
    let store = &orch.pipeline().store;
    let agg = store.merged_window_aggregate(SimTime::ZERO, end);

    for (k, h) in &agg.hists {
        check_hist_monotone(&format!("hists[{k:?}]"), h, &mut out);
    }
    for (k, h) in &agg.podset_matrix {
        check_hist_monotone(&format!("podset_matrix[{k:?}]"), h, &mut out);
    }
    for (dc, s) in &agg.per_dc {
        check_hist_monotone(&format!("per_dc[{dc:?}]"), &s.latency, &mut out);
    }

    // Exact cross-check: per-DC raw successful RTTs vs the folded hist.
    let records = store.collect_window_records(SimTime::ZERO, end);
    for (&dc, scope) in &agg.per_dc {
        let mut raw: Vec<u64> = records
            .iter()
            .filter(|r| r.src_dc == dc)
            .filter_map(|r| r.outcome.rtt())
            .map(|d| d.as_micros())
            .collect();
        if raw.is_empty() {
            continue;
        }
        if raw.len() as u64 != scope.latency.count() {
            out.push(violation(
                "quantile",
                format!(
                    "per_dc[{dc:?}]: hist holds {} samples but the raw window has {}",
                    scope.latency.count(),
                    raw.len()
                ),
            ));
            continue;
        }
        for q in Q_GRID {
            let exact = *quantile_in_place(&mut raw, q).expect("non-empty");
            let hist = scope.latency.quantile(q).expect("non-empty").as_micros();
            if !within_one_bucket(hist, exact) {
                out.push(violation(
                    "quantile",
                    format!(
                        "per_dc[{dc:?}]: quantile({q}) hist {hist}µs vs exact {exact}µs \
                         is more than one bucket off"
                    ),
                ));
            }
        }
    }
    out
}

fn family_total<'a, K: 'a>(m: impl IntoIterator<Item = (&'a K, &'a ScopeStats)>) -> u64 {
    m.into_iter().map(|(_, s)| s.stats.total()).sum()
}

/// Oracle 4: SLA rows are internally consistent and every scope family's
/// outcome counts sum back to the aggregate's record count.
pub fn check_sla_rows(orch: &Orchestrator) -> Vec<Violation> {
    let mut out = Vec::new();
    let end = aligned_end(orch);
    let w = PARTIAL_WINDOW.as_micros();
    let db = &orch.pipeline().db;
    for k in 0..end.0 / w {
        let window = SimTime(k * w);
        for row in db.window_rows(window) {
            if !row.drop_rate.is_finite() || !(0.0..=1.0).contains(&row.drop_rate) {
                out.push(violation(
                    "sla",
                    format!(
                        "row {:?}@{}: drop_rate {} outside [0, 1]",
                        row.scope, window.0, row.drop_rate
                    ),
                ));
            }
            if row.p50_us > row.p99_us {
                out.push(violation(
                    "sla",
                    format!(
                        "row {:?}@{}: p50 {}µs > p99 {}µs",
                        row.scope, window.0, row.p50_us, row.p99_us
                    ),
                ));
            }
        }
    }

    let agg = orch
        .pipeline()
        .store
        .merged_window_aggregate(SimTime::ZERO, end);
    let n = agg.record_count;
    for (family, total) in [
        ("per_server", family_total(&agg.per_server)),
        ("per_pod", family_total(&agg.per_pod)),
        ("per_podset", family_total(&agg.per_podset)),
        ("per_dc", family_total(&agg.per_dc)),
    ] {
        if total != n {
            out.push(violation(
                "sla",
                format!("{family} outcome counts sum to {total}, expected {n} records"),
            ));
        }
    }
    out
}

/// Oracle 5: chunked zero-copy scans concatenate to exactly the
/// record-by-record scan — on aligned and unaligned windows — and never
/// touch the record-copy counter.
pub fn check_scan_equivalence(orch: &Orchestrator) -> Vec<Violation> {
    let mut out = Vec::new();
    let store = &orch.pipeline().store;
    let end = aligned_end(orch);
    let w = PARTIAL_WINDOW.as_micros();
    // One aligned window, one straddling window starts mid-bucket.
    let windows = [
        (SimTime::ZERO, end),
        (
            SimTime(w / 2 + 12_345),
            SimTime(end.0.saturating_sub(w / 3)),
        ),
    ];
    let topo = orch.net().topology().clone();
    let copies_before = store.record_copy_count();
    for (from, to) in windows {
        let mut per_stream = 0usize;
        for dc in topo.dcs() {
            let s = StreamName { dc };
            let flat: Vec<&ProbeRecord> = store
                .scan_window_chunks(s, from, to)
                .into_iter()
                .flatten()
                .collect();
            let seq: Vec<&ProbeRecord> = store.scan_window(s, from, to).collect();
            if flat != seq {
                out.push(violation(
                    "scan",
                    format!(
                        "stream dc{}: chunked scan of [{}, {}) yields {} records, \
                         record scan {}  (or differing order/content)",
                        dc.0,
                        from.0,
                        to.0,
                        flat.len(),
                        seq.len()
                    ),
                ));
            }
            per_stream += seq.len();
        }
        let all_chunked: usize = store
            .scan_all_window_chunks(from, to)
            .iter()
            .map(|c| c.len())
            .sum();
        let all_seq = store.scan_all_window(from, to).count();
        if all_chunked != all_seq || all_seq != per_stream {
            out.push(violation(
                "scan",
                format!(
                    "[{}, {}): all-stream chunked {} vs sequential {} vs per-stream {}",
                    from.0, to.0, all_chunked, all_seq, per_stream
                ),
            ));
        }
    }
    if store.record_copy_count() != copies_before {
        out.push(violation(
            "scan",
            "chunked scans bumped the record-copy counter".into(),
        ));
    }
    // The copying path must agree with the zero-copy path in content.
    let copied = store.collect_window_records(SimTime::ZERO, end);
    let zero_copy: Vec<ProbeRecord> = store.scan_all_window(SimTime::ZERO, end).copied().collect();
    if copied != zero_copy {
        out.push(violation(
            "scan",
            "collect_window_records disagrees with scan_all_window".into(),
        ));
    }
    out
}

fn observed_pairs_by_copying_scan(
    store: &CosmosStore,
    expected: &pingmesh_dsa::ExpectedPairs,
    from: SimTime,
    to: SimTime,
) -> BTreeSet<(PodId, PodId)> {
    store
        .collect_window_records(from, to)
        .iter()
        .filter(|r| expected.contains(r.src_pod, r.dst_pod))
        .map(|r| (r.src_pod, r.dst_pod))
        .collect()
}

/// Oracle 6: data-quality SLO values equal ground truth.
///
/// Two layers:
///
/// * the report the last DSA tick left behind is internally consistent —
///   its coverage numerator matches a *copying*-scan recount over the
///   report's own window (the job itself uses the zero-copy path), its
///   denominators match the installed expectations, and every status is
///   the pure re-evaluation of its own value and target;
/// * a fresh evaluation over the quiesced store agrees with the probe
///   conservation ledger: every probe that was observed and neither
///   unresolvable nor still buffered must be stored or discarded, so the
///   completeness denominator is exactly `stored + discarded` and the
///   numerator exactly `stored`.
///
/// The fresh evaluation republishes the SLO gauges (same values), but
/// never mutates the run itself.
pub fn check_quality(orch: &Orchestrator, spec: &ScenarioSpec) -> Vec<Violation> {
    let mut out = Vec::new();
    let pipeline = orch.pipeline();
    let Some(expected) = pipeline.expected_pairs() else {
        out.push(violation(
            "quality",
            "no expected pod pairs installed on the pipeline".into(),
        ));
        return out;
    };
    let expected: &pingmesh_dsa::ExpectedPairs = expected;
    let store = &pipeline.store;

    // (a) The last tick's report, if any, is internally consistent.
    if let Some(q) = pipeline.latest_quality() {
        if q.coverage.den != expected.len() as u64 {
            out.push(violation(
                "quality",
                format!(
                    "coverage denominator {} != {} expected pairs",
                    q.coverage.den,
                    expected.len()
                ),
            ));
        }
        if q.completeness.den != pipeline.scheduled_probes() {
            out.push(violation(
                "quality",
                format!(
                    "completeness denominator {} != scheduled snapshot {}",
                    q.completeness.den,
                    pipeline.scheduled_probes()
                ),
            ));
        }
        // No pair recount here: the report is a snapshot of the store as
        // of the tick, and in-window records legitimately keep arriving
        // afterwards (agents buffer up to a full window). The recount
        // cross-check runs on the fresh quiescence-time evaluation below.
        let recount = observed_pairs_by_copying_scan(store, expected, q.window_start, q.window_end);
        if q.coverage.num > recount.len() as u64 {
            out.push(violation(
                "quality",
                format!(
                    "coverage numerator {} exceeds the final recount {} over [{}, {}) — \
                     the job counted pairs that were never stored",
                    q.coverage.num,
                    recount.len(),
                    q.window_start.0,
                    q.window_end.0
                ),
            ));
        }
        for s in &q.statuses {
            let re = pingmesh_obs::slo::evaluate(s.kind, s.value, s.target);
            if re.healthy != s.healthy || (re.burn_rate - s.burn_rate).abs() > 1e-9 {
                out.push(violation(
                    "quality",
                    format!(
                        "status for {:?} is not a pure function of value and target",
                        s.kind
                    ),
                ));
            }
        }
    } else if spec.sim_minutes >= 22 && orch.outputs().probes_run > 0 {
        // The first 10-min window folds at 20 sim-minutes (window end +
        // ingest lag); past that a quality report must exist.
        out.push(violation(
            "quality",
            format!("no quality report after {} sim-minutes", spec.sim_minutes),
        ));
    }

    // (b) Fresh evaluation at quiescence vs the conservation ledger.
    let topo = orch.net().topology().clone();
    let (mut observed, mut unresolved, mut buffered, mut discarded) = (0u64, 0u64, 0u64, 0u64);
    for s in topo.servers() {
        let a = orch.agent(s);
        observed += a.probes_observed();
        unresolved += a.unresolved_probes();
        buffered += a.buffered_records();
        discarded += a.discarded_total();
    }
    let scheduled_now = observed - unresolved - buffered;
    let report = pingmesh_dsa::quality::evaluate(
        store,
        expected,
        scheduled_now,
        orch.now(),
        &pipeline.quality_cfg,
    );
    let stored = store.record_count();
    if report.completeness.den != stored + discarded {
        out.push(violation(
            "quality",
            format!(
                "completeness denominator {} != ledger stored {stored} + discarded {discarded}",
                report.completeness.den
            ),
        ));
    }
    if report.completeness.num != stored {
        out.push(violation(
            "quality",
            format!(
                "completeness numerator {} != stored {stored}",
                report.completeness.num
            ),
        ));
    }
    let recount =
        observed_pairs_by_copying_scan(store, expected, report.window_start, report.window_end);
    if report.coverage.num != recount.len() as u64 || report.coverage.den != expected.len() as u64 {
        out.push(violation(
            "quality",
            format!(
                "quiesced coverage {}/{} != recount {}/{}",
                report.coverage.num,
                report.coverage.den,
                recount.len(),
                expected.len()
            ),
        ));
    }
    out
}

/// Oracle 7: serve-tier cache coherence.
///
/// The query tier's contract is that a cached frozen-window response is
/// byte-identical to a from-scratch rebuild over the same store — the
/// cache may only change *when* a body is built, never *what* it
/// contains. Checked end to end on a fresh store seeded with the run's
/// records (the run itself is never mutated):
///
/// * miss vs hit: the first and second responses to every standard
///   dashboard query carry identical bytes;
/// * cached vs oracle: those bytes equal the pure
///   [`ApiQuery::build`] over the same store, and over the *run's*
///   store (the serving layer inherits shard-partition independence);
/// * conditional GET: replaying the response's `ETag` yields a 304;
/// * invalidation: a late service-map refold must flip the conditional
///   GET back to a fresh 200 whose bytes again equal a pure rebuild —
///   a stale 304 here is the cache serving the past as the present.
pub fn check_serve_coherence(orch: &Orchestrator) -> Vec<Violation> {
    use pingmesh_httpx::Request;
    use pingmesh_serve::views::{ApiQuery, HeatmapLevel};
    use pingmesh_serve::QueryTier;

    let mut out = Vec::new();
    let end = aligned_end(orch);
    let store = &orch.pipeline().store;
    let services = orch.pipeline().services();
    let records = store.collect_window_records(SimTime::ZERO, end);
    if records.is_empty() {
        return out;
    }

    // A private store so the oracle can refold without touching the run.
    let mut fresh = CosmosStore::with_defaults();
    fresh.set_service_map(Arc::new(services.clone()));
    let dcs: Vec<DcId> = orch.net().topology().dcs().collect();
    for dc in &dcs {
        let for_dc: Vec<ProbeRecord> = records
            .iter()
            .filter(|r| r.src_dc == *dc)
            .copied()
            .collect();
        if !for_dc.is_empty() {
            fresh.append(StreamName { dc: *dc }, &for_dc, SimTime::ZERO);
        }
    }
    let shared = Arc::new(parking_lot::Mutex::new(fresh));
    let tier = QueryTier::new(Arc::clone(&shared));

    let w = PARTIAL_WINDOW.as_micros();
    let mut queries: Vec<ApiQuery> = Vec::new();
    for k in 0..end.0 / w {
        let (from, to) = (SimTime(k * w), SimTime((k + 1) * w));
        queries.push(ApiQuery::Sla { from, to });
        queries.push(ApiQuery::Heatmap {
            level: HeatmapLevel::Pod,
            from,
            to,
        });
        queries.push(ApiQuery::Heatmap {
            level: HeatmapLevel::Podset,
            from,
            to,
        });
        for &dc in &dcs {
            queries.push(ApiQuery::Cdf {
                dc,
                scope: pingmesh_dsa::agg::LatencyScope::InterPod,
                from,
                to,
            });
        }
    }

    for q in &queries {
        let key = q.cache_key();
        let path = format!("/api/{key}");
        let miss = tier.respond(&Request::get(&path));
        let hit = tier.respond(&Request::get(&path));
        if miss.status != 200 || hit.status != 200 {
            out.push(violation(
                "serve",
                format!("{key}: status {} then {}", miss.status, hit.status),
            ));
            continue;
        }
        if miss.body != hit.body {
            out.push(violation(
                "serve",
                format!("{key}: cache hit bytes differ from the miss that built them"),
            ));
        }
        let oracle_body = q.build(&shared.lock()).unwrap_or_default();
        if miss.body != oracle_body {
            out.push(violation(
                "serve",
                format!(
                    "{key}: served {} bytes != {} from a from-scratch rebuild",
                    miss.body.len(),
                    oracle_body.len()
                ),
            ));
        }
        let run_body = q.build(store).unwrap_or_default();
        if miss.body != run_body {
            out.push(violation(
                "serve",
                format!("{key}: serving from a re-sharded store changed the bytes"),
            ));
        }
        let etag = miss.header("etag").unwrap_or_default().to_string();
        let mut conditional = Request::get(&path);
        conditional
            .headers
            .push(("if-none-match".into(), etag.clone()));
        if tier.respond(&conditional).status != 304 {
            out.push(violation(
                "serve",
                format!("{key}: matching If-None-Match did not 304"),
            ));
        }
    }

    // Late refold: register one more service and demand every stale
    // validator misses and the rebuilt bytes match a pure rebuild.
    let mut refolded = services.clone();
    let _ = refolded.register("svc-serve-oracle", [pingmesh_types::ServerId(0)]);
    shared.lock().set_service_map(Arc::new(refolded));
    for q in queries.iter().take(3) {
        let key = q.cache_key();
        let path = format!("/api/{key}");
        let before = tier.respond(&Request::get(&path));
        let mut conditional = Request::get(&path);
        conditional.headers.push((
            "if-none-match".into(),
            before.header("etag").unwrap_or_default().to_string(),
        ));
        // `before` itself rebuilt post-refold, so its etag must validate…
        if tier.respond(&conditional).status != 304 {
            out.push(violation(
                "serve",
                format!("{key}: post-refold etag did not validate"),
            ));
        }
        // …and the body must equal a pure rebuild over the refolded store.
        if before.body != q.build(&shared.lock()).unwrap_or_default() {
            out.push(violation(
                "serve",
                format!("{key}: post-refold cached bytes diverge from rebuild"),
            ));
        }
    }
    out
}

/// Oracle 8: crash recovery (durability).
///
/// Re-ingests the run's stored records into a *durable* store (WAL +
/// segment files in a scratch directory), checkpoints after a
/// seed-derived batch so the history spans both segments and live WAL,
/// crashes with a torn never-acknowledged frame at the WAL tail, then
/// recovers from the files alone and demands the recovered store is
/// observably identical to an in-memory re-ingest of the same batches:
///
/// * record counts and per-stream scan contents match exactly (zero
///   acknowledged-record loss, and the torn tail never surfaces);
/// * merged window aggregates are bit-equal (recovery refolds partials
///   from raw through the same order-independent CRDT fold);
/// * chunked scans over the recovered store equal its sequential scans
///   (segment-backed extents obey the same scan contract);
/// * every windowed API body built from the recovered store equals the
///   in-memory reference's bytes;
/// * the recovered store still accepts appends (it came back writable).
pub fn check_crash_recovery(orch: &Orchestrator, spec: &ScenarioSpec) -> Vec<Violation> {
    use pingmesh_serve::views::{ApiQuery, HeatmapLevel};

    let mut out = Vec::new();
    let end = aligned_end(orch);
    let store = &orch.pipeline().store;
    let services = orch.pipeline().services();
    let records = store.collect_window_records(SimTime::ZERO, end);
    if records.is_empty() {
        return out;
    }

    let dir = pingmesh_dsa::unique_dir("check-crash");
    let _guard = pingmesh_dsa::DirGuard::new(dir.clone());
    let mut rng = XorShift::new(spec.seed ^ 0xC4A5_4DEA_D001_5EAF);
    let alt_cap = (spec.extent_cap as usize % 89) + 3;
    let mut durable = match CosmosStore::durable(&dir, alt_cap, 1) {
        Ok(s) => s,
        Err(e) => {
            out.push(violation("crash", format!("durable open failed: {e}")));
            return out;
        }
    };
    durable.set_service_map(Arc::new(services.clone()));
    let mut reference = CosmosStore::new(alt_cap, 1);
    reference.set_service_map(Arc::new(services.clone()));

    let dcs: Vec<DcId> = orch.net().topology().dcs().collect();
    let batches = (spec.reingest_batches.max(1) as usize).min(records.len());
    let chunk = records.len().div_ceil(batches);
    let checkpoint_after = (rng.next_u64() as usize) % batches;
    for (i, batch) in records.chunks(chunk).enumerate() {
        let dc = dcs[(rng.next_u64() as usize) % dcs.len()];
        let t = batch.iter().map(|r| r.ts).max().unwrap_or(SimTime::ZERO);
        if !durable.append(StreamName { dc }, batch, t) {
            out.push(violation(
                "crash",
                format!("durable store refused acked batch {i}"),
            ));
        }
        reference.append(StreamName { dc }, batch, t);
        if i == checkpoint_after {
            if let Err(e) = durable.checkpoint() {
                out.push(violation("crash", format!("checkpoint failed: {e}")));
            }
        }
    }

    // Crash with a torn, never-acknowledged frame at the WAL tail; then
    // the process is gone and only the files remain.
    let torn: Vec<ProbeRecord> = records.iter().take(5).copied().collect();
    if let Err(e) = durable.simulate_torn_append(StreamName { dc: dcs[0] }, &torn) {
        out.push(violation("crash", format!("torn-append hook failed: {e}")));
    }
    drop(durable);
    let mut recovered = match CosmosStore::durable(&dir, alt_cap, 1) {
        Ok(s) => s,
        Err(e) => {
            out.push(violation("crash", format!("recovery failed: {e}")));
            return out;
        }
    };
    recovered.set_service_map(Arc::new(services.clone()));

    if recovered.record_count() != reference.record_count() {
        out.push(violation(
            "crash",
            format!(
                "recovered {} records, reference has {} (acked loss or torn resurrection)",
                recovered.record_count(),
                reference.record_count()
            ),
        ));
    }
    if recovered.merged_window_aggregate(SimTime::ZERO, end)
        != reference.merged_window_aggregate(SimTime::ZERO, end)
    {
        out.push(violation(
            "crash",
            "recovered merged aggregate is not bit-equal to the reference".into(),
        ));
    }
    for &dc in &dcs {
        let s = StreamName { dc };
        let rec_seq: Vec<ProbeRecord> = recovered
            .scan_window(s, SimTime::ZERO, end)
            .copied()
            .collect();
        let ref_seq: Vec<ProbeRecord> = reference
            .scan_window(s, SimTime::ZERO, end)
            .copied()
            .collect();
        if rec_seq != ref_seq {
            out.push(violation(
                "crash",
                format!(
                    "stream dc{}: recovered scan yields {} records, reference {} \
                     (or differing order/content)",
                    dc.0,
                    rec_seq.len(),
                    ref_seq.len()
                ),
            ));
        }
        let rec_chunked: Vec<ProbeRecord> = recovered
            .scan_window_chunks(s, SimTime::ZERO, end)
            .into_iter()
            .flatten()
            .copied()
            .collect();
        if rec_chunked != rec_seq {
            out.push(violation(
                "crash",
                format!(
                    "stream dc{}: recovered chunked scan diverges from sequential",
                    dc.0
                ),
            ));
        }
    }

    let w = PARTIAL_WINDOW.as_micros();
    let mut queries: Vec<ApiQuery> = Vec::new();
    for k in 0..end.0 / w {
        let (from, to) = (SimTime(k * w), SimTime((k + 1) * w));
        queries.push(ApiQuery::Sla { from, to });
        queries.push(ApiQuery::Heatmap {
            level: HeatmapLevel::Pod,
            from,
            to,
        });
    }
    for q in &queries {
        if q.build(&recovered) != q.build(&reference) {
            out.push(violation(
                "crash",
                format!(
                    "{}: recovered API body differs from reference",
                    q.cache_key()
                ),
            ));
        }
    }

    // The recovered store must come back writable.
    let extra = records[0];
    if !recovered.append(StreamName { dc: dcs[0] }, &[extra], end) {
        out.push(violation(
            "crash",
            "recovered store refused a fresh append".into(),
        ));
    }
    out
}

/// Oracle 9: mitigation safety.
///
/// Replays the mitigation engine's transition log and cross-checks it
/// against the fabric's actuated state:
///
/// * **drain budget** — at every instant of the replay, the set of
///   devices holding a drain in any tier stays within the tier's budget
///   (`floor(max_drain_fraction × tier_size)`), and the engine's own
///   per-tier count agrees with the replay at quiescence;
/// * **no flapping** — once a device is verified healthy and un-drained,
///   the engine accepts no new finding for it before the cooldown
///   elapses;
/// * **actuation sync** — a switch holding a drain is excluded from ECMP
///   and an un-drained one is back in; a podset holding a drain is cut
///   out of pinglist generation and an un-drained one re-included; and
///   (when the engine alone drives isolation) every exclusion the fabric
///   carries is owned by the engine.
///
/// Probe conservation across drain / un-drain is not re-proved here —
/// oracle 1 already runs on every scenario, including the mitigation
/// drills this oracle exists for.
pub fn check_mitigation(orch: &Orchestrator, spec: &ScenarioSpec) -> Vec<Violation> {
    use pingmesh_controller::MitigationState as St;
    use pingmesh_core::mitigation as mit;
    use pingmesh_core::MitDevice;
    use std::collections::HashMap;

    let mut out = Vec::new();
    let eng = orch.mitigation();
    let topo = orch.net().topology().clone();
    let tier_of = |d: MitDevice| -> (u32, usize) {
        match d {
            MitDevice::Switch(s) => (
                mit::switch_tier_key(&topo, s),
                mit::switch_tier_size(&topo, s),
            ),
            MitDevice::Podset(p) => (
                mit::podset_tier_key(&topo, p),
                mit::podset_tier_size(&topo, p),
            ),
        }
    };

    let mut held: HashMap<u32, BTreeSet<MitDevice>> = HashMap::new();
    let mut last_undrain: HashMap<MitDevice, SimTime> = HashMap::new();
    let mut last_state: HashMap<MitDevice, St> = HashMap::new();
    let cooldown = eng.config().cooldown;
    for t in eng.transitions() {
        let (tier, size) = tier_of(t.device);
        match t.to {
            St::Pending => {
                if let Some(&u) = last_undrain.get(&t.device) {
                    if t.at < u + cooldown {
                        out.push(violation(
                            "mitigation",
                            format!(
                                "{}: re-drained at {} inside the cooldown (un-drained {})",
                                t.device, t.at.0, u.0
                            ),
                        ));
                    }
                }
            }
            St::Drained | St::Escalated => {
                let tier_held = held.entry(tier).or_default();
                tier_held.insert(t.device);
                let budget = eng.tier_budget(size);
                if tier_held.len() > budget {
                    out.push(violation(
                        "mitigation",
                        format!(
                            "tier {tier}: {} devices drained at {} exceeds budget {budget} \
                             (tier size {size})",
                            tier_held.len(),
                            t.at.0
                        ),
                    ));
                }
            }
            St::Undrained => {
                held.entry(tier).or_default().remove(&t.device);
                last_undrain.insert(t.device, t.at);
            }
            St::Verifying => {}
        }
        last_state.insert(t.device, t.to);
    }
    for (&tier, devices) in &held {
        if eng.drained_in_tier(tier) != devices.len() {
            out.push(violation(
                "mitigation",
                format!(
                    "tier {tier}: engine counts {} drained, transition replay holds {}",
                    eng.drained_in_tier(tier),
                    devices.len()
                ),
            ));
        }
    }

    // Actuation must mirror the engine's final state.
    let excluded = orch.excluded_podsets();
    for (&dev, &state) in &last_state {
        let holds = matches!(
            state,
            St::Pending | St::Drained | St::Verifying | St::Escalated
        );
        match dev {
            MitDevice::Switch(sw) => {
                if orch.net().faults().is_isolated(sw) != holds {
                    out.push(violation(
                        "mitigation",
                        format!(
                            "{dev}: engine state {state:?} but ECMP isolation is {}",
                            orch.net().faults().is_isolated(sw)
                        ),
                    ));
                }
            }
            MitDevice::Podset(ps) => {
                if excluded.contains(&ps) != holds {
                    out.push(violation(
                        "mitigation",
                        format!(
                            "{dev}: engine state {state:?} but pinglist exclusion is {}",
                            excluded.contains(&ps)
                        ),
                    ));
                }
            }
        }
    }
    for &ps in excluded {
        if !matches!(
            last_state.get(&MitDevice::Podset(ps)),
            Some(St::Pending | St::Drained | St::Verifying | St::Escalated)
        ) {
            out.push(violation(
                "mitigation",
                format!(
                    "podset {} excluded from pinglists but the engine never drained it",
                    ps.0
                ),
            ));
        }
    }
    // With the engine alone driving isolation (no legacy auto-repair RMA
    // path), every ECMP exclusion must be engine-owned.
    if spec.auto_mitigate.unwrap_or(spec.auto_repair) {
        for sw in topo.switches() {
            if orch.net().faults().is_isolated(sw)
                && !matches!(
                    last_state.get(&MitDevice::Switch(sw)),
                    Some(St::Pending | St::Drained | St::Verifying | St::Escalated)
                )
            {
                out.push(violation(
                    "mitigation",
                    format!("{sw} is isolated but the engine never drained it"),
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pingmesh_types::LatencyHistogram;
    use pingmesh_types::SimDuration;

    #[test]
    fn hist_crdt_laws_hold_on_disjoint_corpora() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut c = LatencyHistogram::new();
        for i in 0..500u64 {
            a.record(SimDuration::from_micros(100 + i));
            b.record(SimDuration::from_micros(50_000 + 37 * i));
            c.record(SimDuration::from_micros(1 + i % 40));
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "histogram merge must commute");
        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc, "histogram merge must associate");
    }

    #[test]
    fn within_one_bucket_tracks_log_bucket_width() {
        assert!(within_one_bucket(100, 100));
        assert!(within_one_bucket(108, 100), "4.4% bucket + midpoint");
        assert!(!within_one_bucket(130, 100), "a 30% miss is a real bug");
        assert!(within_one_bucket(11, 10), "small octaves get ±2µs slack");
    }
}
