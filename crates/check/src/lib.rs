//! # pingmesh-check — the deterministic correctness harness
//!
//! A seeded scenario fuzzer for the whole sim pipeline. One `u64` seed
//! expands into a [`ScenarioSpec`] — topology shape, probe cadences,
//! agent tunables, store geometry, and a fault schedule — which
//! [`run_scenario`] drives end to end (topology → pinglists → probes
//! against a faulted network → agent upload → store ingest → DSA
//! ticks) before checking every invariant oracle in [`oracle`]:
//!
//! 1. probe conservation (nothing the fleet observed vanishes),
//! 2. CRDT laws + shard-partition independence of window aggregates,
//! 3. quantile monotonicity and histogram-vs-exact agreement,
//! 4. SLA row consistency and scope-family count sums,
//! 5. zero-copy scan equivalence,
//! 6. shard determinism (the scenario re-run on a sharded engine yields
//!    a bit-identical store, SLA rows and outputs — [`digest`]).
//!
//! Failing seeds are [`shrink`]-able to a minimal spec and printed as a
//! ready-to-paste regression test ([`regression_snippet`]); pin those
//! tests in the crate that owns the bug. The `pingmesh-fuzz` binary
//! runs seed campaigns and the CI smoke gate (`scripts/ci.sh
//! --fuzz-smoke`).
//!
//! Everything is deterministic: the harness draws from its own
//! [`rng::XorShift`] (independent of the netsim RNG it audits), so the
//! same seed always produces the same scenario, the same run, and the
//! same verdict — a failing seed from CI reproduces locally, bit for
//! bit.

pub mod digest;
pub mod oracle;
pub mod rng;
pub mod run;
pub mod scenario;
pub mod shrink;

pub use digest::state_digest;
pub use oracle::Violation;
pub use run::{build_orchestrator, build_orchestrator_sharded, run_scenario, RunReport};
pub use scenario::ScenarioSpec;
pub use shrink::{regression_snippet, shrink};

/// Outcome of a seed campaign: every report, plus the shrunk spec of the
/// first failure (if any).
#[derive(Debug)]
pub struct Campaign {
    /// One report per seed, in seed order.
    pub reports: Vec<RunReport>,
    /// Minimal failing spec for the first failing seed.
    pub shrunk: Option<ScenarioSpec>,
}

/// Runs `seeds` scenarios starting at seed 0. Stops shrinking after the
/// first failure (later failures stay in the reports, unshrunk).
pub fn run_campaign(seeds: u64, smoke: bool) -> Campaign {
    let mut reports = Vec::with_capacity(seeds as usize);
    let mut shrunk = None;
    for seed in 0..seeds {
        let spec = ScenarioSpec::generate(seed, smoke);
        let report = run_scenario(&spec);
        if !report.violations.is_empty() && shrunk.is_none() {
            shrunk = Some(shrink::shrink(&spec));
        }
        reports.push(report);
    }
    Campaign { reports, shrunk }
}
