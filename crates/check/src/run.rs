//! Spec → orchestrated run → oracle verdicts.
//!
//! [`run_scenario`] is the harness's single entry point: it builds the
//! full deployment a [`ScenarioSpec`] describes (topology → pinglists →
//! agents probing a faulted netsim → uploads → CosmosStore ingest → DSA
//! ticks), drives it to the spec's horizon, and hands the quiesced
//! orchestrator to every oracle in [`crate::oracle`]. The run is pure:
//! same spec, same [`RunReport`] — byte for byte.

use crate::oracle::{self, Violation};
use crate::scenario::{ScenarioSpec, TIER_LEAF, TIER_TOR};
use pingmesh_agent::AgentConfig;
use pingmesh_controller::GeneratorConfig;
use pingmesh_core::{Orchestrator, OrchestratorConfig};
use pingmesh_dsa::CosmosStore;
use pingmesh_netsim::{ActiveFault, DcProfile, FaultKind};
use pingmesh_topology::{DcSpec, ServiceMap, Topology, TopologySpec};
use pingmesh_types::{ServerId, SimDuration, SimTime, SwitchId};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The verdict of one scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Seed the scenario came from.
    pub seed: u64,
    /// Probes the fleet executed.
    pub probes_run: u64,
    /// Records that reached the store.
    pub records_stored: u64,
    /// Records the agents discarded (overflow + upload give-up).
    pub records_discarded: u64,
    /// SLA rows the DSA ticks produced.
    pub sla_rows: u64,
    /// Oracle violations, empty on a clean run.
    pub violations: Vec<Violation>,
    /// Order-independent digest of the run's observable state; two runs
    /// of the same spec must produce the same digest (the determinism
    /// gate compares them).
    pub digest: u64,
}

fn fnv1a(h: &mut u64, v: u64) {
    for b in v.to_le_bytes() {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

fn minute(m: u32) -> SimTime {
    SimTime::ZERO + SimDuration::from_mins(u64::from(m))
}

/// Builds the orchestrator a spec describes, with every scheduled fault
/// installed and ready to fire. Runs on the serial engine (one shard).
pub fn build_orchestrator(spec: &ScenarioSpec) -> Orchestrator {
    build_orchestrator_sharded(spec, 1)
}

/// [`build_orchestrator`] on the sharded engine: the same deployment,
/// partitioned into `shards` per-podset event queues. Any shard count
/// must reproduce the serial run bit for bit — that is the sixth oracle.
pub fn build_orchestrator_sharded(spec: &ScenarioSpec, shards: usize) -> Orchestrator {
    let dcs = (0..spec.dcs)
        .map(|i| DcSpec {
            name: format!("d{i}"),
            podsets: spec.podsets,
            pods_per_podset: spec.pods_per_podset,
            servers_per_pod: spec.servers_per_pod,
            leaves_per_podset: spec.leaves_per_podset,
            spines: spec.spines,
            borders: spec.borders,
        })
        .collect();
    let topo = Arc::new(Topology::build(TopologySpec { dcs }).expect("generated specs are valid"));

    // Latency profiles: cycle the paper's Table-1 presets, pinned by the
    // spec seed so shrinking other fields never changes the profiles.
    let presets = DcProfile::table1_presets();
    let profiles: Vec<DcProfile> = (0..spec.dcs as usize)
        .map(|i| presets[(spec.seed as usize + i) % presets.len()].clone())
        .collect();

    // One service spanning the fleet's extremes, when there is a fleet.
    let mut services = ServiceMap::new();
    let n = topo.server_count() as u32;
    if n >= 2 {
        services
            .register("svc-fuzz", [ServerId(0), ServerId(n - 1)])
            .expect("two distinct servers");
    }

    let config = OrchestratorConfig {
        agent: AgentConfig {
            upload_batch_records: spec.upload_batch_records as usize,
            upload_retries: spec.upload_retries,
            ..AgentConfig::default()
        },
        generator: GeneratorConfig {
            intra_pod_interval: SimDuration::from_secs(u64::from(spec.intra_pod_interval_secs)),
            intra_dc_interval: SimDuration::from_secs(u64::from(spec.intra_dc_interval_secs)),
            inter_dc_interval: SimDuration::from_secs(u64::from(spec.inter_dc_interval_secs)),
            payload_probes: spec.payload_probes,
            qos_low: spec.qos_low,
            ..GeneratorConfig::default()
        },
        controller_replicas: 2,
        seed: spec.seed,
        auto_repair: spec.auto_repair,
        auto_mitigate: spec.auto_mitigate.unwrap_or(spec.auto_repair),
        shards,
        ..OrchestratorConfig::default()
    };
    let mut orch = Orchestrator::new(topo.clone(), profiles, services.clone(), config);

    // The orchestrator builds its store with production-sized extents;
    // re-seat a store with the spec's (often tiny) extent cap so extents
    // straddle window boundaries and the scan oracles bite.
    let mut store = CosmosStore::new(spec.extent_cap as usize, 3);
    store.set_service_map(Arc::new(services));
    orch.pipeline_mut().store = store;

    // Install the fault schedule.
    for f in &spec.switch_faults {
        let switches: Vec<SwitchId> = match f.tier {
            TIER_TOR => topo
                .dcs()
                .flat_map(|dc| topo.pods_in_dc(dc).collect::<Vec<_>>())
                .map(|p| topo.tor_of_pod(p))
                .collect(),
            TIER_LEAF => topo
                .dcs()
                .flat_map(|dc| topo.podsets_in_dc(dc).collect::<Vec<_>>())
                .flat_map(|ps| topo.leaf_slice_of_podset(ps).to_vec())
                .collect(),
            _ => topo
                .dcs()
                .flat_map(|dc| topo.spine_slice_of_dc(dc).to_vec())
                .collect(),
        };
        if switches.is_empty() {
            continue;
        }
        let sw = switches[f.pick as usize % switches.len()];
        let p = f64::from(f.param_permille) / 1_000.0;
        let kind = match f.kind {
            0 => FaultKind::BlackholeIp { frac: p },
            1 => FaultKind::BlackholePort { frac: p },
            2 => FaultKind::SilentRandomDrop { prob: p },
            3 => FaultKind::FcsError { per_kb_prob: p },
            4 => FaultKind::CongestionDrop { prob: p },
            _ => FaultKind::Down,
        };
        orch.net_mut().faults_mut().add_switch_fault(
            sw,
            ActiveFault {
                kind,
                from: minute(f.from_min),
                until: Some(minute(f.until_min)),
            },
        );
    }
    if let Some(d) = &spec.mitigation_drill {
        let switches: Vec<SwitchId> = match d.tier {
            TIER_TOR => topo
                .dcs()
                .flat_map(|dc| topo.pods_in_dc(dc).collect::<Vec<_>>())
                .map(|p| topo.tor_of_pod(p))
                .collect(),
            TIER_LEAF => topo
                .dcs()
                .flat_map(|dc| topo.podsets_in_dc(dc).collect::<Vec<_>>())
                .flat_map(|ps| topo.leaf_slice_of_podset(ps).to_vec())
                .collect(),
            _ => topo
                .dcs()
                .flat_map(|dc| topo.spine_slice_of_dc(dc).to_vec())
                .collect(),
        };
        if !switches.is_empty() {
            let sw = switches[d.pick as usize % switches.len()];
            orch.net_mut().faults_mut().add_switch_fault(
                sw,
                ActiveFault {
                    kind: FaultKind::SilentRandomDrop {
                        prob: f64::from(d.prob_permille) / 1_000.0,
                    },
                    from: minute(d.from_min),
                    until: None,
                },
            );
        }
    }
    for pd in &spec.podset_downs {
        let podsets: Vec<_> = topo
            .dcs()
            .flat_map(|dc| topo.podsets_in_dc(dc).collect::<Vec<_>>())
            .collect();
        if podsets.is_empty() {
            continue;
        }
        let ps = podsets[pd.pick as usize % podsets.len()];
        orch.net_mut().faults_mut().set_podset_down(
            ps,
            minute(pd.from_min),
            Some(minute(pd.until_min)),
        );
    }
    for o in &spec.store_outages {
        orch.pipeline_mut()
            .store
            .add_down_window(minute(o.from_min), Some(minute(o.until_min)));
    }
    for o in &spec.controller_outages {
        let i = o.replica as usize % 2;
        orch.cluster_mut()
            .replica_mut(i)
            .add_down_window(minute(o.from_min), Some(minute(o.until_min)));
    }
    orch
}

/// Runs one scenario and checks every oracle on the quiesced state.
pub fn run_scenario(spec: &ScenarioSpec) -> RunReport {
    let mut orch = build_orchestrator(spec);
    orch.run_until(minute(spec.sim_minutes));

    let mut violations: Vec<Violation> = Vec::new();
    violations.extend(oracle::check_conservation(&orch));
    violations.extend(oracle::check_window_partials(&orch));
    violations.extend(oracle::check_crdt_reingest(&orch, spec));
    violations.extend(oracle::check_quantiles(&orch));
    violations.extend(oracle::check_sla_rows(&orch));
    violations.extend(oracle::check_scan_equivalence(&orch));
    violations.extend(oracle::check_quality(&orch, spec));
    violations.extend(oracle::check_serve_coherence(&orch));
    violations.extend(oracle::check_crash_recovery(&orch, spec));
    violations.extend(oracle::check_mitigation(&orch, spec));

    // Sixth family: shard determinism. Re-run the whole scenario on the
    // sharded engine (shard count varies with the seed so campaigns
    // cover 2/4/8) and demand a bit-identical observable state.
    let shard_choices = [2usize, 4, 8];
    let shards = shard_choices[spec.seed as usize % shard_choices.len()];
    let serial_digest = crate::digest::state_digest(&orch);
    let mut sharded = build_orchestrator_sharded(spec, shards);
    sharded.run_until(minute(spec.sim_minutes));
    let sharded_digest = crate::digest::state_digest(&sharded);
    if sharded_digest != serial_digest {
        violations.push(Violation {
            oracle: "shard_determinism".into(),
            detail: format!(
                "{shards}-shard run diverged from serial: state digest \
                 {sharded_digest:#018x} != {serial_digest:#018x} \
                 (probes {} vs {}, records {} vs {}, sla rows {} vs {})",
                sharded.outputs().probes_run,
                orch.outputs().probes_run,
                sharded.pipeline().store.record_count(),
                orch.pipeline().store.record_count(),
                sharded.pipeline().db.len(),
                orch.pipeline().db.len(),
            ),
        });
    }

    let reg = pingmesh_obs::registry();
    reg.counter("pingmesh_check_scenarios_total").inc();
    if !violations.is_empty() {
        reg.counter("pingmesh_check_violations_total")
            .add(violations.len() as u64);
    }

    let topo = orch.net().topology().clone();
    let discarded: u64 = topo
        .servers()
        .map(|s| orch.agent(s).discarded_total())
        .sum();
    let store = &orch.pipeline().store;
    let mut digest = 0xCBF2_9CE4_8422_2325u64;
    for v in [
        spec.seed,
        orch.outputs().probes_run,
        store.record_count(),
        store.logical_bytes(),
        store.partial_count() as u64,
        orch.pipeline().db.len() as u64,
        orch.outputs().alerts.len() as u64,
        orch.outputs().incidents.len() as u64,
        orch.outputs().escalations.len() as u64,
        discarded,
        serial_digest,
        violations.len() as u64,
    ] {
        fnv1a(&mut digest, v);
    }

    RunReport {
        seed: spec.seed,
        probes_run: orch.outputs().probes_run,
        records_stored: store.record_count(),
        records_discarded: discarded,
        sla_rows: orch.pipeline().db.len() as u64,
        violations,
        digest,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_healthy_smoke_scenario_passes_every_oracle() {
        let spec = ScenarioSpec::generate(0, true);
        let report = run_scenario(&spec);
        assert!(report.probes_run > 0, "the fleet probed");
        assert!(
            report.violations.is_empty(),
            "oracles clean: {:?}",
            report.violations
        );
    }

    #[test]
    fn same_spec_same_digest() {
        let spec = ScenarioSpec::generate(3, true);
        let a = run_scenario(&spec);
        let b = run_scenario(&spec);
        assert_eq!(a.digest, b.digest, "runs must be deterministic");
        assert_eq!(a.probes_run, b.probes_run);
        assert_eq!(a.records_stored, b.records_stored);
    }
}
