//! Failing-seed shrinking.
//!
//! When a scenario trips an oracle, the raw spec is rarely the story —
//! the bug usually survives with fewer faults, a shorter run, and a
//! smaller fleet. [`shrink`] greedily edits the failing spec one field
//! at a time, re-runs the pipeline after each edit, and keeps any edit
//! that still fails, until no single edit preserves the failure (or the
//! re-run budget is spent). [`regression_snippet`] renders the minimal
//! spec as a ready-to-paste regression test.

use crate::run::run_scenario;
use crate::scenario::ScenarioSpec;

/// Upper bound on shrink re-runs; each re-run is a full sim, so the
/// budget keeps a pathological seed from stalling the whole campaign.
pub const MAX_SHRINK_RUNS: usize = 64;

/// Candidate single-step edits, cheapest-win first: structural deletions
/// (whole fault entries), then halvings (duration, fleet dims), then
/// simplifications (re-ingest batching off).
fn candidates(spec: &ScenarioSpec) -> Vec<ScenarioSpec> {
    let mut out = Vec::new();
    for i in 0..spec.switch_faults.len() {
        let mut s = spec.clone();
        s.switch_faults.remove(i);
        out.push(s);
    }
    for i in 0..spec.podset_downs.len() {
        let mut s = spec.clone();
        s.podset_downs.remove(i);
        out.push(s);
    }
    for i in 0..spec.store_outages.len() {
        let mut s = spec.clone();
        s.store_outages.remove(i);
        out.push(s);
    }
    for i in 0..spec.controller_outages.len() {
        let mut s = spec.clone();
        s.controller_outages.remove(i);
        out.push(s);
    }
    if spec.sim_minutes > 22 {
        let mut s = spec.clone();
        // Halve toward the 22-minute floor (first DSA tick at minute 20).
        s.sim_minutes = (spec.sim_minutes / 2).max(22);
        out.push(s);
    }
    for (get, set) in [
        (
            spec.servers_per_pod,
            (|s: &mut ScenarioSpec, v| s.servers_per_pod = v) as fn(&mut ScenarioSpec, u32),
        ),
        (spec.pods_per_podset, |s, v| s.pods_per_podset = v),
        (spec.podsets, |s, v| s.podsets = v),
        (spec.spines, |s, v| s.spines = v),
        (spec.leaves_per_podset, |s, v| s.leaves_per_podset = v),
        (spec.dcs, |s, v| s.dcs = v),
    ] {
        if get > 1 {
            let mut s = spec.clone();
            set(&mut s, get / 2);
            out.push(s);
        }
    }
    if spec.reingest_batches > 1 {
        let mut s = spec.clone();
        s.reingest_batches = 1;
        out.push(s);
    }
    if spec.payload_probes || spec.qos_low {
        let mut s = spec.clone();
        s.payload_probes = false;
        s.qos_low = false;
        out.push(s);
    }
    out
}

/// [`shrink`] with an injectable failure predicate (`true` = the spec
/// still fails) — the predicate is what a re-run of the pipeline
/// answers in production, and what tests replace with synthetic bugs.
pub fn shrink_with(
    spec: &ScenarioSpec,
    mut fails: impl FnMut(&ScenarioSpec) -> bool,
) -> ScenarioSpec {
    let mut best = spec.clone();
    let mut runs = 0usize;
    'outer: while runs < MAX_SHRINK_RUNS {
        for cand in candidates(&best) {
            if runs >= MAX_SHRINK_RUNS {
                break 'outer;
            }
            runs += 1;
            if fails(&cand) {
                best = cand;
                continue 'outer; // restart from the smaller spec
            }
        }
        break; // no single edit preserves the failure: local minimum
    }
    best
}

/// Greedily shrinks a failing spec to a (locally) minimal spec that
/// still fails. The input must already fail; the result is guaranteed
/// to fail too (each kept edit is validated by a full re-run).
pub fn shrink(spec: &ScenarioSpec) -> ScenarioSpec {
    debug_assert!(
        !run_scenario(spec).violations.is_empty(),
        "shrink() wants a failing spec"
    );
    shrink_with(spec, |s| !run_scenario(s).violations.is_empty())
}

/// Renders a minimal failing spec as a ready-to-paste regression test.
pub fn regression_snippet(spec: &ScenarioSpec) -> String {
    let json = spec.to_json();
    format!(
        r####"#[test]
fn fuzz_regression_seed_{seed}() {{
    // Minimal failing ScenarioSpec found by pingmesh-fuzz; see
    // crates/check. Every oracle must pass on this scenario.
    let spec = pingmesh_check::ScenarioSpec::from_json(
        r###"{json}"###,
    )
    .unwrap();
    let report = pingmesh_check::run_scenario(&spec);
    assert!(report.violations.is_empty(), "{{:?}}", report.violations);
}}"####,
        seed = spec.seed,
        json = json
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::FaultPlan;

    #[test]
    fn candidates_only_ever_shrink() {
        let spec = ScenarioSpec::generate(9, false);
        for c in candidates(&spec) {
            let smaller = c.switch_faults.len() < spec.switch_faults.len()
                || c.podset_downs.len() < spec.podset_downs.len()
                || c.store_outages.len() < spec.store_outages.len()
                || c.controller_outages.len() < spec.controller_outages.len()
                || c.sim_minutes < spec.sim_minutes
                || c.server_count() < spec.server_count()
                || c.spines < spec.spines
                || c.leaves_per_podset < spec.leaves_per_podset
                || c.reingest_batches < spec.reingest_batches
                || (!c.payload_probes && spec.payload_probes)
                || (!c.qos_low && spec.qos_low);
            assert!(smaller, "candidate must strictly simplify the spec");
            assert!(c.sim_minutes >= 22 && c.server_count() >= 1);
        }
    }

    #[test]
    fn shrinks_to_the_minimal_failing_shape() {
        // Synthetic bug: "fails" whenever there is at least one switch
        // fault AND the fleet has more than 4 servers. The shrinker must
        // keep exactly one fault and cut the fleet to the boundary.
        let mut spec = ScenarioSpec::generate(1, false);
        spec.switch_faults = vec![
            FaultPlan {
                tier: 0,
                pick: 0,
                kind: 2,
                param_permille: 100,
                from_min: 5,
                until_min: 9,
            };
            3
        ];
        spec.dcs = 2;
        spec.podsets = 2;
        spec.pods_per_podset = 2;
        spec.servers_per_pod = 4;
        let fails = |s: &ScenarioSpec| !s.switch_faults.is_empty() && s.server_count() > 4;
        assert!(fails(&spec), "the synthetic bug must fire on the input");
        let minimal = shrink_with(&spec, fails);
        assert!(fails(&minimal), "shrinking must preserve the failure");
        assert_eq!(minimal.switch_faults.len(), 1, "redundant faults dropped");
        assert!(
            minimal.podset_downs.is_empty()
                && minimal.store_outages.is_empty()
                && minimal.controller_outages.is_empty(),
            "irrelevant fault entries dropped"
        );
        // No halving of any dimension keeps server_count > 4, so the
        // result sits on the boundary: every single edit would pass.
        for c in candidates(&minimal) {
            assert!(!fails(&c), "minimal spec must be locally minimal: {c:?}");
        }
        assert_eq!(minimal.sim_minutes, 22, "duration halved to the floor");
    }

    #[test]
    fn snippet_embeds_a_parseable_spec() {
        let spec = ScenarioSpec::generate(4, true);
        let snippet = regression_snippet(&spec);
        assert!(snippet.contains("fuzz_regression_seed_4"));
        // The JSON between the raw-string fences must round-trip.
        let start = snippet.find(r####"r###""####).unwrap() + 5;
        let end = snippet.find(r####""###"####).unwrap();
        let parsed = ScenarioSpec::from_json(&snippet[start..end]).unwrap();
        assert_eq!(parsed, spec);
    }
}
