//! The harness's own seeded generator.
//!
//! The fuzzer must be deterministic end to end — same seed, same
//! scenario, same verdict — and independent of everything it checks, so
//! it carries its own xorshift64* instead of borrowing the netsim RNG it
//! is busy auditing.

/// A self-contained xorshift64* generator.
#[derive(Debug, Clone)]
pub struct XorShift {
    state: u64,
}

impl XorShift {
    /// Folds an arbitrary seed into a valid (never-zero) state.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
        }
    }

    /// Next pseudo-random u64.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform draw from the inclusive range `[lo, hi]`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.next_u64() % (hi - lo + 1)
    }

    /// True with probability `permille`/1000.
    pub fn chance(&mut self, permille: u64) -> bool {
        self.next_u64() % 1_000 < permille
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = (self.next_u64() % (i as u64 + 1)) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_nonconstant() {
        let mut a = XorShift::new(7);
        let mut b = XorShift::new(7);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert!(xs.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn range_is_inclusive_and_bounded() {
        let mut r = XorShift::new(3);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2_000 {
            let v = r.range(2, 5);
            assert!((2..=5).contains(&v));
            seen_lo |= v == 2;
            seen_hi |= v == 5;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = XorShift::new(11);
        let mut xs: Vec<u32> = (0..32).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(xs, sorted, "a 32-element shuffle virtually never fixes");
    }
}
