//! The scenario grammar.
//!
//! A [`ScenarioSpec`] is the *entire* input of one fuzzed run: topology
//! shape, probe cadences, agent tunables, store geometry, and a fault
//! schedule, all drawn from one xorshift seed. The spec is plain data
//! (serde-serializable), which is what makes shrinking and pinning
//! possible: a failing run is reproduced by its spec alone, and the
//! shrinker edits the spec — not the run — until the failure is minimal.

use crate::rng::XorShift;
use serde::{Deserialize, Serialize};

/// Where a scheduled switch fault lands.
pub const TIER_TOR: u8 = 0;
/// Leaf tier (see [`TIER_TOR`]).
pub const TIER_LEAF: u8 = 1;
/// Spine tier (see [`TIER_TOR`]).
pub const TIER_SPINE: u8 = 2;

/// One scheduled switch fault. `pick` indexes into the chosen tier's
/// switch list modulo its length, so a spec stays valid when the shrinker
/// shrinks the topology under it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Switch tier: 0 = ToR, 1 = leaf, 2 = spine.
    pub tier: u8,
    /// Index into the tier's switches (mod length).
    pub pick: u32,
    /// Fault mode: 0 BlackholeIp, 1 BlackholePort, 2 SilentRandomDrop,
    /// 3 FcsError, 4 CongestionDrop, 5 Down.
    pub kind: u8,
    /// Mode parameter in permille (fraction/probability × 1000).
    pub param_permille: u32,
    /// Activation minute.
    pub from_min: u32,
    /// Deactivation minute (exclusive).
    pub until_min: u32,
}

/// A podset power-down window. `pick` indexes podsets mod count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PodsetDownPlan {
    /// Index into the podset list (mod length).
    pub pick: u32,
    /// Power-off minute.
    pub from_min: u32,
    /// Power-back minute.
    pub until_min: u32,
}

/// A mitigation-eligible fault: a long-lived silent packet-drop on one
/// switch, open-ended, so the detect → drain → verify loop has something
/// real to chew on. Scheduled by ~a quarter of generated scenarios (which
/// also run long enough for the 10-minute detection cadence to land and a
/// drain + soak to elapse).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MitigationDrillPlan {
    /// Switch tier: 0 = ToR, 1 = leaf, 2 = spine.
    pub tier: u8,
    /// Index into the tier's switches (mod length).
    pub pick: u32,
    /// Silent-drop probability in permille.
    pub prob_permille: u32,
    /// Activation minute (the fault never deactivates).
    pub from_min: u32,
}

/// A store (upload front-end) outage window, in minutes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutagePlan {
    /// Outage start minute.
    pub from_min: u32,
    /// Outage end minute.
    pub until_min: u32,
}

/// A controller replica outage window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplicaOutagePlan {
    /// Replica index (mod replica count).
    pub replica: u32,
    /// Outage start minute.
    pub from_min: u32,
    /// Outage end minute.
    pub until_min: u32,
}

/// The complete, self-contained description of one fuzzed scenario.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Seed for the run's RNGs (netsim + the harness's own draws).
    pub seed: u64,
    /// Data centers (1–2; inter-DC paths need 2).
    pub dcs: u32,
    /// Podsets per DC.
    pub podsets: u32,
    /// Pods per podset.
    pub pods_per_podset: u32,
    /// Servers per pod.
    pub servers_per_pod: u32,
    /// Leaf switches per podset.
    pub leaves_per_podset: u32,
    /// Spine switches per DC.
    pub spines: u32,
    /// Border routers per DC.
    pub borders: u32,
    /// Virtual run length in minutes (≥ 22 so the first 10-min DSA tick,
    /// which fires at minute 20, lands inside the run).
    pub sim_minutes: u32,
    /// Store extent capacity in records — small values force extents to
    /// straddle window boundaries.
    pub extent_cap: u32,
    /// Agent upload batch-size trigger.
    pub upload_batch_records: u32,
    /// Agent upload retry budget.
    pub upload_retries: u32,
    /// Intra-pod probe interval, seconds.
    pub intra_pod_interval_secs: u32,
    /// Intra-DC probe interval, seconds.
    pub intra_dc_interval_secs: u32,
    /// Inter-DC probe interval, seconds.
    pub inter_dc_interval_secs: u32,
    /// Generate payload probes too.
    pub payload_probes: bool,
    /// Generate low-QoS probes too.
    pub qos_low: bool,
    /// Let detection findings drive automatic repair.
    pub auto_repair: bool,
    /// Let findings drive the closed-loop mitigation engine. `None`
    /// mirrors `auto_repair` — and keeps specs pinned before the engine
    /// existed byte-compatible (`Option` tolerates the missing key).
    pub auto_mitigate: Option<bool>,
    /// Open-ended switch fault that makes the run mitigation-eligible.
    pub mitigation_drill: Option<MitigationDrillPlan>,
    /// Scheduled switch faults.
    pub switch_faults: Vec<FaultPlan>,
    /// Podset power-down windows.
    pub podset_downs: Vec<PodsetDownPlan>,
    /// Store outage windows.
    pub store_outages: Vec<OutagePlan>,
    /// Controller replica outage windows.
    pub controller_outages: Vec<ReplicaOutagePlan>,
    /// Batches the CRDT oracle re-ingests the run's records in (shuffled,
    /// re-sharded) — exercises shard-partition independence.
    pub reingest_batches: u32,
}

impl ScenarioSpec {
    /// Derives a full scenario from one seed. `smoke` bounds the shapes
    /// so a 50-seed corpus stays under the CI gate's time budget.
    pub fn generate(seed: u64, smoke: bool) -> Self {
        let mut r = XorShift::new(seed ^ 0x5CEA_A210_F022_ED01);
        let dcs = if r.chance(300) { 2 } else { 1 };
        let podsets = r.range(1, 3) as u32;
        let pods_per_podset = r.range(1, if smoke { 2 } else { 3 }) as u32;
        let mut servers_per_pod = r.range(1, 4) as u32;
        // Keep fleets small: the point is shape diversity, not scale.
        let cap = if smoke { 24 } else { 48 };
        while dcs * podsets * pods_per_podset * servers_per_pod > cap && servers_per_pod > 1 {
            servers_per_pod -= 1;
        }
        let sim_minutes = if smoke {
            r.range(22, 28) as u32
        } else {
            r.range(22, 45) as u32
        };
        let mut spec = Self {
            seed,
            dcs,
            podsets,
            pods_per_podset,
            servers_per_pod,
            leaves_per_podset: r.range(1, 2) as u32,
            spines: r.range(1, 3) as u32,
            borders: 1,
            sim_minutes,
            extent_cap: r.range(16, 512) as u32,
            upload_batch_records: r.range(40, 300) as u32,
            upload_retries: r.range(0, 3) as u32,
            intra_pod_interval_secs: r.range(2, 10) as u32,
            intra_dc_interval_secs: r.range(5, 30) as u32,
            inter_dc_interval_secs: r.range(10, 60) as u32,
            payload_probes: r.chance(300),
            qos_low: r.chance(300),
            auto_repair: r.chance(700),
            auto_mitigate: None,
            mitigation_drill: None,
            switch_faults: Vec::new(),
            podset_downs: Vec::new(),
            store_outages: Vec::new(),
            controller_outages: Vec::new(),
            reingest_batches: r.range(1, 8) as u32,
        };
        for _ in 0..r.range(0, 3) {
            let from_min = r.range(1, sim_minutes.saturating_sub(5).max(1) as u64) as u32;
            spec.switch_faults.push(FaultPlan {
                tier: r.range(0, 2) as u8,
                pick: r.next_u64() as u32,
                kind: r.range(0, 5) as u8,
                param_permille: r.range(5, 400) as u32,
                from_min,
                until_min: from_min + r.range(2, 12) as u32,
            });
        }
        if r.chance(250) {
            let from_min = r.range(3, sim_minutes as u64 - 4) as u32;
            spec.podset_downs.push(PodsetDownPlan {
                pick: r.next_u64() as u32,
                from_min,
                until_min: from_min + r.range(2, 8) as u32,
            });
        }
        if r.chance(300) {
            let from_min = r.range(3, sim_minutes as u64 - 4) as u32;
            spec.store_outages.push(OutagePlan {
                from_min,
                until_min: from_min + r.range(1, 8) as u32,
            });
        }
        for _ in 0..r.range(0, 2) {
            let from_min = r.range(1, sim_minutes as u64 - 4) as u32;
            spec.controller_outages.push(ReplicaOutagePlan {
                replica: r.range(0, 1) as u32,
                from_min,
                until_min: from_min + r.range(2, 10) as u32,
            });
        }
        // A quarter of scenarios become mitigation drills: the run is
        // stretched so detection, the drain, and at least one soak +
        // verification land inside it, and one switch silently drops
        // packets with no end. The fault starts *after* the first 10-min
        // window, so the detector's baseline is clean and the jump both
        // fires and clears the engine's confidence gate.
        if r.chance(250) {
            spec.sim_minutes = spec.sim_minutes.max(if smoke { 42 } else { 52 });
            spec.auto_mitigate = Some(true);
            spec.mitigation_drill = Some(MitigationDrillPlan {
                tier: r.range(0, 2) as u8,
                pick: r.next_u64() as u32,
                prob_permille: r.range(60, 220) as u32,
                from_min: r.range(11, 14) as u32,
            });
        }
        spec
    }

    /// Total simulated servers.
    pub fn server_count(&self) -> u32 {
        self.dcs * self.podsets * self.pods_per_podset * self.servers_per_pod
    }

    /// Serializes the spec as JSON (the pinning format).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("spec is plain data")
    }

    /// Parses a spec pinned by [`ScenarioSpec::to_json`].
    pub fn from_json(s: &str) -> Result<Self, String> {
        serde_json::from_str(s).map_err(|e| format!("bad ScenarioSpec JSON: {e:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in [0u64, 1, 42, u64::MAX] {
            assert_eq!(
                ScenarioSpec::generate(seed, true),
                ScenarioSpec::generate(seed, true),
                "seed {seed}"
            );
        }
        assert_ne!(
            ScenarioSpec::generate(1, true),
            ScenarioSpec::generate(2, true)
        );
    }

    #[test]
    fn smoke_specs_stay_small_and_valid() {
        for seed in 0..200u64 {
            let s = ScenarioSpec::generate(seed, true);
            assert!(s.server_count() <= 24, "seed {seed}: {}", s.server_count());
            assert!(s.sim_minutes >= 22, "first 10-min tick must land");
            assert!(s.extent_cap >= 1 && s.upload_batch_records >= 1);
        }
    }

    #[test]
    fn json_round_trips() {
        let s = ScenarioSpec::generate(7, false);
        let round = ScenarioSpec::from_json(&s.to_json()).unwrap();
        assert_eq!(s, round);
    }
}
