//! The ISSUE-mandated shard-determinism gate: a seeded 4-podset scenario
//! run at 1, 2, 4 and 8 shards must yield byte-identical `CosmosStore`
//! contents and SLA rows. Unlike the digest-based oracle in
//! `run_scenario`, this test compares the *actual* records and rows, so
//! a divergence shows up as a readable diff, not just a hash mismatch.

use pingmesh_check::scenario::{FaultPlan, OutagePlan, ReplicaOutagePlan, TIER_LEAF};
use pingmesh_check::{build_orchestrator_sharded, state_digest, ScenarioSpec};
use pingmesh_core::Orchestrator;
use pingmesh_dsa::SlaRow;
use pingmesh_types::{ProbeRecord, SimDuration, SimTime};

/// A 4-podset deployment with enough going on (payload + low-QoS probes,
/// a leaf fault, a store outage, a controller outage) that any ordering
/// or RNG-stream leak between shards would surface.
fn four_podset_spec() -> ScenarioSpec {
    ScenarioSpec {
        seed: 0xD15C_0EE4,
        dcs: 1,
        podsets: 4,
        pods_per_podset: 2,
        servers_per_pod: 2,
        leaves_per_podset: 2,
        spines: 2,
        borders: 1,
        sim_minutes: 22,
        extent_cap: 64,
        upload_batch_records: 100,
        upload_retries: 2,
        intra_pod_interval_secs: 4,
        intra_dc_interval_secs: 12,
        inter_dc_interval_secs: 30,
        payload_probes: true,
        qos_low: true,
        auto_repair: true,
        auto_mitigate: Some(true),
        mitigation_drill: None,
        switch_faults: vec![FaultPlan {
            tier: TIER_LEAF,
            pick: 3,
            kind: 2, // SilentRandomDrop
            param_permille: 120,
            from_min: 4,
            until_min: 12,
        }],
        podset_downs: Vec::new(),
        store_outages: vec![OutagePlan {
            from_min: 8,
            until_min: 11,
        }],
        controller_outages: vec![ReplicaOutagePlan {
            replica: 0,
            from_min: 14,
            until_min: 17,
        }],
        reingest_batches: 2,
    }
}

fn run(spec: &ScenarioSpec, shards: usize) -> Orchestrator {
    let mut orch = build_orchestrator_sharded(spec, shards);
    orch.run_until(SimTime::ZERO + SimDuration::from_mins(u64::from(spec.sim_minutes)));
    orch
}

/// Every stored record, in a canonical order (extent iteration crosses a
/// `HashMap`, so the raw scan order is not comparable).
fn store_records(orch: &Orchestrator) -> Vec<ProbeRecord> {
    let mut records: Vec<ProbeRecord> = orch
        .pipeline()
        .store
        .scan_all_window_chunks(SimTime::ZERO, SimTime(u64::MAX))
        .into_iter()
        .flat_map(|chunk| chunk.iter().copied())
        .collect();
    records.sort_by_key(|r| {
        (
            r.ts,
            r.src,
            r.dst,
            r.src_port,
            r.dst_port,
            pingmesh_check::digest::record_hash(r),
        )
    });
    records
}

fn sla_rows(orch: &Orchestrator) -> Vec<SlaRow> {
    orch.pipeline().db.rows().copied().collect()
}

#[test]
fn four_podset_scenario_is_bit_identical_at_1_2_4_8_shards() {
    let spec = four_podset_spec();
    let serial = run(&spec, 1);
    let baseline_records = store_records(&serial);
    let baseline_rows = sla_rows(&serial);
    let baseline_digest = state_digest(&serial);
    assert!(
        serial.outputs().probes_run > 0 && !baseline_records.is_empty(),
        "scenario must actually probe and store"
    );

    for shards in [2usize, 4, 8] {
        let sharded = run(&spec, shards);
        assert_eq!(
            sharded.shard_count(),
            shards.min(4), // clamped to podset count
            "{shards} requested shards"
        );
        assert_eq!(
            sharded.outputs().probes_run,
            serial.outputs().probes_run,
            "{shards} shards: probe count"
        );
        let records = store_records(&sharded);
        assert_eq!(
            records.len(),
            baseline_records.len(),
            "{shards} shards: record count"
        );
        for (i, (a, b)) in records.iter().zip(&baseline_records).enumerate() {
            assert_eq!(a, b, "{shards} shards: record {i} diverged");
        }
        assert_eq!(
            sla_rows(&sharded),
            baseline_rows,
            "{shards} shards: SLA rows"
        );
        assert_eq!(
            state_digest(&sharded),
            baseline_digest,
            "{shards} shards: state digest"
        );
    }
}

#[test]
fn fuzzer_specs_hold_shard_determinism_across_seeds() {
    // A few generated specs on top of the hand-built one, so shapes with
    // podset downs / tiny extents are covered here too (the run_scenario
    // oracle covers every fuzz seed; this pins a fast deterministic set).
    for seed in [0u64, 5, 11] {
        let spec = ScenarioSpec::generate(seed, true);
        let serial = run(&spec, 1);
        let sharded = run(&spec, 2 + (seed as usize % 3) * 3); // 2, 5, 8
        assert_eq!(
            state_digest(&sharded),
            state_digest(&serial),
            "seed {seed}: sharded state digest diverged"
        );
        assert_eq!(
            store_records(&sharded),
            store_records(&serial),
            "seed {seed}"
        );
    }
}
