//! A small, generic discrete-event engine.
//!
//! The orchestrator (in `pingmesh-core`) interleaves agent probe rounds,
//! pinglist refreshes, perf-counter collections, DSA job ticks, fault
//! timeline changes and repair actions on one virtual clock. This module
//! provides the priority queue those components share. Events with equal
//! timestamps pop in insertion order (a strict FIFO tie-break keeps runs
//! deterministic).
//!
//! The sharded engine runs one `EventQueue` per podset shard, so the
//! schedule/pop hot path must cost nothing beyond the heap operation:
//! metric updates accumulate in plain fields and are published by
//! [`EventQueue::flush_metrics`] at tick barriers (or on drop), instead
//! of paying an atomic add per event — millions per simulation.

use pingmesh_obs::{Counter, Gauge};
use pingmesh_types::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest time pops first,
        // with the lowest sequence number breaking ties.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A scheduled event popped from the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scheduled<E> {
    /// When the event fires.
    pub time: SimTime,
    /// The event payload.
    pub event: E,
}

/// The event queue. `E` is the caller's event enum.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: SimTime,
    // Metric deltas since the last flush. Plain integers: the hot path
    // (schedule/pop, millions per sim) must not touch an atomic — the
    // deltas are folded into the shared counters at tick barriers.
    pending_scheduled: u64,
    pending_popped: u64,
    // Metric handles are resolved once at construction; a flush is one
    // atomic add per counter regardless of how many events it covers.
    scheduled_ctr: Arc<Counter>,
    popped_ctr: Arc<Counter>,
    depth_gauge: Arc<Gauge>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        let registry = pingmesh_obs::registry();
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            pending_scheduled: 0,
            pending_popped: 0,
            scheduled_ctr: registry.counter("pingmesh_netsim_events_scheduled_total"),
            popped_ctr: registry.counter("pingmesh_netsim_events_popped_total"),
            depth_gauge: registry.gauge("pingmesh_netsim_queue_depth"),
        }
    }

    /// Current virtual time: the timestamp of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules an event. Scheduling in the past (before `now`) is a
    /// logic error and panics in debug builds; release builds clamp to
    /// `now` so a late event still fires.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        debug_assert!(
            time >= self.now,
            "scheduling into the past: {time:?} < {:?}",
            self.now
        );
        let time = time.max(self.now);
        self.heap.push(Entry {
            time,
            seq: self.seq,
            event,
        });
        self.seq += 1;
        self.pending_scheduled += 1;
    }

    /// Schedules a whole batch of events with a single heap reservation,
    /// so bulk rounds (e.g. populating the initial poll stagger for a
    /// 100k-server fleet) don't pay repeated heap growth.
    pub fn schedule_batch<I>(&mut self, events: I)
    where
        I: IntoIterator<Item = (SimTime, E)>,
        I::IntoIter: ExactSizeIterator,
    {
        let events = events.into_iter();
        self.heap.reserve(events.len());
        for (time, event) in events {
            self.schedule(time, event);
        }
    }

    /// Pops the next event and advances the clock to it.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        self.heap.pop().map(|e| {
            self.now = e.time;
            self.pending_popped += 1;
            Scheduled {
                time: e.time,
                event: e.event,
            }
        })
    }

    /// Publishes the schedule/pop deltas accumulated since the last flush
    /// to the shared metric counters and updates the depth gauge. Called
    /// at tick barriers (and on drop); two atomic adds and a gauge store
    /// regardless of how many events were processed.
    pub fn flush_metrics(&mut self) {
        if self.pending_scheduled > 0 {
            self.scheduled_ctr.add(self.pending_scheduled);
            self.pending_scheduled = 0;
        }
        if self.pending_popped > 0 {
            self.popped_ctr.add(self.pending_popped);
            self.pending_popped = 0;
        }
        self.depth_gauge.set(self.heap.len() as f64);
    }

    /// Timestamp of the next event without popping.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Drop for EventQueue<E> {
    fn drop(&mut self) {
        self.flush_metrics();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(30), "c");
        q.schedule(SimTime(10), "a");
        q.schedule(SimTime(20), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(q.now(), SimTime(30));
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.peek_time(), Some(SimTime(7)));
        q.pop();
        assert_eq!(q.now(), SimTime(7));
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(10), 1);
        let first = q.pop().unwrap();
        assert_eq!(first.event, 1);
        // Schedule relative to the new now.
        q.schedule(SimTime(15), 2);
        q.schedule(SimTime(12), 3);
        assert_eq!(q.pop().unwrap().event, 3);
        assert_eq!(q.pop().unwrap().event, 2);
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn schedule_batch_preserves_fifo_with_singles() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(5), 0);
        q.schedule_batch((1..50).map(|i| (SimTime(5), i)));
        q.schedule(SimTime(5), 50);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, (0..=50).collect::<Vec<_>>());
    }

    #[test]
    fn metric_deltas_accumulate_until_flush() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(SimTime(i), i);
        }
        q.pop();
        assert_eq!(q.pending_scheduled, 10);
        assert_eq!(q.pending_popped, 1);
        q.flush_metrics();
        assert_eq!(q.pending_scheduled, 0);
        assert_eq!(q.pending_popped, 0);
    }
}
