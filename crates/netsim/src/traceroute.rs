//! Simulated TCP traceroute, the localization companion tool of §5.2.
//!
//! Pingmesh can tell *which tier* misbehaves but not which device; the
//! paper closes the gap with TCP traceroute: "by using Pingmesh, we could
//! figure out several source and destination pairs that experienced around
//! 1%-2% random packet drops. We then launched TCP traceroute against
//! those pairs, and finally pinpointed one Spine switch."
//!
//! The tool sends, per flow (fresh ephemeral source port → fresh ECMP
//! path), a burst of TTL-limited packets at every hop depth. A packet that
//! survives hops `1..k` elicits a TTL-expired reply from hop `k`; losing
//! replies at depth `k` while depth `k-1` answers implicates switch `k`.
//! Per-switch loss ratios across many flows localize the faulty device.

use crate::net::SimNet;
use pingmesh_types::{FiveTuple, ServerId, SimTime, SwitchId};
use std::collections::HashMap;

/// Loss accounting for one switch across a traceroute run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HopLoss {
    /// TTL-limited packets whose fate this switch decided (they survived
    /// every switch before it).
    pub sent: u64,
    /// How many of those were lost at this switch.
    pub lost: u64,
}

impl HopLoss {
    /// Loss ratio at this switch.
    pub fn loss_rate(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.lost as f64 / self.sent as f64
        }
    }
}

/// Aggregated result of a traceroute campaign against one or more pairs.
#[derive(Debug, Clone, Default)]
pub struct TracerouteReport {
    /// Per-switch loss attribution.
    pub per_switch: HashMap<SwitchId, HopLoss>,
    /// Number of (flow) paths explored.
    pub flows: usize,
}

impl TracerouteReport {
    /// Merges another report into this one.
    pub fn merge(&mut self, other: &TracerouteReport) {
        for (sw, l) in &other.per_switch {
            let e = self.per_switch.entry(*sw).or_default();
            e.sent += l.sent;
            e.lost += l.lost;
        }
        self.flows += other.flows;
    }

    /// Switches whose attributed loss rate is at least `min_rate`, sorted
    /// by descending loss rate. This is the localizer's suspect list.
    pub fn suspects(&self, min_rate: f64, min_sent: u64) -> Vec<(SwitchId, f64)> {
        let mut v: Vec<(SwitchId, f64)> = self
            .per_switch
            .iter()
            .filter(|(_, l)| l.sent >= min_sent && l.loss_rate() >= min_rate)
            .map(|(sw, l)| (*sw, l.loss_rate()))
            .collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v
    }
}

/// Runs a TCP traceroute campaign from `src` to `dst` at virtual time `t`.
///
/// * `flows` — number of distinct ephemeral source ports (ECMP paths).
/// * `probes_per_hop` — TTL-limited packets per hop depth per flow.
/// * `base_port` — first ephemeral port to use (caller varies it across
///   campaigns to explore different paths).
pub fn tcp_traceroute(
    net: &mut SimNet,
    src: ServerId,
    dst: ServerId,
    flows: u16,
    probes_per_hop: u32,
    base_port: u16,
    t: SimTime,
) -> TracerouteReport {
    let mut report = TracerouteReport::default();
    let topo = net.topology().clone();
    let dst_port = 8_100u16;
    for f in 0..flows {
        let src_port = base_port.wrapping_add(f);
        let tuple = FiveTuple::tcp(topo.ip_of(src), src_port, topo.ip_of(dst), dst_port);
        let path = net.path_of(src, dst, &tuple);
        let switches: Vec<SwitchId> = path.switches().collect();
        report.flows += 1;
        for depth in 0..switches.len() {
            for _ in 0..probes_per_hop {
                // The packet must survive all switches before `depth`;
                // the switch at `depth` then decides its fate.
                let mut alive = true;
                for sw in switches.iter().take(depth) {
                    if !net.switch_passes(*sw, &tuple, 0, t) {
                        alive = false;
                        break;
                    }
                }
                if !alive {
                    // Lost before reaching the measured hop; attributed to
                    // an earlier depth in that iteration — nothing to
                    // record at this one.
                    continue;
                }
                let decided_by = switches[depth];
                let e = report.per_switch.entry(decided_by).or_default();
                e.sent += 1;
                if !net.switch_passes(decided_by, &tuple, 0, t) {
                    e.lost += 1;
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{ActiveFault, FaultKind};
    use crate::latency::DcProfile;
    use pingmesh_topology::{DcSpec, Topology, TopologySpec};
    use pingmesh_types::{DcId, PodId, SwitchTier};
    use std::sync::Arc;

    fn net() -> SimNet {
        let topo = Arc::new(
            Topology::build(TopologySpec {
                dcs: vec![DcSpec::tiny("t")],
            })
            .unwrap(),
        );
        SimNet::new(topo, vec![DcProfile::ideal()], 7)
    }

    fn cross_podset_pair(net: &SimNet) -> (ServerId, ServerId) {
        let t = net.topology();
        (
            t.servers_in_pod(PodId(0)).next().unwrap(),
            t.servers_in_pod(PodId(4)).next().unwrap(),
        )
    }

    #[test]
    fn clean_network_attributes_no_loss() {
        let mut n = net();
        let (a, b) = cross_podset_pair(&n);
        let r = tcp_traceroute(&mut n, a, b, 16, 10, 30_000, SimTime(0));
        assert_eq!(r.flows, 16);
        assert!(r.suspects(0.01, 1).is_empty());
        // Every attributed switch saw traffic.
        assert!(r.per_switch.values().all(|l| l.sent > 0 && l.lost == 0));
    }

    #[test]
    fn localizes_a_silently_dropping_spine() {
        let mut n = net();
        let (a, b) = cross_podset_pair(&n);
        let bad_spine = n.topology().spines_of_dc(DcId(0)).nth(1).unwrap();
        n.faults_mut().add_switch_fault(
            bad_spine,
            ActiveFault {
                kind: FaultKind::SilentRandomDrop { prob: 0.3 },
                from: SimTime(0),
                until: None,
            },
        );
        let r = tcp_traceroute(&mut n, a, b, 64, 20, 30_000, SimTime(0));
        let suspects = r.suspects(0.1, 20);
        assert!(
            !suspects.is_empty(),
            "the bad spine must show up as a suspect"
        );
        assert_eq!(
            suspects[0].0, bad_spine,
            "top suspect must be the bad spine"
        );
        // No other switch should exceed the threshold.
        assert!(suspects.iter().skip(1).all(|(sw, _)| *sw == bad_spine));
    }

    #[test]
    fn merge_accumulates() {
        let mut n = net();
        let (a, b) = cross_podset_pair(&n);
        let r1 = tcp_traceroute(&mut n, a, b, 8, 5, 30_000, SimTime(0));
        let r2 = tcp_traceroute(&mut n, a, b, 8, 5, 31_000, SimTime(0));
        let mut merged = TracerouteReport::default();
        merged.merge(&r1);
        merged.merge(&r2);
        assert_eq!(merged.flows, 16);
        let total_sent: u64 = merged.per_switch.values().map(|l| l.sent).sum();
        let s1: u64 = r1.per_switch.values().map(|l| l.sent).sum();
        let s2: u64 = r2.per_switch.values().map(|l| l.sent).sum();
        assert_eq!(total_sent, s1 + s2);
    }

    #[test]
    fn deep_hops_see_fewer_probes_than_shallow_when_loss_is_early() {
        let mut n = net();
        let (a, b) = cross_podset_pair(&n);
        // Heavy loss at the source ToR starves deeper hops of probes.
        let tor_a = n.topology().tor_of_pod(n.topology().server(a).pod);
        n.faults_mut().add_switch_fault(
            tor_a,
            ActiveFault {
                kind: FaultKind::SilentRandomDrop { prob: 0.5 },
                from: SimTime(0),
                until: None,
            },
        );
        let r = tcp_traceroute(&mut n, a, b, 32, 10, 30_000, SimTime(0));
        let tor_loss = r.per_switch[&tor_a];
        assert!(tor_loss.loss_rate() > 0.3);
        let spine_sent: u64 = r
            .per_switch
            .iter()
            .filter(|(sw, _)| sw.tier == SwitchTier::Spine)
            .map(|(_, l)| l.sent)
            .sum();
        assert!(
            spine_sent < tor_loss.sent,
            "downstream hops must see fewer probes"
        );
        // And the suspect list still ranks the ToR first.
        assert_eq!(r.suspects(0.1, 10)[0].0, tor_a);
    }
}
