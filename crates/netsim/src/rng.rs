//! Deterministic random sampling utilities.
//!
//! The simulator needs a handful of distributions (normal, lognormal,
//! exponential, Bernoulli). We keep the dependency surface at plain `rand`
//! (pre-approved) and implement the transforms here; every consumer seeds a
//! [`SmallRng`] from an experiment seed so runs are exactly reproducible.

use rand::rngs::SmallRng;
use rand::Rng;

/// Samples a standard normal via Box–Muller. Uses `1 - u` to avoid
/// `ln(0)`.
pub fn std_normal(rng: &mut SmallRng) -> f64 {
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Samples a lognormal parameterized by its **median** `exp(mu)` and shape
/// `sigma`. Parameterizing by the median (rather than the mean) keeps
/// latency calibration intuitive: `median_us` is literally the P50
/// contribution of the component.
pub fn lognormal_med(rng: &mut SmallRng, median: f64, sigma: f64) -> f64 {
    if median <= 0.0 {
        return 0.0;
    }
    (median.ln() + sigma * std_normal(rng)).exp()
}

/// Samples an exponential with the given mean.
pub fn exponential(rng: &mut SmallRng, mean: f64) -> f64 {
    if mean <= 0.0 {
        return 0.0;
    }
    let u: f64 = 1.0 - rng.random::<f64>();
    -mean * u.ln()
}

/// Bernoulli trial.
#[inline]
pub fn chance(rng: &mut SmallRng, p: f64) -> bool {
    if p <= 0.0 {
        return false;
    }
    if p >= 1.0 {
        return true;
    }
    rng.random::<f64>() < p
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    #[test]
    fn std_normal_moments() {
        let mut r = rng();
        let n = 200_000;
        let (mut sum, mut sum2) = (0.0, 0.0);
        for _ in 0..n {
            let x = std_normal(&mut r);
            sum += x;
            sum2 += x * x;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn lognormal_median_is_the_median() {
        let mut r = rng();
        let n = 100_001;
        let mut xs: Vec<f64> = (0..n).map(|_| lognormal_med(&mut r, 100.0, 0.7)).collect();
        let med = pingmesh_types::quantile::quantile_f64_in_place(&mut xs, 0.5).unwrap();
        assert!((med - 100.0).abs() / 100.0 < 0.03, "median {med}");
        assert_eq!(lognormal_med(&mut r, 0.0, 0.7), 0.0);
    }

    #[test]
    fn exponential_mean() {
        let mut r = rng();
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| exponential(&mut r, 5.0)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert_eq!(exponential(&mut r, 0.0), 0.0);
    }

    #[test]
    fn chance_edge_cases_and_rate() {
        let mut r = rng();
        assert!(!chance(&mut r, 0.0));
        assert!(chance(&mut r, 1.0));
        let hits = (0..100_000).filter(|_| chance(&mut r, 0.25)).count();
        assert!((24_000..26_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = rng();
        let mut b = rng();
        for _ in 0..100 {
            assert_eq!(std_normal(&mut a).to_bits(), std_normal(&mut b).to_bits());
        }
    }
}
