//! Discrete-event data-center network simulator for Pingmesh.
//!
//! The paper measured a production network; this crate is the substitute
//! substrate (DESIGN.md, substitution 1). It models exactly the statistics
//! Pingmesh consumes — per-probe RTT and success/failure — with enough
//! mechanistic fidelity that every analysis in the paper works unchanged:
//!
//! * **Latency** ([`latency`]): per-direction host-stack cost, per-switch
//!   forwarding plus load-dependent queuing delay, rare long host hiccups
//!   (the source of the paper's multi-hundred-ms P99.99), payload
//!   transmission and user-space echo costs, and inter-DC propagation.
//! * **TCP connect semantics** ([`net`]): a dropped SYN is retransmitted
//!   after 3 s, then 6 s more; a probe whose first SYN died therefore
//!   *succeeds with RTT ≈ 3 s* — the signature the paper's drop-rate
//!   heuristic (§4.2) decodes. Retransmitted SYNs reuse the five-tuple and
//!   thus the ECMP path, so deterministic black-holes kill whole
//!   connections.
//! * **Faults** ([`faults`]): packet black-holes keyed on address pairs
//!   (TCAM corruption) or on full five-tuples (ECMP-related), silent
//!   random drops invisible to switch counters, FCS-style payload-length-
//!   dependent corruption, congestion drops (visible), switch reloads,
//!   podset power-downs, and switch isolation honored by ECMP re-routing.
//! * **Traceroute** ([`traceroute`]): the TCP-traceroute companion tool
//!   used in §5.2 to localize a silently-dropping Spine switch.
//! * **A generic discrete-event engine** ([`engine`]) shared by the
//!   orchestrator to interleave agents, jobs, faults and repairs on one
//!   virtual clock.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod engine;
pub mod faults;
pub mod latency;
pub mod net;
pub mod rng;
pub mod traceroute;

pub use engine::EventQueue;
pub use faults::{ActiveFault, FaultKind, Faults, Verdict};
pub use latency::{DcProfile, LoadSchedule, TierDrops};
pub use net::{CounterDelta, NetState, ProbeAttempt, SimNet, SwitchCounters};
pub use traceroute::{tcp_traceroute, TracerouteReport};
