//! Latency and loss models, with per-DC workload profiles.
//!
//! RTT is composed exactly as §2.2 of the paper describes: "application
//! processing latency, OS kernel TCP/IP stack and driver processing
//! latency, NIC introduced latency, packet transmission delay, propagation
//! delay, and queuing delay introduced by packet buffering at the switches
//! along the path". We model, per direction:
//!
//! * one **host** sample (sender stack + receiver stack + NICs),
//!   lognormal around the profile's median — this dominates P50,
//! * per-**switch** forwarding cost plus a load-scaled lognormal queuing
//!   sample — this is why inter-pod P50 exceeds intra-pod P50 by only tens
//!   of microseconds (paper Fig. 4(c): "the network does introduce tens of
//!   microsecond latency due to queuing delay. But the queuing delay is
//!   small"),
//! * rare **hiccups** (OS scheduling, GC-like stalls): "it is hard to
//!   provide low latency at three or four 9s, even when the servers and
//!   network are both light-loaded ... because the server OS is not a
//!   real-time operating system". A minor-hiccup population shapes P99.9
//!   and a major-hiccup population shapes P99.99 (1397 ms for DC1!).
//!
//! Loss is per-device-traversal Bernoulli with per-tier probabilities
//! calibrated so that the *measured* (3 s + 9 s heuristic) drop rates land
//! on the paper's Table 1 for each of the five DC presets.

use crate::rng::{chance, exponential, lognormal_med};
use pingmesh_types::{SimDuration, SimTime, SwitchTier};
use rand::rngs::SmallRng;
use serde::{Deserialize, Serialize};

/// Time-varying load multiplier applied to queuing delay (and congestion-
/// induced loss, if a scenario adds any).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LoadSchedule {
    /// Constant multiplier.
    Constant(f64),
    /// Square wave: `high` for the first `duty` fraction of every
    /// `period`, `low` otherwise. Models the periodic high-throughput data
    /// sync visible in the paper's Figure 5(a).
    Periodic {
        /// Cycle length.
        period: SimDuration,
        /// Fraction of the period spent at the high level (0..1).
        duty: f64,
        /// Multiplier during the high phase.
        high: f64,
        /// Multiplier during the low phase.
        low: f64,
    },
}

impl LoadSchedule {
    /// Multiplier at time `t`.
    pub fn factor(&self, t: SimTime) -> f64 {
        match *self {
            LoadSchedule::Constant(k) => k,
            LoadSchedule::Periodic {
                period,
                duty,
                high,
                low,
            } => {
                if period.as_micros() == 0 {
                    return low;
                }
                let phase = (t.as_micros() % period.as_micros()) as f64 / period.as_micros() as f64;
                if phase < duty.clamp(0.0, 1.0) {
                    high
                } else {
                    low
                }
            }
        }
    }
}

/// Per-tier, per-traversal packet drop probabilities under normal
/// conditions (excluding injected faults). `host` applies once per packet
/// per endpoint (NIC + stack of the sender or receiver).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TierDrops {
    /// Per-endpoint host/NIC drop probability.
    pub host: f64,
    /// Per-ToR-traversal drop probability.
    pub tor: f64,
    /// Per-Leaf-traversal drop probability.
    pub leaf: f64,
    /// Per-Spine-traversal drop probability.
    pub spine: f64,
    /// Per-border-router-traversal drop probability.
    pub border: f64,
}

impl TierDrops {
    /// A loss-free fabric (useful in latency-only tests).
    pub const NONE: TierDrops = TierDrops {
        host: 0.0,
        tor: 0.0,
        leaf: 0.0,
        spine: 0.0,
        border: 0.0,
    };

    /// Drop probability for one traversal of a switch at `tier`.
    pub fn for_tier(&self, tier: SwitchTier) -> f64 {
        match tier {
            SwitchTier::Tor => self.tor,
            SwitchTier::Leaf => self.leaf,
            SwitchTier::Spine => self.spine,
            SwitchTier::Border => self.border,
        }
    }
}

/// Latency/loss profile of one data center.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DcProfile {
    /// Profile name (for reports).
    pub name: String,
    /// Median of the per-direction host cost (sender + receiver stack), µs.
    pub host_median_us: f64,
    /// Lognormal shape of the host cost.
    pub host_sigma: f64,
    /// Fixed forwarding cost per switch traversal, µs.
    pub switch_base_us: f64,
    /// Median queuing delay per switch traversal at load factor 1.0, µs.
    pub queue_median_us: f64,
    /// Lognormal shape of the queuing delay.
    pub queue_sigma: f64,
    /// Base utilization of the fabric; multiplies queue medians.
    pub utilization: f64,
    /// Time-varying load on top of `utilization`.
    pub load: LoadSchedule,
    /// Probability a probe hits a minor host hiccup (shapes P99.9).
    pub hiccup_minor_prob: f64,
    /// Mean of the minor hiccup, µs (exponential).
    pub hiccup_minor_mean_us: f64,
    /// Probability a probe hits a major host hiccup (shapes P99.99).
    pub hiccup_major_prob: f64,
    /// Mean of the major hiccup, µs (exponential).
    pub hiccup_major_mean_us: f64,
    /// Hard cap on a single probe's total hiccup, µs. Real OS stalls are
    /// bounded; more importantly the cap keeps honest-latency samples out
    /// of the ≈3 s SYN-retry band the drop-rate heuristic decodes, just
    /// as production hiccups stayed well below 1.6 s at the quantiles the
    /// paper reports.
    pub hiccup_cap_us: f64,
    /// Link speed used for payload transmission delay, Gbit/s.
    pub link_gbps: f64,
    /// Median user-space cost for the peer to echo a payload, µs.
    pub echo_median_us: f64,
    /// Lognormal shape of the echo cost.
    pub echo_sigma: f64,
    /// Queuing-delay multiplier seen by low-priority (DSCP-scavenger)
    /// traffic: switches serve the low-priority queue only after the
    /// high-priority one, so its queuing delay scales up under load
    /// (§6.2 QoS monitoring exists to watch exactly this gap).
    pub qos_low_queue_factor: f64,
    /// Normal-condition loss rates.
    pub drops: TierDrops,
    /// Probability that a SYN retransmission is dropped *given* the
    /// previous attempt was randomly dropped — loss is bursty, which is
    /// why the paper counts a 9 s connect as a single drop event.
    pub burst_correlation: f64,
}

impl DcProfile {
    /// DC1 (US West) of the paper: throughput-intensive (distributed
    /// storage + MapReduce), ~90 % CPU, heavy sustained traffic. Largest
    /// hiccup tail: P99.9 ≈ 23 ms, P99.99 ≈ 1.4 s inter-pod.
    pub fn us_west() -> Self {
        Self {
            name: "DC1 (US West)".into(),
            host_median_us: 90.0,
            host_sigma: 0.74,
            switch_base_us: 1.0,
            queue_median_us: 4.0,
            queue_sigma: 1.0,
            utilization: 0.9,
            load: LoadSchedule::Constant(1.0),
            hiccup_minor_prob: 8.0e-3,
            hiccup_minor_mean_us: 8_500.0,
            hiccup_major_prob: 1.6e-4,
            hiccup_major_mean_us: 3_000_000.0,
            hiccup_cap_us: 1_400_000.0,
            link_gbps: 10.0,
            echo_median_us: 45.0,
            echo_sigma: 1.5,
            qos_low_queue_factor: 3.0,
            drops: TierDrops {
                host: 2.0e-6,
                tor: 2.55e-6,
                leaf: 1.0e-5,
                spine: 8.65e-6,
                border: 5.0e-6,
            },
            burst_correlation: 0.25,
        }
    }

    /// DC2 (US Central): latency-sensitive interactive Search; moderate
    /// CPU, low average throughput but bursty. Tail: P99.9 ≈ 11 ms,
    /// P99.99 ≈ 106 ms inter-pod.
    pub fn us_central() -> Self {
        Self {
            name: "DC2 (US Central)".into(),
            host_median_us: 90.0,
            host_sigma: 0.70,
            switch_base_us: 1.0,
            queue_median_us: 3.0,
            queue_sigma: 1.1, // bursty
            utilization: 0.4,
            load: LoadSchedule::Constant(1.0),
            hiccup_minor_prob: 6.0e-3,
            hiccup_minor_mean_us: 4_500.0,
            hiccup_major_prob: 1.4e-4,
            hiccup_major_mean_us: 60_000.0,
            hiccup_cap_us: 1_400_000.0,
            link_gbps: 10.0,
            echo_median_us: 45.0,
            echo_sigma: 1.3,
            qos_low_queue_factor: 3.0,
            drops: TierDrops {
                host: 3.0e-6,
                tor: 4.5e-6,
                leaf: 8.0e-6,
                spine: 7.15e-6,
                border: 5.0e-6,
            },
            burst_correlation: 0.25,
        }
    }

    /// DC3 (US East) of Table 1.
    pub fn us_east() -> Self {
        Self {
            name: "DC3 (US East)".into(),
            drops: TierDrops {
                host: 1.5e-6,
                tor: 1.79e-6,
                leaf: 4.5e-6,
                spine: 4.42e-6,
                border: 4.0e-6,
            },
            ..Self::us_central()
        }
    }

    /// DC4 (Europe) of Table 1.
    pub fn europe() -> Self {
        Self {
            name: "DC4 (Europe)".into(),
            drops: TierDrops {
                host: 2.5e-6,
                tor: 2.6e-6,
                leaf: 5.5e-6,
                spine: 5.4e-6,
                border: 4.0e-6,
            },
            ..Self::us_central()
        }
    }

    /// DC5 (Asia) of Table 1 — the cleanest fabric.
    pub fn asia() -> Self {
        Self {
            name: "DC5 (Asia)".into(),
            drops: TierDrops {
                host: 1.5e-6,
                tor: 1.91e-6,
                leaf: 3.0e-7,
                spine: 2.8e-7,
                border: 2.0e-7,
            },
            ..Self::us_central()
        }
    }

    /// A loss-free, hiccup-free profile for deterministic unit tests.
    pub fn ideal() -> Self {
        Self {
            name: "ideal".into(),
            host_median_us: 100.0,
            host_sigma: 0.0,
            switch_base_us: 1.0,
            queue_median_us: 4.0,
            queue_sigma: 0.0,
            utilization: 1.0,
            load: LoadSchedule::Constant(1.0),
            hiccup_minor_prob: 0.0,
            hiccup_minor_mean_us: 0.0,
            hiccup_major_prob: 0.0,
            hiccup_major_mean_us: 0.0,
            hiccup_cap_us: 0.0,
            link_gbps: 10.0,
            qos_low_queue_factor: 1.0,
            echo_median_us: 40.0,
            echo_sigma: 0.0,
            drops: TierDrops::NONE,
            burst_correlation: 0.0,
        }
    }

    /// The five Table-1 presets in paper order.
    pub fn table1_presets() -> Vec<DcProfile> {
        vec![
            Self::us_west(),
            Self::us_central(),
            Self::us_east(),
            Self::europe(),
            Self::asia(),
        ]
    }

    /// One host-direction latency sample (sender stack + receiver stack).
    pub fn sample_host_us(&self, rng: &mut SmallRng) -> f64 {
        lognormal_med(rng, self.host_median_us, self.host_sigma)
    }

    /// One switch-traversal latency sample at time `t` (high priority).
    pub fn sample_switch_us(&self, rng: &mut SmallRng, t: SimTime) -> f64 {
        self.sample_switch_us_qos(rng, t, pingmesh_types::QosClass::High)
    }

    /// One switch-traversal latency sample at time `t` for a QoS class:
    /// low-priority packets queue behind high-priority ones.
    pub fn sample_switch_us_qos(
        &self,
        rng: &mut SmallRng,
        t: SimTime,
        qos: pingmesh_types::QosClass,
    ) -> f64 {
        let mut load = self.utilization * self.load.factor(t);
        if qos == pingmesh_types::QosClass::Low {
            load *= self.qos_low_queue_factor.max(1.0);
        }
        self.switch_base_us + lognormal_med(rng, self.queue_median_us * load, self.queue_sigma)
    }

    /// Host hiccup contribution for one probe (usually zero).
    pub fn sample_hiccup_us(&self, rng: &mut SmallRng) -> f64 {
        let mut extra = 0.0;
        if chance(rng, self.hiccup_minor_prob) {
            extra += exponential(rng, self.hiccup_minor_mean_us);
        }
        if chance(rng, self.hiccup_major_prob) {
            extra += exponential(rng, self.hiccup_major_mean_us);
        }
        extra.min(self.hiccup_cap_us)
    }

    /// Per-hop serialization delay of `bytes` at the profile link speed.
    pub fn tx_delay_us(&self, bytes: u32) -> f64 {
        (bytes as f64 * 8.0) / (self.link_gbps * 1_000.0)
    }

    /// User-space echo processing sample.
    pub fn sample_echo_us(&self, rng: &mut SmallRng) -> f64 {
        lognormal_med(rng, self.echo_median_us, self.echo_sigma)
    }
}

/// One-way inter-DC propagation delays. Symmetric matrix, µs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InterDcMatrix {
    n: usize,
    one_way_us: Vec<u64>,
}

impl InterDcMatrix {
    /// Builds a matrix with a uniform default one-way delay between any
    /// two distinct DCs.
    pub fn uniform(n: usize, one_way: SimDuration) -> Self {
        let mut m = Self {
            n,
            one_way_us: vec![0; n * n],
        };
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    m.one_way_us[i * n + j] = one_way.as_micros();
                }
            }
        }
        m
    }

    /// Sets the one-way delay of a DC pair (both directions).
    pub fn set(&mut self, a: usize, b: usize, one_way: SimDuration) {
        self.one_way_us[a * self.n + b] = one_way.as_micros();
        self.one_way_us[b * self.n + a] = one_way.as_micros();
    }

    /// One-way delay between two DCs.
    pub fn one_way(&self, a: usize, b: usize) -> SimDuration {
        SimDuration::from_micros(self.one_way_us[a * self.n + b])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn load_schedule_periodic() {
        let s = LoadSchedule::Periodic {
            period: SimDuration::from_secs(100),
            duty: 0.25,
            high: 4.0,
            low: 1.0,
        };
        assert_eq!(s.factor(SimTime(0)), 4.0);
        assert_eq!(s.factor(SimTime(24_999_999)), 4.0);
        assert_eq!(s.factor(SimTime(25_000_000)), 1.0);
        assert_eq!(s.factor(SimTime(99_000_000)), 1.0);
        // Next cycle.
        assert_eq!(s.factor(SimTime(100_000_000)), 4.0);
        assert_eq!(LoadSchedule::Constant(2.5).factor(SimTime(7)), 2.5);
    }

    #[test]
    fn tier_drops_lookup() {
        let d = DcProfile::us_west().drops;
        assert_eq!(d.for_tier(SwitchTier::Tor), d.tor);
        assert_eq!(d.for_tier(SwitchTier::Leaf), d.leaf);
        assert_eq!(d.for_tier(SwitchTier::Spine), d.spine);
        assert_eq!(d.for_tier(SwitchTier::Border), d.border);
    }

    #[test]
    fn table1_presets_calibration_intra_pod() {
        // Measured intra-pod drop rate ≈ 2*(2*host + tor); check each
        // preset reproduces its Table 1 column to within 3 %.
        let expect = [1.31e-5, 2.10e-5, 9.58e-6, 1.52e-5, 9.82e-6];
        for (p, e) in DcProfile::table1_presets().iter().zip(expect) {
            let rate = 2.0 * (2.0 * p.drops.host + p.drops.tor);
            assert!(
                (rate - e).abs() / e < 0.03,
                "{}: analytic {rate:e} vs paper {e:e}",
                p.name
            );
        }
    }

    #[test]
    fn table1_presets_calibration_inter_pod() {
        // Inter-pod crosses ToR×2, Leaf×2, Spine×1 per direction.
        let expect = [7.55e-5, 7.63e-5, 4.00e-5, 5.32e-5, 1.54e-5];
        for (p, e) in DcProfile::table1_presets().iter().zip(expect) {
            let d = p.drops;
            let rate = 2.0 * (2.0 * d.host + 2.0 * d.tor + 2.0 * d.leaf + d.spine);
            assert!(
                (rate - e).abs() / e < 0.03,
                "{}: analytic {rate:e} vs paper {e:e}",
                p.name
            );
        }
    }

    #[test]
    fn ideal_profile_is_deterministic() {
        let p = DcProfile::ideal();
        let mut rng = SmallRng::seed_from_u64(1);
        assert!((p.sample_host_us(&mut rng) - 100.0).abs() < 1e-9);
        assert!((p.sample_switch_us(&mut rng, SimTime(0)) - 5.0).abs() < 1e-9);
        assert_eq!(p.sample_hiccup_us(&mut rng), 0.0);
        assert!((p.sample_echo_us(&mut rng) - 40.0).abs() < 1e-9);
    }

    #[test]
    fn tx_delay_scales_with_size() {
        let p = DcProfile::ideal();
        assert!((p.tx_delay_us(1_000) - 0.8).abs() < 1e-9);
        assert_eq!(p.tx_delay_us(0), 0.0);
    }

    #[test]
    fn interdc_matrix() {
        let mut m = InterDcMatrix::uniform(3, SimDuration::from_millis(20));
        assert_eq!(m.one_way(0, 1).as_micros(), 20_000);
        assert_eq!(m.one_way(1, 1).as_micros(), 0);
        m.set(0, 2, SimDuration::from_millis(70));
        assert_eq!(m.one_way(2, 0).as_micros(), 70_000);
        assert_eq!(m.one_way(0, 2).as_micros(), 70_000);
    }

    #[test]
    fn hiccup_probability_is_respected() {
        let p = DcProfile::us_west();
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 2_000_000;
        let hits = (0..n)
            .filter(|_| p.sample_hiccup_us(&mut rng) > 0.0)
            .count();
        let rate = hits as f64 / n as f64;
        let expect = p.hiccup_minor_prob + p.hiccup_major_prob;
        assert!(
            (rate - expect).abs() / expect < 0.15,
            "rate {rate} vs {expect}"
        );
    }
}
