//! The simulated network: probe execution with TCP connect semantics.
//!
//! [`SimNet`] owns the topology, per-DC latency profiles, the fault state
//! and per-switch counters, and executes probes:
//!
//! 1. Resolve the destination (physical server or VIP → DIP).
//! 2. Resolve forward and reverse ECMP paths (isolated switches excluded,
//!    modelling the routing update after isolation).
//! 3. Run the TCP three-way handshake: each SYN attempt sends a packet
//!    down the forward path and, if it survives, a SYN-ACK down the
//!    reverse path. A lost attempt costs the TCP initial timeout (3 s,
//!    doubling), and the retransmitted SYN reuses the same five-tuple —
//!    same path, so deterministic black-holes fail the whole connect.
//! 4. For payload probes, exchange the payload and its echo with data
//!    retransmission timeouts on loss.
//!
//! The outcome is exactly what a Pingmesh agent would observe: an RTT
//! (possibly ≈3 s / ≈9 s) or a timeout.
//!
//! ## Shared state vs. run state
//!
//! The probe logic itself lives on [`NetState`] — topology, profiles,
//! VIPs and faults — and is pure given an RNG and a counter sink. The
//! sharded engine borrows one `NetState` immutably from every shard
//! thread and executes probes through [`NetState::probe_keyed`], which
//! derives a counter-based RNG from `(run seed, five-tuple, time)` so a
//! probe's outcome depends only on *what* was probed and *when* — never
//! on how many probes other shards ran first. Per-shard switch-counter
//! deltas merge back into the [`SimNet`] at tick barriers
//! ([`SimNet::merge_counters`]); the sums are commutative, so the merged
//! state is bit-identical at any shard count.
//!
//! [`SimNet::probe_qos`] keeps the original sequential-stream RNG for
//! direct (single-threaded) use: unit tests, traceroutes, experiments.

use crate::faults::{Faults, Verdict};
use crate::latency::{DcProfile, InterDcMatrix};
use crate::rng::chance;
use pingmesh_topology::{Path, Router, Topology, VipTable};
use pingmesh_types::constants::{TCP_SYN_RETRIES, TCP_SYN_TIMEOUT};
use pingmesh_types::{
    DcId, DeviceId, FiveTuple, ProbeKind, ProbeOutcome, QosClass, ServerId, SimDuration, SimTime,
    SwitchId,
};
use rand::rngs::SmallRng;
use rand::{Rng as _, SeedableRng};
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// Data-packet retransmission timeout (initial) for payload exchanges.
const DATA_RTO: SimDuration = SimDuration::from_millis(300);
/// Data retransmission attempts before the payload exchange is abandoned.
const DATA_RETRIES: u32 = 5;

/// SNMP-visible view of one switch, plus ground truth for verification.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SwitchCounters {
    /// Packets forwarded.
    pub forwarded: u64,
    /// Discards the switch *admits to* (congestion, down). This is what
    /// the paper's operators could read from SNMP.
    pub visible_discards: u64,
    /// Ground truth: silent drops (black-holes, silent random, FCS). Real
    /// SNMP has no such counter — "A switch may drop packets even though
    /// its SNMP tells us everything is fine" (§6). Tests use this field;
    /// detection code must not.
    pub silent_discards_ground_truth: u64,
}

impl SwitchCounters {
    /// Folds another counter set in (all fields are sums, so merging
    /// per-shard deltas in any order yields the same totals).
    pub fn merge(&mut self, other: &SwitchCounters) {
        self.forwarded += other.forwarded;
        self.visible_discards += other.visible_discards;
        self.silent_discards_ground_truth += other.silent_discards_ground_truth;
    }
}

/// Result of one probe execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeAttempt {
    /// The physical server that answered (VIP targets resolve to a DIP);
    /// `None` when the target address is unknown.
    pub dst: Option<ServerId>,
    /// What the probing client observed.
    pub outcome: ProbeOutcome,
}

/// Per-switch counter deltas accumulated by one shard during one epoch.
pub type CounterDelta = HashMap<SwitchId, SwitchCounters>;

/// The immutable-during-an-epoch part of the network: topology, latency
/// profiles, VIPs and the fault timeline. Shard threads borrow this
/// concurrently; everything mutable per probe (RNG, counters) is passed
/// in explicitly.
pub struct NetState {
    topo: Arc<Topology>,
    profiles: Vec<DcProfile>,
    interdc: InterDcMatrix,
    vips: VipTable,
    faults: Faults,
}

fn mix64(mut z: u64) -> u64 {
    // splitmix64 finalizer: full-avalanche, cheap, and stable.
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl NetState {
    /// The topology.
    pub fn topology(&self) -> &Arc<Topology> {
        &self.topo
    }

    /// Profile of a DC.
    pub fn profile(&self, dc: DcId) -> &DcProfile {
        &self.profiles[dc.index()]
    }

    /// Fault state (read).
    pub fn faults(&self) -> &Faults {
        &self.faults
    }

    /// VIP table (read).
    pub fn vips(&self) -> &VipTable {
        &self.vips
    }

    /// Whether a server is powered and its agent able to probe/respond.
    pub fn server_is_up(&self, s: ServerId, t: SimTime) -> bool {
        let podset = self.topo.server(s).podset;
        self.faults.server_is_up(s, podset, t) && !self.faults.podset_is_down(podset, t)
    }

    /// Resolves a destination address to a physical server: direct server
    /// IP, or VIP dispatched to a DIP by five-tuple hash. A VIP whose DIP
    /// set has been drained to nothing resolves to no target — the probe
    /// times out like any unreachable destination — instead of panicking
    /// the data plane; the condition is counted so operators can see it.
    pub fn resolve_target(&self, ip: Ipv4Addr, tuple: &FiveTuple) -> Option<ServerId> {
        if let Some(s) = self.topo.server_by_ip(ip) {
            return Some(s);
        }
        match self.vips.dispatch(ip, tuple) {
            Ok(target) => target,
            Err(pingmesh_topology::VipDispatchError::EmptyDipSet(_)) => {
                pingmesh_obs::registry()
                    .counter("pingmesh_netsim_vip_empty_dip_total")
                    .inc();
                None
            }
        }
    }

    fn resolve_path(&self, src: ServerId, dst: ServerId, tuple: &FiveTuple) -> Path {
        let router = Router::new(&self.topo);
        let faults = &self.faults;
        router.resolve_excluding(src, dst, tuple, &|sw| faults.is_isolated(sw))
    }

    /// The smallest latency any cross-podset probe can observe under the
    /// installed profiles: the fixed forwarding cost of the minimum
    /// intra-DC switch path (ToR → leaf → spine → leaf → ToR forward and
    /// back, 10 traversals; the lognormal host and queue terms can get
    /// arbitrarily close to zero, so only the fixed part is a true bound).
    /// This is the conservative-time lookahead of the sharded engine: no
    /// probe launched after a barrier can be observed by another podset
    /// sooner than this.
    pub fn min_cross_podset_latency(&self) -> SimDuration {
        let us = self
            .profiles
            .iter()
            .map(|p| 10.0 * p.switch_base_us)
            .fold(f64::INFINITY, f64::min);
        SimDuration::from_micros(us.max(1.0) as u64)
    }

    /// Sends one packet with five-tuple `tuple` along `path`; returns
    /// `true` if it survives every hop. Updates switch counters: visible
    /// discards for attributable drops, the ground-truth silent counter
    /// for silent ones.
    fn packet_survives_tuple(
        &self,
        rng: &mut SmallRng,
        counters: &mut CounterDelta,
        path: &Path,
        tuple: &FiveTuple,
        payload_bytes: u32,
        t: SimTime,
    ) -> bool {
        let (src_dc, dst_dc) = self.path_endpoints_dcs(path);
        let p_host_src = self.profiles[src_dc.index()].drops.host;
        let p_host_dst = self.profiles[dst_dc.index()].drops.host;
        if chance(rng, p_host_src) || chance(rng, p_host_dst) {
            return false;
        }
        for sw in path.switches() {
            if let Some(v) = self.faults.deterministic_verdict(sw, tuple, t) {
                match v {
                    Verdict::DropVisible => counters.entry(sw).or_default().visible_discards += 1,
                    _ => counters.entry(sw).or_default().silent_discards_ground_truth += 1,
                }
                return false;
            }
            let dc = self.topo.dc_of_switch(sw).expect("switch has a DC");
            let base = self.profiles[dc.index()].drops.for_tier(sw.tier);
            let (silent, visible) = self.faults.random_drop_probs(sw, payload_bytes, t);
            if chance(rng, base + silent) {
                counters.entry(sw).or_default().silent_discards_ground_truth += 1;
                return false;
            }
            if chance(rng, visible) {
                counters.entry(sw).or_default().visible_discards += 1;
                return false;
            }
            counters.entry(sw).or_default().forwarded += 1;
        }
        true
    }

    fn path_endpoints_dcs(&self, path: &Path) -> (DcId, DcId) {
        let dc_of = |d: &DeviceId| match d {
            DeviceId::Server(s) => self.topo.server(*s).dc,
            DeviceId::Switch(sw) => self.topo.dc_of_switch(*sw).expect("switch has a DC"),
        };
        let first = path.hops.first().map(&dc_of).unwrap_or(DcId(0));
        let last = path.hops.last().map(&dc_of).unwrap_or(first);
        (first, last)
    }

    /// Samples one round-trip path latency (no payload): host cost in each
    /// direction, switch traversals of both paths, inter-DC propagation,
    /// and host hiccups.
    fn sample_rtt(
        &self,
        rng: &mut SmallRng,
        fwd: &Path,
        rev: &Path,
        t: SimTime,
        qos: QosClass,
    ) -> f64 {
        let (src_dc, dst_dc) = self.path_endpoints_dcs(fwd);
        let mut us = 0.0;
        // Host cost per direction, attributed to the sending DC's profile
        // (the pair sender-stack + receiver-stack).
        let src_profile = &self.profiles[src_dc.index()];
        let dst_profile = &self.profiles[dst_dc.index()];
        us += src_profile.sample_host_us(rng);
        us += dst_profile.sample_host_us(rng);
        for path in [fwd, rev] {
            for sw in path.switches() {
                let dc = self.topo.dc_of_switch(sw).expect("switch has a DC");
                us += self.profiles[dc.index()].sample_switch_us_qos(rng, t, qos);
            }
        }
        if src_dc != dst_dc {
            us += 2.0
                * self
                    .interdc
                    .one_way(src_dc.index(), dst_dc.index())
                    .as_micros() as f64;
        }
        // One hiccup draw per probe, on the busier (source) host profile.
        us += src_profile.sample_hiccup_us(rng);
        us
    }

    /// A counter-based RNG keyed on `(seed, five-tuple, launch time)`.
    /// Every draw a probe makes comes from this stream, so its outcome is
    /// a pure function of what was probed and when — independent of probe
    /// ordering, shard assignment, and shard count.
    pub fn keyed_rng(seed: u64, tuple: &FiveTuple, t: SimTime) -> SmallRng {
        let mut h = seed ^ 0x9e37_79b9_7f4a_7c15;
        h = mix64(h ^ u64::from(u32::from(tuple.src_ip)));
        h = mix64(h ^ u64::from(u32::from(tuple.dst_ip)));
        h = mix64(h ^ (u64::from(tuple.src_port) << 16 | u64::from(tuple.dst_port)));
        h = mix64(h ^ t.0);
        SmallRng::seed_from_u64(h)
    }

    /// Executes one probe with a per-probe keyed RNG (see
    /// [`NetState::keyed_rng`]), recording switch-counter deltas into
    /// `counters`. This is the probe path of the sharded engine: `&self`,
    /// so any number of shard threads can run probes concurrently against
    /// the same network state.
    #[allow(clippy::too_many_arguments)]
    pub fn probe_keyed(
        &self,
        seed: u64,
        counters: &mut CounterDelta,
        src: ServerId,
        target_ip: Ipv4Addr,
        src_port: u16,
        dst_port: u16,
        kind: ProbeKind,
        qos: QosClass,
        t: SimTime,
    ) -> ProbeAttempt {
        let tuple = FiveTuple::tcp(self.topo.ip_of(src), src_port, target_ip, dst_port);
        let mut rng = Self::keyed_rng(seed, &tuple, t);
        self.probe_with(
            &mut rng, counters, src, target_ip, src_port, dst_port, kind, qos, t,
        )
    }

    /// Executes one probe drawing from the caller's RNG. The probe logic
    /// shared by the sequential stream path ([`SimNet::probe_qos`]) and
    /// the keyed shard path ([`NetState::probe_keyed`]).
    #[allow(clippy::too_many_arguments)]
    pub fn probe_with(
        &self,
        rng: &mut SmallRng,
        counters: &mut CounterDelta,
        src: ServerId,
        target_ip: Ipv4Addr,
        src_port: u16,
        dst_port: u16,
        kind: ProbeKind,
        qos: QosClass,
        t: SimTime,
    ) -> ProbeAttempt {
        let tuple = FiveTuple::tcp(self.topo.ip_of(src), src_port, target_ip, dst_port);
        let Some(dst) = self.resolve_target(target_ip, &tuple) else {
            return ProbeAttempt {
                dst: None,
                outcome: ProbeOutcome::Timeout,
            };
        };
        if src == dst {
            // Self-probe: loopback, host stack only.
            let dc = self.topo.server(src).dc;
            let rtt = self.profiles[dc.index()].sample_host_us(rng);
            return ProbeAttempt {
                dst: Some(dst),
                outcome: ProbeOutcome::Success {
                    rtt: SimDuration::from_micros(rtt as u64),
                },
            };
        }

        let fwd = self.resolve_path(src, dst, &tuple);
        let rev = self.resolve_path(dst, src, &tuple.reversed());
        let dst_up = self.server_is_up(dst, t);

        // --- TCP connect: SYN attempts with 3s / 6s timeouts. ---
        let mut wait = SimDuration::ZERO;
        let mut timeout = TCP_SYN_TIMEOUT;
        let mut connected = false;
        let mut prev_attempt_randomly_dropped = false;
        let burst_corr = {
            let dc = self.topo.server(src).dc;
            self.profiles[dc.index()].burst_correlation
        };
        for _attempt in 0..=TCP_SYN_RETRIES {
            // Burst correlation: after a random loss, the retry is more
            // likely to be lost too (paper §4.2's justification for
            // counting a 9 s connect as one drop).
            let burst_kill = prev_attempt_randomly_dropped && chance(rng, burst_corr);
            let syn_ok = !burst_kill
                && dst_up
                && self.packet_survives_tuple(rng, counters, &fwd, &tuple, 0, t + wait);
            let synack_ok = syn_ok
                && self.packet_survives_tuple(rng, counters, &rev, &tuple.reversed(), 0, t + wait);
            if syn_ok && synack_ok {
                connected = true;
                break;
            }
            prev_attempt_randomly_dropped = true;
            wait += timeout;
            timeout = SimDuration::from_micros(timeout.as_micros() * 2);
        }
        if !connected {
            return ProbeAttempt {
                dst: Some(dst),
                outcome: ProbeOutcome::Timeout,
            };
        }

        let mut rtt_us = self.sample_rtt(rng, &fwd, &rev, t, qos) + wait.as_micros() as f64;

        // --- Optional payload exchange. ---
        let payload = kind.payload_bytes();
        if payload > 0 {
            let (src_dc, dst_dc) = (self.topo.server(src).dc, self.topo.server(dst).dc);
            // Serialization cost per traversed link, both directions.
            let hops = (fwd.link_count() + rev.link_count()) as f64;
            let per_hop = self.profiles[src_dc.index()].tx_delay_us(payload);
            rtt_us += hops * per_hop;
            // Peer user-space echo processing.
            rtt_us += self.profiles[dst_dc.index()].sample_echo_us(rng);
            // Data / echo packets can be lost; TCP retransmits with RTO.
            let mut rto = DATA_RTO;
            let mut delivered = false;
            for _ in 0..=DATA_RETRIES {
                let data_ok = self.packet_survives_tuple(rng, counters, &fwd, &tuple, payload, t);
                let echo_ok = data_ok
                    && self.packet_survives_tuple(
                        rng,
                        counters,
                        &rev,
                        &tuple.reversed(),
                        payload,
                        t,
                    );
                if data_ok && echo_ok {
                    delivered = true;
                    break;
                }
                rtt_us += rto.as_micros() as f64;
                rto = SimDuration::from_micros(rto.as_micros() * 2);
            }
            if !delivered {
                return ProbeAttempt {
                    dst: Some(dst),
                    outcome: ProbeOutcome::Timeout,
                };
            }
        }

        ProbeAttempt {
            dst: Some(dst),
            outcome: ProbeOutcome::Success {
                rtt: SimDuration::from_micros(rtt_us.max(1.0) as u64),
            },
        }
    }
}

/// The simulated data-center network.
pub struct SimNet {
    state: NetState,
    counters: CounterDelta,
    rng: SmallRng,
    seed: u64,
    // Cached metric handles: probe_qos is the hot path, so per-probe
    // observability cost must stay at a couple of atomic adds.
    probes_ctr: Arc<pingmesh_obs::Counter>,
    timeouts_ctr: Arc<pingmesh_obs::Counter>,
    rtt_hist: Arc<pingmesh_obs::Histogram>,
}

impl SimNet {
    /// Creates a network over `topo` with one profile per DC (the profile
    /// list is cycled if shorter than the DC count).
    pub fn new(topo: Arc<Topology>, profiles: Vec<DcProfile>, seed: u64) -> Self {
        assert!(!profiles.is_empty(), "need at least one DC profile");
        let n = topo.dc_count();
        let profiles: Vec<DcProfile> = (0..n)
            .map(|i| profiles[i % profiles.len()].clone())
            .collect();
        let interdc = InterDcMatrix::uniform(n, SimDuration::from_millis(30));
        Self {
            state: NetState {
                topo,
                profiles,
                interdc,
                vips: VipTable::new(),
                faults: Faults::new(),
            },
            counters: HashMap::new(),
            rng: SmallRng::seed_from_u64(seed),
            seed,
            probes_ctr: pingmesh_obs::registry().counter("pingmesh_netsim_probes_total"),
            timeouts_ctr: pingmesh_obs::registry().counter("pingmesh_netsim_probe_timeouts_total"),
            rtt_hist: pingmesh_obs::registry().histogram("pingmesh_netsim_probe_rtt_us"),
        }
    }

    /// The shared network state (what shard threads borrow to run probes).
    pub fn state(&self) -> &NetState {
        &self.state
    }

    /// The seed this network was created with — the key half of
    /// [`NetState::keyed_rng`].
    pub fn run_seed(&self) -> u64 {
        self.seed
    }

    /// The topology.
    pub fn topology(&self) -> &Arc<Topology> {
        &self.state.topo
    }

    /// Profile of a DC.
    pub fn profile(&self, dc: DcId) -> &DcProfile {
        self.state.profile(dc)
    }

    /// Mutable profile of a DC (for scenario tweaks).
    pub fn profile_mut(&mut self, dc: DcId) -> &mut DcProfile {
        &mut self.state.profiles[dc.index()]
    }

    /// Inter-DC delay matrix.
    pub fn interdc_mut(&mut self) -> &mut InterDcMatrix {
        &mut self.state.interdc
    }

    /// VIP table (read).
    pub fn vips(&self) -> &VipTable {
        &self.state.vips
    }

    /// VIP table (mutate).
    pub fn vips_mut(&mut self) -> &mut VipTable {
        &mut self.state.vips
    }

    /// Fault state (read).
    pub fn faults(&self) -> &Faults {
        &self.state.faults
    }

    /// Fault state (mutate).
    pub fn faults_mut(&mut self) -> &mut Faults {
        &mut self.state.faults
    }

    /// Counters of a switch (zeroed view if never touched).
    pub fn switch_counters(&self, sw: SwitchId) -> SwitchCounters {
        self.counters.get(&sw).copied().unwrap_or_default()
    }

    /// Folds a shard's per-epoch counter deltas into the authoritative
    /// counters. Addition commutes, so merge order (and hence shard
    /// count) never changes the totals.
    pub fn merge_counters(&mut self, delta: &CounterDelta) {
        for (sw, c) in delta {
            self.counters.entry(*sw).or_default().merge(c);
        }
    }

    /// Publishes probe metrics accumulated off-thread (shard epochs batch
    /// them instead of paying per-probe atomics): probe/timeout counts
    /// and, when observability is on, the successful RTT samples.
    pub fn flush_probe_metrics(&self, probes: u64, timeouts: u64, rtts: &[SimDuration]) {
        if probes > 0 {
            self.probes_ctr.add(probes);
        }
        if timeouts > 0 {
            self.timeouts_ctr.add(timeouts);
        }
        if pingmesh_obs::enabled() {
            for &rtt in rtts {
                self.rtt_hist.record(rtt);
            }
        }
    }

    /// Whether a server is powered and its agent able to probe/respond.
    pub fn server_is_up(&self, s: ServerId, t: SimTime) -> bool {
        self.state.server_is_up(s, t)
    }

    /// Resolves a destination address to a physical server: direct server
    /// IP, or VIP dispatched to a DIP by five-tuple hash.
    pub fn resolve_target(&self, ip: Ipv4Addr, tuple: &FiveTuple) -> Option<ServerId> {
        self.state.resolve_target(ip, tuple)
    }

    /// Executes one probe at virtual time `t`.
    ///
    /// `target_ip` may be a server IP or a VIP. The source port must be a
    /// fresh ephemeral port (the agent guarantees this).
    pub fn probe(
        &mut self,
        src: ServerId,
        target_ip: Ipv4Addr,
        src_port: u16,
        dst_port: u16,
        kind: ProbeKind,
        t: SimTime,
    ) -> ProbeAttempt {
        self.probe_qos(src, target_ip, src_port, dst_port, kind, QosClass::High, t)
    }

    /// Like [`SimNet::probe`] with an explicit QoS class: low-priority
    /// probes see the scavenger queue's inflated queuing delay.
    #[allow(clippy::too_many_arguments)]
    pub fn probe_qos(
        &mut self,
        src: ServerId,
        target_ip: Ipv4Addr,
        src_port: u16,
        dst_port: u16,
        kind: ProbeKind,
        qos: QosClass,
        t: SimTime,
    ) -> ProbeAttempt {
        self.probes_ctr.inc();
        let attempt = self.state.probe_with(
            &mut self.rng,
            &mut self.counters,
            src,
            target_ip,
            src_port,
            dst_port,
            kind,
            qos,
            t,
        );
        if matches!(attempt.outcome, ProbeOutcome::Timeout) {
            self.timeouts_ctr.inc();
        }
        // Histogram recording takes a mutex, so unlike the counters it is
        // gated on the observability switch.
        if pingmesh_obs::enabled() {
            if let ProbeOutcome::Success { rtt } = attempt.outcome {
                self.rtt_hist.record(rtt);
            }
        }
        attempt
    }

    /// Resolves the forward path a five-tuple takes from `src` to `dst`,
    /// honoring isolations. Public for the traceroute tool.
    pub fn path_of(&self, src: ServerId, dst: ServerId, tuple: &FiveTuple) -> Path {
        self.state.resolve_path(src, dst, tuple)
    }

    /// One switch-traversal survival check for the given packet — the
    /// primitive the simulated TCP traceroute uses. Does not bump the
    /// forwarded counter (traceroute volume is negligible), but silent /
    /// visible discards are recorded as ground truth.
    pub(crate) fn switch_passes(
        &mut self,
        sw: SwitchId,
        tuple: &FiveTuple,
        payload_bytes: u32,
        t: SimTime,
    ) -> bool {
        if let Some(v) = self.state.faults.deterministic_verdict(sw, tuple, t) {
            match v {
                Verdict::DropVisible => self.counters.entry(sw).or_default().visible_discards += 1,
                _ => {
                    self.counters
                        .entry(sw)
                        .or_default()
                        .silent_discards_ground_truth += 1
                }
            }
            return false;
        }
        let dc = self.state.topo.dc_of_switch(sw).expect("switch has a DC");
        let base = self.state.profiles[dc.index()].drops.for_tier(sw.tier);
        let (silent, visible) = self.state.faults.random_drop_probs(sw, payload_bytes, t);
        if chance(&mut self.rng, base + silent) {
            self.counters
                .entry(sw)
                .or_default()
                .silent_discards_ground_truth += 1;
            return false;
        }
        if chance(&mut self.rng, visible) {
            self.counters.entry(sw).or_default().visible_discards += 1;
            return false;
        }
        true
    }

    /// Deterministic sub-RNG for helpers that need isolated randomness.
    pub fn fork_rng(&mut self) -> SmallRng {
        SmallRng::seed_from_u64(self.rng.random::<u64>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{ActiveFault, FaultKind};
    use pingmesh_topology::{DcSpec, TopologySpec};
    use pingmesh_types::PodId;

    fn topo2() -> Arc<Topology> {
        Arc::new(
            Topology::build(TopologySpec {
                dcs: vec![DcSpec::tiny("west"), DcSpec::tiny("east")],
            })
            .unwrap(),
        )
    }

    fn net(profile: DcProfile) -> SimNet {
        SimNet::new(topo2(), vec![profile], 99)
    }

    fn pair_cross_podset(net: &SimNet) -> (ServerId, ServerId) {
        let t = net.topology();
        (
            t.servers_in_pod(PodId(0)).next().unwrap(),
            t.servers_in_pod(PodId(4)).next().unwrap(),
        )
    }

    #[test]
    fn ideal_probe_succeeds_with_sane_rtt() {
        let mut n = net(DcProfile::ideal());
        let (a, b) = pair_cross_podset(&n);
        let ip = n.topology().ip_of(b);
        let r = n.probe(a, ip, 40_000, 8_100, ProbeKind::TcpSyn, SimTime(0));
        assert_eq!(r.dst, Some(b));
        let rtt = r.outcome.rtt().unwrap().as_micros();
        // ideal: 2 * 100us host + 10 switch traversals * 5us = 250us.
        assert_eq!(rtt, 250);
    }

    #[test]
    fn payload_probe_costs_more_than_syn() {
        let mut n = net(DcProfile::ideal());
        let (a, b) = pair_cross_podset(&n);
        let ip = n.topology().ip_of(b);
        let syn = n
            .probe(a, ip, 40_000, 8_100, ProbeKind::TcpSyn, SimTime(0))
            .outcome
            .rtt()
            .unwrap();
        let pay = n
            .probe(
                a,
                ip,
                40_001,
                8_100,
                ProbeKind::TcpPayload(1_000),
                SimTime(0),
            )
            .outcome
            .rtt()
            .unwrap();
        assert!(pay > syn, "payload {pay} vs syn {syn}");
    }

    #[test]
    fn unknown_target_times_out() {
        let mut n = net(DcProfile::ideal());
        let a = ServerId(0);
        let r = n.probe(
            a,
            Ipv4Addr::new(192, 168, 1, 1),
            40_000,
            8_100,
            ProbeKind::TcpSyn,
            SimTime(0),
        );
        assert_eq!(r.dst, None);
        assert_eq!(r.outcome, ProbeOutcome::Timeout);
    }

    #[test]
    fn self_probe_is_loopback() {
        let mut n = net(DcProfile::ideal());
        let a = ServerId(3);
        let ip = n.topology().ip_of(a);
        let r = n.probe(a, ip, 40_000, 8_100, ProbeKind::TcpSyn, SimTime(0));
        assert_eq!(r.dst, Some(a));
        assert_eq!(r.outcome.rtt().unwrap().as_micros(), 100);
    }

    #[test]
    fn downed_podset_makes_probes_time_out() {
        let mut n = net(DcProfile::ideal());
        let (a, b) = pair_cross_podset(&n);
        let podset_b = n.topology().server(b).podset;
        n.faults_mut()
            .set_podset_down(podset_b, SimTime(0), Some(SimTime(1_000_000)));
        let ip = n.topology().ip_of(b);
        let r = n.probe(a, ip, 40_000, 8_100, ProbeKind::TcpSyn, SimTime(10));
        assert_eq!(r.outcome, ProbeOutcome::Timeout);
        assert!(!n.server_is_up(b, SimTime(10)));
        // After power restoration, probes work again.
        let r2 = n.probe(a, ip, 40_001, 8_100, ProbeKind::TcpSyn, SimTime(2_000_000));
        assert!(r2.outcome.is_success());
    }

    #[test]
    fn full_blackhole_on_tor_fails_all_probes_through_it() {
        let mut n = net(DcProfile::ideal());
        let (a, b) = pair_cross_podset(&n);
        let tor_a = n.topology().tor_of_pod(n.topology().server(a).pod);
        n.faults_mut().add_switch_fault(
            tor_a,
            ActiveFault {
                kind: FaultKind::BlackholeIp { frac: 1.0 },
                from: SimTime(0),
                until: None,
            },
        );
        let ip = n.topology().ip_of(b);
        let r = n.probe(a, ip, 40_000, 8_100, ProbeKind::TcpSyn, SimTime(0));
        assert_eq!(r.outcome, ProbeOutcome::Timeout);
        // The drop was silent: no visible discards.
        let c = n.switch_counters(tor_a);
        assert_eq!(c.visible_discards, 0);
        assert!(c.silent_discards_ground_truth > 0);
    }

    #[test]
    fn partial_blackhole_hits_some_pairs_deterministically() {
        let mut n = net(DcProfile::ideal());
        let t = n.topology().clone();
        let tor0 = SwitchId::tor(0);
        n.faults_mut().add_switch_fault(
            tor0,
            ActiveFault {
                kind: FaultKind::BlackholeIp { frac: 0.4 },
                from: SimTime(0),
                until: None,
            },
        );
        let a = t.servers_in_pod(PodId(0)).next().unwrap();
        let mut failed_pairs = 0;
        let mut ok_pairs = 0;
        for b in t.servers_in_dc(DcId(0)).filter(|&b| b != a) {
            let ip = t.ip_of(b);
            // Several probes per pair: the fate must be identical.
            let outcomes: Vec<bool> = (0..4)
                .map(|i| {
                    n.probe(a, ip, 41_000 + i, 8_100, ProbeKind::TcpSyn, SimTime(0))
                        .outcome
                        .is_success()
                })
                .collect();
            assert!(
                outcomes.iter().all(|&o| o == outcomes[0]),
                "black-hole must be deterministic per pair"
            );
            if outcomes[0] {
                ok_pairs += 1;
            } else {
                failed_pairs += 1;
            }
        }
        assert!(failed_pairs > 0, "some pairs must be black-holed");
        assert!(ok_pairs > 0, "some pairs must survive");
    }

    #[test]
    fn silent_random_drops_produce_3s_rtts() {
        let mut n = net(DcProfile::ideal());
        let (a, b) = pair_cross_podset(&n);
        // 30% silent drop on every spine: many probes lose their first SYN.
        let spines: Vec<SwitchId> = n.topology().spines_of_dc(DcId(0)).collect();
        for s in spines {
            n.faults_mut().add_switch_fault(
                s,
                ActiveFault {
                    kind: FaultKind::SilentRandomDrop { prob: 0.3 },
                    from: SimTime(0),
                    until: None,
                },
            );
        }
        let ip = n.topology().ip_of(b);
        let mut n3s = 0;
        let mut normal = 0;
        for i in 0..400u16 {
            let r = n.probe(a, ip, 42_000 + i, 8_100, ProbeKind::TcpSyn, SimTime(0));
            if let Some(rtt) = r.outcome.rtt() {
                if rtt >= SimDuration::from_secs(2) {
                    n3s += 1;
                } else {
                    normal += 1;
                }
            }
        }
        assert!(n3s > 20, "expected many 3s-class RTTs, got {n3s}");
        assert!(normal > 100, "most probes still succeed normally");
    }

    #[test]
    fn isolation_routes_around_faulty_spine() {
        let mut n = net(DcProfile::ideal());
        let (a, b) = pair_cross_podset(&n);
        // Kill one spine completely.
        let spine = n.topology().spines_of_dc(DcId(0)).next().unwrap();
        n.faults_mut().add_switch_fault(
            spine,
            ActiveFault {
                kind: FaultKind::SilentRandomDrop { prob: 1.0 },
                from: SimTime(0),
                until: None,
            },
        );
        let ip = n.topology().ip_of(b);
        let before: usize = (0..200u16)
            .filter(|i| {
                !n.probe(a, ip, 43_000 + i, 8_100, ProbeKind::TcpSyn, SimTime(0))
                    .outcome
                    .is_success()
            })
            .count();
        assert!(
            before > 10,
            "faulty spine should fail many probes: {before}"
        );
        n.faults_mut().isolate_switch(spine);
        let after: usize = (0..200u16)
            .filter(|i| {
                !n.probe(a, ip, 44_000 + i, 8_100, ProbeKind::TcpSyn, SimTime(0))
                    .outcome
                    .is_success()
            })
            .count();
        assert_eq!(after, 0, "isolation must route around the bad spine");
    }

    #[test]
    fn vip_probes_reach_a_dip() {
        let mut n = net(DcProfile::ideal());
        let t = n.topology().clone();
        let dips: Vec<ServerId> = t.servers_in_pod(PodId(2)).collect();
        let vip_id = n.vips_mut().register(dips.clone()).unwrap();
        let vip_ip = n.vips().get(vip_id).unwrap().vip;
        let a = t.servers_in_pod(PodId(0)).next().unwrap();
        let mut seen = std::collections::HashSet::new();
        for i in 0..64u16 {
            let r = n.probe(a, vip_ip, 45_000 + i, 80, ProbeKind::Http, SimTime(0));
            let dst = r.dst.expect("vip must resolve");
            assert!(dips.contains(&dst));
            assert!(r.outcome.is_success());
            seen.insert(dst);
        }
        assert!(seen.len() > 1, "load balancing should use several DIPs");
    }

    #[test]
    fn fcs_errors_hit_payload_probes_harder() {
        let mut n = net(DcProfile::ideal());
        let (a, b) = pair_cross_podset(&n);
        // FCS fault on the source ToR: 20% per KB.
        let tor_a = n.topology().tor_of_pod(n.topology().server(a).pod);
        n.faults_mut().add_switch_fault(
            tor_a,
            ActiveFault {
                kind: FaultKind::FcsError { per_kb_prob: 0.2 },
                from: SimTime(0),
                until: None,
            },
        );
        let ip = n.topology().ip_of(b);
        let mut syn_delayed = 0;
        let mut pay_delayed = 0;
        for i in 0..300u16 {
            let r = n.probe(a, ip, 46_000 + i, 8_100, ProbeKind::TcpSyn, SimTime(0));
            if r.outcome
                .rtt()
                .is_some_and(|x| x > SimDuration::from_millis(100))
            {
                syn_delayed += 1;
            }
            let r = n.probe(
                a,
                ip,
                48_000 + i,
                8_100,
                ProbeKind::TcpPayload(4_096),
                SimTime(0),
            );
            if r.outcome
                .rtt()
                .is_some_and(|x| x > SimDuration::from_millis(100))
            {
                pay_delayed += 1;
            }
        }
        assert_eq!(syn_delayed, 0, "SYN packets carry no payload");
        assert!(
            pay_delayed > 50,
            "payload probes must suffer: {pay_delayed}"
        );
    }

    #[test]
    fn low_priority_probes_see_worse_queuing() {
        let mut profile = DcProfile::ideal();
        // Give the queue some randomness so percentile comparison is fair.
        profile.queue_median_us = 20.0;
        profile.queue_sigma = 0.5;
        profile.qos_low_queue_factor = 4.0;
        let mut n = SimNet::new(topo2(), vec![profile], 21);
        let (a, b) = pair_cross_podset(&n);
        let ip = n.topology().ip_of(b);
        let mut sum_high = 0u64;
        let mut sum_low = 0u64;
        for i in 0..400u16 {
            let hi = n
                .probe_qos(
                    a,
                    ip,
                    50_000 + i,
                    8_100,
                    ProbeKind::TcpSyn,
                    QosClass::High,
                    SimTime(0),
                )
                .outcome
                .rtt()
                .unwrap();
            let lo = n
                .probe_qos(
                    a,
                    ip,
                    52_000 + i,
                    8_101,
                    ProbeKind::TcpSyn,
                    QosClass::Low,
                    SimTime(0),
                )
                .outcome
                .rtt()
                .unwrap();
            sum_high += hi.as_micros();
            sum_low += lo.as_micros();
        }
        assert!(
            sum_low as f64 > sum_high as f64 * 1.5,
            "low priority must queue behind high: {sum_low} vs {sum_high}"
        );
    }

    #[test]
    fn forwarded_counters_increase() {
        let mut n = net(DcProfile::ideal());
        let (a, b) = pair_cross_podset(&n);
        let ip = n.topology().ip_of(b);
        n.probe(a, ip, 40_000, 8_100, ProbeKind::TcpSyn, SimTime(0));
        let tor_a = n.topology().tor_of_pod(n.topology().server(a).pod);
        assert!(n.switch_counters(tor_a).forwarded > 0);
    }

    #[test]
    fn keyed_probes_are_order_and_batch_independent() {
        let n = net(DcProfile::us_central());
        let (a, b) = pair_cross_podset(&n);
        let ip = n.topology().ip_of(b);
        let state = n.state();
        // Run the same 32 probes in two different interleavings with
        // differently-grouped counter sinks; outcomes and merged counter
        // totals must be identical.
        let run = |order: &[u16], groups: usize| {
            let mut outcomes = std::collections::HashMap::new();
            let mut merged: CounterDelta = HashMap::new();
            for (g, chunk) in order.chunks(order.len() / groups).enumerate() {
                let _ = g;
                let mut local: CounterDelta = HashMap::new();
                for &port in chunk {
                    let r = state.probe_keyed(
                        7,
                        &mut local,
                        a,
                        ip,
                        40_000 + port,
                        8_100,
                        ProbeKind::TcpSyn,
                        QosClass::High,
                        SimTime(1_000_000),
                    );
                    outcomes.insert(port, r);
                }
                for (sw, c) in &local {
                    merged.entry(*sw).or_default().merge(c);
                }
            }
            (outcomes, merged)
        };
        let fwd_order: Vec<u16> = (0..32).collect();
        let rev_order: Vec<u16> = (0..32).rev().collect();
        let (o1, c1) = run(&fwd_order, 1);
        let (o2, c2) = run(&rev_order, 4);
        assert_eq!(o1, o2, "probe outcomes must not depend on order/batching");
        assert_eq!(c1, c2, "counter totals must merge identically");
    }

    #[test]
    fn min_cross_podset_latency_is_positive_and_small() {
        let n = net(DcProfile::ideal());
        let la = n.state().min_cross_podset_latency();
        assert!(la > SimDuration::ZERO);
        assert!(la < SimDuration::from_secs(1));
    }
}
