//! Fault injection: every switch failure mode the paper analyses.
//!
//! * **Packet black-holes** (§5.1): deterministic drops of packets matching
//!   a pattern. Type 1 matches (src IP, dst IP) pairs — modelling corrupted
//!   TCAM entries; type 2 additionally matches transport ports — modelling
//!   ECMP-related defects. Both are *silent*: the switch's visible discard
//!   counters do not move. Reloading the switch clears them.
//! * **Silent random packet drops** (§5.2): a probabilistic drop of any
//!   packet, again invisible to SNMP. Caused by fabric bit flips / linecard
//!   seating; *not* fixed by reload — the switch must be isolated and
//!   RMA'd.
//! * **FCS-style errors**: per-KB corruption probability, so bigger
//!   payloads are hit harder — the reason Pingmesh added payload probes.
//! * **Congestion drops**: probabilistic but *visible* in switch counters.
//! * **Down**: switch is off (reloading, or its podset lost power).
//!
//! Server/podset power state and switch isolation (routing removal) also
//! live here, since they are part of a scenario's fault timeline.

use pingmesh_types::{FiveTuple, PodsetId, ServerId, SimDuration, SimTime, SwitchId};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// A single fault mode on a switch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Type-1 black-hole: packets whose (src IP, dst IP) hash falls into
    /// the corrupted fraction of the "TCAM" are dropped deterministically.
    /// `frac` is the corrupted fraction of address-pair space (0..1).
    BlackholeIp {
        /// Fraction of address-pair space affected.
        frac: f64,
    },
    /// Type-2 black-hole: like type 1 but keyed on the full five-tuple, so
    /// "Server A can talk to Server B's destination port Y using source
    /// port X, but not source port Z".
    BlackholePort {
        /// Fraction of five-tuple space affected.
        frac: f64,
    },
    /// Silent random drop of any packet with probability `prob`.
    SilentRandomDrop {
        /// Per-packet drop probability.
        prob: f64,
    },
    /// Payload-length-dependent corruption: each KB of payload is dropped
    /// with probability `per_kb_prob` (SYN-only packets are immune).
    FcsError {
        /// Per-kilobyte drop probability.
        per_kb_prob: f64,
    },
    /// Congestion drop with probability `prob`; **visible** in the
    /// switch's discard counters, unlike the silent modes.
    CongestionDrop {
        /// Per-packet drop probability.
        prob: f64,
    },
    /// Switch is down (reloading / powered off): drops everything, and the
    /// drop is attributable (a down switch is conspicuous).
    Down,
}

impl FaultKind {
    /// Whether drops from this fault are invisible to switch counters.
    pub fn is_silent(&self) -> bool {
        matches!(
            self,
            FaultKind::BlackholeIp { .. }
                | FaultKind::BlackholePort { .. }
                | FaultKind::SilentRandomDrop { .. }
                | FaultKind::FcsError { .. }
        )
    }

    /// Whether a switch reload repairs this fault (paper: black-holes are
    /// fixed by reload; silent random drops require RMA).
    pub fn cleared_by_reload(&self) -> bool {
        matches!(
            self,
            FaultKind::BlackholeIp { .. } | FaultKind::BlackholePort { .. }
        )
    }
}

/// A fault with an activity window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ActiveFault {
    /// Fault mode.
    pub kind: FaultKind,
    /// Activation time.
    pub from: SimTime,
    /// Deactivation time; `None` = until repaired.
    pub until: Option<SimTime>,
}

impl ActiveFault {
    /// Whether the fault is active at `t`.
    pub fn active_at(&self, t: SimTime) -> bool {
        t >= self.from && self.until.is_none_or(|u| t < u)
    }
}

/// What happens to one packet at one switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Forwarded normally.
    Forward,
    /// Dropped without any trace in the switch's counters.
    DropSilent,
    /// Dropped and counted in the switch's visible discard counters.
    DropVisible,
}

/// A window during which a podset has no power (paper Fig. 8(b)).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct PodsetDownWindow {
    podset: PodsetId,
    from: SimTime,
    until: Option<SimTime>,
}

/// The deployment-wide fault state.
#[derive(Debug, Clone, Default)]
pub struct Faults {
    switch_faults: HashMap<SwitchId, Vec<ActiveFault>>,
    podset_down: Vec<PodsetDownWindow>,
    isolated: HashSet<SwitchId>,
}

impl Faults {
    /// No faults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs a fault on a switch.
    pub fn add_switch_fault(&mut self, sw: SwitchId, fault: ActiveFault) {
        self.switch_faults.entry(sw).or_default().push(fault);
    }

    /// Active faults on a switch at time `t`.
    pub fn faults_on(&self, sw: SwitchId, t: SimTime) -> impl Iterator<Item = &ActiveFault> {
        self.switch_faults
            .get(&sw)
            .into_iter()
            .flatten()
            .filter(move |f| f.active_at(t))
    }

    /// Switches that have any fault installed (active or not) — used by
    /// experiment harnesses to enumerate ground truth.
    pub fn faulty_switches(&self) -> impl Iterator<Item = SwitchId> + '_ {
        self.switch_faults.keys().copied()
    }

    /// Simulates a switch reload at `t`: clears reload-fixable faults
    /// (black-holes) and takes the switch down for `outage`.
    pub fn reload_switch(&mut self, sw: SwitchId, t: SimTime, outage: SimDuration) {
        let list = self.switch_faults.entry(sw).or_default();
        // End black-hole faults now; keep others (silent drops survive).
        for f in list.iter_mut() {
            if f.kind.cleared_by_reload() && f.active_at(t) {
                f.until = Some(t);
            }
        }
        list.push(ActiveFault {
            kind: FaultKind::Down,
            from: t,
            until: Some(t + outage),
        });
    }

    /// Marks a switch as isolated: ECMP routes around it (it still drops
    /// whatever is addressed through it, but nothing is).
    pub fn isolate_switch(&mut self, sw: SwitchId) {
        self.isolated.insert(sw);
    }

    /// Returns an isolated switch to service.
    pub fn unisolate_switch(&mut self, sw: SwitchId) {
        self.isolated.remove(&sw);
    }

    /// Whether a switch is isolated from routing.
    pub fn is_isolated(&self, sw: SwitchId) -> bool {
        self.isolated.contains(&sw)
    }

    /// Declares a podset power-down window.
    pub fn set_podset_down(&mut self, podset: PodsetId, from: SimTime, until: Option<SimTime>) {
        self.podset_down.push(PodsetDownWindow {
            podset,
            from,
            until,
        });
    }

    /// Whether a podset is powered down at `t`.
    pub fn podset_is_down(&self, podset: PodsetId, t: SimTime) -> bool {
        self.podset_down
            .iter()
            .any(|w| w.podset == podset && t >= w.from && w.until.is_none_or(|u| t < u))
    }

    /// Whether a server is up at `t` (its podset has power). Callers pass
    /// the server's podset to avoid a topology dependency here.
    pub fn server_is_up(&self, _server: ServerId, podset: PodsetId, t: SimTime) -> bool {
        !self.podset_is_down(podset, t)
    }

    /// Per-switch salt for deterministic black-hole bucket selection, so
    /// different faulty switches black-hole different flows.
    #[inline]
    fn switch_salt(sw: SwitchId) -> u64 {
        let tier = match sw.tier {
            pingmesh_types::SwitchTier::Tor => 1u64,
            pingmesh_types::SwitchTier::Leaf => 2,
            pingmesh_types::SwitchTier::Spine => 3,
            pingmesh_types::SwitchTier::Border => 4,
        };
        (tier << 32) ^ sw.index as u64 ^ 0xD1B5_4A32_D192_ED03
    }

    #[inline]
    fn bucket(hash: u64, salt: u64) -> f64 {
        let mut z = hash ^ salt;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Deterministic part of the verdict: returns `Some(verdict)` if a
    /// deterministic fault (black-hole, down) decides the packet's fate,
    /// `None` if probabilistic faults should be consulted.
    pub fn deterministic_verdict(
        &self,
        sw: SwitchId,
        tuple: &FiveTuple,
        t: SimTime,
    ) -> Option<Verdict> {
        for f in self.faults_on(sw, t) {
            match f.kind {
                FaultKind::Down => return Some(Verdict::DropVisible),
                FaultKind::BlackholeIp { frac }
                    if Self::bucket(tuple.addr_pair_hash(), Self::switch_salt(sw)) < frac =>
                {
                    return Some(Verdict::DropSilent);
                }
                FaultKind::BlackholePort { frac }
                    if Self::bucket(tuple.ecmp_hash(), Self::switch_salt(sw)) < frac =>
                {
                    return Some(Verdict::DropSilent);
                }
                _ => {}
            }
        }
        None
    }

    /// Probabilistic drop probabilities of the active faults at `t`:
    /// `(silent_prob, visible_prob)` for a packet with `payload_bytes`.
    pub fn random_drop_probs(&self, sw: SwitchId, payload_bytes: u32, t: SimTime) -> (f64, f64) {
        let mut silent = 0.0f64;
        let mut visible = 0.0f64;
        for f in self.faults_on(sw, t) {
            match f.kind {
                FaultKind::SilentRandomDrop { prob } => silent += prob,
                FaultKind::FcsError { per_kb_prob } => {
                    let kb = (payload_bytes as f64 / 1024.0).max(0.0);
                    silent += per_kb_prob * kb;
                }
                FaultKind::CongestionDrop { prob } => visible += prob,
                _ => {}
            }
        }
        (silent.min(1.0), visible.min(1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn tuple(sp: u16) -> FiveTuple {
        FiveTuple::tcp(
            Ipv4Addr::new(10, 0, 0, 1),
            sp,
            Ipv4Addr::new(10, 0, 1, 1),
            8100,
        )
    }

    fn at(t: u64) -> SimTime {
        SimTime(t)
    }

    #[test]
    fn fault_windows() {
        let f = ActiveFault {
            kind: FaultKind::Down,
            from: at(100),
            until: Some(at(200)),
        };
        assert!(!f.active_at(at(99)));
        assert!(f.active_at(at(100)));
        assert!(f.active_at(at(199)));
        assert!(!f.active_at(at(200)));
        let open = ActiveFault {
            kind: FaultKind::Down,
            from: at(100),
            until: None,
        };
        assert!(open.active_at(at(1_000_000)));
    }

    #[test]
    fn blackhole_ip_is_deterministic_and_port_insensitive() {
        let mut faults = Faults::new();
        let sw = SwitchId::tor(3);
        faults.add_switch_fault(
            sw,
            ActiveFault {
                kind: FaultKind::BlackholeIp { frac: 0.5 },
                from: at(0),
                until: None,
            },
        );
        // All source ports of the same address pair share a fate.
        let v0 = faults.deterministic_verdict(sw, &tuple(1000), at(1));
        for sp in 1001..1100 {
            assert_eq!(faults.deterministic_verdict(sw, &tuple(sp), at(1)), v0);
        }
    }

    #[test]
    fn blackhole_port_is_port_sensitive() {
        let mut faults = Faults::new();
        let sw = SwitchId::spine(1);
        faults.add_switch_fault(
            sw,
            ActiveFault {
                kind: FaultKind::BlackholePort { frac: 0.5 },
                from: at(0),
                until: None,
            },
        );
        let verdicts: HashSet<_> = (1000..1100u16)
            .map(|sp| {
                faults
                    .deterministic_verdict(sw, &tuple(sp), at(1))
                    .is_some()
            })
            .collect();
        assert_eq!(verdicts.len(), 2, "some ports must pass, some must drop");
    }

    #[test]
    fn blackhole_fraction_controls_share_of_pairs() {
        let mut faults = Faults::new();
        let sw = SwitchId::tor(9);
        faults.add_switch_fault(
            sw,
            ActiveFault {
                kind: FaultKind::BlackholeIp { frac: 0.25 },
                from: at(0),
                until: None,
            },
        );
        let mut dropped = 0;
        let n = 4_000;
        for i in 0..n {
            let t = FiveTuple::tcp(
                Ipv4Addr::new(10, 0, (i / 256) as u8, (i % 256) as u8),
                5_000,
                Ipv4Addr::new(10, 1, 0, 1),
                8100,
            );
            if faults.deterministic_verdict(sw, &t, at(1)).is_some() {
                dropped += 1;
            }
        }
        let frac = dropped as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.05, "fraction {frac}");
    }

    #[test]
    fn reload_clears_blackholes_but_not_silent_drops() {
        let mut faults = Faults::new();
        let sw = SwitchId::tor(0);
        faults.add_switch_fault(
            sw,
            ActiveFault {
                kind: FaultKind::BlackholeIp { frac: 1.0 },
                from: at(0),
                until: None,
            },
        );
        faults.add_switch_fault(
            sw,
            ActiveFault {
                kind: FaultKind::SilentRandomDrop { prob: 0.01 },
                from: at(0),
                until: None,
            },
        );
        faults.reload_switch(sw, at(1_000), SimDuration::from_micros(500));
        // During the reload the switch is down.
        assert_eq!(
            faults.deterministic_verdict(sw, &tuple(1), at(1_200)),
            Some(Verdict::DropVisible)
        );
        // After the reload: black-hole gone, silent drop remains.
        assert_eq!(faults.deterministic_verdict(sw, &tuple(1), at(2_000)), None);
        let (silent, visible) = faults.random_drop_probs(sw, 0, at(2_000));
        assert!((silent - 0.01).abs() < 1e-12);
        assert_eq!(visible, 0.0);
    }

    #[test]
    fn fcs_scales_with_payload() {
        let mut faults = Faults::new();
        let sw = SwitchId::leaf(2);
        faults.add_switch_fault(
            sw,
            ActiveFault {
                kind: FaultKind::FcsError { per_kb_prob: 1e-3 },
                from: at(0),
                until: None,
            },
        );
        let (s0, _) = faults.random_drop_probs(sw, 0, at(1));
        let (s1, _) = faults.random_drop_probs(sw, 1024, at(1));
        let (s4, _) = faults.random_drop_probs(sw, 4096, at(1));
        assert_eq!(s0, 0.0);
        assert!((s1 - 1e-3).abs() < 1e-12);
        assert!((s4 - 4e-3).abs() < 1e-12);
    }

    #[test]
    fn congestion_is_visible() {
        let mut faults = Faults::new();
        let sw = SwitchId::leaf(0);
        faults.add_switch_fault(
            sw,
            ActiveFault {
                kind: FaultKind::CongestionDrop { prob: 0.05 },
                from: at(0),
                until: None,
            },
        );
        let (silent, visible) = faults.random_drop_probs(sw, 0, at(1));
        assert_eq!(silent, 0.0);
        assert!((visible - 0.05).abs() < 1e-12);
        assert!(!FaultKind::CongestionDrop { prob: 0.05 }.is_silent());
        assert!(FaultKind::SilentRandomDrop { prob: 0.05 }.is_silent());
    }

    #[test]
    fn podset_down_windows() {
        let mut faults = Faults::new();
        faults.set_podset_down(PodsetId(2), at(100), Some(at(200)));
        assert!(!faults.podset_is_down(PodsetId(2), at(50)));
        assert!(faults.podset_is_down(PodsetId(2), at(150)));
        assert!(!faults.podset_is_down(PodsetId(2), at(250)));
        assert!(!faults.podset_is_down(PodsetId(3), at(150)));
        assert!(faults.server_is_up(ServerId(0), PodsetId(3), at(150)));
        assert!(!faults.server_is_up(ServerId(0), PodsetId(2), at(150)));
    }

    #[test]
    fn isolation_bookkeeping() {
        let mut faults = Faults::new();
        let sw = SwitchId::spine(4);
        assert!(!faults.is_isolated(sw));
        faults.isolate_switch(sw);
        assert!(faults.is_isolated(sw));
        faults.unisolate_switch(sw);
        assert!(!faults.is_isolated(sw));
    }

    use std::collections::HashSet;
}
