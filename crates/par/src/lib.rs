//! Minimal scoped fork-join parallelism for the Pingmesh workspace.
//!
//! The build environment is fully offline, so `rayon` is unavailable; the
//! two embarrassingly-parallel stages of the pipeline (pinglist generation
//! across servers, aggregation across record chunks) only need a tiny
//! slice of it anyway: split a work list into contiguous chunks, run each
//! chunk on its own scoped thread, and join results **in chunk order** so
//! the output is deterministic — identical to a serial run — regardless of
//! thread count or scheduling.
//!
//! Built on [`std::thread::scope`], so borrowed (non-`'static`) inputs
//! work and panics propagate to the caller. No thread pool is kept alive
//! between calls; for the coarse-grained stages this crate serves, thread
//! spawn cost (~10 µs) is noise.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::num::NonZeroUsize;

/// Number of worker threads to use by default: the machine's available
/// parallelism, floored at 1 (if the OS won't say, fall back to serial).
pub fn max_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Splits `len` work items into at most `threads` contiguous chunk ranges
/// covering `0..len` in order. The first `len % threads` chunks get one
/// extra item, so sizes differ by at most one.
fn chunk_ranges(len: usize, threads: usize) -> Vec<std::ops::Range<usize>> {
    let threads = threads.max(1).min(len.max(1));
    let base = len / threads;
    let extra = len % threads;
    let mut out = Vec::with_capacity(threads);
    let mut start = 0;
    for i in 0..threads {
        let size = base + usize::from(i < extra);
        out.push(start..start + size);
        start += size;
    }
    debug_assert_eq!(start, len);
    out
}

/// Maps `f` over `items` on up to [`max_threads`] scoped threads,
/// returning results in input order. See [`par_map_threads`].
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_threads(max_threads(), items, f)
}

/// Maps `f` over `items` on up to `threads` scoped threads, returning
/// `vec![f(&items[0]), f(&items[1]), …]` — the exact output a serial map
/// would produce, in the same order, regardless of `threads`.
///
/// `threads <= 1` (or a single-item input) runs inline on the caller's
/// thread with no spawning at all.
pub fn par_map_threads<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let ranges = chunk_ranges(items.len(), threads);
    let f = &f;
    let chunk_results: Vec<Vec<R>> = std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|r| scope.spawn(move || items[r].iter().map(f).collect::<Vec<R>>()))
            .collect();
        // Join in spawn order: chunk i's results land at position i, so
        // concatenation reproduces input order deterministically.
        handles
            .into_iter()
            .map(|h| h.join().expect("par_map worker panicked"))
            .collect()
    });
    let mut out = Vec::with_capacity(items.len());
    for chunk in chunk_results {
        out.extend(chunk);
    }
    out
}

/// Applies `f` to contiguous chunks of `items` (one chunk per thread, up
/// to [`max_threads`]), returning the per-chunk results in chunk order.
/// See [`par_chunks_threads`].
pub fn par_chunks<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> R + Sync,
{
    par_chunks_threads(max_threads(), items, f)
}

/// Applies `f` to at most `threads` contiguous chunks of `items`,
/// returning per-chunk results ordered by chunk position (chunk 0 covers
/// the start of `items`). Chunk sizes differ by at most one item.
///
/// The caller reduces the chunk results; folding them **in order** with an
/// associative merge reproduces the serial fold exactly.
///
/// `threads <= 1` or an empty input produces a single chunk computed
/// inline.
pub fn par_chunks_threads<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return vec![f(items)];
    }
    let ranges = chunk_ranges(items.len(), threads);
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|r| scope.spawn(move || f(&items[r])))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("par_chunks worker panicked"))
            .collect()
    })
}

/// Runs `f` over every element of `items` **by mutable reference** on up
/// to `threads` scoped threads, returning per-element results in input
/// order. This is the fan-out the sharded simulation engine uses: each
/// shard owns disjoint mutable state (its event queue, its agents, its
/// outboxes), advances independently for one epoch, and the results come
/// back in shard order so the barrier merge is deterministic.
///
/// `f` receives the element's index alongside the element so workers can
/// key derived state (e.g. a shard id) without interior mutability.
///
/// `threads <= 1` (or a single-item input) runs inline on the caller's
/// thread with no spawning at all — a 1-shard run is exactly a serial run.
pub fn par_map_mut_threads<T, R, F>(threads: usize, items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.iter_mut().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let ranges = chunk_ranges(items.len(), threads);
    let f = &f;
    // Split the slice into disjoint mutable chunks matching `ranges`
    // (chunk i starts at ranges[i].start), then spawn one worker per
    // chunk. Disjointness is what makes the mutable fan-out safe.
    let chunk_results: Vec<Vec<R>> = std::thread::scope(|scope| {
        let mut rest = items;
        let mut handles = Vec::with_capacity(ranges.len());
        let mut offset = 0usize;
        for r in &ranges {
            let (chunk, tail) = rest.split_at_mut(r.len());
            rest = tail;
            let base = offset;
            offset += r.len();
            handles.push(scope.spawn(move || {
                chunk
                    .iter_mut()
                    .enumerate()
                    .map(|(i, t)| f(base + i, t))
                    .collect::<Vec<R>>()
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("par_map_mut worker panicked"))
            .collect()
    });
    let mut out = Vec::with_capacity(chunk_results.iter().map(Vec::len).sum());
    for chunk in chunk_results {
        out.extend(chunk);
    }
    out
}

/// Splits `items` into at most `threads` contiguous groups of near-equal
/// total `weight`, covering the whole input in order. Groups are cut
/// greedily at the points where the cumulative weight crosses the next
/// `total / threads` boundary, so no group is ever empty and sizes track
/// the weight distribution rather than the item count.
fn weighted_ranges<T, W>(items: &[T], threads: usize, weight: &W) -> Vec<std::ops::Range<usize>>
where
    W: Fn(&T) -> u64,
{
    let threads = threads.max(1).min(items.len().max(1));
    let total: u128 = items.iter().map(|i| weight(i) as u128).sum();
    let mut out = Vec::with_capacity(threads);
    let mut start = 0usize;
    let mut cum: u128 = 0;
    for (i, item) in items.iter().enumerate() {
        cum += weight(item) as u128;
        // Cut when this group has reached its share, keeping enough items
        // for the remaining groups to be non-empty.
        let groups_done = out.len() as u128;
        let target = total * (groups_done + 1) / threads as u128;
        let remaining_groups = threads - out.len();
        if cum >= target && items.len() - (i + 1) >= remaining_groups - 1 && out.len() < threads - 1
        {
            out.push(start..i + 1);
            start = i + 1;
        }
    }
    out.push(start..items.len());
    out
}

/// Applies `f` to at most `threads` contiguous groups of `items`, where
/// group boundaries balance the total `weight` (not the item count), and
/// returns per-group results in input order. This is [`par_chunks_threads`]
/// for heterogeneous work items — e.g. borrowed record slices of wildly
/// different lengths coming out of a zero-copy extent scan: sharding by
/// slice *count* would let one jumbo extent dominate a thread while the
/// others idle.
///
/// Folding the group results **in order** with an associative merge
/// reproduces the serial fold exactly, regardless of `threads`.
pub fn par_weighted_groups_threads<T, R, F, W>(
    threads: usize,
    items: &[T],
    weight: W,
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> R + Sync,
    W: Fn(&T) -> u64,
{
    if threads <= 1 || items.len() <= 1 {
        return vec![f(items)];
    }
    let ranges = weighted_ranges(items, threads, &weight);
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|r| scope.spawn(move || f(&items[r])))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("par_weighted_groups worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_ranges_tile_the_input() {
        for len in [0usize, 1, 2, 7, 16, 100, 101] {
            for threads in [1usize, 2, 3, 8, 200] {
                let ranges = chunk_ranges(len, threads);
                assert!(ranges.len() <= threads.max(1));
                let mut next = 0;
                let (mut min, mut max) = (usize::MAX, 0);
                for r in &ranges {
                    assert_eq!(r.start, next, "len={len} threads={threads}");
                    next = r.end;
                    min = min.min(r.len());
                    max = max.max(r.len());
                }
                assert_eq!(next, len);
                if len >= threads {
                    assert!(max - min <= 1, "unbalanced: len={len} threads={threads}");
                }
            }
        }
    }

    #[test]
    fn par_map_preserves_order_for_any_thread_count() {
        let items: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 7, 64] {
            assert_eq!(par_map_threads(threads, &items, |x| x * x), expect);
        }
        assert_eq!(par_map(&items, |x| x * x), expect);
    }

    #[test]
    fn par_map_handles_degenerate_inputs() {
        let empty: Vec<u32> = vec![];
        assert!(par_map_threads(8, &empty, |x| *x).is_empty());
        assert_eq!(par_map_threads(8, &[5u32], |x| x + 1), vec![6]);
        assert_eq!(par_map_threads(0, &[1u32, 2], |x| x * 10), vec![10, 20]);
    }

    #[test]
    fn par_map_borrows_non_static_state() {
        let offset = 100u64; // lives on this stack frame
        let items: Vec<u64> = (0..32).collect();
        let out = par_map_threads(4, &items, |x| x + offset);
        assert_eq!(out[31], 131);
    }

    #[test]
    fn par_chunks_ordered_fold_matches_serial() {
        // Concatenation is associative but NOT commutative, so this fails
        // if chunks ever come back out of order.
        let items: Vec<u32> = (0..1000).collect();
        let serial = items
            .iter()
            .map(|x| x.to_string())
            .collect::<Vec<_>>()
            .join(",");
        for threads in [1, 2, 5, 16] {
            let chunks = par_chunks_threads(threads, &items, |c| {
                c.iter()
                    .map(|x| x.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            });
            assert!(chunks.len() <= threads.max(1));
            assert_eq!(chunks.join(","), serial, "threads={threads}");
        }
    }

    #[test]
    fn par_chunks_empty_input_yields_one_empty_chunk() {
        let empty: Vec<u32> = vec![];
        let out = par_chunks_threads(8, &empty, <[u32]>::len);
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn weighted_ranges_tile_and_balance() {
        // Heavily skewed weights: one jumbo item among many light ones.
        let items: Vec<u64> = [vec![100_000u64], vec![10; 99]].concat();
        for threads in [1usize, 2, 3, 8, 64] {
            let ranges = weighted_ranges(&items, threads, &|&w| w);
            assert!(!ranges.is_empty() && ranges.len() <= threads.max(1));
            let mut next = 0;
            for r in &ranges {
                assert_eq!(r.start, next, "threads={threads}");
                assert!(!r.is_empty(), "threads={threads}");
                next = r.end;
            }
            assert_eq!(next, items.len());
            if threads >= 2 {
                // The jumbo item must end up alone in its group.
                assert_eq!(ranges[0], 0..1, "threads={threads}");
            }
        }
    }

    #[test]
    fn par_weighted_groups_ordered_fold_matches_serial() {
        let slices: Vec<Vec<u32>> = (0..40).map(|i| (0..(i % 7) * 50).collect()).collect();
        let refs: Vec<&[u32]> = slices.iter().map(Vec::as_slice).collect();
        let serial: Vec<u32> = refs.iter().flat_map(|s| s.iter().copied()).collect();
        for threads in [1, 2, 3, 8] {
            let groups = par_weighted_groups_threads(
                threads,
                &refs,
                |s| s.len() as u64,
                |group: &[&[u32]]| {
                    group
                        .iter()
                        .flat_map(|s| s.iter().copied())
                        .collect::<Vec<u32>>()
                },
            );
            let joined: Vec<u32> = groups.into_iter().flatten().collect();
            assert_eq!(joined, serial, "threads={threads}");
        }
    }

    #[test]
    fn par_weighted_groups_degenerate_inputs() {
        let empty: Vec<Vec<u32>> = vec![];
        let out =
            par_weighted_groups_threads(8, &empty, |v: &Vec<u32>| v.len() as u64, |g| g.len());
        assert_eq!(out, vec![0]);
        let one = [vec![1u32, 2]];
        let out = par_weighted_groups_threads(8, &one, |v| v.len() as u64, |g| g.len());
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn par_map_mut_mutates_in_place_and_orders_results() {
        let expect_state: Vec<u64> = (0..100u64).map(|x| x + 1).collect();
        let expect_out: Vec<u64> = (0..100u64).map(|x| x * 2).collect();
        for threads in [1, 2, 3, 8, 64] {
            let mut items: Vec<u64> = (0..100).collect();
            let out = par_map_mut_threads(threads, &mut items, |i, x| {
                assert_eq!(*x, i as u64, "index matches element position");
                let r = *x * 2;
                *x += 1;
                r
            });
            assert_eq!(items, expect_state, "threads={threads}");
            assert_eq!(out, expect_out, "threads={threads}");
        }
    }

    #[test]
    fn par_map_mut_degenerate_inputs() {
        let mut empty: Vec<u32> = vec![];
        assert!(par_map_mut_threads(8, &mut empty, |_, x| *x).is_empty());
        let mut one = [7u32];
        assert_eq!(par_map_mut_threads(8, &mut one, |_, x| *x + 1), vec![8]);
    }

    #[test]
    #[should_panic(expected = "par_map worker panicked")]
    fn worker_panics_propagate() {
        let items: Vec<u32> = (0..8).collect();
        let _ = par_map_threads(4, &items, |x| {
            assert!(*x != 5, "boom");
            *x
        });
    }

    #[test]
    fn max_threads_is_positive() {
        assert!(max_threads() >= 1);
    }
}
