//! The materialized topology: entity tables, containment, IP assignment.
//!
//! Built once from a [`crate::TopologySpec`]; afterwards all lookups are
//! O(1) array indexing. Entities are numbered globally and contiguously
//! (all of DC0's pods, then DC1's, …) so that ranges describe containment.

use crate::spec::TopologySpec;
use pingmesh_types::{DcId, PingmeshError, PodId, PodsetId, ServerId, SwitchId, SwitchTier};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::ops::Range;

/// Per-server placement record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServerInfo {
    /// Pod (= ToR) the server lives under.
    pub pod: PodId,
    /// Podset containing that pod.
    pub podset: PodsetId,
    /// Data center.
    pub dc: DcId,
    /// Assigned IPv4 address.
    pub ip: Ipv4Addr,
    /// Index of the server under its ToR (0-based). The intra-DC pinglist
    /// rule "server *i* in ToRx pings server *i* in ToRy" keys on this.
    pub index_in_pod: u32,
}

/// Per-pod record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PodInfo {
    /// Podset containing this pod.
    pub podset: PodsetId,
    /// Data center.
    pub dc: DcId,
    /// Servers in this pod (global ids, contiguous).
    pub servers: Range<u32>,
}

/// Per-podset record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PodsetInfo {
    /// Data center.
    pub dc: DcId,
    /// Pods in this podset (global ids, contiguous).
    pub pods: Range<u32>,
    /// Leaf switches of this podset (global leaf indices, contiguous).
    pub leaves: Range<u32>,
}

/// Per-DC record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DcInfo {
    /// Human-readable name from the spec.
    pub name: String,
    /// Podsets in this DC (global ids, contiguous).
    pub podsets: Range<u32>,
    /// Pods in this DC.
    pub pods: Range<u32>,
    /// Servers in this DC.
    pub servers: Range<u32>,
    /// Spine switches (global spine indices, contiguous).
    pub spines: Range<u32>,
    /// Border routers (global border indices, contiguous).
    pub borders: Range<u32>,
}

/// Precomputed per-tier switch-id tables backing the ECMP hot path.
///
/// The resolver needs "the leaves of podset X" / "the spines of DC Y" on
/// every single probe; materializing each tier's `SwitchId`s once at build
/// time lets those queries return immutable slices (entities are numbered
/// contiguously, so a scope is always a subrange) instead of collecting an
/// iterator per call.
#[derive(Debug, Clone, Default)]
pub struct RouteTables {
    /// All leaf switch ids, in global leaf-index order.
    leaves: Vec<SwitchId>,
    /// All spine switch ids, in global spine-index order.
    spines: Vec<SwitchId>,
    /// All border router ids, in global border-index order.
    borders: Vec<SwitchId>,
}

impl RouteTables {
    fn build(leaf_count: usize, spine_count: usize, border_count: usize) -> Self {
        Self {
            leaves: (0..leaf_count as u32).map(SwitchId::leaf).collect(),
            spines: (0..spine_count as u32).map(SwitchId::spine).collect(),
            borders: (0..border_count as u32).map(SwitchId::border).collect(),
        }
    }
}

/// The materialized deployment topology.
#[derive(Debug, Clone)]
pub struct Topology {
    spec: TopologySpec,
    dcs: Vec<DcInfo>,
    podsets: Vec<PodsetInfo>,
    pods: Vec<PodInfo>,
    servers: Vec<ServerInfo>,
    ip_index: HashMap<Ipv4Addr, ServerId>,
    /// Podset owning each leaf (global leaf index → podset).
    leaf_podset: Vec<PodsetId>,
    /// DC owning each spine (global spine index → dc).
    spine_dc: Vec<DcId>,
    /// DC owning each border (global border index → dc).
    border_dc: Vec<DcId>,
    /// Materialized switch-id tables for allocation-free scope queries.
    routes: RouteTables,
}

impl Topology {
    /// Materializes a validated spec.
    pub fn build(spec: TopologySpec) -> Result<Self, PingmeshError> {
        let spec = spec.validate()?;
        let mut dcs = Vec::with_capacity(spec.dcs.len());
        let mut podsets = Vec::new();
        let mut pods = Vec::new();
        let mut servers = Vec::new();
        let mut ip_index = HashMap::new();
        let mut leaf_podset = Vec::new();
        let mut spine_dc = Vec::new();
        let mut border_dc = Vec::new();

        for (dci, d) in spec.dcs.iter().enumerate() {
            let dc = DcId(dci as u32);
            let podset_lo = podsets.len() as u32;
            let pod_lo = pods.len() as u32;
            let server_lo = servers.len() as u32;
            let spine_lo = spine_dc.len() as u32;
            let border_lo = border_dc.len() as u32;
            let mut server_in_dc: u16 = 0;

            for _ in 0..d.podsets {
                let podset = PodsetId(podsets.len() as u32);
                let ps_pod_lo = pods.len() as u32;
                let leaf_lo = leaf_podset.len() as u32;
                for _ in 0..d.leaves_per_podset {
                    leaf_podset.push(podset);
                }
                for _ in 0..d.pods_per_podset {
                    let pod = PodId(pods.len() as u32);
                    let pod_server_lo = servers.len() as u32;
                    for idx_in_pod in 0..d.servers_per_pod {
                        let [hi, lo] = server_in_dc.to_be_bytes();
                        let ip = Ipv4Addr::new(10, dci as u8, hi, lo);
                        let sid = ServerId(servers.len() as u32);
                        servers.push(ServerInfo {
                            pod,
                            podset,
                            dc,
                            ip,
                            index_in_pod: idx_in_pod,
                        });
                        ip_index.insert(ip, sid);
                        server_in_dc += 1;
                    }
                    pods.push(PodInfo {
                        podset,
                        dc,
                        servers: pod_server_lo..servers.len() as u32,
                    });
                }
                podsets.push(PodsetInfo {
                    dc,
                    pods: ps_pod_lo..pods.len() as u32,
                    leaves: leaf_lo..leaf_podset.len() as u32,
                });
            }
            for _ in 0..d.spines {
                spine_dc.push(dc);
            }
            for _ in 0..d.borders {
                border_dc.push(dc);
            }
            dcs.push(DcInfo {
                name: d.name.clone(),
                podsets: podset_lo..podsets.len() as u32,
                pods: pod_lo..pods.len() as u32,
                servers: server_lo..servers.len() as u32,
                spines: spine_lo..spine_dc.len() as u32,
                borders: border_lo..border_dc.len() as u32,
            });
        }

        pingmesh_obs::registry()
            .counter("pingmesh_topology_builds_total")
            .inc();
        pingmesh_obs::emit!(Info, "topology.model", "topology_built",
            "dcs" => dcs.len() as u64,
            "podsets" => podsets.len() as u64,
            "pods" => pods.len() as u64,
            "servers" => servers.len() as u64,
        );
        let routes = RouteTables::build(leaf_podset.len(), spine_dc.len(), border_dc.len());
        Ok(Self {
            spec,
            dcs,
            podsets,
            pods,
            servers,
            ip_index,
            leaf_podset,
            spine_dc,
            border_dc,
            routes,
        })
    }

    /// The spec this topology was built from.
    pub fn spec(&self) -> &TopologySpec {
        &self.spec
    }

    /// Number of data centers.
    pub fn dc_count(&self) -> usize {
        self.dcs.len()
    }

    /// Number of servers in the deployment.
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    /// Number of pods (= ToR switches) in the deployment.
    pub fn pod_count(&self) -> usize {
        self.pods.len()
    }

    /// Number of podsets in the deployment.
    pub fn podset_count(&self) -> usize {
        self.podsets.len()
    }

    /// Total switch count (ToR + Leaf + Spine + Border).
    pub fn switch_count(&self) -> usize {
        self.pods.len() + self.leaf_podset.len() + self.spine_dc.len() + self.border_dc.len()
    }

    /// All server ids.
    pub fn servers(&self) -> impl Iterator<Item = ServerId> + '_ {
        (0..self.servers.len() as u32).map(ServerId)
    }

    /// Placement record of a server.
    pub fn server(&self, id: ServerId) -> &ServerInfo {
        &self.servers[id.index()]
    }

    /// Pod record.
    pub fn pod(&self, id: PodId) -> &PodInfo {
        &self.pods[id.index()]
    }

    /// Podset record.
    pub fn podset(&self, id: PodsetId) -> &PodsetInfo {
        &self.podsets[id.index()]
    }

    /// DC record.
    pub fn dc(&self, id: DcId) -> &DcInfo {
        &self.dcs[id.index()]
    }

    /// All DC ids.
    pub fn dcs(&self) -> impl Iterator<Item = DcId> + '_ {
        (0..self.dcs.len() as u32).map(DcId)
    }

    /// Servers under a pod, in index-in-pod order.
    pub fn servers_in_pod(&self, pod: PodId) -> impl Iterator<Item = ServerId> + '_ {
        self.pods[pod.index()].servers.clone().map(ServerId)
    }

    /// The `i`-th server under a pod, if it exists.
    pub fn nth_server_of_pod(&self, pod: PodId, i: u32) -> Option<ServerId> {
        let r = &self.pods[pod.index()].servers;
        let id = r.start.checked_add(i)?;
        (id < r.end).then_some(ServerId(id))
    }

    /// Pods of a podset.
    pub fn pods_in_podset(&self, podset: PodsetId) -> impl Iterator<Item = PodId> + '_ {
        self.podsets[podset.index()].pods.clone().map(PodId)
    }

    /// Podsets of a DC.
    pub fn podsets_in_dc(&self, dc: DcId) -> impl Iterator<Item = PodsetId> + '_ {
        self.dcs[dc.index()].podsets.clone().map(PodsetId)
    }

    /// Pods of a DC.
    pub fn pods_in_dc(&self, dc: DcId) -> impl Iterator<Item = PodId> + '_ {
        self.dcs[dc.index()].pods.clone().map(PodId)
    }

    /// Servers of a DC.
    pub fn servers_in_dc(&self, dc: DcId) -> impl Iterator<Item = ServerId> + '_ {
        self.dcs[dc.index()].servers.clone().map(ServerId)
    }

    /// The ToR switch of a pod. Pods and ToRs are 1:1; the ToR shares the
    /// pod's global index.
    pub fn tor_of_pod(&self, pod: PodId) -> SwitchId {
        SwitchId::tor(pod.0)
    }

    /// The pod served by a ToR switch.
    pub fn pod_of_tor(&self, tor: SwitchId) -> Option<PodId> {
        (tor.tier == SwitchTier::Tor && (tor.index as usize) < self.pods.len())
            .then_some(PodId(tor.index))
    }

    /// Leaf switches of a podset.
    pub fn leaves_of_podset(&self, podset: PodsetId) -> impl Iterator<Item = SwitchId> + '_ {
        self.leaf_slice_of_podset(podset).iter().copied()
    }

    /// Spine switches of a DC.
    pub fn spines_of_dc(&self, dc: DcId) -> impl Iterator<Item = SwitchId> + '_ {
        self.spine_slice_of_dc(dc).iter().copied()
    }

    /// Border routers of a DC.
    pub fn borders_of_dc(&self, dc: DcId) -> impl Iterator<Item = SwitchId> + '_ {
        self.border_slice_of_dc(dc).iter().copied()
    }

    /// Leaf switches of a podset, as a precomputed slice. Allocation-free;
    /// this is the form the ECMP resolver consumes on every probe.
    #[inline]
    pub fn leaf_slice_of_podset(&self, podset: PodsetId) -> &[SwitchId] {
        let r = &self.podsets[podset.index()].leaves;
        &self.routes.leaves[r.start as usize..r.end as usize]
    }

    /// Spine switches of a DC, as a precomputed slice.
    #[inline]
    pub fn spine_slice_of_dc(&self, dc: DcId) -> &[SwitchId] {
        let r = &self.dcs[dc.index()].spines;
        &self.routes.spines[r.start as usize..r.end as usize]
    }

    /// Border routers of a DC, as a precomputed slice.
    #[inline]
    pub fn border_slice_of_dc(&self, dc: DcId) -> &[SwitchId] {
        let r = &self.dcs[dc.index()].borders;
        &self.routes.borders[r.start as usize..r.end as usize]
    }

    /// The podset a leaf switch belongs to.
    pub fn podset_of_leaf(&self, leaf: SwitchId) -> Option<PodsetId> {
        (leaf.tier == SwitchTier::Leaf)
            .then(|| self.leaf_podset.get(leaf.index as usize).copied())
            .flatten()
    }

    /// The DC a switch belongs to.
    pub fn dc_of_switch(&self, sw: SwitchId) -> Option<DcId> {
        match sw.tier {
            SwitchTier::Tor => self.pods.get(sw.index as usize).map(|p| p.dc),
            SwitchTier::Leaf => self
                .leaf_podset
                .get(sw.index as usize)
                .map(|ps| self.podsets[ps.index()].dc),
            SwitchTier::Spine => self.spine_dc.get(sw.index as usize).copied(),
            SwitchTier::Border => self.border_dc.get(sw.index as usize).copied(),
        }
    }

    /// IP of a server.
    pub fn ip_of(&self, id: ServerId) -> Ipv4Addr {
        self.servers[id.index()].ip
    }

    /// Reverse lookup: server by IP.
    pub fn server_by_ip(&self, ip: Ipv4Addr) -> Option<ServerId> {
        self.ip_index.get(&ip).copied()
    }

    /// Iterates over all switches in the deployment.
    pub fn switches(&self) -> impl Iterator<Item = SwitchId> + '_ {
        let tors = (0..self.pods.len() as u32).map(SwitchId::tor);
        let leaves = (0..self.leaf_podset.len() as u32).map(SwitchId::leaf);
        let spines = (0..self.spine_dc.len() as u32).map(SwitchId::spine);
        let borders = (0..self.border_dc.len() as u32).map(SwitchId::border);
        tors.chain(leaves).chain(spines).chain(borders)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DcSpec;

    fn two_dc_topology() -> Topology {
        Topology::build(TopologySpec {
            dcs: vec![DcSpec::tiny("west"), DcSpec::tiny("east")],
        })
        .unwrap()
    }

    #[test]
    fn entity_counts_match_spec() {
        let t = two_dc_topology();
        assert_eq!(t.dc_count(), 2);
        assert_eq!(t.server_count(), 64);
        assert_eq!(t.pod_count(), 16);
        assert_eq!(t.podset_count(), 4);
        // 16 ToR + 2*2*2 leaves + 2*4 spines + 2*2 borders
        assert_eq!(t.switch_count(), 16 + 8 + 8 + 4);
        assert_eq!(t.switches().count(), t.switch_count());
    }

    #[test]
    fn containment_is_consistent() {
        let t = two_dc_topology();
        for sid in t.servers() {
            let info = t.server(sid);
            let pod = t.pod(info.pod);
            assert!(pod.servers.contains(&sid.0));
            assert_eq!(pod.podset, info.podset);
            assert_eq!(pod.dc, info.dc);
            let podset = t.podset(info.podset);
            assert!(podset.pods.contains(&info.pod.0));
            assert_eq!(podset.dc, info.dc);
            assert!(t.dc(info.dc).servers.contains(&sid.0));
        }
    }

    #[test]
    fn ips_are_unique_and_reversible() {
        let t = two_dc_topology();
        let mut seen = std::collections::HashSet::new();
        for sid in t.servers() {
            let ip = t.ip_of(sid);
            assert!(seen.insert(ip), "duplicate ip {ip}");
            assert_eq!(t.server_by_ip(ip), Some(sid));
        }
        assert_eq!(t.server_by_ip(Ipv4Addr::new(192, 168, 0, 1)), None);
    }

    #[test]
    fn index_in_pod_matches_iteration_order() {
        let t = two_dc_topology();
        for p in 0..t.pod_count() as u32 {
            for (i, sid) in t.servers_in_pod(PodId(p)).enumerate() {
                assert_eq!(t.server(sid).index_in_pod, i as u32);
                assert_eq!(t.nth_server_of_pod(PodId(p), i as u32), Some(sid));
            }
            assert_eq!(t.nth_server_of_pod(PodId(p), 1_000), None);
        }
    }

    #[test]
    fn switch_ownership() {
        let t = two_dc_topology();
        // Every leaf belongs to the podset that lists it.
        for ps in 0..t.podset_count() as u32 {
            for leaf in t.leaves_of_podset(PodsetId(ps)) {
                assert_eq!(t.podset_of_leaf(leaf), Some(PodsetId(ps)));
            }
        }
        // Spines and borders are partitioned across DCs.
        let dc0_spines: Vec<_> = t.spines_of_dc(DcId(0)).collect();
        let dc1_spines: Vec<_> = t.spines_of_dc(DcId(1)).collect();
        assert_eq!(dc0_spines.len(), 4);
        assert_eq!(dc1_spines.len(), 4);
        assert!(dc0_spines.iter().all(|s| !dc1_spines.contains(s)));
        for s in dc0_spines {
            assert_eq!(t.dc_of_switch(s), Some(DcId(0)));
        }
        assert_eq!(t.dc_of_switch(SwitchId::tor(0)), Some(DcId(0)));
        assert_eq!(t.dc_of_switch(SwitchId::spine(9_999)), None);
    }

    #[test]
    fn tor_pod_mapping_is_bijective() {
        let t = two_dc_topology();
        for p in 0..t.pod_count() as u32 {
            let tor = t.tor_of_pod(PodId(p));
            assert_eq!(t.pod_of_tor(tor), Some(PodId(p)));
        }
        assert_eq!(t.pod_of_tor(SwitchId::leaf(0)), None);
        assert_eq!(t.pod_of_tor(SwitchId::tor(10_000)), None);
    }

    #[test]
    fn route_table_slices_match_iterator_accessors() {
        let t = two_dc_topology();
        for ps in 0..t.podset_count() as u32 {
            let from_iter: Vec<_> = t.leaves_of_podset(PodsetId(ps)).collect();
            assert_eq!(t.leaf_slice_of_podset(PodsetId(ps)), &from_iter[..]);
            assert!(!from_iter.is_empty());
        }
        for dc in t.dcs() {
            let spines: Vec<_> = t.spines_of_dc(dc).collect();
            assert_eq!(t.spine_slice_of_dc(dc), &spines[..]);
            let borders: Vec<_> = t.borders_of_dc(dc).collect();
            assert_eq!(t.border_slice_of_dc(dc), &borders[..]);
        }
    }

    #[test]
    fn ranges_are_contiguous_partition() {
        let t = two_dc_topology();
        // Per-DC server ranges must tile 0..server_count without overlap.
        let mut next = 0u32;
        for dc in t.dcs() {
            let r = &t.dc(dc).servers;
            assert_eq!(r.start, next);
            next = r.end;
        }
        assert_eq!(next as usize, t.server_count());
    }
}
