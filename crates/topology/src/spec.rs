//! Declarative topology specification.
//!
//! A [`TopologySpec`] is the configuration input from which the concrete
//! [`crate::Topology`] is materialized. It is (de)serializable so that
//! experiment scenarios can be stored as JSON files and loaded by the
//! harness, mirroring how the paper's controller consumes the network graph
//! maintained by the data-center management system.

use pingmesh_types::PingmeshError;
use serde::{Deserialize, Serialize};

/// Specification of one data center.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DcSpec {
    /// Human-readable name, e.g. `"DC1 (US West)"`.
    pub name: String,
    /// Number of Podsets in the DC.
    pub podsets: u32,
    /// Pods (ToRs) per Podset. The paper: "Tens of ToR switches (e.g., 20)
    /// are then connected to a second tier of Leaf switches".
    pub pods_per_podset: u32,
    /// Servers per Pod. The paper: "tens of servers (e.g., 40)".
    pub servers_per_pod: u32,
    /// Leaf switches per Podset (paper: "e.g., 2-8").
    pub leaves_per_podset: u32,
    /// Spine switches in the DC (paper: "tens to hundreds").
    pub spines: u32,
    /// Border routers connecting the DC to the inter-DC network.
    pub borders: u32,
}

impl DcSpec {
    /// A small but structurally complete DC, fast enough for unit tests.
    pub fn tiny(name: &str) -> Self {
        Self {
            name: name.to_string(),
            podsets: 2,
            pods_per_podset: 4,
            servers_per_pod: 4,
            leaves_per_podset: 2,
            spines: 4,
            borders: 2,
        }
    }

    /// A mid-size DC used by the paper-scale experiments: 20 podsets of
    /// 20 pods × 40 servers would match the paper exactly but is needlessly
    /// slow to simulate; this keeps the same shape at reduced fan-out.
    pub fn medium(name: &str) -> Self {
        Self {
            name: name.to_string(),
            podsets: 5,
            pods_per_podset: 8,
            servers_per_pod: 10,
            leaves_per_podset: 4,
            spines: 16,
            borders: 2,
        }
    }

    /// Servers in this DC.
    pub fn server_count(&self) -> u64 {
        self.podsets as u64 * self.pods_per_podset as u64 * self.servers_per_pod as u64
    }

    /// Pods (= ToRs) in this DC.
    pub fn pod_count(&self) -> u64 {
        self.podsets as u64 * self.pods_per_podset as u64
    }

    fn validate(&self, idx: usize) -> Result<(), PingmeshError> {
        let bad = |what: &str| {
            Err(PingmeshError::InvalidConfig(format!(
                "dc {idx} ({}): {what}",
                self.name
            )))
        };
        if self.podsets == 0 {
            return bad("podsets must be > 0");
        }
        if self.pods_per_podset == 0 {
            return bad("pods_per_podset must be > 0");
        }
        if self.servers_per_pod == 0 {
            return bad("servers_per_pod must be > 0");
        }
        if self.leaves_per_podset == 0 {
            return bad("leaves_per_podset must be > 0");
        }
        if self.spines == 0 {
            return bad("spines must be > 0");
        }
        if self.borders == 0 {
            return bad("borders must be > 0");
        }
        if self.server_count() > u16::MAX as u64 {
            // The IP scheme encodes the per-DC server index in two octets.
            return bad("more than 65535 servers per DC is not supported by the IP scheme");
        }
        Ok(())
    }
}

/// Specification of a whole deployment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TopologySpec {
    /// Data centers, in [`pingmesh_types::DcId`] order.
    pub dcs: Vec<DcSpec>,
}

impl TopologySpec {
    /// Validates structural invariants; returns `self` for chaining.
    pub fn validate(self) -> Result<Self, PingmeshError> {
        if self.dcs.is_empty() {
            return Err(PingmeshError::InvalidConfig(
                "a deployment needs at least one data center".into(),
            ));
        }
        if self.dcs.len() > 200 {
            return Err(PingmeshError::InvalidConfig(
                "the IP scheme supports at most 200 data centers".into(),
            ));
        }
        for (i, dc) in self.dcs.iter().enumerate() {
            dc.validate(i)?;
        }
        Ok(self)
    }

    /// A single tiny DC, for unit tests.
    pub fn single_tiny() -> Self {
        Self {
            dcs: vec![DcSpec::tiny("DC1")],
        }
    }

    /// Total servers in the deployment.
    pub fn server_count(&self) -> u64 {
        self.dcs.iter().map(|d| d.server_count()).sum()
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("spec serialization cannot fail")
    }

    /// Parses from JSON and validates.
    pub fn from_json(s: &str) -> Result<Self, PingmeshError> {
        let spec: TopologySpec =
            serde_json::from_str(s).map_err(|e| PingmeshError::Parse(e.to_string()))?;
        spec.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_spec_is_valid() {
        assert!(TopologySpec::single_tiny().validate().is_ok());
    }

    #[test]
    fn counts() {
        let dc = DcSpec::tiny("t");
        assert_eq!(dc.server_count(), 2 * 4 * 4);
        assert_eq!(dc.pod_count(), 8);
        let spec = TopologySpec {
            dcs: vec![DcSpec::tiny("a"), DcSpec::tiny("b")],
        };
        assert_eq!(spec.server_count(), 64);
    }

    #[test]
    fn zero_fields_are_rejected() {
        for field in 0..6 {
            let mut dc = DcSpec::tiny("t");
            match field {
                0 => dc.podsets = 0,
                1 => dc.pods_per_podset = 0,
                2 => dc.servers_per_pod = 0,
                3 => dc.leaves_per_podset = 0,
                4 => dc.spines = 0,
                _ => dc.borders = 0,
            }
            let spec = TopologySpec { dcs: vec![dc] };
            assert!(spec.validate().is_err(), "field {field} should fail");
        }
    }

    #[test]
    fn empty_deployment_is_rejected() {
        assert!(TopologySpec { dcs: vec![] }.validate().is_err());
    }

    #[test]
    fn oversized_dc_is_rejected() {
        let mut dc = DcSpec::tiny("huge");
        dc.podsets = 100;
        dc.pods_per_podset = 100;
        dc.servers_per_pod = 100;
        let spec = TopologySpec { dcs: vec![dc] };
        assert!(spec.validate().is_err());
    }

    #[test]
    fn json_roundtrip() {
        let spec = TopologySpec {
            dcs: vec![DcSpec::tiny("a"), DcSpec::medium("b")],
        };
        let back = TopologySpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn bad_json_is_a_parse_error() {
        assert!(matches!(
            TopologySpec::from_json("{nope"),
            Err(PingmeshError::Parse(_))
        ));
    }
}
