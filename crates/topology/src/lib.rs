//! Data-center network topology model for Pingmesh.
//!
//! Models the structure described in §2.1 of the paper (Figure 1): within a
//! data center, tens of servers connect to a top-of-rack (ToR) switch and
//! form a **Pod**; tens of ToRs connect to a tier of **Leaf** switches and
//! form a **Podset**; Podsets connect through a **Spine** tier; data centers
//! connect to each other through border routers over the inter-DC network.
//!
//! The crate provides:
//!
//! * a declarative, serializable [`spec::TopologySpec`] describing a
//!   deployment,
//! * the materialized [`model::Topology`] with O(1) containment lookups and
//!   IP address assignment,
//! * ECMP-faithful path resolution ([`route`]) — the exact hop sequence a
//!   five-tuple traverses, with per-switch hash salts, matching how the
//!   fabric load-balances and why "the exact path of a TCP connection is
//!   unknown at the server side",
//! * VIP → DIP mapping for the software load balancer ([`vip`]), and
//! * service → server mapping used for per-service SLA tracking
//!   ([`service`]).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod model;
pub mod route;
pub mod service;
pub mod spec;
pub mod vip;

pub use model::{RouteTables, Topology};
pub use route::{Path, Router, MAX_HOPS};
pub use service::ServiceMap;
pub use spec::{DcSpec, TopologySpec};
pub use vip::{VipDispatchError, VipTable};
