//! VIP → DIP mapping of the software load balancer (paper §6.2).
//!
//! Our load-balancing system exposes logical virtual IPs (VIPs); a control
//! plane maintains the mapping from each VIP to the physical destination
//! IPs (DIPs) of the servers behind it, and the data plane delivers packets
//! addressed to a VIP to one of the DIPs. Pingmesh's VIP monitoring
//! extension adds VIPs as pinglist targets; the probe is answered by a DIP
//! chosen by five-tuple hash, exactly like the production Ananta-style
//! load balancer the paper references.

use pingmesh_types::{FiveTuple, PingmeshError, ServerId, VipId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::net::Ipv4Addr;

/// Data-plane dispatch failure. `register` rejects empty DIP sets, but a
/// table deserialized from a control-plane document (the index is rebuilt
/// with [`VipTable::reindex`]) can still carry a VIP whose backend set has
/// been drained to nothing; dispatch must surface that instead of dividing
/// by zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VipDispatchError {
    /// The VIP exists but has no healthy DIPs behind it.
    EmptyDipSet(VipId),
}

impl fmt::Display for VipDispatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VipDispatchError::EmptyDipSet(id) => {
                write!(f, "VIP {} has an empty DIP set", id.0)
            }
        }
    }
}

impl std::error::Error for VipDispatchError {}

impl From<VipDispatchError> for PingmeshError {
    fn from(e: VipDispatchError) -> Self {
        PingmeshError::InvalidConfig(e.to_string())
    }
}

/// One VIP with its backing DIP set.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VipEntry {
    /// VIP identity.
    pub id: VipId,
    /// Virtual address exposed to clients. Lives in 172.16.0.0/16 so it
    /// can never collide with physical server addresses (10.0.0.0/8).
    pub vip: Ipv4Addr,
    /// Servers backing the VIP.
    pub dips: Vec<ServerId>,
}

/// The VIP table maintained by the load-balancer control plane.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VipTable {
    entries: Vec<VipEntry>,
    #[serde(skip)]
    by_ip: HashMap<Ipv4Addr, usize>,
}

impl VipTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Address assigned to the `n`-th VIP.
    pub fn address_for(n: u32) -> Ipv4Addr {
        let [hi, lo] = (n as u16).to_be_bytes();
        Ipv4Addr::new(172, 16, hi, lo)
    }

    /// Registers a VIP backed by the given servers.
    pub fn register(&mut self, dips: Vec<ServerId>) -> Result<VipId, PingmeshError> {
        if dips.is_empty() {
            return Err(PingmeshError::InvalidConfig(
                "a VIP needs at least one DIP".into(),
            ));
        }
        let id = VipId(self.entries.len() as u32);
        let vip = Self::address_for(id.0);
        self.by_ip.insert(vip, self.entries.len());
        self.entries.push(VipEntry { id, vip, dips });
        Ok(id)
    }

    /// All registered VIPs.
    pub fn entries(&self) -> &[VipEntry] {
        &self.entries
    }

    /// Looks up a VIP entry by id.
    pub fn get(&self, id: VipId) -> Option<&VipEntry> {
        self.entries.get(id.0 as usize)
    }

    /// Looks up a VIP entry by address.
    pub fn by_address(&self, ip: Ipv4Addr) -> Option<&VipEntry> {
        self.by_ip.get(&ip).map(|&i| &self.entries[i])
    }

    /// Data-plane dispatch: which DIP serves a flow addressed to `vip`?
    /// Deterministic per five-tuple (connection affinity), balanced across
    /// DIPs — the essential behaviour of the paper's SLB. `Ok(None)` means
    /// the address is not a registered VIP at all (the caller falls through
    /// to physical resolution); an empty DIP set is a typed error so the
    /// SLB/controller can degrade gracefully instead of panicking.
    pub fn dispatch(
        &self,
        vip: Ipv4Addr,
        tuple: &FiveTuple,
    ) -> Result<Option<ServerId>, VipDispatchError> {
        let Some(e) = self.by_address(vip) else {
            return Ok(None);
        };
        if e.dips.is_empty() {
            return Err(VipDispatchError::EmptyDipSet(e.id));
        }
        let idx = (tuple.ecmp_hash() % e.dips.len() as u64) as usize;
        Ok(Some(e.dips[idx]))
    }

    /// Rebuilds the by-address index (needed after deserialization, since
    /// the index is not serialized).
    pub fn reindex(&mut self) {
        self.by_ip = self
            .entries
            .iter()
            .enumerate()
            .map(|(i, e)| (e.vip, i))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuple(sp: u16, dst: Ipv4Addr) -> FiveTuple {
        FiveTuple::tcp(Ipv4Addr::new(10, 0, 0, 1), sp, dst, 80)
    }

    #[test]
    fn register_and_lookup() {
        let mut t = VipTable::new();
        let id = t.register(vec![ServerId(1), ServerId(2)]).unwrap();
        let e = t.get(id).unwrap();
        assert_eq!(e.vip, Ipv4Addr::new(172, 16, 0, 0));
        assert_eq!(t.by_address(e.vip).unwrap().id, id);
        assert_eq!(t.by_address(Ipv4Addr::new(172, 16, 0, 99)), None);
    }

    #[test]
    fn empty_dip_set_is_rejected() {
        assert!(VipTable::new().register(vec![]).is_err());
    }

    #[test]
    fn dispatch_is_deterministic_and_balanced() {
        let mut t = VipTable::new();
        let dips: Vec<ServerId> = (0..4).map(ServerId).collect();
        let id = t.register(dips.clone()).unwrap();
        let vip = t.get(id).unwrap().vip;
        let mut counts = vec![0u32; 4];
        for sp in 0..4_000u16 {
            let tu = tuple(sp, vip);
            let d1 = t.dispatch(vip, &tu).unwrap().unwrap();
            let d2 = t.dispatch(vip, &tu).unwrap().unwrap();
            assert_eq!(d1, d2, "connection affinity violated");
            counts[d1.index()] += 1;
        }
        for &c in &counts {
            assert!(
                (700..=1_300).contains(&c),
                "unbalanced dispatch: {counts:?}"
            );
        }
    }

    #[test]
    fn dispatch_to_unknown_vip_is_none() {
        let t = VipTable::new();
        assert_eq!(
            t.dispatch(
                Ipv4Addr::new(172, 16, 0, 0),
                &tuple(1, Ipv4Addr::new(172, 16, 0, 0))
            ),
            Ok(None)
        );
    }

    /// Regression: a VIP entry with zero DIPs — unreachable through
    /// `register`, but constructible from a serialized control-plane
    /// document — used to divide by zero in `dispatch` and panic the data
    /// plane. It must be a typed error instead.
    #[test]
    fn dispatch_with_empty_dip_set_is_typed_error_not_panic() {
        let json = r#"{"entries":[{"id":0,"vip":"172.16.0.0","dips":[]}]}"#;
        let mut t: VipTable = serde_json::from_str(json).expect("table parses");
        t.reindex();
        let vip = Ipv4Addr::new(172, 16, 0, 0);
        assert_eq!(
            t.dispatch(vip, &tuple(7, vip)),
            Err(VipDispatchError::EmptyDipSet(VipId(0)))
        );
        // And the error converts into the crate-wide error type for
        // controller/SLB callers that bubble it up.
        let e: PingmeshError = VipDispatchError::EmptyDipSet(VipId(0)).into();
        assert!(matches!(e, PingmeshError::InvalidConfig(_)));
    }

    #[test]
    fn reindex_restores_lookup_after_serde() {
        let mut t = VipTable::new();
        t.register(vec![ServerId(5)]).unwrap();
        let json = serde_json::to_string(&t).unwrap();
        let mut back: VipTable = serde_json::from_str(&json).unwrap();
        assert!(back.by_address(VipTable::address_for(0)).is_none());
        back.reindex();
        assert!(back.by_address(VipTable::address_for(0)).is_some());
    }

    #[test]
    fn vip_addresses_do_not_collide_with_server_space() {
        for n in [0u32, 1, 255, 65_535] {
            let ip = VipTable::address_for(n);
            assert_eq!(ip.octets()[0], 172);
        }
    }
}
