//! VIP → DIP mapping of the software load balancer (paper §6.2).
//!
//! Our load-balancing system exposes logical virtual IPs (VIPs); a control
//! plane maintains the mapping from each VIP to the physical destination
//! IPs (DIPs) of the servers behind it, and the data plane delivers packets
//! addressed to a VIP to one of the DIPs. Pingmesh's VIP monitoring
//! extension adds VIPs as pinglist targets; the probe is answered by a DIP
//! chosen by five-tuple hash, exactly like the production Ananta-style
//! load balancer the paper references.

use pingmesh_types::{FiveTuple, PingmeshError, ServerId, VipId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// One VIP with its backing DIP set.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VipEntry {
    /// VIP identity.
    pub id: VipId,
    /// Virtual address exposed to clients. Lives in 172.16.0.0/16 so it
    /// can never collide with physical server addresses (10.0.0.0/8).
    pub vip: Ipv4Addr,
    /// Servers backing the VIP.
    pub dips: Vec<ServerId>,
}

/// The VIP table maintained by the load-balancer control plane.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VipTable {
    entries: Vec<VipEntry>,
    #[serde(skip)]
    by_ip: HashMap<Ipv4Addr, usize>,
}

impl VipTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Address assigned to the `n`-th VIP.
    pub fn address_for(n: u32) -> Ipv4Addr {
        let [hi, lo] = (n as u16).to_be_bytes();
        Ipv4Addr::new(172, 16, hi, lo)
    }

    /// Registers a VIP backed by the given servers.
    pub fn register(&mut self, dips: Vec<ServerId>) -> Result<VipId, PingmeshError> {
        if dips.is_empty() {
            return Err(PingmeshError::InvalidConfig(
                "a VIP needs at least one DIP".into(),
            ));
        }
        let id = VipId(self.entries.len() as u32);
        let vip = Self::address_for(id.0);
        self.by_ip.insert(vip, self.entries.len());
        self.entries.push(VipEntry { id, vip, dips });
        Ok(id)
    }

    /// All registered VIPs.
    pub fn entries(&self) -> &[VipEntry] {
        &self.entries
    }

    /// Looks up a VIP entry by id.
    pub fn get(&self, id: VipId) -> Option<&VipEntry> {
        self.entries.get(id.0 as usize)
    }

    /// Looks up a VIP entry by address.
    pub fn by_address(&self, ip: Ipv4Addr) -> Option<&VipEntry> {
        self.by_ip.get(&ip).map(|&i| &self.entries[i])
    }

    /// Data-plane dispatch: which DIP serves a flow addressed to `vip`?
    /// Deterministic per five-tuple (connection affinity), balanced across
    /// DIPs — the essential behaviour of the paper's SLB.
    pub fn dispatch(&self, vip: Ipv4Addr, tuple: &FiveTuple) -> Option<ServerId> {
        let e = self.by_address(vip)?;
        let idx = (tuple.ecmp_hash() % e.dips.len() as u64) as usize;
        Some(e.dips[idx])
    }

    /// Rebuilds the by-address index (needed after deserialization, since
    /// the index is not serialized).
    pub fn reindex(&mut self) {
        self.by_ip = self
            .entries
            .iter()
            .enumerate()
            .map(|(i, e)| (e.vip, i))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuple(sp: u16, dst: Ipv4Addr) -> FiveTuple {
        FiveTuple::tcp(Ipv4Addr::new(10, 0, 0, 1), sp, dst, 80)
    }

    #[test]
    fn register_and_lookup() {
        let mut t = VipTable::new();
        let id = t.register(vec![ServerId(1), ServerId(2)]).unwrap();
        let e = t.get(id).unwrap();
        assert_eq!(e.vip, Ipv4Addr::new(172, 16, 0, 0));
        assert_eq!(t.by_address(e.vip).unwrap().id, id);
        assert_eq!(t.by_address(Ipv4Addr::new(172, 16, 0, 99)), None);
    }

    #[test]
    fn empty_dip_set_is_rejected() {
        assert!(VipTable::new().register(vec![]).is_err());
    }

    #[test]
    fn dispatch_is_deterministic_and_balanced() {
        let mut t = VipTable::new();
        let dips: Vec<ServerId> = (0..4).map(ServerId).collect();
        let id = t.register(dips.clone()).unwrap();
        let vip = t.get(id).unwrap().vip;
        let mut counts = vec![0u32; 4];
        for sp in 0..4_000u16 {
            let tu = tuple(sp, vip);
            let d1 = t.dispatch(vip, &tu).unwrap();
            let d2 = t.dispatch(vip, &tu).unwrap();
            assert_eq!(d1, d2, "connection affinity violated");
            counts[d1.index()] += 1;
        }
        for &c in &counts {
            assert!(
                (700..=1_300).contains(&c),
                "unbalanced dispatch: {counts:?}"
            );
        }
    }

    #[test]
    fn dispatch_to_unknown_vip_is_none() {
        let t = VipTable::new();
        assert_eq!(
            t.dispatch(
                Ipv4Addr::new(172, 16, 0, 0),
                &tuple(1, Ipv4Addr::new(172, 16, 0, 0))
            ),
            None
        );
    }

    #[test]
    fn reindex_restores_lookup_after_serde() {
        let mut t = VipTable::new();
        t.register(vec![ServerId(5)]).unwrap();
        let json = serde_json::to_string(&t).unwrap();
        let mut back: VipTable = serde_json::from_str(&json).unwrap();
        assert!(back.by_address(VipTable::address_for(0)).is_none());
        back.reindex();
        assert!(back.by_address(VipTable::address_for(0)).is_some());
    }

    #[test]
    fn vip_addresses_do_not_collide_with_server_space() {
        for n in [0u32, 1, 255, 65_535] {
            let ip = VipTable::address_for(n);
            assert_eq!(ip.octets()[0], 172);
        }
    }
}
