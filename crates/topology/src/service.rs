//! Service → server mapping.
//!
//! "The network SLAs for all the services and applications are calculated
//! by mapping the services and applications to the servers they use"
//! (paper §1). A [`ServiceMap`] records which servers each service runs
//! on; the DSA pipeline later filters probe records through this map to
//! compute per-service latency and drop-rate SLAs.

use crate::model::Topology;
use pingmesh_types::{PingmeshError, ServerId, ServiceId};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Mapping from services to the servers they occupy. A server may host
/// multiple services (services share the fleet).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ServiceMap {
    names: Vec<String>,
    servers: Vec<Vec<ServerId>>,
    #[serde(skip)]
    by_server: HashMap<ServerId, Vec<ServiceId>>,
}

impl ServiceMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a service on a set of servers. Duplicate servers within
    /// one registration are deduplicated; registration order defines ids.
    pub fn register(
        &mut self,
        name: &str,
        servers: impl IntoIterator<Item = ServerId>,
    ) -> Result<ServiceId, PingmeshError> {
        let mut seen = HashSet::new();
        let list: Vec<ServerId> = servers.into_iter().filter(|s| seen.insert(*s)).collect();
        if list.is_empty() {
            return Err(PingmeshError::InvalidConfig(format!(
                "service {name} has no servers"
            )));
        }
        let id = ServiceId(self.names.len() as u32);
        for &s in &list {
            self.by_server.entry(s).or_default().push(id);
        }
        self.names.push(name.to_string());
        self.servers.push(list);
        Ok(id)
    }

    /// Registers a service spanning every `stride`-th server of a DC —
    /// a convenient way to lay services across pods in experiments.
    pub fn register_strided(
        &mut self,
        name: &str,
        topo: &Topology,
        dc: pingmesh_types::DcId,
        stride: usize,
    ) -> Result<ServiceId, PingmeshError> {
        let servers = topo.servers_in_dc(dc).step_by(stride.max(1));
        self.register(name, servers)
    }

    /// Number of registered services.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if no services are registered.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Name of a service.
    pub fn name(&self, id: ServiceId) -> Option<&str> {
        self.names.get(id.0 as usize).map(|s| s.as_str())
    }

    /// Servers of a service.
    pub fn servers_of(&self, id: ServiceId) -> &[ServerId] {
        self.servers
            .get(id.0 as usize)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Services hosted on a server.
    pub fn services_on(&self, server: ServerId) -> &[ServiceId] {
        self.by_server
            .get(&server)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// True when both endpoints belong to the service — the condition for
    /// a probe record to count toward that service's SLA.
    pub fn covers_pair(&self, id: ServiceId, a: ServerId, b: ServerId) -> bool {
        self.services_on(a).contains(&id) && self.services_on(b).contains(&id)
    }

    /// All service ids.
    pub fn services(&self) -> impl Iterator<Item = ServiceId> + '_ {
        (0..self.names.len() as u32).map(ServiceId)
    }

    /// Rebuilds the reverse index after deserialization.
    pub fn reindex(&mut self) {
        self.by_server.clear();
        for (i, list) in self.servers.iter().enumerate() {
            for &s in list {
                self.by_server
                    .entry(s)
                    .or_default()
                    .push(ServiceId(i as u32));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::TopologySpec;

    #[test]
    fn register_and_query() {
        let mut m = ServiceMap::new();
        let search = m
            .register("search", [ServerId(0), ServerId(1), ServerId(0)])
            .unwrap();
        let store = m.register("storage", [ServerId(1), ServerId(2)]).unwrap();
        assert_eq!(m.len(), 2);
        assert_eq!(m.name(search), Some("search"));
        assert_eq!(m.servers_of(search), &[ServerId(0), ServerId(1)]);
        assert_eq!(m.services_on(ServerId(1)), &[search, store]);
        assert!(m.covers_pair(search, ServerId(0), ServerId(1)));
        assert!(!m.covers_pair(search, ServerId(0), ServerId(2)));
        assert!(m.covers_pair(store, ServerId(1), ServerId(2)));
    }

    #[test]
    fn empty_service_is_rejected() {
        assert!(ServiceMap::new().register("void", []).is_err());
    }

    #[test]
    fn strided_registration_spreads_across_pods() {
        let topo = Topology::build(TopologySpec::single_tiny()).unwrap();
        let mut m = ServiceMap::new();
        let id = m
            .register_strided("svc", &topo, pingmesh_types::DcId(0), 4)
            .unwrap();
        let servers = m.servers_of(id);
        assert_eq!(servers.len(), topo.server_count() / 4);
        let pods: HashSet<_> = servers.iter().map(|&s| topo.server(s).pod).collect();
        assert!(pods.len() > 1, "service should span multiple pods");
    }

    #[test]
    fn unknown_ids_yield_empty_slices() {
        let m = ServiceMap::new();
        assert!(m.servers_of(ServiceId(9)).is_empty());
        assert!(m.services_on(ServerId(9)).is_empty());
        assert_eq!(m.name(ServiceId(9)), None);
    }

    #[test]
    fn reindex_restores_reverse_lookup() {
        let mut m = ServiceMap::new();
        m.register("a", [ServerId(3)]).unwrap();
        let json = serde_json::to_string(&m).unwrap();
        let mut back: ServiceMap = serde_json::from_str(&json).unwrap();
        assert!(back.services_on(ServerId(3)).is_empty());
        back.reindex();
        assert_eq!(back.services_on(ServerId(3)).len(), 1);
    }
}
