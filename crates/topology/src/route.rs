//! ECMP-faithful path resolution.
//!
//! The fabric load-balances with ECMP over the five-tuple hash (paper
//! §2.1): at every tier a switch picks one of its equal-cost uplinks by
//! hashing the five-tuple, so "the exact path of a TCP connection is
//! unknown at the server side even if the five-tuple of the connection is
//! known". We reproduce that: [`Router::resolve`] maps a (src, dst,
//! five-tuple) to the exact device sequence the packet traverses, mixing a
//! per-decision salt into the hash so choices at successive tiers are
//! decorrelated — but fully deterministic, so a retransmitted SYN (same
//! five-tuple) follows the same path, which is what makes deterministic
//! black-holes kill a connection rather than one packet.

use crate::model::Topology;
use pingmesh_types::{DeviceId, FiveTuple, InlineVec, ServerId, SwitchId};

/// Upper bound on devices per path, fixed by the Clos structure: the
/// longest case (inter-DC) is src + ToR/Leaf/Spine/Border + Border/Spine/
/// Leaf/ToR + dst = 10 devices.
pub const MAX_HOPS: usize = 10;

/// A resolved forwarding path: the ordered devices a packet traverses,
/// including both endpoint servers.
///
/// Hops are stored inline (`InlineVec`), so resolving a path performs no
/// heap allocation and `Path` is `Copy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Path {
    /// Devices from source server to destination server, inclusive.
    pub hops: InlineVec<DeviceId, MAX_HOPS>,
}

impl Path {
    /// Number of store-and-forward hops (links) on the path.
    pub fn link_count(&self) -> usize {
        self.hops.len().saturating_sub(1)
    }

    /// The switches on the path, in order.
    pub fn switches(&self) -> impl Iterator<Item = SwitchId> + '_ {
        self.hops.iter().filter_map(|d| match d {
            DeviceId::Switch(s) => Some(*s),
            DeviceId::Server(_) => None,
        })
    }

    /// Whether the path crosses the given device.
    pub fn contains(&self, dev: DeviceId) -> bool {
        self.hops.contains(&dev)
    }
}

/// splitmix64 finalizer used to decorrelate per-hop ECMP decisions.
#[inline]
fn mix(h: u64, salt: u64) -> u64 {
    let mut z = h ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Stateless path resolver over a topology.
///
/// ```
/// use pingmesh_topology::{Router, Topology, TopologySpec};
/// use pingmesh_types::{FiveTuple, ServerId};
///
/// let topo = Topology::build(TopologySpec::single_tiny()).unwrap();
/// let router = Router::new(&topo);
/// let (a, b) = (ServerId(0), ServerId(17));
/// let tuple = FiveTuple::tcp(topo.ip_of(a), 40_000, topo.ip_of(b), 8_100);
/// let path = router.resolve(a, b, &tuple);
/// // Cross-podset path: ToR -> Leaf -> Spine -> Leaf -> ToR.
/// assert_eq!(path.switches().count(), 5);
/// // Same five-tuple, same path — ECMP is deterministic per flow.
/// assert_eq!(router.resolve(a, b, &tuple), path);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Router<'a> {
    topo: &'a Topology,
}

/// Salts naming each ECMP decision point, so the same five-tuple makes
/// independent choices at each tier.
mod salt {
    pub const UP_LEAF: u64 = 0x01;
    pub const UP_SPINE: u64 = 0x02;
    pub const UP_BORDER: u64 = 0x03;
    pub const DOWN_BORDER: u64 = 0x04;
    pub const DOWN_SPINE: u64 = 0x05;
    pub const DOWN_LEAF: u64 = 0x06;
}

impl<'a> Router<'a> {
    /// Creates a router over a topology.
    pub fn new(topo: &'a Topology) -> Self {
        Self { topo }
    }

    #[inline]
    fn pick<T: Copy>(items: &[T], hash: u64, s: u64) -> T {
        debug_assert!(!items.is_empty());
        items[(mix(hash, s) % items.len() as u64) as usize]
    }

    /// ECMP choice among `items` minus the excluded switches, without
    /// materializing the filtered candidate set: count the survivors, take
    /// the hash modulo that count, then walk to the k-th survivor. This is
    /// element-for-element identical to collecting the survivors into a
    /// `Vec` and indexing it, but allocation-free.
    #[inline]
    fn pick_sw<F: Fn(SwitchId) -> bool>(
        items: &[SwitchId],
        hash: u64,
        s: u64,
        excluded: &F,
    ) -> SwitchId {
        let avail = items.iter().filter(|&&x| !excluded(x)).count();
        if avail == 0 {
            // Every candidate is excluded: the fabric has no alternative,
            // keep the original choice.
            return Self::pick(items, hash, s);
        }
        let k = (mix(hash, s) % avail as u64) as usize;
        items
            .iter()
            .copied()
            .filter(|&x| !excluded(x))
            .nth(k)
            .expect("k < survivor count")
    }

    /// Resolves the exact path taken by a packet with the given five-tuple
    /// from `src` to `dst`.
    ///
    /// The path of the reverse direction is obtained by resolving with
    /// [`FiveTuple::reversed`] and swapped endpoints; it is in general a
    /// *different* path through the fabric, as in a real Clos network.
    pub fn resolve(&self, src: ServerId, dst: ServerId, tuple: &FiveTuple) -> Path {
        self.resolve_excluding(src, dst, tuple, &|_| false)
    }

    /// Like [`Router::resolve`], but ECMP decisions skip switches for which
    /// `excluded` returns true — modelling the routing update that takes an
    /// isolated switch out of rotation (paper §5.2: "the silent random
    /// packet drops were gone after we isolated the switch from serving
    /// live traffic"). If *every* candidate at a tier is excluded the
    /// original choice is kept (the fabric has no alternative).
    ///
    /// This is the innermost loop of probe simulation; candidate sets come
    /// from the topology's precomputed route tables and the hop list is
    /// inline, so a call performs zero heap allocations.
    pub fn resolve_excluding<F: Fn(SwitchId) -> bool>(
        &self,
        src: ServerId,
        dst: ServerId,
        tuple: &FiveTuple,
        excluded: &F,
    ) -> Path {
        let t = self.topo;
        let s = *t.server(src);
        let d = *t.server(dst);
        let h = tuple.ecmp_hash();
        let mut hops: InlineVec<DeviceId, MAX_HOPS> = InlineVec::new();
        hops.push(src.into());

        if src == dst {
            // Loopback never leaves the host.
            return Path { hops };
        }

        let src_tor = t.tor_of_pod(s.pod);
        hops.push(src_tor.into());

        if s.pod == d.pod {
            // Intra-pod: one ToR bounce.
            hops.push(dst.into());
            return Path { hops };
        }

        if s.podset == d.podset {
            // Intra-podset: ToR -> Leaf (ECMP) -> ToR.
            let leaves = t.leaf_slice_of_podset(s.podset);
            hops.push(Self::pick_sw(leaves, h, salt::UP_LEAF, excluded).into());
            hops.push(t.tor_of_pod(d.pod).into());
            hops.push(dst.into());
            return Path { hops };
        }

        if s.dc == d.dc {
            // Intra-DC: ToR -> Leaf -> Spine (ECMP) -> Leaf -> ToR.
            let up_leaves = t.leaf_slice_of_podset(s.podset);
            hops.push(Self::pick_sw(up_leaves, h, salt::UP_LEAF, excluded).into());
            let spines = t.spine_slice_of_dc(s.dc);
            hops.push(Self::pick_sw(spines, h, salt::UP_SPINE, excluded).into());
            let down_leaves = t.leaf_slice_of_podset(d.podset);
            hops.push(Self::pick_sw(down_leaves, h, salt::DOWN_LEAF, excluded).into());
            hops.push(t.tor_of_pod(d.pod).into());
            hops.push(dst.into());
            return Path { hops };
        }

        // Inter-DC: up through the source fabric, across the long-haul
        // link between border routers, down through the destination fabric.
        let up_leaves = t.leaf_slice_of_podset(s.podset);
        hops.push(Self::pick_sw(up_leaves, h, salt::UP_LEAF, excluded).into());
        let up_spines = t.spine_slice_of_dc(s.dc);
        hops.push(Self::pick_sw(up_spines, h, salt::UP_SPINE, excluded).into());
        let up_borders = t.border_slice_of_dc(s.dc);
        hops.push(Self::pick_sw(up_borders, h, salt::UP_BORDER, excluded).into());
        let down_borders = t.border_slice_of_dc(d.dc);
        hops.push(Self::pick_sw(down_borders, h, salt::DOWN_BORDER, excluded).into());
        let down_spines = t.spine_slice_of_dc(d.dc);
        hops.push(Self::pick_sw(down_spines, h, salt::DOWN_SPINE, excluded).into());
        let down_leaves = t.leaf_slice_of_podset(d.podset);
        hops.push(Self::pick_sw(down_leaves, h, salt::DOWN_LEAF, excluded).into());
        hops.push(t.tor_of_pod(d.pod).into());
        hops.push(dst.into());
        Path { hops }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{DcSpec, TopologySpec};
    use pingmesh_types::{PodId, SwitchTier};
    use std::collections::HashSet;

    fn topo() -> Topology {
        Topology::build(TopologySpec {
            dcs: vec![DcSpec::tiny("west"), DcSpec::tiny("east")],
        })
        .unwrap()
    }

    fn tuple_for(t: &Topology, src: ServerId, dst: ServerId, sp: u16) -> FiveTuple {
        FiveTuple::tcp(t.ip_of(src), sp, t.ip_of(dst), 8100)
    }

    fn tiers(p: &Path) -> Vec<SwitchTier> {
        p.switches().map(|s| s.tier).collect()
    }

    #[test]
    fn loopback_has_no_switches() {
        let t = topo();
        let r = Router::new(&t);
        let s = ServerId(0);
        let p = r.resolve(s, s, &tuple_for(&t, s, s, 1000));
        assert_eq!(p.hops, vec![DeviceId::Server(s)]);
        assert_eq!(p.link_count(), 0);
    }

    #[test]
    fn intra_pod_path_shape() {
        let t = topo();
        let r = Router::new(&t);
        let mut it = t.servers_in_pod(PodId(0));
        let (a, b) = (it.next().unwrap(), it.next().unwrap());
        let p = r.resolve(a, b, &tuple_for(&t, a, b, 1000));
        assert_eq!(tiers(&p), vec![SwitchTier::Tor]);
        assert_eq!(p.link_count(), 2);
    }

    #[test]
    fn intra_podset_path_shape() {
        let t = topo();
        let r = Router::new(&t);
        // pods 0 and 1 are in podset 0 of the tiny spec
        let a = t.servers_in_pod(PodId(0)).next().unwrap();
        let b = t.servers_in_pod(PodId(1)).next().unwrap();
        let p = r.resolve(a, b, &tuple_for(&t, a, b, 1000));
        assert_eq!(
            tiers(&p),
            vec![SwitchTier::Tor, SwitchTier::Leaf, SwitchTier::Tor]
        );
    }

    #[test]
    fn intra_dc_cross_podset_path_shape() {
        let t = topo();
        let r = Router::new(&t);
        // pods 0 (podset 0) and 4 (podset 1) in dc0 of the tiny spec
        let a = t.servers_in_pod(PodId(0)).next().unwrap();
        let b = t.servers_in_pod(PodId(4)).next().unwrap();
        assert_eq!(t.server(a).dc, t.server(b).dc);
        assert_ne!(t.server(a).podset, t.server(b).podset);
        let p = r.resolve(a, b, &tuple_for(&t, a, b, 1000));
        assert_eq!(
            tiers(&p),
            vec![
                SwitchTier::Tor,
                SwitchTier::Leaf,
                SwitchTier::Spine,
                SwitchTier::Leaf,
                SwitchTier::Tor
            ]
        );
    }

    #[test]
    fn inter_dc_path_shape() {
        let t = topo();
        let r = Router::new(&t);
        let a = t.servers_in_dc(pingmesh_types::DcId(0)).next().unwrap();
        let b = t.servers_in_dc(pingmesh_types::DcId(1)).next().unwrap();
        let p = r.resolve(a, b, &tuple_for(&t, a, b, 1000));
        assert_eq!(
            tiers(&p),
            vec![
                SwitchTier::Tor,
                SwitchTier::Leaf,
                SwitchTier::Spine,
                SwitchTier::Border,
                SwitchTier::Border,
                SwitchTier::Spine,
                SwitchTier::Leaf,
                SwitchTier::Tor
            ]
        );
    }

    #[test]
    fn path_is_deterministic_per_tuple() {
        let t = topo();
        let r = Router::new(&t);
        let a = t.servers_in_pod(PodId(0)).next().unwrap();
        let b = t.servers_in_pod(PodId(4)).next().unwrap();
        let tu = tuple_for(&t, a, b, 3777);
        assert_eq!(r.resolve(a, b, &tu), r.resolve(a, b, &tu));
    }

    #[test]
    fn ecmp_spreads_over_spines() {
        let t = topo();
        let r = Router::new(&t);
        let a = t.servers_in_pod(PodId(0)).next().unwrap();
        let b = t.servers_in_pod(PodId(4)).next().unwrap();
        let mut spines = HashSet::new();
        for sp in 0..512u16 {
            let p = r.resolve(a, b, &tuple_for(&t, a, b, 20_000 + sp));
            let spine = p
                .switches()
                .find(|s| s.tier == SwitchTier::Spine)
                .expect("cross-podset path must cross a spine");
            spines.insert(spine);
        }
        // tiny spec has 4 spines per DC; with 512 tuples all must appear.
        assert_eq!(spines.len(), 4, "ECMP failed to cover all spines");
    }

    #[test]
    fn picked_devices_belong_to_the_right_scope() {
        let t = topo();
        let r = Router::new(&t);
        let a = t.servers_in_dc(pingmesh_types::DcId(0)).next().unwrap();
        let b = t.servers_in_dc(pingmesh_types::DcId(1)).next().unwrap();
        for sp in [1000u16, 2000, 3000] {
            let p = r.resolve(a, b, &tuple_for(&t, a, b, sp));
            let sw: Vec<SwitchId> = p.switches().collect();
            // hops 0..=3 (ToR, Leaf, Spine, Border) live in the source DC,
            // hops 4..=7 (Border, Spine, Leaf, ToR) in the destination DC.
            for (i, hop) in sw.iter().enumerate() {
                let expect = if i < 4 {
                    t.server(a).dc
                } else {
                    t.server(b).dc
                };
                assert_eq!(t.dc_of_switch(*hop), Some(expect), "hop {i}");
            }
        }
    }

    #[test]
    fn exclusions_steer_ecmp_around_switches() {
        let t = topo();
        let r = Router::new(&t);
        let a = t.servers_in_pod(PodId(0)).next().unwrap();
        let b = t.servers_in_pod(PodId(4)).next().unwrap();
        // Exclude whatever spine each tuple would normally pick: the
        // resolved path must avoid it while staying well-formed.
        for sp in 0..64u16 {
            let tu = tuple_for(&t, a, b, 10_000 + sp);
            let normal = r.resolve(a, b, &tu);
            let spine = normal
                .switches()
                .find(|s| s.tier == SwitchTier::Spine)
                .unwrap();
            let rerouted = r.resolve_excluding(a, b, &tu, &|s| s == spine);
            assert!(
                !rerouted.contains(spine.into()),
                "excluded spine {spine} still on path"
            );
            assert_eq!(rerouted.switches().count(), normal.switches().count());
        }
        // When every candidate is excluded, the original choice is kept.
        let tu = tuple_for(&t, a, b, 999);
        let all_excluded = r.resolve_excluding(a, b, &tu, &|s| s.tier == SwitchTier::Spine);
        assert_eq!(all_excluded, r.resolve(a, b, &tu));
    }

    /// The pre-refactor resolver, verbatim: collects candidate sets into
    /// `Vec`s per call and indexes the filtered set. Kept here as the
    /// golden reference the zero-allocation resolver must match
    /// hop-for-hop.
    mod legacy {
        use super::*;

        fn pick<T: Copy>(items: &[T], hash: u64, s: u64) -> T {
            items[(mix(hash, s) % items.len() as u64) as usize]
        }

        fn pick_sw(
            items: &[SwitchId],
            hash: u64,
            s: u64,
            excluded: &dyn Fn(SwitchId) -> bool,
        ) -> SwitchId {
            let avail: Vec<SwitchId> = items.iter().copied().filter(|&x| !excluded(x)).collect();
            if avail.is_empty() {
                pick(items, hash, s)
            } else {
                pick(&avail, hash, s)
            }
        }

        pub fn resolve(
            t: &Topology,
            src: ServerId,
            dst: ServerId,
            tuple: &FiveTuple,
            excluded: &dyn Fn(SwitchId) -> bool,
        ) -> Vec<DeviceId> {
            let s = *t.server(src);
            let d = *t.server(dst);
            let h = tuple.ecmp_hash();
            let mut hops: Vec<DeviceId> = Vec::with_capacity(10);
            hops.push(src.into());
            if src == dst {
                return hops;
            }
            hops.push(t.tor_of_pod(s.pod).into());
            if s.pod == d.pod {
                hops.push(dst.into());
                return hops;
            }
            if s.podset == d.podset {
                let leaves: Vec<SwitchId> = t.leaves_of_podset(s.podset).collect();
                hops.push(pick_sw(&leaves, h, salt::UP_LEAF, excluded).into());
                hops.push(t.tor_of_pod(d.pod).into());
                hops.push(dst.into());
                return hops;
            }
            if s.dc == d.dc {
                let up_leaves: Vec<SwitchId> = t.leaves_of_podset(s.podset).collect();
                hops.push(pick_sw(&up_leaves, h, salt::UP_LEAF, excluded).into());
                let spines: Vec<SwitchId> = t.spines_of_dc(s.dc).collect();
                hops.push(pick_sw(&spines, h, salt::UP_SPINE, excluded).into());
                let down_leaves: Vec<SwitchId> = t.leaves_of_podset(d.podset).collect();
                hops.push(pick_sw(&down_leaves, h, salt::DOWN_LEAF, excluded).into());
                hops.push(t.tor_of_pod(d.pod).into());
                hops.push(dst.into());
                return hops;
            }
            let up_leaves: Vec<SwitchId> = t.leaves_of_podset(s.podset).collect();
            hops.push(pick_sw(&up_leaves, h, salt::UP_LEAF, excluded).into());
            let up_spines: Vec<SwitchId> = t.spines_of_dc(s.dc).collect();
            hops.push(pick_sw(&up_spines, h, salt::UP_SPINE, excluded).into());
            let up_borders: Vec<SwitchId> = t.borders_of_dc(s.dc).collect();
            hops.push(pick_sw(&up_borders, h, salt::UP_BORDER, excluded).into());
            let down_borders: Vec<SwitchId> = t.borders_of_dc(d.dc).collect();
            hops.push(pick_sw(&down_borders, h, salt::DOWN_BORDER, excluded).into());
            let down_spines: Vec<SwitchId> = t.spines_of_dc(d.dc).collect();
            hops.push(pick_sw(&down_spines, h, salt::DOWN_SPINE, excluded).into());
            let down_leaves: Vec<SwitchId> = t.leaves_of_podset(d.podset).collect();
            hops.push(pick_sw(&down_leaves, h, salt::DOWN_LEAF, excluded).into());
            hops.push(t.tor_of_pod(d.pod).into());
            hops.push(dst.into());
            hops
        }
    }

    #[test]
    fn resolver_matches_legacy_golden_on_sampled_grid() {
        // Every (src, dst) pair over a strided server sample, three source
        // ports each, with and without exclusions: the refactored resolver
        // must reproduce the pre-refactor hop sequence exactly.
        let t = topo();
        let r = Router::new(&t);
        let sample: Vec<ServerId> = t.servers().step_by(5).collect();
        assert!(sample.len() >= 12, "grid too small to be meaningful");
        let mut cases = 0u32;
        for &a in &sample {
            for &b in &sample {
                for sp in [1_000u16, 22_222, 60_001] {
                    let tu = tuple_for(&t, a, b, sp);
                    let golden = legacy::resolve(&t, a, b, &tu, &|_| false);
                    assert_eq!(r.resolve(a, b, &tu).hops, golden, "{a}->{b} sp={sp}");
                    // Exclusion grid: drop one spine and one leaf per DC.
                    let excl = |sw: SwitchId| {
                        (sw.tier == SwitchTier::Spine || sw.tier == SwitchTier::Leaf)
                            && sw.index % 4 == 1
                    };
                    let golden_x = legacy::resolve(&t, a, b, &tu, &excl);
                    assert_eq!(
                        r.resolve_excluding(a, b, &tu, &excl).hops,
                        golden_x,
                        "excluding: {a}->{b} sp={sp}"
                    );
                    cases += 2;
                }
            }
        }
        assert!(cases >= 1_000, "grid covered only {cases} cases");
    }

    #[test]
    fn forward_and_reverse_paths_may_differ_but_share_endpoints() {
        let t = topo();
        let r = Router::new(&t);
        let a = t.servers_in_pod(PodId(0)).next().unwrap();
        let b = t.servers_in_pod(PodId(4)).next().unwrap();
        let fwd_tuple = tuple_for(&t, a, b, 4242);
        let fwd = r.resolve(a, b, &fwd_tuple);
        let rev = r.resolve(b, a, &fwd_tuple.reversed());
        assert_eq!(fwd.hops.first(), rev.hops.last());
        assert_eq!(fwd.hops.last(), rev.hops.first());
        assert_eq!(fwd.link_count(), rev.link_count());
    }
}
