//! Hard-coded safety constants of the Pingmesh Agent (paper §3.4.2).
//!
//! The paper is explicit that two limits are **hard coded in the source
//! code** so that no configuration mistake can ever turn the fleet-wide
//! agent into a traffic bomb:
//!
//! * the minimum probe interval between any two servers is 10 seconds, and
//! * the probe payload length is limited to 64 kilobytes.
//!
//! We keep them as compile-time constants for exactly the same reason; the
//! agent clamps any configuration against these bounds rather than trusting
//! the controller.

use crate::time::SimDuration;

/// Minimum interval between two successive probes of the same
/// source-destination pair. Hard limit; configuration can only increase it.
pub const MIN_PROBE_INTERVAL: SimDuration = SimDuration::from_secs(10);

/// Maximum probe payload length in bytes. Hard limit; configuration can
/// only decrease it.
pub const MAX_PAYLOAD_BYTES: usize = 64 * 1024;

/// Number of consecutive controller failures after which the agent
/// fail-closes: it drops all ping peers and stops probing (it keeps
/// responding to pings from others).
pub const CONTROLLER_FAILURES_BEFORE_STOP: u32 = 3;

/// TCP initial SYN retransmission timeout in our data centers (paper §4.2:
/// "the initial timeout value is 3 seconds").
pub const TCP_SYN_TIMEOUT: SimDuration = SimDuration::from_secs(3);

/// Number of SYN retransmissions before the connect attempt fails
/// (paper §4.2: "the sender will retry SYN two times").
pub const TCP_SYN_RETRIES: u32 = 2;

/// Default number of upload retry attempts before in-memory latency data is
/// discarded (paper §3.4.2: "it will retry several times. After that it
/// will stop trying and discard the in-memory data").
pub const UPLOAD_RETRIES: u32 = 3;

/// Network SLA violation thresholds (paper §4.3): packet drop rate greater
/// than 1e-3 or P99 latency above 5 ms fires an alert.
pub const SLA_DROP_RATE_ALERT: f64 = 1e-3;

/// See [`SLA_DROP_RATE_ALERT`].
pub const SLA_P99_ALERT: SimDuration = SimDuration::from_millis(5);

/// Maximum number of switch reloads the black-hole repair loop may trigger
/// per day (paper §5.1: "we limit the algorithm to reload at most 20
/// switches per day").
pub const MAX_SWITCH_RELOADS_PER_DAY: u32 = 20;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values() {
        assert_eq!(MIN_PROBE_INTERVAL.as_micros(), 10_000_000);
        assert_eq!(MAX_PAYLOAD_BYTES, 65_536);
        assert_eq!(TCP_SYN_TIMEOUT.as_micros(), 3_000_000);
        assert_eq!(TCP_SYN_RETRIES, 2);
        assert_eq!(MAX_SWITCH_RELOADS_PER_DAY, 20);
        assert!((0.0..1.0).contains(&SLA_DROP_RATE_ALERT) && SLA_DROP_RATE_ALERT != 0.0);
    }
}
