//! Capped exponential backoff with deterministic, seeded jitter.
//!
//! Every retry loop in the workspace — realmode's pinglist polls and
//! record uploads, the durable store's WAL writes — spaces its attempts
//! with this policy instead of retrying back-to-back. The
//! jitter matters at fleet scale: when a collector or controller comes
//! back after an outage, thousands of agents would otherwise retry in the
//! same millisecond and knock it over again (the classic thundering
//! herd). Each agent derives its seed from its server id, so the fleet
//! decorrelates while any single agent's behaviour stays exactly
//! reproducible — a requirement for the deterministic chaos drill.
//!
//! Implemented on `std` only (one xorshift64* generator), per the
//! workspace's no-crates.io constraint.

use std::time::Duration;

/// Folds an arbitrary seed into a valid xorshift64* state (never zero).
pub fn seed_state(seed: u64) -> u64 {
    seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1
}

/// Advances an xorshift64* state, returning the next pseudo-random u64.
pub fn next_u64(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Backoff policy: delays grow `base * 2^attempt`, capped at `cap`, and
/// each delay is "full-jittered" — drawn uniformly from
/// `[delay/2, delay]` — so retries spread out instead of synchronizing.
#[derive(Debug, Clone)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    attempt: u32,
    rng: u64,
}

impl Backoff {
    /// Smallest delay [`Backoff::next_delay`] will ever return. Backoff
    /// exists to shed load off a struggling endpoint; anything under a
    /// millisecond is indistinguishable from not backing off at all.
    pub const MIN_DELAY: Duration = Duration::from_millis(1);

    /// A policy starting at `base`, never exceeding `cap`, jittered by a
    /// generator seeded with `seed` (same seed ⇒ same delay sequence).
    pub fn new(base: Duration, cap: Duration, seed: u64) -> Self {
        Self {
            base,
            cap,
            attempt: 0,
            rng: seed_state(seed),
        }
    }

    /// Default control-plane policy: 50 ms base, 2 s cap.
    pub fn control_plane(seed: u64) -> Self {
        Self::new(Duration::from_millis(50), Duration::from_secs(2), seed)
    }

    /// Number of delays handed out since creation or the last
    /// [`Backoff::reset`].
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// The next delay to sleep before retrying: exponential in the number
    /// of attempts so far, capped, jittered into `[delay/2, delay]`, and
    /// floored at [`Backoff::MIN_DELAY`]. The floor is what makes a
    /// mis-configured zero (or sub-millisecond) base safe: without it a
    /// zero base returned `Duration::ZERO` forever and the retry loop
    /// degenerated into a busy spin against the very endpoint it was
    /// backing off from.
    pub fn next_delay(&mut self) -> Duration {
        let exp = self.attempt.min(20); // 2^20 * base saturates any cap we use
        self.attempt = self.attempt.saturating_add(1);
        let uncapped = self
            .base
            .checked_mul(1u32 << exp)
            .unwrap_or(Duration::MAX)
            .min(self.cap);
        // Ceiling first (never above the cap), floor second (never below
        // 1 ms). The cap itself is floored so the two bounds can't cross
        // on a degenerate `cap < MIN_DELAY` policy.
        let floor_us = Self::MIN_DELAY.as_micros() as u64;
        let micros = (uncapped.as_micros() as u64).max(floor_us);
        let half = micros / 2;
        let jittered = half + next_u64(&mut self.rng) % (micros - half + 1);
        Duration::from_micros(jittered.max(floor_us))
    }

    /// Re-arms the policy after a success: the next failure starts back
    /// at the base delay.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = Backoff::control_plane(42);
        let mut b = Backoff::control_plane(42);
        let sa: Vec<_> = (0..16).map(|_| a.next_delay()).collect();
        let sb: Vec<_> = (0..16).map(|_| b.next_delay()).collect();
        assert_eq!(sa, sb, "fixed seed must reproduce the exact delays");
    }

    #[test]
    fn different_seeds_decorrelate() {
        let mut a = Backoff::control_plane(1);
        let mut b = Backoff::control_plane(2);
        let sa: Vec<_> = (0..8).map(|_| a.next_delay()).collect();
        let sb: Vec<_> = (0..8).map(|_| b.next_delay()).collect();
        assert_ne!(sa, sb, "different agents must not retry in lockstep");
    }

    #[test]
    fn delays_grow_then_cap() {
        let mut b = Backoff::new(Duration::from_millis(10), Duration::from_millis(500), 7);
        let mut prev_ceiling = Duration::ZERO;
        for attempt in 0..12 {
            let d = b.next_delay();
            let ceiling = Duration::from_millis(10)
                .checked_mul(1 << attempt.min(20))
                .unwrap_or(Duration::MAX)
                .min(Duration::from_millis(500));
            assert!(d <= ceiling, "attempt {attempt}: {d:?} > {ceiling:?}");
            assert!(
                d >= ceiling / 2,
                "attempt {attempt}: {d:?} below jitter floor {:?}",
                ceiling / 2
            );
            assert!(ceiling >= prev_ceiling, "ceiling must be monotone");
            prev_ceiling = ceiling;
        }
        // Deep into the sequence the cap is in force.
        assert!(b.next_delay() <= Duration::from_millis(500));
    }

    #[test]
    fn reset_rearms_the_base_delay() {
        let mut b = Backoff::new(Duration::from_millis(10), Duration::from_secs(10), 3);
        for _ in 0..6 {
            b.next_delay();
        }
        assert_eq!(b.attempts(), 6);
        b.reset();
        assert_eq!(b.attempts(), 0);
        // First post-reset delay is back in the base bracket.
        assert!(b.next_delay() <= Duration::from_millis(10));
    }

    #[test]
    fn zero_base_never_yields_zero_delay() {
        // Regression: a zero base made `next_delay` return
        // `Duration::ZERO` on every call — the retry loop busy-spun
        // against the endpoint it was supposed to back off from.
        let mut b = Backoff::new(Duration::ZERO, Duration::from_secs(2), 9);
        for i in 0..32 {
            let d = b.next_delay();
            assert!(d >= Backoff::MIN_DELAY, "attempt {i}: {d:?} below floor");
            assert!(d <= Duration::from_secs(2), "attempt {i}: {d:?} over cap");
        }
    }

    #[test]
    fn sub_millisecond_base_floors_at_min_delay() {
        // Regression: a 100 µs base produced 50–100 µs jittered delays —
        // sub-millisecond sleeps that round to "no backoff" on every
        // timer wheel we'd run on. The floor must hold from attempt 0.
        let mut b = Backoff::new(Duration::from_micros(100), Duration::from_secs(2), 11);
        let d = b.next_delay();
        assert!(d >= Backoff::MIN_DELAY, "first delay {d:?} below 1 ms");
    }

    #[test]
    fn cap_holds_long_after_attempt_saturates() {
        // The exponent pins at 2^20 and `attempt` saturates; the cap must
        // keep holding arbitrarily deep into the sequence.
        let cap = Duration::from_secs(2);
        let mut b = Backoff::new(Duration::from_millis(50), cap, 13);
        for _ in 0..10_000 {
            let d = b.next_delay();
            assert!(d <= cap, "{d:?} exceeds the cap");
            assert!(d >= Backoff::MIN_DELAY);
        }
        assert_eq!(b.attempts(), 10_000);
    }

    #[test]
    fn adjacent_seeds_do_not_lockstep() {
        // Thundering-herd protection: agents seed from their server id,
        // so *adjacent* seeds are the common case. Each neighbouring pair
        // must disagree somewhere in its first delays.
        for seed in 0..32u64 {
            let mut a = Backoff::control_plane(seed);
            let mut b = Backoff::control_plane(seed + 1);
            let sa: Vec<_> = (0..8).map(|_| a.next_delay()).collect();
            let sb: Vec<_> = (0..8).map(|_| b.next_delay()).collect();
            assert_ne!(sa, sb, "seeds {seed} and {} lockstep", seed + 1);
        }
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut b = Backoff::control_plane(0);
        // Must not get stuck at zero or panic.
        let d1 = b.next_delay();
        let d2 = b.next_delay();
        assert!(d1 > Duration::ZERO && d2 > Duration::ZERO);
    }
}
