//! Process-wide activity counters for this crate's core data structures.
//!
//! `pingmesh-types` sits below the observability crate in the dependency
//! graph, so it cannot register metrics itself. Instead it maintains
//! plain atomics here; `pingmesh-obs` bridges them into its registry as
//! callback gauges (`pingmesh_types_*`) the first time the registry is
//! touched. Increments are `Relaxed` — these are statistics, not
//! synchronization.

use std::sync::atomic::AtomicU64;

/// Latency histograms constructed ([`crate::LatencyHistogram::new`] and
/// the `Default` path both count).
pub static HISTOGRAMS_CREATED: AtomicU64 = AtomicU64::new(0);

/// Histogram merge operations performed (DSA rollups are merge-heavy;
/// this tracks aggregation activity without touching the record path).
pub static HISTOGRAM_MERGES: AtomicU64 = AtomicU64::new(0);

/// RTT classifications performed by [`crate::counters::classify_rtt`]
/// (one per successful probe folded into agent counters).
pub static RTTS_CLASSIFIED: AtomicU64 = AtomicU64::new(0);
