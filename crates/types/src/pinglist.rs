//! The pinglist: the contract between the Pingmesh Controller and Agents.
//!
//! The Controller's Pingmesh Generator computes, per server, the list of
//! peers that server must probe, together with probe parameters. Agents
//! periodically *pull* their pinglist over a RESTful web interface; the
//! Controller never pushes (paper §3.3.2), which keeps it stateless. The
//! wire format is a small XML document (paper §6.2: "standard XML files");
//! serialization lives in `pingmesh-controller::xml`, the schema lives here
//! so the agent does not depend on the controller crate.

use crate::id::ServerId;
use crate::net::{QosClass, VipId};
use crate::probe::ProbeKind;
use crate::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// What a pinglist entry points at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PingTarget {
    /// A physical peer server.
    Server {
        /// Peer server id (for record bookkeeping).
        id: ServerId,
        /// Peer address.
        ip: Ipv4Addr,
    },
    /// A load-balanced VIP (paper §6.2, "VIP monitoring"). The probe
    /// lands on one of the VIP's DIPs chosen by the load balancer.
    Vip {
        /// VIP identity.
        id: VipId,
        /// Virtual address.
        ip: Ipv4Addr,
    },
}

impl PingTarget {
    /// Destination address to probe.
    pub fn ip(&self) -> Ipv4Addr {
        match self {
            PingTarget::Server { ip, .. } | PingTarget::Vip { ip, .. } => *ip,
        }
    }
}

/// One peer entry in a server's pinglist.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PinglistEntry {
    /// Whom to probe.
    pub target: PingTarget,
    /// Destination port (the agent listens on one port per QoS class).
    pub port: u16,
    /// Probe kind to launch.
    pub kind: ProbeKind,
    /// QoS class to mark the probe with.
    pub qos: QosClass,
    /// Interval between successive probes of this peer. The agent clamps
    /// this to at least [`crate::constants::MIN_PROBE_INTERVAL`].
    pub interval: SimDuration,
}

/// The complete pinglist generated for one server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pinglist {
    /// The server this list was generated for.
    pub server: ServerId,
    /// Monotonically increasing generation number; bumped whenever the
    /// controller regenerates lists from a new topology or configuration.
    pub generation: u64,
    /// Peers to probe.
    pub entries: Vec<PinglistEntry>,
}

impl Pinglist {
    /// Creates an empty pinglist for a server.
    pub fn empty(server: ServerId, generation: u64) -> Self {
        Self {
            server,
            generation,
            entries: Vec::new(),
        }
    }

    /// Number of probes this server launches per second under this list.
    pub fn probes_per_second(&self) -> f64 {
        self.entries
            .iter()
            .map(|e| {
                let us = e.interval.as_micros();
                if us == 0 {
                    0.0
                } else {
                    1e6 / us as f64
                }
            })
            .sum()
    }

    /// Estimated worst-case probing bandwidth in bits per second (paper
    /// §3.4.2 bounds worst-case traffic volume; this is what the agent's
    /// watchdog checks against its budget).
    pub fn traffic_budget_bps(&self) -> f64 {
        self.entries
            .iter()
            .map(|e| {
                let us = e.interval.as_micros();
                if us == 0 {
                    return 0.0;
                }
                // SYN + SYN-ACK + ACK + FIN handshakes ≈ 320 bytes framing,
                // plus payload echoed both ways.
                let bytes = 320 + 2 * e.kind.payload_bytes() as u64;
                (bytes * 8) as f64 / (us as f64 / 1e6)
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(interval_s: u64, kind: ProbeKind) -> PinglistEntry {
        PinglistEntry {
            target: PingTarget::Server {
                id: ServerId(7),
                ip: Ipv4Addr::new(10, 0, 0, 7),
            },
            port: 8100,
            kind,
            qos: QosClass::High,
            interval: SimDuration::from_secs(interval_s),
        }
    }

    #[test]
    fn probes_per_second_sums_entries() {
        let pl = Pinglist {
            server: ServerId(1),
            generation: 1,
            entries: vec![entry(10, ProbeKind::TcpSyn), entry(20, ProbeKind::TcpSyn)],
        };
        assert!((pl.probes_per_second() - 0.15).abs() < 1e-9);
    }

    #[test]
    fn traffic_budget_counts_payload_twice() {
        let pl_syn = Pinglist {
            server: ServerId(1),
            generation: 1,
            entries: vec![entry(10, ProbeKind::TcpSyn)],
        };
        let pl_payload = Pinglist {
            server: ServerId(1),
            generation: 1,
            entries: vec![entry(10, ProbeKind::TcpPayload(1000))],
        };
        let syn = pl_syn.traffic_budget_bps();
        let payload = pl_payload.traffic_budget_bps();
        assert!((syn - 320.0 * 8.0 / 10.0).abs() < 1e-9);
        assert!((payload - (320.0 + 2000.0) * 8.0 / 10.0).abs() < 1e-9);
    }

    #[test]
    fn zero_interval_entries_do_not_divide_by_zero() {
        let mut e = entry(0, ProbeKind::TcpSyn);
        e.interval = SimDuration::ZERO;
        let pl = Pinglist {
            server: ServerId(1),
            generation: 1,
            entries: vec![e],
        };
        assert_eq!(pl.probes_per_second(), 0.0);
        assert_eq!(pl.traffic_budget_bps(), 0.0);
    }

    #[test]
    fn target_ip_accessor() {
        let t = PingTarget::Vip {
            id: VipId(3),
            ip: Ipv4Addr::new(172, 16, 0, 3),
        };
        assert_eq!(t.ip(), Ipv4Addr::new(172, 16, 0, 3));
    }
}
