//! Network-level primitives: five-tuples, ECMP hashing, QoS classes, VIPs.
//!
//! The paper's fabric load-balances with ECMP keyed on the TCP/UDP
//! five-tuple; every Pingmesh probe uses a fresh ephemeral source port so
//! that successive probes explore different fabric paths. The deterministic
//! [`FiveTuple::ecmp_hash`] here is the single source of truth used both by
//! the simulated switches (to pick a next hop) and by fault rules (packet
//! black-holes keyed on address/port patterns).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

/// IP protocol numbers we model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IpProto {
    /// TCP (all Pingmesh probes are TCP or HTTP-over-TCP).
    Tcp,
    /// UDP (present so the fabric model is protocol-agnostic, per §4.2).
    Udp,
}

/// A TCP/UDP five-tuple, the ECMP hashing key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FiveTuple {
    /// Source IPv4 address.
    pub src_ip: Ipv4Addr,
    /// Destination IPv4 address.
    pub dst_ip: Ipv4Addr,
    /// Source transport port.
    pub src_port: u16,
    /// Destination transport port.
    pub dst_port: u16,
    /// Transport protocol.
    pub proto: IpProto,
}

impl FiveTuple {
    /// Creates a TCP five-tuple.
    pub fn tcp(src_ip: Ipv4Addr, src_port: u16, dst_ip: Ipv4Addr, dst_port: u16) -> Self {
        Self {
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            proto: IpProto::Tcp,
        }
    }

    /// The five-tuple of the reverse direction (SYN-ACK path).
    pub fn reversed(&self) -> Self {
        Self {
            src_ip: self.dst_ip,
            dst_ip: self.src_ip,
            src_port: self.dst_port,
            dst_port: self.src_port,
            proto: self.proto,
        }
    }

    /// Deterministic 64-bit ECMP hash of the five-tuple (FNV-1a).
    ///
    /// Switches derive the next-hop choice at each tier from this value,
    /// mixing in a per-switch salt so that different switches do not make
    /// correlated choices (see `pingmesh-topology`).
    pub fn ecmp_hash(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut eat = |b: u8| {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        };
        for b in self.src_ip.octets() {
            eat(b);
        }
        for b in self.dst_ip.octets() {
            eat(b);
        }
        for b in self.src_port.to_be_bytes() {
            eat(b);
        }
        for b in self.dst_port.to_be_bytes() {
            eat(b);
        }
        eat(match self.proto {
            IpProto::Tcp => 6,
            IpProto::Udp => 17,
        });
        // Final avalanche (splitmix64 tail) so low bits are well mixed even
        // for nearly-identical tuples.
        let mut z = h;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Hash of the address pair only (used by type-1 black-hole rules,
    /// which match on source/destination IP regardless of ports).
    pub fn addr_pair_hash(&self) -> u64 {
        let mut t = *self;
        t.src_port = 0;
        t.dst_port = 0;
        t.ecmp_hash()
    }
}

impl fmt::Display for FiveTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} -> {}:{} ({:?})",
            self.src_ip, self.src_port, self.dst_ip, self.dst_port, self.proto
        )
    }
}

/// DSCP-based quality-of-service class (paper §6.2, "QoS monitoring").
///
/// After network QoS was introduced, the Pingmesh Generator emits pinglist
/// entries for both classes; the low-priority class probes a dedicated
/// destination port on the agent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum QosClass {
    /// High-priority (default) traffic class.
    High,
    /// Low-priority / scavenger traffic class.
    Low,
}

impl QosClass {
    /// All classes, in generation order.
    pub const ALL: [QosClass; 2] = [QosClass::High, QosClass::Low];

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            QosClass::High => "high",
            QosClass::Low => "low",
        }
    }
}

impl fmt::Display for QosClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A virtual IP exposed by the software load balancer (paper §6.2, "VIP
/// monitoring"). The load-balancing control plane maps a VIP onto a set of
/// physical destination IPs (DIPs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct VipId(pub u32);

impl fmt::Display for VipId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vip{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuple(sp: u16, dp: u16) -> FiveTuple {
        FiveTuple::tcp(
            Ipv4Addr::new(10, 0, 0, 1),
            sp,
            Ipv4Addr::new(10, 0, 4, 2),
            dp,
        )
    }

    #[test]
    fn hash_is_deterministic() {
        assert_eq!(tuple(1234, 80).ecmp_hash(), tuple(1234, 80).ecmp_hash());
    }

    #[test]
    fn hash_depends_on_ports() {
        // Fresh source ports must steer probes onto (generally) different
        // paths — the whole point of per-probe ephemeral ports.
        assert_ne!(tuple(1234, 80).ecmp_hash(), tuple(1235, 80).ecmp_hash());
        assert_ne!(tuple(1234, 80).ecmp_hash(), tuple(1234, 81).ecmp_hash());
    }

    #[test]
    fn addr_pair_hash_ignores_ports() {
        assert_eq!(
            tuple(1234, 80).addr_pair_hash(),
            tuple(4321, 443).addr_pair_hash()
        );
    }

    #[test]
    fn reversed_swaps_endpoints() {
        let t = tuple(1234, 80);
        let r = t.reversed();
        assert_eq!(r.src_ip, t.dst_ip);
        assert_eq!(r.dst_port, t.src_port);
        assert_eq!(r.reversed(), t);
    }

    #[test]
    fn hash_spreads_over_buckets() {
        // A crude uniformity check: hashing 4k consecutive source ports into
        // 8 buckets should put a reasonable share in each.
        let mut buckets = [0u32; 8];
        for sp in 0..4096u16 {
            buckets[(tuple(sp, 80).ecmp_hash() % 8) as usize] += 1;
        }
        for &b in &buckets {
            assert!((300..=800).contains(&b), "bucket count {b} out of range");
        }
    }
}
