//! A fixed-capacity, stack-allocated vector for bounded hot-path data.
//!
//! The ECMP resolver produces paths whose length is bounded by the Clos
//! structure (a server-to-server path crosses at most 8 switches), so the
//! per-probe `Path` never needs the heap. [`InlineVec`] is the minimal
//! safe container for that: a `[T; N]` plus a length, with slice access
//! via `Deref`. Unlike `arrayvec` it requires `T: Copy + Default` so it
//! can stay entirely within safe Rust (`pingmesh-types` forbids unsafe).

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, DerefMut};

/// A vector of at most `N` elements stored inline (no heap allocation).
///
/// ```
/// use pingmesh_types::InlineVec;
///
/// let mut v: InlineVec<u32, 4> = InlineVec::new();
/// v.push(7);
/// v.push(9);
/// assert_eq!(v.len(), 2);
/// assert_eq!(&v[..], &[7, 9]);
/// assert_eq!(v.iter().sum::<u32>(), 16);
/// ```
#[derive(Clone, Copy)]
pub struct InlineVec<T, const N: usize> {
    buf: [T; N],
    len: u32,
}

impl<T: Copy + Default, const N: usize> InlineVec<T, N> {
    /// Creates an empty vector.
    #[inline]
    pub fn new() -> Self {
        Self {
            buf: [T::default(); N],
            len: 0,
        }
    }

    /// Builds from a slice.
    ///
    /// # Panics
    /// Panics if `slice.len() > N`.
    pub fn from_slice(slice: &[T]) -> Self {
        let mut v = Self::new();
        for &x in slice {
            v.push(x);
        }
        v
    }
}

impl<T: Copy, const N: usize> InlineVec<T, N> {
    /// Appends an element.
    ///
    /// # Panics
    /// Panics if the vector is already at capacity `N`.
    #[inline]
    pub fn push(&mut self, value: T) {
        assert!(
            (self.len as usize) < N,
            "InlineVec overflow: capacity {N} exceeded"
        );
        self.buf[self.len as usize] = value;
        self.len += 1;
    }

    /// Number of live elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the vector is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Capacity (the const parameter `N`).
    #[inline]
    pub fn capacity(&self) -> usize {
        N
    }

    /// Removes all elements (capacity is inline, so this is just a length
    /// reset).
    #[inline]
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// The live elements as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.buf[..self.len as usize]
    }

    /// The live elements as a mutable slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.buf[..self.len as usize]
    }
}

impl<T: Copy + Default, const N: usize> Default for InlineVec<T, N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy, const N: usize> Deref for InlineVec<T, N> {
    type Target = [T];
    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy, const N: usize> DerefMut for InlineVec<T, N> {
    #[inline]
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T: Copy + fmt::Debug, const N: usize> fmt::Debug for InlineVec<T, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl<T: Copy + PartialEq, const N: usize> PartialEq for InlineVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Eq, const N: usize> Eq for InlineVec<T, N> {}

impl<T: Copy + PartialEq, const N: usize> PartialEq<[T]> for InlineVec<T, N> {
    fn eq(&self, other: &[T]) -> bool {
        self.as_slice() == other
    }
}

impl<T: Copy + PartialEq, const N: usize> PartialEq<Vec<T>> for InlineVec<T, N> {
    fn eq(&self, other: &Vec<T>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Hash, const N: usize> Hash for InlineVec<T, N> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl<T: Copy + Default, const N: usize> FromIterator<T> for InlineVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut v = Self::new();
        for x in iter {
            v.push(x);
        }
        v
    }
}

impl<'a, T: Copy, const N: usize> IntoIterator for &'a InlineVec<T, N> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_len_and_slice_access() {
        let mut v: InlineVec<u8, 3> = InlineVec::new();
        assert!(v.is_empty());
        assert_eq!(v.capacity(), 3);
        v.push(1);
        v.push(2);
        assert_eq!(v.len(), 2);
        assert_eq!(v.as_slice(), &[1, 2]);
        assert_eq!(v.first(), Some(&1));
        assert_eq!(v.last(), Some(&2));
        assert!(v.contains(&2));
        assert!(!v.contains(&9));
    }

    #[test]
    #[should_panic(expected = "InlineVec overflow")]
    fn overflow_panics() {
        let mut v: InlineVec<u8, 2> = InlineVec::new();
        v.push(1);
        v.push(2);
        v.push(3);
    }

    #[test]
    fn equality_ignores_dead_capacity() {
        let mut a: InlineVec<u8, 4> = InlineVec::new();
        let mut b: InlineVec<u8, 4> = InlineVec::new();
        a.push(9);
        a.clear();
        assert_eq!(a, b);
        a.push(1);
        b.push(1);
        assert_eq!(a, b);
        assert_eq!(a, vec![1u8]);
        assert_eq!(a, [1u8][..]);
        b.push(2);
        assert_ne!(a, b);
    }

    #[test]
    fn from_slice_and_iter_roundtrip() {
        let v: InlineVec<u32, 8> = InlineVec::from_slice(&[5, 6, 7]);
        assert_eq!(v.iter().copied().collect::<Vec<_>>(), vec![5, 6, 7]);
        let w: InlineVec<u32, 8> = (0..4).collect();
        assert_eq!(w, vec![0, 1, 2, 3]);
    }

    #[test]
    fn copy_semantics() {
        let mut a: InlineVec<u8, 4> = InlineVec::from_slice(&[1, 2]);
        let b = a; // Copy, not move
        a.push(3);
        assert_eq!(a.len(), 3);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn mutable_slice_access() {
        let mut v: InlineVec<u8, 4> = InlineVec::from_slice(&[1, 2, 3]);
        v.as_mut_slice()[1] = 9;
        v[2] = 8;
        assert_eq!(v, vec![1, 9, 8]);
        assert_eq!(format!("{v:?}"), "[1, 9, 8]");
    }
}
