//! Strongly-typed identifiers for data-center entities.
//!
//! The paper's network is organized as: servers under a top-of-rack (ToR)
//! switch form a **Pod**; a group of Pods plus their Leaf switches form a
//! **Podset**; Podsets connect through a **Spine** layer; multiple data
//! centers connect through an inter-DC network. Every entity gets a
//! dedicated newtype so indices can never be mixed up across layers.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! index_id {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the raw index.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                Self(v)
            }
        }
    };
}

index_id!(
    /// A data center. The inter-DC complete graph treats each DC as a
    /// virtual node.
    DcId,
    "dc"
);
index_id!(
    /// A Podset: a group of Pods sharing a set of Leaf switches.
    /// Podset ids are global across the deployment.
    PodsetId,
    "podset"
);
index_id!(
    /// A Pod: the servers under one ToR switch. Pod ids are global.
    PodId,
    "pod"
);
index_id!(
    /// A single server. Server ids are global across all data centers.
    ServerId,
    "srv"
);
index_id!(
    /// A service (tenant / application) mapped onto a set of servers.
    /// Network SLAs are tracked per service (paper §4.3).
    ServiceId,
    "svc"
);

/// The tier a switch occupies in the Clos fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SwitchTier {
    /// Top-of-rack switch: first hop from the servers of one Pod.
    Tor,
    /// Leaf switch: aggregates the ToRs of one Podset.
    Leaf,
    /// Spine switch: interconnects Podsets within a data center.
    Spine,
    /// Border router: gateway of a data center onto the inter-DC network.
    Border,
}

impl SwitchTier {
    /// Short lowercase label used in rendered output.
    pub fn label(self) -> &'static str {
        match self {
            SwitchTier::Tor => "tor",
            SwitchTier::Leaf => "leaf",
            SwitchTier::Spine => "spine",
            SwitchTier::Border => "border",
        }
    }
}

impl fmt::Display for SwitchTier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A switch anywhere in the deployment, identified by tier plus a global
/// index within that tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SwitchId {
    /// Tier of this switch.
    pub tier: SwitchTier,
    /// Global index within the tier.
    pub index: u32,
}

impl SwitchId {
    /// Creates a switch id.
    pub fn new(tier: SwitchTier, index: u32) -> Self {
        Self { tier, index }
    }

    /// Convenience constructor for a ToR switch id.
    pub fn tor(index: u32) -> Self {
        Self::new(SwitchTier::Tor, index)
    }

    /// Convenience constructor for a Leaf switch id.
    pub fn leaf(index: u32) -> Self {
        Self::new(SwitchTier::Leaf, index)
    }

    /// Convenience constructor for a Spine switch id.
    pub fn spine(index: u32) -> Self {
        Self::new(SwitchTier::Spine, index)
    }

    /// Convenience constructor for a border router id.
    pub fn border(index: u32) -> Self {
        Self::new(SwitchTier::Border, index)
    }
}

impl fmt::Display for SwitchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.tier.label(), self.index)
    }
}

/// Any device a packet can traverse or originate from: a server NIC or a
/// switch. Used by path resolution and by per-device fault attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum DeviceId {
    /// A server endpoint (NIC + host stack).
    Server(ServerId),
    /// A switch at some tier.
    Switch(SwitchId),
}

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceId::Server(s) => write!(f, "{s}"),
            DeviceId::Switch(s) => write!(f, "{s}"),
        }
    }
}

/// `Default` exists so `DeviceId` can live in fixed-capacity containers
/// (`InlineVec`) that pre-fill dead slots; the placeholder value is never
/// observable through the live prefix.
impl Default for DeviceId {
    fn default() -> Self {
        DeviceId::Server(ServerId(0))
    }
}

impl From<ServerId> for DeviceId {
    fn from(v: ServerId) -> Self {
        DeviceId::Server(v)
    }
}

impl From<SwitchId> for DeviceId {
    fn from(v: SwitchId) -> Self {
        DeviceId::Switch(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(DcId(3).to_string(), "dc3");
        assert_eq!(ServerId(42).to_string(), "srv42");
        assert_eq!(SwitchId::spine(7).to_string(), "spine7");
        assert_eq!(DeviceId::from(ServerId(1)).to_string(), "srv1");
        assert_eq!(DeviceId::from(SwitchId::tor(9)).to_string(), "tor9");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::BTreeSet;
        let set: BTreeSet<PodId> = [PodId(2), PodId(0), PodId(1)].into_iter().collect();
        let v: Vec<u32> = set.into_iter().map(|p| p.0).collect();
        assert_eq!(v, vec![0, 1, 2]);
    }

    #[test]
    fn switch_tier_labels_are_distinct() {
        let labels = [
            SwitchTier::Tor,
            SwitchTier::Leaf,
            SwitchTier::Spine,
            SwitchTier::Border,
        ]
        .map(SwitchTier::label);
        let unique: std::collections::HashSet<_> = labels.iter().collect();
        assert_eq!(unique.len(), labels.len());
    }

    #[test]
    fn serde_roundtrip_is_transparent_for_index_ids() {
        let json = serde_json::to_string(&ServerId(17)).unwrap();
        assert_eq!(json, "17");
        let back: ServerId = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ServerId(17));
    }
}
