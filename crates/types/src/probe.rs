//! Probe descriptions and results.
//!
//! A *probe* is one measurement: a fresh TCP connection (new ephemeral
//! source port) to a peer, optionally followed by a payload echo or an HTTP
//! GET. The agent records one [`ProbeRecord`] per probe; these records are
//! the unit of data uploaded to the store and consumed by every DSA job.

use crate::id::{DcId, PodId, PodsetId, ServerId};
use crate::net::QosClass;
use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt;

/// What kind of probe to send.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProbeKind {
    /// Pure TCP connect: the RTT is the SYN / SYN-ACK round trip. This is
    /// the latency the paper reports unless stated otherwise.
    TcpSyn,
    /// TCP connect followed by an echoed payload of the given length in
    /// bytes (paper: typically 800–1200 bytes in one packet). Catches
    /// packet-length-dependent drops (FCS / SerDes errors).
    TcpPayload(u32),
    /// HTTP GET against the agent's embedded responder. Exercises the same
    /// code path applications use.
    Http,
}

impl ProbeKind {
    /// Payload bytes carried by this probe kind (0 for SYN-only).
    pub fn payload_bytes(self) -> u32 {
        match self {
            ProbeKind::TcpSyn => 0,
            ProbeKind::TcpPayload(n) => n,
            // A minimal GET request + response headers; modelled as a small
            // payload exchange.
            ProbeKind::Http => 256,
        }
    }

    /// Whether the probe performs a payload round trip after connecting.
    pub fn has_payload(self) -> bool {
        self.payload_bytes() > 0
    }
}

impl fmt::Display for ProbeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProbeKind::TcpSyn => write!(f, "tcp-syn"),
            ProbeKind::TcpPayload(n) => write!(f, "tcp-payload({n})"),
            ProbeKind::Http => write!(f, "http"),
        }
    }
}

/// The observable outcome of one probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProbeOutcome {
    /// The probe completed; RTT as measured by the client.
    ///
    /// Note that a probe whose first SYN was dropped still *succeeds* —
    /// with an RTT of ≈3 s (one drop) or ≈9 s (two drops). The DSA
    /// drop-rate heuristic (paper §4.2) relies on exactly this signature.
    Success {
        /// Measured round-trip time.
        rtt: SimDuration,
    },
    /// All SYN (re)transmissions were lost; the connect attempt timed out.
    /// Failed probes are excluded from the drop-rate denominator because
    /// the client cannot distinguish path loss from a dead peer.
    Timeout,
    /// The peer refused the connection (agent not listening).
    Refused,
}

impl ProbeOutcome {
    /// True if the probe produced an RTT sample.
    pub fn is_success(self) -> bool {
        matches!(self, ProbeOutcome::Success { .. })
    }

    /// RTT if successful.
    pub fn rtt(self) -> Option<SimDuration> {
        match self {
            ProbeOutcome::Success { rtt } => Some(rtt),
            _ => None,
        }
    }
}

/// One measurement record as uploaded by an agent.
///
/// Scope fields (`src_pod` … `dst_dc`) are denormalized into the record —
/// mirroring how the paper's SCOPE jobs join probe logs against topology
/// metadata once at ingest so that every aggregation afterwards is a pure
/// group-by.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProbeRecord {
    /// When the probe was launched.
    pub ts: SimTime,
    /// Probing server.
    pub src: ServerId,
    /// Probed server.
    pub dst: ServerId,
    /// Pod of the probing server.
    pub src_pod: PodId,
    /// Pod of the probed server.
    pub dst_pod: PodId,
    /// Podset of the probing server.
    pub src_podset: PodsetId,
    /// Podset of the probed server.
    pub dst_podset: PodsetId,
    /// Data center of the probing server.
    pub src_dc: DcId,
    /// Data center of the probed server.
    pub dst_dc: DcId,
    /// What was sent.
    pub kind: ProbeKind,
    /// QoS class of the probe.
    pub qos: QosClass,
    /// Ephemeral source port used (fresh per probe).
    pub src_port: u16,
    /// Destination port probed.
    pub dst_port: u16,
    /// Outcome.
    pub outcome: ProbeOutcome,
}

impl ProbeRecord {
    /// True when source and destination share a pod (same ToR).
    pub fn is_intra_pod(&self) -> bool {
        self.src_pod == self.dst_pod
    }

    /// True when source and destination share a DC but not a pod.
    pub fn is_inter_pod_intra_dc(&self) -> bool {
        self.src_dc == self.dst_dc && self.src_pod != self.dst_pod
    }

    /// True when source and destination are in different DCs.
    pub fn is_inter_dc(&self) -> bool {
        self.src_dc != self.dst_dc
    }

    /// Approximate serialized size in bytes, used to account for upload
    /// bandwidth and the agent's bounded in-memory buffer.
    pub fn wire_size(&self) -> usize {
        // 9 fixed fields at 4-8 bytes each in the CSV-ish upload format.
        64
    }
}

/// Aggregate of probe outcomes used when classifying a (src, dst) pair
/// inside one analysis window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PairStats {
    /// Successful probes with normal (sub-second) RTT.
    pub ok: u64,
    /// Successful probes with RTT ≈ 3 s (one SYN drop).
    pub rtt_3s: u64,
    /// Successful probes with RTT ≈ 9 s (two SYN drops).
    pub rtt_9s: u64,
    /// Probes that failed entirely (connect timeout / refused).
    pub failed: u64,
}

impl PairStats {
    /// Total probes observed for the pair.
    pub fn total(&self) -> u64 {
        self.ok + self.rtt_3s + self.rtt_9s + self.failed
    }

    /// Successful probes (denominator of the drop-rate heuristic).
    pub fn successful(&self) -> u64 {
        self.ok + self.rtt_3s + self.rtt_9s
    }

    /// The paper's packet drop rate estimate for this pair:
    /// `(rtt_3s + rtt_9s) / successful` (§4.2). A 9 s connection counts
    /// as **one** drop because successive SYN drops are not independent.
    pub fn drop_rate(&self) -> f64 {
        let succ = self.successful();
        if succ == 0 {
            return 0.0;
        }
        (self.rtt_3s + self.rtt_9s) as f64 / succ as f64
    }

    /// True when the pair failed deterministically: probes were attempted
    /// and none ever succeeded. This is the per-pair black-hole symptom.
    pub fn is_deterministic_failure(&self) -> bool {
        self.failed > 0 && self.successful() == 0
    }

    /// Merges another window's stats into this one.
    pub fn merge(&mut self, other: &PairStats) {
        self.ok += other.ok;
        self.rtt_3s += other.rtt_3s;
        self.rtt_9s += other.rtt_9s;
        self.failed += other.failed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn probe_kind_payloads() {
        assert_eq!(ProbeKind::TcpSyn.payload_bytes(), 0);
        assert!(!ProbeKind::TcpSyn.has_payload());
        assert_eq!(ProbeKind::TcpPayload(900).payload_bytes(), 900);
        assert!(ProbeKind::Http.has_payload());
    }

    #[test]
    fn outcome_accessors() {
        let ok = ProbeOutcome::Success {
            rtt: SimDuration::from_micros(250),
        };
        assert!(ok.is_success());
        assert_eq!(ok.rtt(), Some(SimDuration::from_micros(250)));
        assert!(!ProbeOutcome::Timeout.is_success());
        assert_eq!(ProbeOutcome::Refused.rtt(), None);
    }

    #[test]
    fn pair_stats_drop_rate_follows_paper_heuristic() {
        let s = PairStats {
            ok: 9_996,
            rtt_3s: 3,
            rtt_9s: 1,
            failed: 7,
        };
        // failed probes are excluded from the denominator; a 9s connect
        // counts as a single drop.
        let expect = 4.0 / 10_000.0;
        assert!((s.drop_rate() - expect).abs() < 1e-12);
    }

    #[test]
    fn pair_stats_deterministic_failure() {
        let dead = PairStats {
            failed: 12,
            ..Default::default()
        };
        assert!(dead.is_deterministic_failure());
        let flaky = PairStats {
            ok: 1,
            failed: 11,
            ..Default::default()
        };
        assert!(!flaky.is_deterministic_failure());
        assert!(!PairStats::default().is_deterministic_failure());
    }

    #[test]
    fn pair_stats_merge_adds_fields() {
        let mut a = PairStats {
            ok: 1,
            rtt_3s: 2,
            rtt_9s: 3,
            failed: 4,
        };
        a.merge(&a.clone());
        assert_eq!(a.total(), 20);
        assert_eq!(a.successful(), 12);
    }

    #[test]
    fn drop_rate_with_no_successes_is_zero() {
        let s = PairStats {
            failed: 5,
            ..Default::default()
        };
        assert_eq!(s.drop_rate(), 0.0);
    }
}
