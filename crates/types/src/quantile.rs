//! O(n) quantile selection over raw samples.
//!
//! Percentile queries over collected samples (fleet P99 medians, drop-rate
//! baselines, figure rendering) used to fully sort the sample vector —
//! O(n log n) for a single order statistic. These helpers use
//! `select_nth_unstable_by` (introselect) instead: expected O(n), at the
//! cost of reordering the input, which every caller here is free to do.
//! Histogram-backed percentiles live in [`crate::hist`]; these helpers are
//! for one-shot queries where no histogram exists.

use std::cmp::Ordering;

/// Nearest-rank index for quantile `q` over `n` samples: the 1-based
/// nearest rank `ceil(q·n)` (clamped to `[1, n]`), returned as a 0-based
/// index. This is the same convention [`crate::hist::LatencyHistogram`]
/// uses, so histogram and raw-sample percentiles agree up to bucket
/// resolution. (An earlier floor-based variant disagreed with the
/// histogram on even sample counts — e.g. the median of two samples took
/// the *larger* one here and the smaller one in the histogram.)
fn rank(n: usize, q: f64) -> usize {
    ((n as f64 * q).ceil() as usize).clamp(1, n) - 1
}

/// Selects the `q`-quantile (`0.0..=1.0`, nearest-rank) of `xs` in
/// expected O(n) time with a caller-supplied ordering, reordering `xs`.
/// Returns `None` on an empty slice or a `q` outside `[0, 1]`.
pub fn quantile_in_place_by<T, F>(xs: &mut [T], q: f64, cmp: F) -> Option<&T>
where
    F: FnMut(&T, &T) -> Ordering,
{
    if xs.is_empty() || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let r = rank(xs.len(), q);
    let (_, nth, _) = xs.select_nth_unstable_by(r, cmp);
    Some(&*nth)
}

/// [`quantile_in_place_by`] with the natural `Ord` ordering.
pub fn quantile_in_place<T: Ord>(xs: &mut [T], q: f64) -> Option<&T> {
    quantile_in_place_by(xs, q, T::cmp)
}

/// [`quantile_in_place_by`] for `f64` samples using `total_cmp` (NaNs sort
/// last), returning the value by copy.
pub fn quantile_f64_in_place(xs: &mut [f64], q: f64) -> Option<f64> {
    quantile_in_place_by(xs, q, |a, b| a.total_cmp(b)).copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sort_then_index_on_every_rank() {
        // The golden oracle: full sort + nearest-rank index.
        let base: Vec<u64> = (0..257).map(|i: u64| i.wrapping_mul(7919) % 1000).collect();
        let mut sorted = base.clone();
        sorted.sort_unstable();
        for q in [0.0, 0.01, 0.25, 0.5, 0.75, 0.99, 1.0] {
            let mut xs = base.clone();
            let got = *quantile_in_place(&mut xs, q).unwrap();
            assert_eq!(got, sorted[rank(base.len(), q)], "q={q}");
        }
    }

    #[test]
    fn median_rank_is_nearest_rank() {
        // Nearest-rank (1-based ceil): median index = ceil(n/2) - 1.
        for n in [1usize, 2, 3, 100, 101] {
            assert_eq!(rank(n, 0.5), n.div_ceil(2) - 1, "n={n}");
        }
        // Boundary quantiles pin the extremes for every n.
        for n in [1usize, 2, 7, 100] {
            assert_eq!(rank(n, 0.0), 0, "q=0 n={n}");
            assert_eq!(rank(n, 1.0), n - 1, "q=1 n={n}");
        }
    }

    #[test]
    fn rank_agrees_with_histogram_convention() {
        // Regression for the quantile-convention split: the histogram's
        // 1-based ceil nearest rank and this module's index must select
        // the same order statistic. n=2, q=0.5 is the smallest case the
        // old floor-based rank got wrong (it picked index 1, the larger
        // sample; the histogram picks rank 1, the smaller).
        assert_eq!(rank(2, 0.5), 0);
        let mut xs = [100u64, 100_000];
        assert_eq!(quantile_in_place(&mut xs, 0.5), Some(&100));
    }

    #[test]
    fn degenerate_inputs() {
        let mut empty: Vec<u64> = vec![];
        assert_eq!(quantile_in_place(&mut empty, 0.5), None);
        let mut one = [7u64];
        assert_eq!(quantile_in_place(&mut one, 0.0), Some(&7));
        assert_eq!(quantile_in_place(&mut one, 1.0), Some(&7));
        let mut xs = [1u64, 2, 3];
        assert_eq!(quantile_in_place(&mut xs, -0.1), None);
        assert_eq!(quantile_in_place(&mut xs, 1.1), None);
    }

    #[test]
    fn f64_handles_nan_via_total_cmp() {
        let mut xs = vec![3.0, f64::NAN, 1.0, 2.0];
        // NaN sorts last under total_cmp, so the nearest-rank median of 4
        // values is the rank-⌈2⌉ element of [1, 2, 3, NaN] = 2.0.
        assert_eq!(quantile_f64_in_place(&mut xs, 0.5), Some(2.0));
        let mut clean = vec![5.0, 1.0, 3.0];
        assert_eq!(quantile_f64_in_place(&mut clean, 0.5), Some(3.0));
    }
}
