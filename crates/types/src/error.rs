//! The workspace-wide error type.
//!
//! Hand-rolled (no `thiserror`) to keep the dependency footprint to the
//! pre-approved list; the enum is small and stable.

use std::fmt;

/// Errors surfaced by Pingmesh components.
#[derive(Debug)]
pub enum PingmeshError {
    /// A referenced entity does not exist in the topology.
    UnknownEntity(String),
    /// Configuration failed validation.
    InvalidConfig(String),
    /// The controller could not be reached or returned an error.
    ControllerUnavailable(String),
    /// Uploading latency data to the store failed.
    UploadFailed(String),
    /// A control-plane call exceeded its deadline (connect, read, or
    /// write). Distinguished from `ControllerUnavailable`/`UploadFailed`
    /// so retry policies can account timeouts separately.
    Timeout(String),
    /// A wire-format document could not be parsed.
    Parse(String),
    /// Underlying socket / IO failure (real-socket mode).
    Io(std::io::Error),
}

impl fmt::Display for PingmeshError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PingmeshError::UnknownEntity(s) => write!(f, "unknown entity: {s}"),
            PingmeshError::InvalidConfig(s) => write!(f, "invalid configuration: {s}"),
            PingmeshError::ControllerUnavailable(s) => {
                write!(f, "controller unavailable: {s}")
            }
            PingmeshError::UploadFailed(s) => write!(f, "upload failed: {s}"),
            PingmeshError::Timeout(s) => write!(f, "deadline exceeded: {s}"),
            PingmeshError::Parse(s) => write!(f, "parse error: {s}"),
            PingmeshError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for PingmeshError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PingmeshError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PingmeshError {
    fn from(e: std::io::Error) -> Self {
        PingmeshError::Io(e)
    }
}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, PingmeshError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(PingmeshError::UnknownEntity("srv9".into())
            .to_string()
            .contains("srv9"));
        assert!(PingmeshError::Parse("bad xml".into())
            .to_string()
            .contains("bad xml"));
    }

    #[test]
    fn io_error_source_is_preserved() {
        let e: PingmeshError =
            std::io::Error::new(std::io::ErrorKind::ConnectionRefused, "nope").into();
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("nope"));
    }
}
