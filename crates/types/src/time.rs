//! Virtual time for the simulation substrate.
//!
//! All simulated components share one clock measured in **microseconds**
//! since the start of the simulation. Using a dedicated newtype (instead of
//! `std::time::Instant`) lets the discrete-event engine, the agents and the
//! DSA job manager agree on time without any wall-clock dependence, which
//! keeps every experiment fully deterministic.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, in microseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimTime(pub u64);

/// A span of virtual time, in microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The zero point of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Raw microsecond count.
    #[inline]
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Time as fractional seconds (for reporting).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration elapsed since `earlier`, saturating at zero.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Truncates this instant down to a multiple of `window`.
    ///
    /// Used to assign probe records to 10-minute / 1-hour / 1-day analysis
    /// windows.
    #[inline]
    pub fn window_start(self, window: SimDuration) -> SimTime {
        if window.0 == 0 {
            return self;
        }
        SimTime(self.0 - self.0 % window.0)
    }

    /// Index of the window of length `window` containing this instant.
    #[inline]
    pub fn window_index(self, window: SimDuration) -> u64 {
        if window.0 == 0 {
            return 0;
        }
        self.0 / window.0
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a duration from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Builds a duration from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Builds a duration from seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Builds a duration from minutes.
    #[inline]
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60 * 1_000_000)
    }

    /// Builds a duration from hours.
    #[inline]
    pub const fn from_hours(h: u64) -> Self {
        SimDuration(h * 3_600 * 1_000_000)
    }

    /// Builds a duration from days.
    #[inline]
    pub const fn from_days(d: u64) -> Self {
        SimDuration(d * 24 * 3_600 * 1_000_000)
    }

    /// Raw microsecond count.
    #[inline]
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Duration as fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Duration as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Scales the duration by a float factor, rounding to microseconds.
    #[inline]
    pub fn mul_f64(self, k: f64) -> Self {
        SimDuration((self.0 as f64 * k).round().max(0.0) as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total_secs = self.0 / 1_000_000;
        let (d, rem) = (total_secs / 86_400, total_secs % 86_400);
        let (h, rem) = (rem / 3_600, rem % 3_600);
        let (m, s) = (rem / 60, rem % 60);
        if d > 0 {
            write!(f, "{d}d{h:02}:{m:02}:{s:02}")
        } else {
            write!(f, "{h:02}:{m:02}:{s:02}")
        }
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime(1_000);
        let t2 = t + SimDuration::from_millis(2);
        assert_eq!(t2, SimTime(3_000));
        assert_eq!(t2 - t, SimDuration(2_000));
        assert_eq!(t - t2, SimDuration::ZERO, "sub saturates");
    }

    #[test]
    fn window_assignment() {
        let w = SimDuration::from_mins(10);
        let t = SimTime(w.0 * 3 + 17);
        assert_eq!(t.window_start(w), SimTime(w.0 * 3));
        assert_eq!(t.window_index(w), 3);
        assert_eq!(SimTime(5).window_start(SimDuration::ZERO), SimTime(5));
    }

    #[test]
    fn display_humanizes() {
        assert_eq!(SimTime(0).to_string(), "00:00:00");
        assert_eq!(
            (SimTime::ZERO + SimDuration::from_days(1) + SimDuration::from_secs(61)).to_string(),
            "1d00:01:01"
        );
        assert_eq!(SimDuration(12).to_string(), "12us");
        assert_eq!(SimDuration(1_500).to_string(), "1.500ms");
        assert_eq!(SimDuration::from_secs(3).to_string(), "3.000s");
    }

    #[test]
    fn mul_f64_rounds_and_clamps() {
        assert_eq!(SimDuration(100).mul_f64(1.5), SimDuration(150));
        assert_eq!(SimDuration(100).mul_f64(-2.0), SimDuration(0));
    }
}
