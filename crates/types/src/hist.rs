//! Log-bucketed latency histogram with percentile queries.
//!
//! Pingmesh aggregates hundreds of billions of RTT samples per day; the
//! paper's pipeline reports P50 / P99 / P99.9 / P99.99 per scope. Keeping
//! raw samples is out of the question, so — like every production latency
//! pipeline — we fold samples into a histogram with geometrically spaced
//! buckets. With 16 sub-buckets per octave the relative quantile error is
//! bounded by ~4.4 %, far below the natural variance of the quantities the
//! paper reports, while `merge` makes the histogram a CRDT-style aggregate
//! that can be combined across servers, windows, and scopes.

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Sub-buckets per octave (powers of two). 16 gives ≤ 2^(1/16)-1 ≈ 4.4 %
/// relative error per bucket.
const SUB: u32 = 16;
/// Number of octaves covered: 1 µs .. 2^37 µs ≈ 38 hours, comfortably
/// enclosing the 9-second SYN-retry RTTs and any hiccup we model.
const OCTAVES: u32 = 38;
/// Total bucket count (plus one overflow bucket at the end).
const BUCKETS: usize = (OCTAVES * SUB) as usize + 1;

/// A mergeable latency histogram over microsecond samples.
///
/// ```
/// use pingmesh_types::{LatencyHistogram, SimDuration};
///
/// let mut h = LatencyHistogram::new();
/// for us in [200u64, 250, 300, 5_000] {
///     h.record(SimDuration::from_micros(us));
/// }
/// assert_eq!(h.count(), 4);
/// let p50 = h.p50().unwrap().as_micros();
/// assert!((240..=320).contains(&p50), "log-bucketed median: {p50}");
/// assert_eq!(h.max().unwrap().as_micros(), 5_000);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    min_us: u64,
    max_us: u64,
    sum_us: u128,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        crate::telemetry::HISTOGRAMS_CREATED.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Self {
            counts: vec![0; BUCKETS],
            total: 0,
            min_us: u64::MAX,
            max_us: 0,
            sum_us: 0,
        }
    }

    fn bucket_of(us: u64) -> usize {
        if us <= 1 {
            return 0;
        }
        // floor(log2(us) * SUB) via bit tricks: octave = position of the
        // leading one; sub-bucket = next 4 bits of the mantissa, i.e.
        // floor(us·16/2^octave) − 16. Octaves below 4 hold fewer than 4
        // bits after the leading one, so the value scales *up* — the old
        // downshift-only form mapped e.g. 10 µs into the bucket whose
        // representative value is 13 µs (a 30 % error where ≤ 4.4 % is
        // promised).
        let octave = 63 - us.leading_zeros();
        let mantissa = if octave >= 4 {
            ((us >> (octave - 4)) & 0xF) as u32
        } else {
            ((us << (4 - octave)) & 0xF) as u32
        };
        let idx = (octave * SUB + mantissa) as usize;
        idx.min(BUCKETS - 1)
    }

    /// Representative value (geometric midpoint) of bucket `idx`, in µs.
    fn bucket_value(idx: usize) -> u64 {
        let octave = (idx as u32) / SUB;
        let mantissa = (idx as u32) % SUB;
        // Lower bound of the bucket: 2^octave * (1 + mantissa/16).
        let lo = (1u128 << octave) + (((1u128 << octave) * mantissa as u128) >> 4);
        // Upper bound is the next bucket's lower bound.
        let m2 = mantissa + 1;
        let hi = if m2 == SUB {
            1u128 << (octave + 1)
        } else {
            (1u128 << octave) + (((1u128 << octave) * m2 as u128) >> 4)
        };
        ((lo + hi) / 2) as u64
    }

    /// Records one RTT sample.
    pub fn record(&mut self, rtt: SimDuration) {
        self.record_n(rtt, 1);
    }

    /// Records `n` identical samples (used when replaying aggregates).
    /// Counters saturate instead of wrapping: a histogram fed more than
    /// `u64::MAX` samples pins at the ceiling rather than corrupting its
    /// quantiles (or aborting the pipeline on a debug overflow check).
    pub fn record_n(&mut self, rtt: SimDuration, n: u64) {
        if n == 0 {
            return;
        }
        let us = rtt.as_micros();
        let b = Self::bucket_of(us);
        self.counts[b] = self.counts[b].saturating_add(n);
        self.total = self.total.saturating_add(n);
        self.min_us = self.min_us.min(us);
        self.max_us = self.max_us.max(us);
        self.sum_us = self.sum_us.saturating_add(us as u128 * n as u128);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Smallest recorded sample, if any.
    pub fn min(&self) -> Option<SimDuration> {
        (self.total > 0).then(|| SimDuration::from_micros(self.min_us))
    }

    /// Largest recorded sample, if any.
    pub fn max(&self) -> Option<SimDuration> {
        (self.total > 0).then(|| SimDuration::from_micros(self.max_us))
    }

    /// Mean of recorded samples, if any.
    pub fn mean(&self) -> Option<SimDuration> {
        (self.total > 0)
            .then(|| SimDuration::from_micros((self.sum_us / self.total as u128) as u64))
    }

    /// Quantile query. `q` in [0, 1]; e.g. `0.99` for P99. Returns the
    /// representative value of the bucket containing the q-th sample,
    /// clamped to the exact observed min/max. `None` on an empty histogram.
    pub fn quantile(&self, q: f64) -> Option<SimDuration> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target sample (1-based), ceil(q * total) with q=0 -> 1.
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let v = Self::bucket_value(idx).clamp(self.min_us, self.max_us);
                return Some(SimDuration::from_micros(v));
            }
        }
        Some(SimDuration::from_micros(self.max_us))
    }

    /// Convenience: median.
    pub fn p50(&self) -> Option<SimDuration> {
        self.quantile(0.50)
    }

    /// Convenience: 99th percentile.
    pub fn p99(&self) -> Option<SimDuration> {
        self.quantile(0.99)
    }

    /// Fraction of samples ≤ `rtt`.
    pub fn cdf_at(&self, rtt: SimDuration) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let b = Self::bucket_of(rtt.as_micros());
        let below: u64 = self.counts[..=b].iter().sum();
        below as f64 / self.total as f64
    }

    /// The CDF as (latency, cumulative fraction) points over non-empty
    /// buckets — what the figure-4 plots consume.
    pub fn cdf_points(&self) -> Vec<(SimDuration, f64)> {
        let mut out = Vec::new();
        if self.total == 0 {
            return out;
        }
        let mut cum = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            cum += c;
            out.push((
                SimDuration::from_micros(Self::bucket_value(idx)),
                cum as f64 / self.total as f64,
            ));
        }
        out
    }

    /// Merges another histogram into this one. Like [`Self::record_n`],
    /// all counters saturate instead of overflowing, so merging shards
    /// whose totals together exceed `u64::MAX` stays well-defined.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        crate::telemetry::HISTOGRAM_MERGES.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a = a.saturating_add(*b);
        }
        self.total = self.total.saturating_add(other.total);
        self.min_us = self.min_us.min(other.min_us);
        self.max_us = self.max_us.max(other.max_us);
        self.sum_us = self.sum_us.saturating_add(other.sum_us);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: u64) -> SimDuration {
        SimDuration::from_micros(v)
    }

    #[test]
    fn empty_histogram_has_no_stats() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.cdf_at(us(100)), 0.0);
    }

    #[test]
    fn single_sample_quantiles_are_exact() {
        let mut h = LatencyHistogram::new();
        h.record(us(250));
        for q in [0.0, 0.5, 0.99, 1.0] {
            let v = h.quantile(q).unwrap().as_micros();
            assert_eq!(v, 250, "q={q} gave {v}");
        }
    }

    #[test]
    fn p50_p99_with_zero_one_and_many_samples() {
        // Zero samples: both helpers are None.
        let mut h = LatencyHistogram::new();
        assert_eq!(h.p50(), None);
        assert_eq!(h.p99(), None);
        // One sample: both collapse to that sample exactly.
        h.record(us(321));
        assert_eq!(h.p50().unwrap().as_micros(), 321);
        assert_eq!(h.p99().unwrap().as_micros(), 321);
        // Many samples: p50 tracks the middle, p99 the tail, within the
        // histogram's ~4.4% bucket error.
        let mut m = LatencyHistogram::new();
        for v in 1..=10_000u64 {
            m.record(us(v));
        }
        let p50 = m.p50().unwrap().as_micros() as f64;
        let p99 = m.p99().unwrap().as_micros() as f64;
        assert!((p50 - 5_000.0).abs() / 5_000.0 < 0.05, "p50 {p50}");
        assert!((p99 - 9_900.0).abs() / 9_900.0 < 0.05, "p99 {p99}");
        assert!(p50 < p99);
    }

    #[test]
    fn quantile_relative_error_is_bounded() {
        let mut h = LatencyHistogram::new();
        // Uniform ramp 1..=100_000 µs.
        for v in 1..=100_000u64 {
            h.record(us(v));
        }
        for (q, expect) in [(0.5, 50_000.0), (0.99, 99_000.0), (0.999, 99_900.0)] {
            let got = h.quantile(q).unwrap().as_micros() as f64;
            let rel = (got - expect).abs() / expect;
            assert!(rel < 0.05, "q={q}: got {got}, expect {expect}, rel {rel}");
        }
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut all = LatencyHistogram::new();
        for v in [10u64, 100, 1_000, 10_000] {
            a.record(us(v));
            all.record(us(v));
        }
        for v in [20u64, 200, 2_000, 3_000_000] {
            b.record(us(v));
            all.record(us(v));
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn min_max_mean_track_exactly() {
        let mut h = LatencyHistogram::new();
        for v in [300u64, 100, 200] {
            h.record(us(v));
        }
        assert_eq!(h.min().unwrap().as_micros(), 100);
        assert_eq!(h.max().unwrap().as_micros(), 300);
        assert_eq!(h.mean().unwrap().as_micros(), 200);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let mut h = LatencyHistogram::new();
        for v in [100u64, 400, 900, 3_000_000, 9_000_000] {
            h.record(us(v));
        }
        let pts = h.cdf_points();
        assert!(!pts.is_empty());
        let mut prev = 0.0;
        for &(_, f) in &pts {
            assert!(f >= prev);
            prev = f;
        }
        assert!((prev - 1.0).abs() < 1e-12);
    }

    #[test]
    fn syn_retry_rtts_land_in_distinct_buckets() {
        // The drop-rate heuristic depends on 3 s and 9 s populations being
        // separable from sub-second traffic and from each other.
        let b_fast = LatencyHistogram::bucket_of(1_500);
        let b_3s = LatencyHistogram::bucket_of(3_000_000);
        let b_9s = LatencyHistogram::bucket_of(9_000_000);
        assert!(b_fast < b_3s && b_3s < b_9s);
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record_n(us(777), 5);
        for _ in 0..5 {
            b.record(us(777));
        }
        assert_eq!(a, b);
        a.record_n(us(1), 0);
        assert_eq!(a.count(), 5);
    }

    #[test]
    fn merged_disjoint_ranges_quantiles_match_record_into_one() {
        // Satellite regression: merging histograms with disjoint min/max
        // ranges must leave `quantile`'s clamp-to-[min, max] consistent —
        // every percentile of the merged histogram equals the percentile
        // of one histogram fed both sample sets.
        let mut lo = LatencyHistogram::new();
        let mut hi = LatencyHistogram::new();
        let mut all = LatencyHistogram::new();
        for v in (100..1_000u64).step_by(7) {
            lo.record(us(v));
            all.record(us(v));
        }
        for v in (1_000_000..9_000_000u64).step_by(50_021) {
            hi.record(us(v));
            all.record(us(v));
        }
        // Merge in both orders: quantiles must not depend on direction.
        let mut merged_a = lo.clone();
        merged_a.merge(&hi);
        let mut merged_b = hi.clone();
        merged_b.merge(&lo);
        assert_eq!(merged_a, merged_b, "merge must commute");
        for i in 0..=1_000u32 {
            let q = f64::from(i) / 1_000.0;
            assert_eq!(
                merged_a.quantile(q),
                all.quantile(q),
                "q={q}: merged vs record-into-one"
            );
        }
        assert_eq!(merged_a.min(), all.min());
        assert_eq!(merged_a.max(), all.max());
    }

    #[test]
    fn totals_saturate_instead_of_overflowing() {
        // Satellite regression: `merge`/`record_n` used unchecked `+=` on
        // `total`, so two near-full histograms aborted with an arithmetic
        // overflow in debug builds (and wrapped, corrupting quantiles, in
        // release). The counters must saturate.
        let mut a = LatencyHistogram::new();
        a.record_n(us(100), u64::MAX);
        let mut b = LatencyHistogram::new();
        b.record_n(us(5_000), 10);
        a.merge(&b);
        assert_eq!(a.count(), u64::MAX, "total pins at the ceiling");
        // Quantiles stay well-defined and clamped to the observed range.
        let q1 = a.quantile(1.0).unwrap().as_micros();
        assert!((100..=5_000).contains(&q1));
        // Same-bucket saturation via record_n on an almost-full bucket.
        let mut c = LatencyHistogram::new();
        c.record_n(us(100), u64::MAX);
        c.record_n(us(100), u64::MAX);
        assert_eq!(c.count(), u64::MAX);
        assert_eq!(c.quantile(0.5).unwrap().as_micros(), 100);
    }

    #[test]
    fn quantiles_track_exact_nearest_rank_within_one_bucket() {
        // Cross-check of the two quantile conventions (satellite 1): the
        // histogram's answer must land within one bucket of the exact
        // nearest-rank order statistic from `types::quantile` on the same
        // corpus, for several corpus shapes including tiny even-length
        // ones where the old floor-based rank diverged.
        let corpora: Vec<Vec<u64>> = vec![
            vec![100, 100_000],
            vec![250, 250, 251, 90_000],
            (1..=1_000u64).collect(),
            (0..4_096u64)
                .map(|i| 1 + i.wrapping_mul(2_654_435_761) % 3_000_000)
                .collect(),
        ];
        for samples in corpora {
            let mut h = LatencyHistogram::new();
            for &v in &samples {
                h.record(us(v));
            }
            for i in 0..=100u32 {
                let q = f64::from(i) / 100.0;
                let got = h.quantile(q).unwrap().as_micros();
                let mut xs = samples.clone();
                let exact = *crate::quantile::quantile_in_place(&mut xs, q).unwrap();
                let (bg, be) = (
                    LatencyHistogram::bucket_of(got),
                    LatencyHistogram::bucket_of(exact),
                );
                assert!(
                    bg.abs_diff(be) <= 1,
                    "n={} q={q}: hist {got} (bucket {bg}) vs exact {exact} (bucket {be})",
                    samples.len()
                );
            }
        }
    }

    #[test]
    fn quantile_is_monotone_in_q() {
        let mut h = LatencyHistogram::new();
        for i in 0..2_000u64 {
            h.record(us(1 + i.wrapping_mul(7919) % 5_000_000));
        }
        let mut prev = 0u64;
        for i in 0..=1_000u32 {
            let q = f64::from(i) / 1_000.0;
            let v = h.quantile(q).unwrap().as_micros();
            assert!(v >= prev, "q={q}: {v} < {prev}");
            prev = v;
        }
    }

    #[test]
    fn huge_samples_hit_overflow_bucket_without_panic() {
        let mut h = LatencyHistogram::new();
        h.record(us(u64::MAX / 2));
        assert_eq!(h.count(), 1);
        assert!(h.quantile(1.0).is_some());
    }
}
