//! Agent performance counters.
//!
//! Besides uploading raw records, each agent computes local aggregates and
//! exposes them as performance counters (paper §3.5): packet drop rate and
//! network latency at the 50th and 99th percentile, plus resource-usage
//! counters for the watchdog. A Perfcounter Aggregator collects these every
//! 5 minutes — a faster (if less expressive) path than the store pipeline.

use crate::hist::LatencyHistogram;
use crate::probe::ProbeOutcome;
use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// RTTs within this band around 3 s / 9 s are classified as SYN-retry
/// signatures. The band is generous: a retried connect still pays the
/// normal path RTT (hundreds of µs) on top of the 3 s timeout, and timer
/// granularity adds slack; yet 3 s ± 1.4 s and 9 s ± 1.4 s can never
/// overlap each other or normal sub-second traffic.
const RETRY_BAND: SimDuration = SimDuration::from_millis(1_400);
/// Expected RTT of a probe whose first SYN was dropped.
const RTT_ONE_DROP: SimDuration = SimDuration::from_secs(3);
/// Expected RTT of a probe whose first two SYNs were dropped.
const RTT_TWO_DROPS: SimDuration = SimDuration::from_secs(9);

/// Classification of a successful probe's RTT for drop accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RttClass {
    /// Normal RTT (no SYN loss).
    Normal,
    /// ≈ 3 s: the first SYN was dropped.
    OneDrop,
    /// ≈ 9 s: the first and second SYNs were dropped.
    TwoDrops,
}

/// Classifies an RTT into the paper's 3 s / 9 s signature bands.
pub fn classify_rtt(rtt: SimDuration) -> RttClass {
    crate::telemetry::RTTS_CLASSIFIED.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let in_band = |center: SimDuration| {
        let lo = center.as_micros().saturating_sub(RETRY_BAND.as_micros());
        let hi = center.as_micros() + RETRY_BAND.as_micros();
        (lo..=hi).contains(&rtt.as_micros())
    };
    if in_band(RTT_TWO_DROPS) {
        RttClass::TwoDrops
    } else if in_band(RTT_ONE_DROP) {
        RttClass::OneDrop
    } else {
        RttClass::Normal
    }
}

/// Live counters maintained by one agent. `snapshot` produces the
/// immutable [`CounterSnapshot`] the Perfcounter Aggregator collects.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AgentCounters {
    /// Probes launched.
    pub probes_sent: u64,
    /// Probes that produced an RTT.
    pub probes_succeeded: u64,
    /// Probes with the ≈3 s one-drop signature.
    pub probes_3s: u64,
    /// Probes with the ≈9 s two-drop signature.
    pub probes_9s: u64,
    /// Probes that failed (connect timeout / refused).
    pub probes_failed: u64,
    /// Records dropped because the upload path failed repeatedly.
    pub records_discarded: u64,
    /// Bytes uploaded to the store.
    pub bytes_uploaded: u64,
    /// RTT distribution of successful probes.
    pub latency: LatencyHistogram,
}

impl AgentCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one probe outcome into the counters.
    pub fn observe(&mut self, outcome: ProbeOutcome) {
        self.probes_sent += 1;
        match outcome {
            ProbeOutcome::Success { rtt } => {
                self.probes_succeeded += 1;
                self.latency.record(rtt);
                match classify_rtt(rtt) {
                    RttClass::Normal => {}
                    RttClass::OneDrop => self.probes_3s += 1,
                    RttClass::TwoDrops => self.probes_9s += 1,
                }
            }
            ProbeOutcome::Timeout | ProbeOutcome::Refused => self.probes_failed += 1,
        }
    }

    /// The paper's drop-rate estimate over everything this agent has seen.
    pub fn drop_rate(&self) -> f64 {
        if self.probes_succeeded == 0 {
            return 0.0;
        }
        (self.probes_3s + self.probes_9s) as f64 / self.probes_succeeded as f64
    }

    /// Produces the exported counter snapshot.
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            probes_sent: self.probes_sent,
            probes_succeeded: self.probes_succeeded,
            probes_failed: self.probes_failed,
            drop_rate: self.drop_rate(),
            p50: self.latency.p50(),
            p99: self.latency.p99(),
            records_discarded: self.records_discarded,
            bytes_uploaded: self.bytes_uploaded,
        }
    }

    /// Resets windowed state (called after each PA collection so counters
    /// describe the last collection interval, as PA counters do).
    pub fn reset_window(&mut self) {
        *self = Self::default();
    }
}

/// Immutable exported counters, one per agent per collection interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Probes launched in the window.
    pub probes_sent: u64,
    /// Probes that produced an RTT.
    pub probes_succeeded: u64,
    /// Probes that failed entirely.
    pub probes_failed: u64,
    /// Drop-rate estimate for the window.
    pub drop_rate: f64,
    /// Median RTT, if any traffic.
    pub p50: Option<SimDuration>,
    /// 99th-percentile RTT, if any traffic.
    pub p99: Option<SimDuration>,
    /// Records discarded due to upload failure.
    pub records_discarded: u64,
    /// Bytes uploaded.
    pub bytes_uploaded: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok(us: u64) -> ProbeOutcome {
        ProbeOutcome::Success {
            rtt: SimDuration::from_micros(us),
        }
    }

    #[test]
    fn classify_rtt_bands() {
        assert_eq!(
            classify_rtt(SimDuration::from_micros(250)),
            RttClass::Normal
        );
        assert_eq!(
            classify_rtt(SimDuration::from_micros(3_000_250)),
            RttClass::OneDrop
        );
        assert_eq!(
            classify_rtt(SimDuration::from_micros(9_001_000)),
            RttClass::TwoDrops
        );
        // Band edges: 1.6s is normal, 4.3s is normal (outside 3s±1.4s).
        assert_eq!(
            classify_rtt(SimDuration::from_millis(1_599)),
            RttClass::Normal
        );
        assert_eq!(
            classify_rtt(SimDuration::from_millis(4_401)),
            RttClass::Normal
        );
    }

    #[test]
    fn classify_rtt_band_edges_are_inclusive() {
        // One-drop band is exactly [1.6 s, 4.4 s] (3 s ± 1.4 s), inclusive.
        assert_eq!(
            classify_rtt(SimDuration::from_millis(1_600)),
            RttClass::OneDrop,
            "lower edge 1.6s is in the one-drop band"
        );
        assert_eq!(
            classify_rtt(SimDuration::from_millis(4_400)),
            RttClass::OneDrop,
            "upper edge 4.4s is in the one-drop band"
        );
        // Two-drop band is exactly [7.6 s, 10.4 s] (9 s ± 1.4 s), inclusive.
        assert_eq!(
            classify_rtt(SimDuration::from_millis(7_600)),
            RttClass::TwoDrops,
            "lower edge 7.6s is in the two-drop band"
        );
        assert_eq!(
            classify_rtt(SimDuration::from_millis(10_400)),
            RttClass::TwoDrops,
            "upper edge 10.4s is in the two-drop band"
        );
        // One microsecond outside each edge falls out of the band.
        for (us, expect) in [
            (1_600_000 - 1, RttClass::Normal),
            (4_400_000 + 1, RttClass::Normal),
            (7_600_000 - 1, RttClass::Normal),
            (10_400_000 + 1, RttClass::Normal),
        ] {
            assert_eq!(
                classify_rtt(SimDuration::from_micros(us)),
                expect,
                "rtt {us}us must be outside every retry band"
            );
        }
        // The gap between the bands (4.4 s, 7.6 s) is all Normal.
        for ms in [4_401u64, 5_000, 6_000, 7_000, 7_599] {
            assert_eq!(
                classify_rtt(SimDuration::from_millis(ms)),
                RttClass::Normal,
                "{ms}ms sits in the inter-band gap"
            );
        }
    }

    #[test]
    fn observe_counts_and_drop_rate() {
        let mut c = AgentCounters::new();
        for _ in 0..9_996 {
            c.observe(ok(300));
        }
        for _ in 0..3 {
            c.observe(ok(3_000_300));
        }
        c.observe(ok(9_000_300));
        c.observe(ProbeOutcome::Timeout);
        assert_eq!(c.probes_sent, 10_001);
        assert_eq!(c.probes_succeeded, 10_000);
        assert_eq!(c.probes_failed, 1);
        assert!((c.drop_rate() - 4.0 / 10_000.0).abs() < 1e-12);
    }

    #[test]
    fn snapshot_and_reset() {
        let mut c = AgentCounters::new();
        c.observe(ok(100));
        c.observe(ok(200));
        let s = c.snapshot();
        assert_eq!(s.probes_sent, 2);
        assert!(s.p50.is_some() && s.p99.is_some());
        c.reset_window();
        assert_eq!(c.probes_sent, 0);
        assert!(c.snapshot().p50.is_none());
    }

    #[test]
    fn drop_rate_zero_without_successes() {
        let mut c = AgentCounters::new();
        c.observe(ProbeOutcome::Refused);
        assert_eq!(c.drop_rate(), 0.0);
    }
}
