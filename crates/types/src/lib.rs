//! Shared core types for the Pingmesh reproduction.
//!
//! This crate holds the vocabulary used by every other crate in the
//! workspace: identifiers for data-center entities ([`id`]), network-level
//! primitives such as five-tuples and QoS classes ([`net`]), virtual time
//! ([`time`]), probe descriptions and results ([`probe`]), the pinglist
//! schema exchanged between the Controller and the Agents ([`pinglist`]),
//! a log-bucketed latency histogram with percentile queries ([`hist`]),
//! the performance counters exported by every Agent ([`counters`]), and the
//! common error type ([`error`]).
//!
//! The crate is intentionally dependency-light (only `serde`) so that it can
//! be used from the simulation substrate, the real-socket agents, and the
//! analysis pipeline alike.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod backoff;
pub mod constants;
pub mod counters;
pub mod error;
pub mod hist;
pub mod id;
pub mod inline_vec;
pub mod net;
pub mod pinglist;
pub mod probe;
pub mod quantile;
pub mod telemetry;
pub mod time;

pub use backoff::Backoff;
pub use counters::{AgentCounters, CounterSnapshot};
pub use error::{PingmeshError, Result};
pub use hist::LatencyHistogram;
pub use id::{DcId, DeviceId, PodId, PodsetId, ServerId, ServiceId, SwitchId, SwitchTier};
pub use inline_vec::InlineVec;
pub use net::{FiveTuple, IpProto, QosClass, VipId};
pub use pinglist::{PingTarget, Pinglist, PinglistEntry};
pub use probe::{PairStats, ProbeKind, ProbeOutcome, ProbeRecord};
pub use time::{SimDuration, SimTime};
