//! The Perfcounter Aggregator fast path (paper §3.5).
//!
//! "In parallel we use the Autopilot PA pipeline to collect and aggregate
//! a set of Pingmesh counters. The Autopilot PA pipeline is a distributed
//! design with every data center has its own pipeline. The PA counter
//! collection latency is 5 minutes, which is faster than our
//! Cosmos/SCOPE pipeline. ... By using both of them, we provide higher
//! availability for Pingmesh than either of them."
//!
//! Every 5 minutes the aggregator sweeps each agent's counter snapshot
//! and folds them into one fleet sample per DC.

use pingmesh_types::{CounterSnapshot, DcId, SimDuration, SimTime};
use std::collections::BTreeMap;

/// Default PA collection interval.
pub const PA_INTERVAL: SimDuration = SimDuration::from_mins(5);

/// One aggregated fleet sample for a DC.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetSample {
    /// Collection time.
    pub ts: SimTime,
    /// Agents that reported.
    pub agents: u64,
    /// Total probes sent in the interval.
    pub probes_sent: u64,
    /// Total probes succeeded.
    pub probes_succeeded: u64,
    /// Fleet drop-rate estimate (success-weighted mean of agent rates).
    pub drop_rate: f64,
    /// Median of the agents' P99s, µs (a robust fleet tail signal).
    pub p99_median_us: u64,
    /// Max of the agents' P99s, µs.
    pub p99_max_us: u64,
}

/// The per-DC perfcounter aggregation pipeline.
#[derive(Debug, Default)]
pub struct PerfCounterAggregator {
    series: BTreeMap<DcId, Vec<FleetSample>>,
}

impl PerfCounterAggregator {
    /// Empty aggregator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one DC's agent snapshots collected at `ts` into a sample.
    /// Agents with no traffic in the window are counted but contribute no
    /// latency.
    pub fn collect(
        &mut self,
        dc: DcId,
        ts: SimTime,
        snapshots: impl IntoIterator<Item = CounterSnapshot>,
    ) -> FleetSample {
        let mut agents = 0u64;
        let mut sent = 0u64;
        let mut succeeded = 0u64;
        let mut weighted_drops = 0.0f64;
        let mut p99s: Vec<u64> = Vec::new();
        for s in snapshots {
            agents += 1;
            sent += s.probes_sent;
            succeeded += s.probes_succeeded;
            weighted_drops += s.drop_rate * s.probes_succeeded as f64;
            if let Some(p99) = s.p99 {
                p99s.push(p99.as_micros());
            }
        }
        let p99_max_us = p99s.iter().copied().max().unwrap_or(0);
        let p99_median_us = pingmesh_types::quantile::quantile_in_place(&mut p99s, 0.5)
            .copied()
            .unwrap_or(0);
        let sample = FleetSample {
            ts,
            agents,
            probes_sent: sent,
            probes_succeeded: succeeded,
            drop_rate: if succeeded == 0 {
                0.0
            } else {
                weighted_drops / succeeded as f64
            },
            p99_median_us,
            p99_max_us,
        };
        self.series.entry(dc).or_default().push(sample);
        sample
    }

    /// Time series of a DC, oldest first.
    pub fn series(&self, dc: DcId) -> &[FleetSample] {
        self.series.get(&dc).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Latest sample of a DC.
    pub fn latest(&self, dc: DcId) -> Option<&FleetSample> {
        self.series(dc).last()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(sent: u64, succeeded: u64, drop: f64, p99_us: Option<u64>) -> CounterSnapshot {
        CounterSnapshot {
            probes_sent: sent,
            probes_succeeded: succeeded,
            probes_failed: sent - succeeded,
            drop_rate: drop,
            p50: Some(SimDuration::from_micros(250)),
            p99: p99_us.map(SimDuration::from_micros),
            records_discarded: 0,
            bytes_uploaded: 0,
        }
    }

    #[test]
    fn collect_aggregates_fleet() {
        let mut pa = PerfCounterAggregator::new();
        let s = pa.collect(
            DcId(0),
            SimTime(300_000_000),
            vec![
                snap(100, 100, 1e-4, Some(1_200)),
                snap(300, 300, 3e-4, Some(1_800)),
                snap(0, 0, 0.0, None),
            ],
        );
        assert_eq!(s.agents, 3);
        assert_eq!(s.probes_sent, 400);
        // success-weighted: (1e-4*100 + 3e-4*300)/400 = 2.5e-4
        assert!((s.drop_rate - 2.5e-4).abs() < 1e-12);
        // Nearest-rank median of two samples is the first (rank ⌈1⌉).
        assert_eq!(s.p99_median_us, 1_200);
        assert_eq!(s.p99_max_us, 1_800);
    }

    #[test]
    fn empty_collection_is_zeroed() {
        let mut pa = PerfCounterAggregator::new();
        let s = pa.collect(DcId(0), SimTime(0), vec![]);
        assert_eq!(s.agents, 0);
        assert_eq!(s.drop_rate, 0.0);
        assert_eq!(s.p99_max_us, 0);
    }

    #[test]
    fn series_grows_per_dc() {
        let mut pa = PerfCounterAggregator::new();
        pa.collect(DcId(0), SimTime(0), vec![snap(1, 1, 0.0, Some(100))]);
        pa.collect(DcId(0), SimTime(300), vec![snap(1, 1, 0.0, Some(100))]);
        pa.collect(DcId(1), SimTime(0), vec![snap(1, 1, 0.0, Some(100))]);
        assert_eq!(pa.series(DcId(0)).len(), 2);
        assert_eq!(pa.series(DcId(1)).len(), 1);
        assert!(pa.latest(DcId(0)).unwrap().ts > pa.series(DcId(0))[0].ts);
        assert!(pa.series(DcId(9)).is_empty());
    }
}
