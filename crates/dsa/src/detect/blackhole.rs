//! ToR black-hole detection (paper §5.1).
//!
//! "The idea of the algorithm is that if many servers under a ToR switch
//! experience the black-hole symptom, then we mark the ToR switch as a
//! black-hole candidate and assign it a score which is the ratio of
//! servers with black-hole symptom. We then select the switches with
//! black-hole score larger than a threshold as the candidates. Within a
//! podset, if only part of the ToRs experience the black-hole symptom,
//! then those ToRs are blacking hole packets. We then invoke a network
//! repairing service to safely restart the ToRs. If all the ToRs in a
//! podset experience the black-hole symptom, then the problem may be in
//! the Leaf or Spine layer. Network engineers are notified to do further
//! investigation."
//!
//! The per-server *symptom* is: "server A cannot talk to server B, but it
//! can talk to servers C and D just fine. All the servers A-D are
//! healthy." Concretely: A has at least one peer with deterministic
//! full-window failure, while (a) A itself reaches most of its peers and
//! (b) the unreachable peer is reachable from other servers (so the peer
//! is not simply dead).

use crate::agg::{PairKey, WindowAggregate};
use pingmesh_topology::Topology;
use pingmesh_types::{PodsetId, ServerId, SwitchId};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Cap on the black-holed pairs attached to an escalation — they are
/// traceroute targets, and a campaign beyond this size adds latency, not
/// information.
const MAX_ESCALATION_PAIRS: usize = 16;

/// Detector configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BlackholeConfig {
    /// ToR score (fraction of its servers showing the symptom) above
    /// which the ToR becomes a candidate.
    pub score_threshold: f64,
    /// Minimum probes a pair needs in the window before its failure is
    /// considered deterministic.
    pub min_probes_per_pair: u64,
    /// Minimum fraction of a server's peers it must still reach for the
    /// server itself to count as healthy.
    pub min_reach_fraction: f64,
}

impl Default for BlackholeConfig {
    fn default() -> Self {
        Self {
            score_threshold: 0.6,
            min_probes_per_pair: 2,
            min_reach_fraction: 0.2,
        }
    }
}

/// A ToR candidate with its score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TorCandidate {
    /// The suspect ToR.
    pub tor: SwitchId,
    /// Fraction of its servers with the symptom.
    pub score: f64,
}

/// A podset whose ToRs are *all* symptomatic — a Leaf/Spine problem. The
/// finding is actionable: it names its confidence and the concrete
/// black-holed pairs a traceroute campaign can localize the device from.
#[derive(Debug, Clone, PartialEq)]
pub struct EscalationFinding {
    /// The affected podset.
    pub podset: PodsetId,
    /// Mean black-hole score of the podset's ToRs — the fraction of
    /// servers showing the symptom, which is how sure the detector is
    /// that the problem sits above the ToR tier.
    pub confidence: f64,
    /// Black-holed pairs whose source lives in this podset and whose
    /// destination is outside the source pod (so the path traverses the
    /// suspect Leaf/Spine tier). Sorted, capped — traceroute targets.
    pub suspect_pairs: Vec<PairKey>,
}

/// Result of one detection run.
#[derive(Debug, Clone, Default)]
pub struct BlackholeFinding {
    /// ToRs to reload, most suspect first. The score doubles as the
    /// mitigation confidence.
    pub reload_candidates: Vec<TorCandidate>,
    /// Podsets where *every* ToR shows the symptom — a Leaf/Spine problem
    /// to escalate, carrying the evidence needed to localize the device.
    pub escalations: Vec<EscalationFinding>,
    /// Servers that exhibited the symptom (diagnostics).
    pub symptomatic_servers: Vec<ServerId>,
}

/// The detector.
#[derive(Debug, Clone, Copy, Default)]
pub struct BlackholeDetector {
    /// Configuration.
    pub config: BlackholeConfig,
}

impl BlackholeDetector {
    /// Creates a detector.
    pub fn new(config: BlackholeConfig) -> Self {
        Self { config }
    }

    /// Runs detection over one window's aggregate.
    pub fn detect(&self, agg: &WindowAggregate, topo: &Topology) -> BlackholeFinding {
        let cfg = self.config;

        // Which destinations are reachable from at least one source?
        let mut dst_reachable: HashSet<ServerId> = HashSet::new();
        for (k, v) in &agg.pairs {
            if v.successful() > 0 {
                dst_reachable.insert(k.dst);
            }
        }

        // Per-server peer accounting.
        #[derive(Default)]
        struct Acc {
            peers: u64,
            reached: u64,
            blackholed: u64,
        }
        let mut per_src: HashMap<ServerId, Acc> = HashMap::new();
        let mut blackholed_pairs: Vec<PairKey> = Vec::new();
        for (k, v) in &agg.pairs {
            if v.total() < cfg.min_probes_per_pair {
                continue;
            }
            let a = per_src.entry(k.src).or_default();
            a.peers += 1;
            if v.successful() > 0 {
                a.reached += 1;
            } else if v.is_deterministic_failure() && dst_reachable.contains(&k.dst) {
                a.blackholed += 1;
                blackholed_pairs.push(*k);
            }
        }

        // The symptom.
        let mut symptomatic: Vec<ServerId> = per_src
            .iter()
            .filter(|(_, a)| {
                a.peers > 0
                    && a.blackholed > 0
                    && (a.reached as f64 / a.peers as f64) >= cfg.min_reach_fraction
            })
            .map(|(&s, _)| s)
            .collect();
        symptomatic.sort();

        // ToR scores: symptomatic servers / servers-with-data per pod.
        let mut pod_total: HashMap<u32, u64> = HashMap::new();
        for &s in per_src.keys() {
            *pod_total.entry(topo.server(s).pod.0).or_default() += 1;
        }
        let mut pod_sympt: HashMap<u32, u64> = HashMap::new();
        for &s in &symptomatic {
            *pod_sympt.entry(topo.server(s).pod.0).or_default() += 1;
        }

        let mut candidates: Vec<TorCandidate> = pod_sympt
            .iter()
            .filter_map(|(&pod, &sympt)| {
                let total = *pod_total.get(&pod)?;
                if total == 0 {
                    return None;
                }
                let score = sympt as f64 / total as f64;
                (score >= cfg.score_threshold).then(|| TorCandidate {
                    tor: topo.tor_of_pod(pingmesh_types::PodId(pod)),
                    score,
                })
            })
            .collect();
        candidates.sort_by(|a, b| {
            b.score
                .total_cmp(&a.score)
                .then_with(|| a.tor.index.cmp(&b.tor.index))
        });

        // Podset rule: all-ToRs-symptomatic ⇒ escalate instead of reload.
        let mut by_podset: HashMap<PodsetId, Vec<(SwitchId, f64)>> = HashMap::new();
        for c in &candidates {
            let pod = topo.pod_of_tor(c.tor).expect("candidate tor maps to pod");
            by_podset
                .entry(topo.pod(pod).podset)
                .or_default()
                .push((c.tor, c.score));
        }
        let mut escalations = Vec::new();
        let mut escalated_tors: HashSet<SwitchId> = HashSet::new();
        for (podset, tors) in &by_podset {
            // Count this podset's pods that have any data at all.
            let pods_with_data = topo
                .pods_in_podset(*podset)
                .filter(|p| pod_total.contains_key(&p.0))
                .count();
            if pods_with_data > 1 && tors.len() >= pods_with_data {
                let confidence = tors.iter().map(|&(_, s)| s).sum::<f64>() / tors.len() as f64;
                // The evidence: black-holed pairs leaving this podset's
                // pods — their paths traverse the suspect tier.
                let mut suspect_pairs: Vec<PairKey> = blackholed_pairs
                    .iter()
                    .filter(|k| {
                        let src = topo.server(k.src);
                        src.podset == *podset && topo.server(k.dst).pod != src.pod
                    })
                    .copied()
                    .collect();
                suspect_pairs.sort();
                suspect_pairs.truncate(MAX_ESCALATION_PAIRS);
                escalations.push(EscalationFinding {
                    podset: *podset,
                    confidence,
                    suspect_pairs,
                });
                escalated_tors.extend(tors.iter().map(|&(t, _)| t));
            }
        }
        escalations.sort_by_key(|e| e.podset);
        candidates.retain(|c| !escalated_tors.contains(&c.tor));

        BlackholeFinding {
            reload_candidates: candidates,
            escalations,
            symptomatic_servers: symptomatic,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::PairKey;
    use pingmesh_topology::TopologySpec;
    use pingmesh_types::{PairStats, PodId};

    fn topo() -> Topology {
        Topology::build(TopologySpec::single_tiny()).unwrap()
    }

    /// Builds an aggregate where `dead_pairs` fail deterministically and
    /// everything else succeeds. Pairs follow the pinglist shape: every
    /// server probes its pod peers and its index-peer in other pods.
    fn synthetic_agg(topo: &Topology, dead_pairs: &[(u32, u32)]) -> WindowAggregate {
        let dead: HashSet<(u32, u32)> = dead_pairs.iter().copied().collect();
        let mut agg = WindowAggregate::default();
        for src in topo.servers() {
            let info = topo.server(src);
            let mut peers = Vec::new();
            for p in topo.servers_in_pod(info.pod) {
                if p != src {
                    peers.push(p);
                }
            }
            for pod in topo.pods_in_dc(info.dc) {
                if pod != info.pod {
                    if let Some(p) = topo.nth_server_of_pod(pod, info.index_in_pod) {
                        peers.push(p);
                    }
                }
            }
            for dst in peers {
                let stats = if dead.contains(&(src.0, dst.0)) {
                    PairStats {
                        failed: 10,
                        ..Default::default()
                    }
                } else {
                    PairStats {
                        ok: 10,
                        ..Default::default()
                    }
                };
                agg.pairs.insert(PairKey { src, dst }, stats);
            }
        }
        agg
    }

    #[test]
    fn clean_window_finds_nothing() {
        let t = topo();
        let agg = synthetic_agg(&t, &[]);
        let f = BlackholeDetector::default().detect(&agg, &t);
        assert!(f.reload_candidates.is_empty());
        assert!(f.escalations.is_empty());
        assert!(f.symptomatic_servers.is_empty());
    }

    #[test]
    fn tor_blackhole_is_caught() {
        let t = topo();
        // Pod 1's ToR black-holes: every server in pod 1 loses one
        // cross-pod peer (and the reverse direction fails too).
        let mut dead = Vec::new();
        for s in t.servers_in_pod(PodId(1)) {
            let i = t.server(s).index_in_pod;
            let peer = t.nth_server_of_pod(PodId(2), i).unwrap();
            dead.push((s.0, peer.0));
            dead.push((peer.0, s.0));
        }
        let agg = synthetic_agg(&t, &dead);
        let f = BlackholeDetector::default().detect(&agg, &t);
        assert!(!f.reload_candidates.is_empty());
        assert_eq!(f.reload_candidates[0].tor, t.tor_of_pod(PodId(1)));
        assert!(f.reload_candidates[0].score >= 0.5);
        assert!(f.escalations.is_empty());
    }

    #[test]
    fn dead_destination_is_not_a_blackhole() {
        let t = topo();
        // Server 5 is dead: every pair towards it fails, but it is not
        // reachable from *anywhere*, so no symptom may fire.
        let dead: Vec<(u32, u32)> = t.servers().filter(|s| s.0 != 5).map(|s| (s.0, 5)).collect();
        let agg = synthetic_agg(&t, &dead);
        let f = BlackholeDetector::default().detect(&agg, &t);
        assert!(
            f.symptomatic_servers.is_empty(),
            "dead peer must not create symptoms: {:?}",
            f.symptomatic_servers
        );
    }

    #[test]
    fn whole_podset_symptom_escalates_to_leaf_spine() {
        let t = topo();
        // Every server of podset 0 (pods 0..4) loses a peer — as if a
        // Leaf above them black-holed. All four ToRs become candidates →
        // escalate, no reloads.
        let mut dead = Vec::new();
        for pod in 0..4u32 {
            for s in t.servers_in_pod(PodId(pod)) {
                let i = t.server(s).index_in_pod;
                let peer = t.nth_server_of_pod(PodId(5), i).unwrap();
                dead.push((s.0, peer.0));
                dead.push((peer.0, s.0));
            }
        }
        let agg = synthetic_agg(&t, &dead);
        let f = BlackholeDetector::default().detect(&agg, &t);
        let podset = t.server(t.servers_in_pod(PodId(0)).next().unwrap()).podset;
        assert_eq!(f.escalations.len(), 1);
        let esc = &f.escalations[0];
        assert_eq!(esc.podset, podset);
        assert!(esc.confidence >= 0.5, "confidence {}", esc.confidence);
        // The escalation carries localizable evidence: black-holed pairs
        // leaving the podset's pods.
        assert!(!esc.suspect_pairs.is_empty());
        assert!(esc.suspect_pairs.len() <= 16);
        for p in &esc.suspect_pairs {
            assert_eq!(t.server(p.src).podset, podset);
            assert_ne!(t.server(p.dst).pod, t.server(p.src).pod);
        }
        // The four ToRs of podset 0 must not be reload candidates.
        for c in &f.reload_candidates {
            let pod = t.pod_of_tor(c.tor).unwrap();
            assert!(
                pod.0 >= 4,
                "podset-0 ToR {} wrongly marked for reload",
                c.tor
            );
        }
    }

    #[test]
    fn symptom_requires_server_to_reach_others() {
        let t = topo();
        // Server 0 loses ALL its peers (its own NIC is dead, not a remote
        // black-hole): reach fraction 0 < min_reach_fraction.
        let info = t.server(ServerId(0));
        let mut dead = Vec::new();
        for p in t.servers_in_pod(info.pod) {
            if p.0 != 0 {
                dead.push((0, p.0));
            }
        }
        for pod in t.pods_in_dc(info.dc) {
            if pod != info.pod {
                if let Some(p) = t.nth_server_of_pod(pod, 0) {
                    dead.push((0, p.0));
                }
            }
        }
        let agg = synthetic_agg(&t, &dead);
        let f = BlackholeDetector::default().detect(&agg, &t);
        assert!(!f.symptomatic_servers.contains(&ServerId(0)));
    }

    #[test]
    fn sparse_pairs_are_ignored() {
        let t = topo();
        let mut agg = synthetic_agg(&t, &[]);
        // A pair with a single failed probe: below min_probes_per_pair.
        agg.pairs.insert(
            PairKey {
                src: ServerId(0),
                dst: ServerId(9),
            },
            PairStats {
                failed: 1,
                ..Default::default()
            },
        );
        let f = BlackholeDetector::default().detect(&agg, &t);
        assert!(f.symptomatic_servers.is_empty());
    }
}
