//! Failure detection built on the Pingmesh data.
//!
//! * [`blackhole`] — the ToR black-hole detection algorithm of §5.1,
//! * [`silent`] — silent random packet-drop incident detection of §5.2,
//! * [`pattern`] — the latency-pattern classification behind the Figure-8
//!   visualizations of §6.3.

pub mod blackhole;
pub mod pattern;
pub mod silent;
