//! Latency-pattern classification (paper §6.3, Figure 8).
//!
//! The visualization portal draws, per DC, a matrix of podset-pair P99
//! latencies: "a small green, yellow, or red block or pixel shows the
//! network latency at the 99th percentile between a source-destination
//! pod-pair. Green means the latency is less than 4ms, yellow means the
//! latency is between 4-5ms, and red is for latency larger than 5ms. A
//! white block means there is no latency data available."
//!
//! Four canonical patterns are recognized automatically:
//!
//! * **Normal** — (almost) all green (Fig. 8(a));
//! * **Podset-down** — a white cross: the podset lost power, so there is
//!   no data from or to it (Fig. 8(b));
//! * **Podset-failure** — a red cross: high latency from and to one
//!   podset, e.g. a Leaf dropping packets (Fig. 8(c));
//! * **Spine-failure** — red off-diagonal with green diagonal squares:
//!   intra-podset latency fine, cross-podset latency out of SLA
//!   (Fig. 8(d)).

use crate::agg::WindowAggregate;
use pingmesh_topology::Topology;
use pingmesh_types::{DcId, PodsetId, SimDuration};

/// Green/yellow/red thresholds from the paper.
pub const GREEN_BELOW: SimDuration = SimDuration::from_millis(4);
/// See [`GREEN_BELOW`].
pub const YELLOW_BELOW: SimDuration = SimDuration::from_millis(5);

/// Cell color in the heatmap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellColor {
    /// P99 < 4 ms.
    Green,
    /// 4 ms ≤ P99 ≤ 5 ms.
    Yellow,
    /// P99 > 5 ms.
    Red,
    /// No data.
    White,
}

/// The podset-pair P99 matrix of one DC.
#[derive(Debug, Clone)]
pub struct HeatmapMatrix {
    /// The DC rendered.
    pub dc: DcId,
    /// Podsets, in matrix order.
    pub podsets: Vec<PodsetId>,
    /// Row-major P99 per (src podset, dst podset); `None` = no data.
    pub p99_us: Vec<Option<u64>>,
}

impl HeatmapMatrix {
    /// Builds the matrix of a DC from a window aggregate.
    pub fn from_aggregate(agg: &WindowAggregate, topo: &Topology, dc: DcId) -> Self {
        let podsets: Vec<PodsetId> = topo.podsets_in_dc(dc).collect();
        let n = podsets.len();
        let mut p99_us = vec![None; n * n];
        for (i, &a) in podsets.iter().enumerate() {
            for (j, &b) in podsets.iter().enumerate() {
                if let Some(h) = agg.podset_matrix.get(&(a, b)) {
                    p99_us[i * n + j] = h.p99().map(|d| d.as_micros());
                }
            }
        }
        Self {
            dc,
            podsets,
            p99_us,
        }
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.podsets.len()
    }

    /// The P99 of a cell.
    pub fn cell(&self, i: usize, j: usize) -> Option<u64> {
        self.p99_us[i * self.n() + j]
    }

    /// The color of a cell.
    pub fn color(&self, i: usize, j: usize) -> CellColor {
        match self.cell(i, j) {
            None => CellColor::White,
            Some(us) if us < GREEN_BELOW.as_micros() => CellColor::Green,
            Some(us) if us <= YELLOW_BELOW.as_micros() => CellColor::Yellow,
            Some(_) => CellColor::Red,
        }
    }
}

/// The classification verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatencyPattern {
    /// All green: the network is fine.
    Normal,
    /// White cross at one podset: podset lost power.
    PodsetDown(PodsetId),
    /// Red cross at one podset: network issue *within* the podset
    /// (e.g. a packet-dropping Leaf or an L2 storm).
    PodsetFailure(PodsetId),
    /// Green diagonal, red elsewhere: a Spine-layer issue.
    SpineFailure,
    /// Something is wrong but matches no canonical pattern.
    Degraded,
}

fn fraction(colors: &[CellColor], want: CellColor) -> f64 {
    if colors.is_empty() {
        return 0.0;
    }
    colors.iter().filter(|&&c| c == want).count() as f64 / colors.len() as f64
}

/// Classifies a heatmap into one of the Figure-8 patterns.
pub fn classify_pattern(m: &HeatmapMatrix) -> LatencyPattern {
    let n = m.n();
    if n == 0 {
        return LatencyPattern::Normal;
    }

    // Per-podset cross (row ∪ column) and the remainder.
    for (idx, &podset) in m.podsets.iter().enumerate() {
        let mut cross = Vec::new();
        let mut rest = Vec::new();
        for i in 0..n {
            for j in 0..n {
                let c = m.color(i, j);
                if i == idx || j == idx {
                    cross.push(c);
                } else {
                    rest.push(c);
                }
            }
        }
        let rest_green = fraction(&rest, CellColor::Green);
        // White cross: no data touching this podset, rest healthy.
        if fraction(&cross, CellColor::White) >= 0.9 && (rest.is_empty() || rest_green >= 0.7) {
            return LatencyPattern::PodsetDown(podset);
        }
        // Red cross: bad latency touching this podset, rest healthy.
        if fraction(&cross, CellColor::Red) >= 0.7 && (rest.is_empty() || rest_green >= 0.7) {
            return LatencyPattern::PodsetFailure(podset);
        }
    }

    // Spine failure: diagonal green, off-diagonal predominantly red.
    let diag: Vec<CellColor> = (0..n).map(|i| m.color(i, i)).collect();
    let mut off = Vec::new();
    for i in 0..n {
        for j in 0..n {
            if i != j {
                off.push(m.color(i, j));
            }
        }
    }
    if n > 1 && fraction(&diag, CellColor::Green) >= 0.8 && fraction(&off, CellColor::Red) >= 0.7 {
        return LatencyPattern::SpineFailure;
    }

    // Normal: everything (with data) green.
    let all: Vec<CellColor> = (0..n * n)
        .map(|k| m.color(k / n, k % n))
        .filter(|&c| c != CellColor::White)
        .collect();
    if fraction(&all, CellColor::Green) >= 0.95 {
        return LatencyPattern::Normal;
    }
    LatencyPattern::Degraded
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a 4x4 matrix with the provided cell generator.
    fn matrix(f: impl Fn(usize, usize) -> Option<u64>) -> HeatmapMatrix {
        let n = 4;
        let mut p99_us = vec![None; n * n];
        for i in 0..n {
            for j in 0..n {
                p99_us[i * n + j] = f(i, j);
            }
        }
        HeatmapMatrix {
            dc: DcId(0),
            podsets: (0..n as u32).map(PodsetId).collect(),
            p99_us,
        }
    }

    const GREEN: Option<u64> = Some(1_300);
    const RED: Option<u64> = Some(3_000_000);

    #[test]
    fn color_thresholds_match_paper() {
        let m = matrix(|i, _| match i {
            0 => Some(3_999),
            1 => Some(4_000),
            2 => Some(5_000),
            _ => Some(5_001),
        });
        assert_eq!(m.color(0, 0), CellColor::Green);
        assert_eq!(m.color(1, 0), CellColor::Yellow);
        assert_eq!(m.color(2, 0), CellColor::Yellow);
        assert_eq!(m.color(3, 0), CellColor::Red);
        let empty = matrix(|_, _| None);
        assert_eq!(empty.color(0, 0), CellColor::White);
    }

    #[test]
    fn all_green_is_normal() {
        assert_eq!(
            classify_pattern(&matrix(|_, _| GREEN)),
            LatencyPattern::Normal
        );
    }

    #[test]
    fn white_cross_is_podset_down() {
        let m = matrix(|i, j| if i == 2 || j == 2 { None } else { GREEN });
        assert_eq!(
            classify_pattern(&m),
            LatencyPattern::PodsetDown(PodsetId(2))
        );
    }

    #[test]
    fn red_cross_is_podset_failure() {
        let m = matrix(|i, j| if i == 1 || j == 1 { RED } else { GREEN });
        assert_eq!(
            classify_pattern(&m),
            LatencyPattern::PodsetFailure(PodsetId(1))
        );
    }

    #[test]
    fn green_diagonal_red_rest_is_spine_failure() {
        let m = matrix(|i, j| if i == j { GREEN } else { RED });
        assert_eq!(classify_pattern(&m), LatencyPattern::SpineFailure);
    }

    #[test]
    fn scattered_red_is_degraded() {
        // Red in an irregular set of cells: not a cross, not spine.
        let m = matrix(|i, j| if (i + j) % 2 == 0 { RED } else { GREEN });
        assert_eq!(classify_pattern(&m), LatencyPattern::Degraded);
    }

    #[test]
    fn sparse_white_cells_do_not_break_normal() {
        // A couple of missing cells (low traffic) in a green matrix.
        let m = matrix(|i, j| if i == 0 && j == 3 { None } else { GREEN });
        assert_eq!(classify_pattern(&m), LatencyPattern::Normal);
    }

    #[test]
    fn empty_matrix_is_normal() {
        let m = HeatmapMatrix {
            dc: DcId(0),
            podsets: vec![],
            p99_us: vec![],
        };
        assert_eq!(classify_pattern(&m), LatencyPattern::Normal);
    }
}
