//! Silent random packet-drop incident detection (paper §5.2).
//!
//! "In one incident, all the users in a data center began to experience
//! increased network latency at the 99th percentile. Using Pingmesh, we
//! could confirm that the packet drops in that data center has increased
//! significantly ... Under normal condition, the percentage should be at
//! around 1e-4 – 1e-5. But it suddenly jumped up to around 2e-3."
//!
//! The detector keeps a per-DC drop-rate series. When the rate jumps far
//! above the trailing baseline (and past the SLA alert threshold) it
//! opens an incident, attaches the Figure-8 pattern verdict (a
//! [`LatencyPattern::SpineFailure`] points at the Spine tier — "Packet
//! drops at ToR and Leaf layers cannot cause the latency increase for all
//! our customers due to the much smaller number of servers under them"),
//! and selects the worst-affected cross-podset pairs as traceroute
//! targets. Pingmesh itself stops there: localizing the device is the job
//! of the traceroute campaign (run by the orchestrator), exactly as in
//! the paper.

use crate::agg::{PairKey, WindowAggregate};
use crate::detect::pattern::{classify_pattern, HeatmapMatrix, LatencyPattern};
use pingmesh_topology::Topology;
use pingmesh_types::{DcId, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Detector configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SilentDropConfig {
    /// Absolute drop-rate floor for an incident.
    pub incident_threshold: f64,
    /// The rate must additionally exceed `baseline × jump_factor`.
    pub jump_factor: f64,
    /// Trailing windows used for the baseline (median).
    pub baseline_windows: usize,
    /// A pair is a traceroute target when its window drop rate is at
    /// least this.
    pub pair_drop_threshold: f64,
    /// Maximum traceroute targets to emit.
    pub max_pairs: usize,
}

impl Default for SilentDropConfig {
    fn default() -> Self {
        Self {
            incident_threshold: 1e-3,
            jump_factor: 5.0,
            baseline_windows: 12,
            pair_drop_threshold: 5e-3,
            max_pairs: 16,
        }
    }
}

/// An open incident produced by the detector.
#[derive(Debug, Clone)]
pub struct SilentDropFinding {
    /// The affected DC.
    pub dc: DcId,
    /// Window in which the jump was seen.
    pub window_start: SimTime,
    /// Observed DC-wide drop rate.
    pub drop_rate: f64,
    /// Trailing baseline the rate was compared against.
    pub baseline: f64,
    /// Figure-8 pattern verdict for the window.
    pub pattern: LatencyPattern,
    /// Worst cross-podset pairs — the traceroute targets.
    pub suspect_pairs: Vec<PairKey>,
    /// How far the observed rate sits above the firing bar, in `[0, 1)`:
    /// a rate just past the threshold scores near zero, ten times the
    /// bar scores 0.9. Downstream mitigation gates on this, so a
    /// marginal jump is investigated but never drains a device.
    pub confidence: f64,
}

/// Per-DC drop-rate tracker + incident detector.
#[derive(Debug, Default)]
pub struct SilentDropDetector {
    /// Configuration.
    pub config: SilentDropConfig,
    series: HashMap<DcId, Vec<(SimTime, f64)>>,
}

impl SilentDropDetector {
    /// Creates a detector.
    pub fn new(config: SilentDropConfig) -> Self {
        Self {
            config,
            series: HashMap::new(),
        }
    }

    /// The recorded drop-rate series of a DC.
    pub fn series(&self, dc: DcId) -> &[(SimTime, f64)] {
        self.series.get(&dc).map(|v| v.as_slice()).unwrap_or(&[])
    }

    fn baseline(&self, dc: DcId) -> Option<f64> {
        let s = self.series(dc);
        if s.is_empty() {
            return None;
        }
        let mut tail: Vec<f64> = s
            .iter()
            .rev()
            .take(self.config.baseline_windows)
            .map(|&(_, r)| r)
            .collect();
        pingmesh_types::quantile::quantile_f64_in_place(&mut tail, 0.5)
    }

    /// Folds one window of one DC; returns an incident if the drop rate
    /// jumped.
    pub fn observe_window(
        &mut self,
        dc: DcId,
        window_start: SimTime,
        agg: &WindowAggregate,
        topo: &Topology,
    ) -> Option<SilentDropFinding> {
        // DC-wide drop rate over intra-DC pairs (the paper's service view
        // is DC-scoped during the incident).
        let rate = WindowAggregate::drop_rate_over(
            agg.pairs
                .iter()
                .filter(|(k, _)| topo.server(k.src).dc == dc && topo.server(k.dst).dc == dc)
                .map(|(_, v)| v),
        );

        let baseline = self.baseline(dc);
        self.series
            .entry(dc)
            .or_default()
            .push((window_start, rate));

        let baseline = baseline?;
        let cfg = self.config;
        if rate <= cfg.incident_threshold || rate <= baseline * cfg.jump_factor {
            return None;
        }

        // Pattern verdict for the tier hint.
        let matrix = HeatmapMatrix::from_aggregate(agg, topo, dc);
        let pattern = classify_pattern(&matrix);

        // Worst affected cross-podset pairs → traceroute targets.
        let mut pairs: Vec<(PairKey, f64)> = agg
            .pairs
            .iter()
            .filter(|(k, v)| {
                topo.server(k.src).dc == dc
                    && topo.server(k.dst).dc == dc
                    && topo.server(k.src).podset != topo.server(k.dst).podset
                    && v.successful() + v.failed >= 2
                    && v.drop_rate() >= cfg.pair_drop_threshold
            })
            .map(|(k, v)| (*k, v.drop_rate()))
            .collect();
        pairs.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        pairs.truncate(cfg.max_pairs);

        let bar = cfg.incident_threshold.max(baseline * cfg.jump_factor);
        Some(SilentDropFinding {
            dc,
            window_start,
            drop_rate: rate,
            baseline,
            pattern,
            suspect_pairs: pairs.into_iter().map(|(k, _)| k).collect(),
            confidence: (1.0 - bar / rate).clamp(0.0, 1.0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pingmesh_topology::TopologySpec;
    use pingmesh_types::{PairStats, ServerId};

    fn topo() -> Topology {
        Topology::build(TopologySpec::single_tiny()).unwrap()
    }

    /// Aggregate with a uniform drop rate across the pinglist pairs.
    fn agg_with_rate(topo: &Topology, per_pair_3s: u64, ok: u64) -> WindowAggregate {
        let mut agg = WindowAggregate::default();
        for src in topo.servers() {
            let info = topo.server(src);
            for pod in topo.pods_in_dc(info.dc) {
                if pod == info.pod {
                    continue;
                }
                if let Some(dst) = topo.nth_server_of_pod(pod, info.index_in_pod) {
                    agg.pairs.insert(
                        PairKey { src, dst },
                        PairStats {
                            ok,
                            rtt_3s: per_pair_3s,
                            ..Default::default()
                        },
                    );
                }
            }
        }
        agg
    }

    #[test]
    fn stable_rate_never_fires() {
        let t = topo();
        let mut d = SilentDropDetector::default();
        for w in 0..20u64 {
            let agg = agg_with_rate(&t, 0, 1_000);
            assert!(d
                .observe_window(DcId(0), SimTime(w * 600_000_000), &agg, &t)
                .is_none());
        }
        assert_eq!(d.series(DcId(0)).len(), 20);
    }

    #[test]
    fn jump_fires_an_incident_with_suspects() {
        let t = topo();
        let mut d = SilentDropDetector::default();
        // Baseline: a tiny rate.
        for w in 0..12u64 {
            let agg = agg_with_rate(&t, 0, 1_000);
            d.observe_window(DcId(0), SimTime(w * 600_000_000), &agg, &t);
        }
        // Incident window: 6e-3-ish drop rate (6 of 1000 probes at 3 s),
        // above both the absolute threshold and the per-pair suspect bar.
        let agg = agg_with_rate(&t, 6, 994);
        let finding = d
            .observe_window(DcId(0), SimTime(12 * 600_000_000), &agg, &t)
            .expect("incident must fire");
        assert!(finding.drop_rate > 1e-3);
        assert!(finding.baseline < 1e-4);
        assert!(
            (0.0..1.0).contains(&finding.confidence) && finding.confidence > 0.5,
            "a 6× jump past the bar is high-confidence: {}",
            finding.confidence
        );
        assert!(!finding.suspect_pairs.is_empty());
        // Suspects must be cross-podset pairs.
        for p in &finding.suspect_pairs {
            assert_ne!(t.server(p.src).podset, t.server(p.dst).podset);
        }
        assert!(finding.suspect_pairs.len() <= d.config.max_pairs);
    }

    #[test]
    fn first_window_cannot_fire_without_baseline() {
        let t = topo();
        let mut d = SilentDropDetector::default();
        let agg = agg_with_rate(&t, 10, 990);
        assert!(d.observe_window(DcId(0), SimTime(0), &agg, &t).is_none());
    }

    #[test]
    fn rate_below_absolute_threshold_never_fires() {
        let t = topo();
        let mut d = SilentDropDetector::default();
        for w in 0..12u64 {
            let agg = agg_with_rate(&t, 0, 10_000);
            d.observe_window(DcId(0), SimTime(w * 600_000_000), &agg, &t);
        }
        // A big *relative* jump that stays under 1e-3 absolute.
        let agg = agg_with_rate(&t, 1, 9_999); // 1e-4
        assert!(d
            .observe_window(DcId(0), SimTime(13 * 600_000_000), &agg, &t)
            .is_none());
    }

    #[test]
    fn dcs_are_tracked_independently() {
        let t = Topology::build(TopologySpec {
            dcs: vec![
                pingmesh_topology::DcSpec::tiny("a"),
                pingmesh_topology::DcSpec::tiny("b"),
            ],
        })
        .unwrap();
        let mut d = SilentDropDetector::default();
        // Feed only DC0 data; DC1's series stays empty.
        let mut agg = WindowAggregate::default();
        agg.pairs.insert(
            PairKey {
                src: ServerId(0),
                dst: ServerId(4),
            },
            PairStats {
                ok: 100,
                ..Default::default()
            },
        );
        d.observe_window(DcId(0), SimTime(0), &agg, &t);
        assert_eq!(d.series(DcId(0)).len(), 1);
        assert!(d.series(DcId(1)).is_empty());
    }
}
