//! Daily network report generation.
//!
//! "The results of the SCOPE jobs are stored in a SQL database, from
//! which visualization, reports, and alerts are generated" (§3.5). This
//! module renders the *report* artifact: a plain-text daily summary an
//! operator (or the network team's standup) reads — per-DC SLA with
//! worst windows, the noisiest pods, alert transitions, and the data
//! volume the fleet produced.

use crate::alert::Alert;
use crate::db::{ResultsDb, ScopeKey, SlaRow};
use pingmesh_topology::Topology;
use pingmesh_types::{SimDuration, SimTime};
use std::fmt::Write as _;

/// Renders the daily report for the day containing `day_start`.
pub fn daily_report(
    db: &ResultsDb,
    alerts: &[Alert],
    topo: &Topology,
    day_start: SimTime,
) -> String {
    let day_end = day_start + SimDuration::from_days(1);
    let in_day = |t: SimTime| t >= day_start && t < day_end;
    let mut out = String::new();
    let _ = writeln!(out, "=== Pingmesh daily network report ===");
    let _ = writeln!(out, "day starting {day_start}");

    // Per-DC SLA rollup over the day's windows.
    let _ = writeln!(out, "\n--- per-DC network SLA ---");
    for dc in topo.dcs() {
        let rows: Vec<&SlaRow> = db
            .series(ScopeKey::Dc(dc))
            .filter(|r| in_day(r.window_start))
            .collect();
        if rows.is_empty() {
            let _ = writeln!(out, "{:<20} no data", topo.dc(dc).name);
            continue;
        }
        let samples: u64 = rows.iter().map(|r| r.samples).sum();
        let drop_rate = rows
            .iter()
            .map(|r| r.drop_rate * r.samples as f64)
            .sum::<f64>()
            / samples.max(1) as f64;
        let median_p99 = {
            let mut p99s: Vec<u64> = rows.iter().map(|r| r.p99_us).collect();
            *pingmesh_types::quantile::quantile_in_place(&mut p99s, 0.5).expect("non-empty rows")
        };
        let worst = rows
            .iter()
            .max_by_key(|r| r.p99_us)
            .expect("non-empty rows");
        let _ = writeln!(
            out,
            "{:<20} windows={:<4} probes={:<10} drop_rate={:.1e} median_p99={}us (worst {}us at {})",
            topo.dc(dc).name,
            rows.len(),
            samples,
            drop_rate,
            median_p99,
            worst.p99_us,
            worst.window_start,
        );
    }

    // Noisiest pods of the day (highest day-aggregate drop rate).
    let _ = writeln!(out, "\n--- noisiest pods (by drop rate) ---");
    let mut pods: Vec<(u32, f64, u64)> = topo
        .dcs()
        .flat_map(|dc| topo.pods_in_dc(dc))
        .filter_map(|pod| {
            let rows: Vec<&SlaRow> = db
                .series(ScopeKey::Pod(pod))
                .filter(|r| in_day(r.window_start))
                .collect();
            let samples: u64 = rows.iter().map(|r| r.samples).sum();
            if samples == 0 {
                return None;
            }
            let rate = rows
                .iter()
                .map(|r| r.drop_rate * r.samples as f64)
                .sum::<f64>()
                / samples as f64;
            Some((pod.0, rate, samples))
        })
        .collect();
    pods.sort_by(|a, b| b.1.total_cmp(&a.1));
    for (pod, rate, samples) in pods.iter().take(5) {
        let _ = writeln!(out, "pod{pod:<6} drop_rate={rate:.1e} ({samples} probes)");
    }
    if pods.is_empty() {
        let _ = writeln!(out, "no pod data");
    }

    // Alert transitions of the day.
    let _ = writeln!(out, "\n--- alerts ---");
    let day_alerts: Vec<&Alert> = alerts.iter().filter(|a| in_day(a.at)).collect();
    if day_alerts.is_empty() {
        let _ = writeln!(out, "none — the network was within SLA all day");
    }
    for a in day_alerts {
        let _ = writeln!(
            out,
            "{} {} {:?} on {:?} (value {:.2e})",
            a.at,
            if a.raised { "RAISED " } else { "cleared" },
            a.kind,
            a.scope,
            a.value
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alert::AlertKind;
    use crate::db::SlaRow;
    use pingmesh_topology::TopologySpec;
    use pingmesh_types::{DcId, PodId};

    fn topo() -> Topology {
        Topology::build(TopologySpec::single_tiny()).unwrap()
    }

    fn row(scope: ScopeKey, w: u64, drop: f64, p99: u64, samples: u64) -> SlaRow {
        SlaRow {
            window_start: SimTime(w),
            scope,
            drop_rate: drop,
            p50_us: 250,
            p99_us: p99,
            samples,
        }
    }

    #[test]
    fn report_summarizes_dcs_pods_and_alerts() {
        let t = topo();
        let mut db = ResultsDb::new();
        let w10 = SimDuration::from_mins(10).as_micros();
        for k in 0..6u64 {
            db.insert(row(ScopeKey::Dc(DcId(0)), k * w10, 4e-5, 1_300 + k, 10_000));
            db.insert(row(ScopeKey::Pod(PodId(0)), k * w10, 1e-5, 1_200, 1_000));
            db.insert(row(ScopeKey::Pod(PodId(1)), k * w10, 9e-4, 1_200, 1_000));
        }
        let alerts = vec![Alert {
            at: SimTime(2 * w10),
            scope: ScopeKey::Pod(PodId(1)),
            kind: AlertKind::DropRate,
            raised: true,
            value: 9e-4,
        }];
        let report = daily_report(&db, &alerts, &t, SimTime::ZERO);
        assert!(report.contains("per-DC network SLA"));
        assert!(report.contains("windows=6"));
        assert!(report.contains("probes=60000"));
        // pod1 (noisy) ranks above pod0.
        let p1 = report.find("pod1").expect("pod1 listed");
        let p0 = report.find("pod0").expect("pod0 listed");
        assert!(p1 < p0, "noisiest pod first");
        assert!(report.contains("RAISED"));
    }

    #[test]
    fn report_on_empty_day_is_calm() {
        let t = topo();
        let db = ResultsDb::new();
        let report = daily_report(&db, &[], &t, SimTime::ZERO);
        assert!(report.contains("no data"));
        assert!(report.contains("none — the network was within SLA all day"));
    }

    #[test]
    fn report_filters_to_the_requested_day() {
        let t = topo();
        let mut db = ResultsDb::new();
        // One row today, one row tomorrow.
        db.insert(row(ScopeKey::Dc(DcId(0)), 0, 1e-5, 1_000, 100));
        db.insert(row(
            ScopeKey::Dc(DcId(0)),
            SimDuration::from_days(1).as_micros() + 1,
            1e-5,
            1_000,
            100,
        ));
        let report = daily_report(&db, &[], &t, SimTime::ZERO);
        assert!(report.contains("windows=1"));
    }
}
