//! Data Storage and Analysis (DSA) — the Pingmesh analysis pipeline.
//!
//! The paper stores latency data in Cosmos and analyzes it with SCOPE
//! jobs on 10-minute / 1-hour / 1-day cadences, stores results in a SQL
//! database, and generates visualization, reports and alerts (§3.5); a
//! parallel Perfcounter Aggregator path delivers coarse counters with
//! 5-minute latency. This crate reproduces each piece:
//!
//! * [`store`] — append-only extent store (the Cosmos stand-in) that
//!   also folds every accepted batch into per-(stream, 10-min-window)
//!   partial aggregates at ingest and serves zero-copy chunked scans,
//! * [`durable`] — the persistence engine under the store: write-ahead
//!   log, immutable segment files, checkpoint/compaction with tombstone
//!   GC, and deterministic crash recovery,
//! * [`agg`] — the mergeable window aggregation every job consumes
//!   (built once per record at ingest; coarser windows merge partials),
//! * [`jobs`] — the job manager with 10-min / 1-h / 1-day cadences,
//! * [`sla`] — network SLA computation at server / pod / podset / DC /
//!   service scopes (§4.3),
//! * [`pa`] — the fast perf-counter path,
//! * [`db`] — the results database feeding reports and alerts,
//! * [`alert`] — threshold alerting (drop rate > 1e-3, P99 > 5 ms),
//! * [`investigate`] — the §4.3 troubleshooting drill-down (scale of a
//!   problem + concrete reproducible flows),
//! * [`detect`] — switch black-hole detection (§5.1), silent random
//!   packet-drop incident detection (§5.2), and latency-pattern
//!   classification (§6.3 / Figure 8),
//! * [`viz`] — the latency-pattern heatmap rendering.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod agg;
pub mod alert;
pub mod db;
pub mod detect;
pub mod durable;
pub mod investigate;
pub mod jobs;
pub mod pa;
pub mod quality;
pub mod report;
pub mod sla;
pub mod store;
pub mod viz;

pub use agg::{PairKey, ScopeStats, WindowAggregate};
pub use alert::{Alert, AlertKind, Alerter};
pub use db::{ResultsDb, ScopeKey, SlaRow};
pub use detect::blackhole::{BlackholeDetector, BlackholeFinding, EscalationFinding, TorCandidate};
pub use detect::pattern::{classify_pattern, HeatmapMatrix, LatencyPattern};
pub use detect::silent::{SilentDropDetector, SilentDropFinding};
pub use durable::{unique_dir, DirGuard, DurabilityStats, SegmentReader};
pub use investigate::{investigate, investigate_chunks, Investigation, SuspectFlow};
pub use jobs::{JobKind, JobManager, JobTick, Pipeline, TickOutput};
pub use pa::PerfCounterAggregator;
pub use quality::{ExpectedPairs, QualityConfig, QualityReport, RatioSample};
pub use report::daily_report;
pub use sla::{ScopeSla, SlaComputer};
pub use store::{CosmosStore, StreamName, PARTIAL_WINDOW};
