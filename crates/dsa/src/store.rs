//! The append-only record store (Cosmos stand-in).
//!
//! "Files in Cosmos are append-only and a file is split into multiple
//! 'extents' and an extent is stored in multiple servers to provide high
//! reliability" (§2.3). We reproduce the structure that matters to the
//! pipeline: named streams of append-only extents, bounded extent size,
//! replication accounting, and windowed scans. Availability windows can
//! be injected to exercise the agents' upload-retry-then-discard path.

use pingmesh_types::{DcId, ProbeRecord, SimTime};
use std::collections::BTreeMap;

/// Name of a record stream. The production pipeline partitions uploads by
/// data center and time window; we key streams by DC (windowing is done
/// at scan time, records are timestamped).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StreamName {
    /// The data center whose agents feed this stream.
    pub dc: DcId,
}

/// One append-only extent.
#[derive(Debug, Clone)]
struct Extent {
    records: Vec<ProbeRecord>,
    sealed: bool,
    min_ts: SimTime,
    max_ts: SimTime,
}

impl Extent {
    fn overlaps(&self, from: SimTime, to: SimTime) -> bool {
        !self.records.is_empty() && self.min_ts < to && self.max_ts >= from
    }
}

/// The store.
#[derive(Debug)]
pub struct CosmosStore {
    extent_cap: usize,
    replication: u32,
    streams: BTreeMap<StreamName, Vec<Extent>>,
    down_windows: Vec<(SimTime, Option<SimTime>)>,
    total_records: u64,
    total_bytes: u64,
}

impl CosmosStore {
    /// Creates a store with the given extent capacity (records per
    /// extent) and replication factor.
    pub fn new(extent_cap: usize, replication: u32) -> Self {
        Self {
            extent_cap: extent_cap.max(1),
            replication: replication.max(1),
            streams: BTreeMap::new(),
            down_windows: Vec::new(),
            total_records: 0,
            total_bytes: 0,
        }
    }

    /// A store with production-ish defaults.
    pub fn with_defaults() -> Self {
        Self::new(250_000, 3)
    }

    /// Declares an outage window (uploads fail during it).
    pub fn add_down_window(&mut self, from: SimTime, until: Option<SimTime>) {
        self.down_windows.push((from, until));
    }

    /// Whether the store front-end accepts uploads at `t`.
    pub fn is_up(&self, t: SimTime) -> bool {
        !self
            .down_windows
            .iter()
            .any(|&(from, until)| t >= from && until.is_none_or(|u| t < u))
    }

    /// Appends a batch to a stream. Returns `false` (and stores nothing)
    /// if the store is down at `t` — the agent will retry and eventually
    /// discard.
    pub fn append(&mut self, stream: StreamName, batch: &[ProbeRecord], t: SimTime) -> bool {
        if !self.is_up(t) {
            pingmesh_obs::registry()
                .counter("pingmesh_dsa_store_rejected_batches_total")
                .inc();
            return false;
        }
        pingmesh_obs::registry()
            .counter("pingmesh_dsa_store_appended_records_total")
            .add(batch.len() as u64);
        let extents = self.streams.entry(stream).or_default();
        for &rec in batch {
            let need_new = match extents.last() {
                None => true,
                Some(e) => e.sealed || e.records.len() >= self.extent_cap,
            };
            if need_new {
                if let Some(last) = extents.last_mut() {
                    last.sealed = true;
                }
                extents.push(Extent {
                    records: Vec::new(),
                    sealed: false,
                    min_ts: rec.ts,
                    max_ts: rec.ts,
                });
            }
            let e = extents.last_mut().expect("just ensured");
            e.min_ts = e.min_ts.min(rec.ts);
            e.max_ts = e.max_ts.max(rec.ts);
            e.records.push(rec);
            self.total_records += 1;
            self.total_bytes += rec.wire_size() as u64;
        }
        true
    }

    /// Scans all records of a stream, in append order.
    pub fn scan(&self, stream: StreamName) -> impl Iterator<Item = &ProbeRecord> {
        self.streams
            .get(&stream)
            .into_iter()
            .flat_map(|extents| extents.iter().flat_map(|e| e.records.iter()))
    }

    /// Scans records of a stream whose timestamps fall in `[from, to)`.
    pub fn scan_window(
        &self,
        stream: StreamName,
        from: SimTime,
        to: SimTime,
    ) -> impl Iterator<Item = &ProbeRecord> {
        // Extents carry time bounds, so windowed scans skip whole extents
        // outside the window — windows stay O(window), not O(history).
        self.streams
            .get(&stream)
            .into_iter()
            .flat_map(move |extents| {
                extents
                    .iter()
                    .filter(move |e| e.overlaps(from, to))
                    .flat_map(|e| e.records.iter())
            })
            .filter(move |r| r.ts >= from && r.ts < to)
    }

    /// Scans every stream's records in `[from, to)`.
    pub fn scan_all_window(
        &self,
        from: SimTime,
        to: SimTime,
    ) -> impl Iterator<Item = &ProbeRecord> {
        self.streams
            .values()
            .flat_map(move |extents| {
                extents
                    .iter()
                    .filter(move |e| e.overlaps(from, to))
                    .flat_map(|e| e.records.iter())
            })
            .filter(move |r| r.ts >= from && r.ts < to)
    }

    /// Number of extents in a stream.
    pub fn extent_count(&self, stream: StreamName) -> usize {
        self.streams.get(&stream).map_or(0, |v| v.len())
    }

    /// Total records stored.
    pub fn record_count(&self) -> u64 {
        self.total_records
    }

    /// Logical bytes stored (before replication).
    pub fn logical_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Physical bytes including replication — the paper's "24 terabytes
    /// of data per day" is this figure for the production fleet.
    pub fn physical_bytes(&self) -> u64 {
        self.total_bytes * self.replication as u64
    }

    /// Drops all records older than `horizon` (the paper keeps two months
    /// of history). Whole extents are retired when their newest record is
    /// older than the horizon.
    pub fn retire_before(&mut self, horizon: SimTime) {
        for extents in self.streams.values_mut() {
            extents.retain(|e| {
                let newest = e.records.iter().map(|r| r.ts).max();
                newest.is_none_or(|ts| ts >= horizon)
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pingmesh_types::{
        PodId, PodsetId, ProbeKind, ProbeOutcome, QosClass, ServerId, SimDuration,
    };

    fn rec(ts: u64) -> ProbeRecord {
        ProbeRecord {
            ts: SimTime(ts),
            src: ServerId(0),
            dst: ServerId(1),
            src_pod: PodId(0),
            dst_pod: PodId(1),
            src_podset: PodsetId(0),
            dst_podset: PodsetId(0),
            src_dc: DcId(0),
            dst_dc: DcId(0),
            kind: ProbeKind::TcpSyn,
            qos: QosClass::High,
            src_port: 40_000,
            dst_port: 8_100,
            outcome: ProbeOutcome::Success {
                rtt: SimDuration::from_micros(300),
            },
        }
    }

    const S: StreamName = StreamName { dc: DcId(0) };

    #[test]
    fn append_and_scan_preserve_order() {
        let mut store = CosmosStore::new(10, 3);
        let batch: Vec<ProbeRecord> = (0..25).map(rec).collect();
        assert!(store.append(S, &batch, SimTime(100)));
        let ts: Vec<u64> = store.scan(S).map(|r| r.ts.as_micros()).collect();
        assert_eq!(ts, (0..25).collect::<Vec<_>>());
        // 25 records at 10/extent → 3 extents, earlier ones sealed.
        assert_eq!(store.extent_count(S), 3);
    }

    #[test]
    fn window_scan_filters_by_time() {
        let mut store = CosmosStore::with_defaults();
        store.append(S, &(0..100).map(rec).collect::<Vec<_>>(), SimTime(0));
        let n = store.scan_window(S, SimTime(10), SimTime(20)).count();
        assert_eq!(n, 10);
        let all = store.scan_all_window(SimTime(0), SimTime(1_000)).count();
        assert_eq!(all, 100);
    }

    #[test]
    fn outage_rejects_appends() {
        let mut store = CosmosStore::with_defaults();
        store.add_down_window(SimTime(100), Some(SimTime(200)));
        assert!(!store.append(S, &[rec(1)], SimTime(150)));
        assert_eq!(store.record_count(), 0);
        assert!(store.append(S, &[rec(1)], SimTime(250)));
        assert_eq!(store.record_count(), 1);
    }

    #[test]
    fn accounting_tracks_bytes_and_replication() {
        let mut store = CosmosStore::new(100, 3);
        store.append(S, &(0..10).map(rec).collect::<Vec<_>>(), SimTime(0));
        assert_eq!(store.record_count(), 10);
        assert_eq!(store.logical_bytes(), 10 * 64);
        assert_eq!(store.physical_bytes(), 3 * 10 * 64);
    }

    #[test]
    fn streams_are_independent() {
        let mut store = CosmosStore::with_defaults();
        let s1 = StreamName { dc: DcId(1) };
        store.append(S, &[rec(1)], SimTime(0));
        store.append(s1, &[rec(2), rec(3)], SimTime(0));
        assert_eq!(store.scan(S).count(), 1);
        assert_eq!(store.scan(s1).count(), 2);
    }

    #[test]
    fn retirement_drops_old_extents() {
        let mut store = CosmosStore::new(10, 1);
        store.append(S, &(0..30).map(rec).collect::<Vec<_>>(), SimTime(0));
        assert_eq!(store.extent_count(S), 3);
        // Horizon past the first two extents (records 0..20).
        store.retire_before(SimTime(20));
        assert_eq!(store.extent_count(S), 1);
        assert_eq!(store.scan(S).count(), 10);
    }
}
