//! The append-only record store (Cosmos stand-in).
//!
//! "Files in Cosmos are append-only and a file is split into multiple
//! 'extents' and an extent is stored in multiple servers to provide high
//! reliability" (§2.3). We reproduce the structure that matters to the
//! pipeline: named streams of append-only extents, bounded extent size,
//! replication accounting, and windowed scans. Availability windows can
//! be injected to exercise the agents' upload-retry-then-discard path.
//!
//! Since the streaming-DSA refactor the store also performs **ingest-time
//! aggregation**: every appended batch is folded into per-(stream,
//! 10-minute-window) partial [`WindowAggregate`]s, so each probe record
//! is aggregated exactly once, at upload time. The 10-minute job reads a
//! finished partial via [`CosmosStore::merged_window_aggregate`]; hourly
//! and daily rollups merge the enclosed partials in O(scopes). Raw-record
//! consumers (watchdog, investigations, the golden rebuild path) use the
//! zero-copy chunked scans, which yield borrowed extent sub-slices.

use crate::agg::WindowAggregate;
use crate::durable::{CheckpointPlan, DurabilityStats, DurableLog, WalOp};
use pingmesh_topology::ServiceMap;
use pingmesh_types::{DcId, ProbeRecord, SimDuration, SimTime};
use std::collections::BTreeMap;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// WAL growth past the last checkpoint at which
/// [`CosmosStore::maybe_checkpoint`] triggers the next one (segments
/// written, WAL truncated to the live tail). Recovery replay is bounded
/// by this plus the rewritten tail; at measured replay rates (>1M
/// records/sec) that keeps recovery well under a second.
pub const WAL_CHECKPOINT_BYTES: u64 = 16 << 20;

/// Width of the ingest-time partial-aggregate windows. This matches the
/// paper's 10-minute near-real-time job cadence; coarser windows (hourly,
/// daily) are unions of these and are produced by merging partials.
pub const PARTIAL_WINDOW: SimDuration = SimDuration::from_mins(10);

/// Name of a record stream. The production pipeline partitions uploads by
/// data center and time window; we key streams by DC (windowing is done
/// at scan time, records are timestamped).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StreamName {
    /// The data center whose agents feed this stream.
    pub dc: DcId,
}

/// One append-only extent.
#[derive(Debug, Clone)]
struct Extent {
    records: Vec<ProbeRecord>,
    sealed: bool,
    min_ts: SimTime,
    max_ts: SimTime,
    /// Whether `records` is non-decreasing in `ts` (tracked at append).
    /// Sorted extents admit binary search for window boundaries.
    sorted: bool,
    /// Id of the on-disk segment persisting this extent, once sealed and
    /// checkpointed (`None` for in-memory-only extents).
    seg: Option<u64>,
}

impl Extent {
    fn overlaps(&self, from: SimTime, to: SimTime) -> bool {
        !self.records.is_empty() && self.min_ts < to && self.max_ts >= from
    }
}

/// The store.
#[derive(Debug)]
pub struct CosmosStore {
    extent_cap: usize,
    replication: u32,
    streams: BTreeMap<StreamName, Vec<Extent>>,
    /// Ingest-time partial aggregates, keyed by (stream, window start).
    /// Window starts are aligned to [`PARTIAL_WINDOW`].
    partials: BTreeMap<(StreamName, SimTime), WindowAggregate>,
    /// Monotone fold sequence: bumped once per mutation that touches
    /// partials (append batch, refold). `partial_versions` records the
    /// fold_seq that last touched each partial, so a query tier can
    /// fingerprint a window range cheaply ([`CosmosStore::window_version`]).
    fold_seq: u64,
    /// fold_seq that last touched each partial, same keying as `partials`.
    partial_versions: BTreeMap<(StreamName, SimTime), u64>,
    /// Bumped whenever the service map changes (late `set_service_map`
    /// refolds *every* partial, silently changing frozen windows — the
    /// generation folds into every window version so caches notice).
    service_generation: u64,
    /// Store mutation epoch, bumped on every mutation (append, refold,
    /// retire). Shared out via [`CosmosStore::epoch_handle`] so read
    /// replicas can validate cache entries with one atomic load instead
    /// of taking the store lock.
    epoch: Arc<AtomicU64>,
    /// Service map used to fold per-service scopes at ingest. Installed
    /// by the pipeline; partials folded before installation are refolded.
    services: Option<Arc<ServiceMap>>,
    down_windows: Vec<(SimTime, Option<SimTime>)>,
    total_records: u64,
    total_bytes: u64,
    // Store-local mirrors of the registry counters, so tests can assert
    // on this store's scans without racing other tests' registry traffic.
    extents_scanned: AtomicU64,
    extents_skipped: AtomicU64,
    record_copies: AtomicU64,
    /// Persistence engine; `None` for a purely in-memory store.
    durable: Option<DurableLog>,
    /// Recovery generation: 0 on first boot, +1 per recovery. Folded into
    /// every [`CosmosStore::window_version`] so caches built before a
    /// crash can never falsely revalidate against the recovered store.
    boot_id: u64,
}

impl CosmosStore {
    /// Creates a store with the given extent capacity (records per
    /// extent) and replication factor.
    pub fn new(extent_cap: usize, replication: u32) -> Self {
        Self {
            extent_cap: extent_cap.max(1),
            replication: replication.max(1),
            streams: BTreeMap::new(),
            partials: BTreeMap::new(),
            fold_seq: 0,
            partial_versions: BTreeMap::new(),
            service_generation: 0,
            epoch: Arc::new(AtomicU64::new(0)),
            services: None,
            down_windows: Vec::new(),
            total_records: 0,
            total_bytes: 0,
            extents_scanned: AtomicU64::new(0),
            extents_skipped: AtomicU64::new(0),
            record_copies: AtomicU64::new(0),
            durable: None,
            boot_id: 0,
        }
    }

    /// A store with production-ish defaults.
    pub fn with_defaults() -> Self {
        Self::new(250_000, 3)
    }

    /// Records per extent before sealing (recovery reuses it).
    pub fn extent_cap(&self) -> usize {
        self.extent_cap
    }

    /// Replication factor counted into physical bytes.
    pub fn replication(&self) -> u32 {
        self.replication
    }

    /// Opens (or recovers) a durable store rooted at `dir`. Every
    /// acknowledged append is written to the WAL before it is applied in
    /// memory; sealed extents are compacted into immutable segment files
    /// at checkpoints. Equivalent to `recover_with(dir, .., None)`.
    pub fn durable(dir: &Path, extent_cap: usize, replication: u32) -> io::Result<Self> {
        Self::recover_with(dir, extent_cap, replication, None)
    }

    /// Opens (or recovers) a durable store, optionally *adopting* an
    /// existing epoch handle so read tiers holding it keep observing the
    /// same atomic across the restart. Recovery:
    ///
    /// 1. loads the manifest's segments as sealed extents,
    /// 2. replays the WAL in order (appends rebuild tail extents through
    ///    the normal extent-building path; retires re-drop expired ones),
    /// 3. refolds the per-(stream, window) partials from surviving raw
    ///    records — bit-identical to the pre-crash fold because the
    ///    aggregates are order-independent CRDTs — and drops windows
    ///    closed before the persisted retention horizon,
    /// 4. raises the epoch above every acknowledged pre-crash value and
    ///    bumps the boot id (salting every window fingerprint), then
    /// 5. commits a fresh checkpoint, truncating the replayed WAL and
    ///    garbage-collecting orphans from any crashed compaction.
    pub fn recover_with(
        dir: &Path,
        extent_cap: usize,
        replication: u32,
        adopt_epoch: Option<Arc<AtomicU64>>,
    ) -> io::Result<Self> {
        let (log, recovered) = DurableLog::open(dir)?;
        let mut store = Self::new(extent_cap, replication);
        if let Some(handle) = adopt_epoch {
            store.epoch = handle;
        }
        store.boot_id = log.boot_id();
        store.durable = Some(log);

        // 1. Segments become sealed extents, in manifest (stream-major,
        // append) order.
        for (meta, records) in recovered.segments {
            let stream = StreamName { dc: DcId(meta.dc) };
            store.total_records += records.len() as u64;
            store.total_bytes += records.iter().map(|r| r.wire_size() as u64).sum::<u64>();
            store.streams.entry(stream).or_default().push(Extent {
                records,
                sealed: true,
                min_ts: SimTime(meta.min_ts),
                max_ts: SimTime(meta.max_ts),
                sorted: meta.sorted,
                seg: Some(meta.id),
            });
        }

        // 2. Replay WAL ops in order, raw only (partials come in step 3).
        for op in recovered.ops {
            match op {
                WalOp::Append { dc, records, .. } => {
                    store.append_raw(StreamName { dc }, &records);
                }
                WalOp::Retire { horizon, .. } => {
                    store.retire_extents(horizon);
                }
            }
        }

        // 3. Partials: refold from surviving raw, then drop windows the
        // retention horizon already closed.
        if store.total_records > 0 {
            store.refold_partials();
        }
        let hwm = SimTime(recovered.retire_hwm);
        store
            .partials
            .retain(|&(_, ws), _| ws + PARTIAL_WINDOW > hwm);
        store
            .partial_versions
            .retain(|&(_, ws), _| ws + PARTIAL_WINDOW > hwm);

        // 4. The epoch must rise above everything any pre-crash reader
        // (or the adopted handle) could have observed.
        let floor = store
            .epoch
            .load(Ordering::Acquire)
            .max(recovered.epoch_hwm)
            .max(recovered.max_epoch);
        store.epoch.store(floor + 1, Ordering::Release);

        // 5. A fresh commit point: replayed WAL truncated to the live
        // tail, orphans from crashed compactions removed, boot id saved.
        store.checkpoint()?;
        Ok(store)
    }

    /// Installs the service map used for per-service scopes in the
    /// ingest-time partials. If records were appended before the map was
    /// available, the affected partials are refolded from raw so the
    /// per-service scopes are complete.
    pub fn set_service_map(&mut self, services: Arc<ServiceMap>) {
        self.services = Some(services);
        self.service_generation += 1;
        if self.total_records > 0 {
            self.refold_partials();
        }
        self.epoch.fetch_add(1, Ordering::Release);
    }

    /// Declares an outage window (uploads fail during it).
    pub fn add_down_window(&mut self, from: SimTime, until: Option<SimTime>) {
        self.down_windows.push((from, until));
    }

    /// Whether the store front-end accepts uploads at `t`.
    pub fn is_up(&self, t: SimTime) -> bool {
        !self
            .down_windows
            .iter()
            .any(|&(from, until)| t >= from && until.is_none_or(|u| t < u))
    }

    /// Appends a batch to a stream. Returns `false` (and stores nothing)
    /// if the store is down at `t` — the agent will retry and eventually
    /// discard. Each accepted record is folded into its (stream,
    /// 10-minute-window) partial aggregate as it lands.
    pub fn append(&mut self, stream: StreamName, batch: &[ProbeRecord], t: SimTime) -> bool {
        if !self.is_up(t) {
            pingmesh_obs::registry()
                .counter("pingmesh_dsa_store_rejected_batches_total")
                .inc();
            return false;
        }
        // Durability first: the batch is acknowledged only once its WAL
        // frame is written. A failed-closed WAL refuses the append rather
        // than acknowledging data that would not survive a crash.
        if let Some(log) = self.durable.as_mut() {
            let epoch_after = self.epoch.load(Ordering::Acquire) + 1;
            if !log.log_append(stream.dc, batch, t, epoch_after) {
                pingmesh_obs::registry()
                    .counter("pingmesh_dsa_store_rejected_batches_total")
                    .inc();
                return false;
            }
        }
        pingmesh_obs::registry()
            .counter("pingmesh_dsa_store_appended_records_total")
            .add(batch.len() as u64);
        // Sim-bounded span: wall duration is the append compute; the sim
        // bounds measure oldest-record-to-store ingest delay.
        let mut span = pingmesh_obs::span("dsa.store", "append");
        if let Some(oldest) = batch.iter().map(|r| r.ts).min() {
            span = span.sim_start(oldest);
        }
        span.set_sim_end(t);
        // Provenance: sampled records park here until their window ticks.
        pingmesh_obs::trace::on_append_batch(batch, t, PARTIAL_WINDOW.as_micros());
        self.append_raw(stream, batch);
        self.fold_into_partials(stream, batch);
        self.epoch.fetch_add(1, Ordering::Release);
        true
    }

    /// The extent-building half of an append: raw records only, no WAL,
    /// no partial fold, no epoch bump. Shared by the live append path and
    /// WAL replay (which re-runs the same path so recovered extent
    /// boundaries are identical to the pre-crash ones).
    fn append_raw(&mut self, stream: StreamName, batch: &[ProbeRecord]) {
        let extents = self.streams.entry(stream).or_default();
        for &rec in batch {
            let need_new = match extents.last() {
                None => true,
                Some(e) => e.sealed || e.records.len() >= self.extent_cap,
            };
            if need_new {
                if let Some(last) = extents.last_mut() {
                    last.sealed = true;
                }
                extents.push(Extent {
                    records: Vec::new(),
                    sealed: false,
                    min_ts: rec.ts,
                    max_ts: rec.ts,
                    sorted: true,
                    seg: None,
                });
            }
            let e = extents.last_mut().expect("just ensured");
            if rec.ts < e.max_ts {
                e.sorted = false;
            }
            e.min_ts = e.min_ts.min(rec.ts);
            e.max_ts = e.max_ts.max(rec.ts);
            e.records.push(rec);
            self.total_records += 1;
            self.total_bytes += rec.wire_size() as u64;
        }
    }

    /// Folds a just-accepted batch into its window partials. Consecutive
    /// same-window runs share one map lookup (agent batches are nearly
    /// time-ordered, so this is ~one lookup per batch).
    fn fold_into_partials(&mut self, stream: StreamName, batch: &[ProbeRecord]) {
        if batch.is_empty() {
            return;
        }
        let services = self.services.clone();
        let svc = services.as_deref();
        self.fold_seq += 1;
        let mut i = 0;
        while i < batch.len() {
            let ws = batch[i].ts.window_start(PARTIAL_WINDOW);
            let mut j = i + 1;
            while j < batch.len() && batch[j].ts.window_start(PARTIAL_WINDOW) == ws {
                j += 1;
            }
            let agg = self.partials.entry((stream, ws)).or_default();
            for r in &batch[i..j] {
                match svc {
                    Some(s) => agg.fold_with_services(r, s),
                    None => agg.fold(r),
                }
            }
            self.partial_versions.insert((stream, ws), self.fold_seq);
            i = j;
        }
        pingmesh_obs::registry()
            .counter("pingmesh_dsa_ingest_folded_records_total")
            .add(batch.len() as u64);
    }

    /// Rebuilds every partial from the raw extents (used when the
    /// service map arrives after records did).
    fn refold_partials(&mut self) {
        self.partials.clear();
        self.partial_versions.clear();
        self.fold_seq += 1;
        let seq = self.fold_seq;
        let services = self.services.clone();
        let svc = services.as_deref();
        for (stream, extents) in &self.streams {
            for e in extents {
                for r in &e.records {
                    let ws = r.ts.window_start(PARTIAL_WINDOW);
                    let agg = self.partials.entry((*stream, ws)).or_default();
                    match svc {
                        Some(s) => agg.fold_with_services(r, s),
                        None => agg.fold(r),
                    }
                    self.partial_versions.insert((*stream, ws), seq);
                }
            }
        }
    }

    /// Merges the ingest-time partials covering `[from, to)` across all
    /// streams into one aggregate — O(scopes × windows), no record pass.
    /// Both bounds must be aligned to [`PARTIAL_WINDOW`] (job windows
    /// are, by construction).
    pub fn merged_window_aggregate(&self, from: SimTime, to: SimTime) -> WindowAggregate {
        debug_assert_eq!(
            from.window_start(PARTIAL_WINDOW),
            from,
            "window start must be 10-min aligned"
        );
        debug_assert_eq!(
            to.window_start(PARTIAL_WINDOW),
            to,
            "window end must be 10-min aligned"
        );
        let mut out = WindowAggregate::default();
        if from >= to {
            return out;
        }
        let mut merged = 0u64;
        for &stream in self.streams.keys() {
            for (_, part) in self.partials.range((stream, from)..(stream, to)) {
                out.merge(part);
                merged += 1;
            }
        }
        if merged > 0 {
            pingmesh_obs::registry()
                .counter("pingmesh_dsa_partials_merged_total")
                .add(merged);
        }
        out
    }

    /// Number of live ingest-time partials (across all streams).
    pub fn partial_count(&self) -> usize {
        self.partials.len()
    }

    /// Shared handle to the store's mutation epoch. The counter is bumped
    /// on every mutation (append, service-map install/refold, retire), so
    /// a reader that saw epoch `e` when it built a result can later prove
    /// the result still fresh with one `Acquire` load — no store lock.
    pub fn epoch_handle(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.epoch)
    }

    /// Current mutation epoch (see [`CosmosStore::epoch_handle`]).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Deterministic fingerprint of everything that can influence a query
    /// over `[from, to)`: the service-map generation plus, for each
    /// in-range partial, its (stream, window, last-fold-seq) triple. Two
    /// calls return the same value iff no fold, refold, or retire touched
    /// the range in between — the result-cache validity token. O(windows
    /// in range), never touches records. Bounds must be aligned to
    /// [`PARTIAL_WINDOW`], like [`CosmosStore::merged_window_aggregate`].
    pub fn window_version(&self, from: SimTime, to: SimTime) -> u64 {
        debug_assert_eq!(
            from.window_start(PARTIAL_WINDOW),
            from,
            "window start must be 10-min aligned"
        );
        debug_assert_eq!(
            to.window_start(PARTIAL_WINDOW),
            to,
            "window end must be 10-min aligned"
        );
        // FNV-1a over the little-endian encodings; BTreeMap range order
        // makes the byte stream — and therefore the hash — deterministic.
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        mix(self.service_generation);
        // Boot-id salt: after a crash+recovery every fingerprint moves,
        // so ETags minted against the pre-crash store can never falsely
        // revalidate a stale cached body (fold sequence numbers restart
        // at recovery and could otherwise collide).
        mix(self.boot_id);
        if from >= to {
            return h;
        }
        for &stream in self.streams.keys() {
            for (&(_, ws), &seq) in self.partial_versions.range((stream, from)..(stream, to)) {
                mix(stream.dc.0 as u64);
                mix(ws.as_micros());
                mix(seq);
            }
        }
        h
    }

    /// The freeze horizon: partial windows starting strictly before this
    /// are "frozen" — expected immutable, hence perfectly cacheable. The
    /// window containing the newest record is still filling. This is a
    /// cacheability *heuristic*; correctness against stragglers (a late
    /// upload into an old window) and late service-map refolds comes from
    /// [`CosmosStore::window_version`] changing.
    pub fn frozen_before(&self) -> Option<SimTime> {
        self.newest_ts().map(|t| t.window_start(PARTIAL_WINDOW))
    }

    /// Scans all records of a stream, in append order.
    pub fn scan(&self, stream: StreamName) -> impl Iterator<Item = &ProbeRecord> {
        self.streams
            .get(&stream)
            .into_iter()
            .flat_map(|extents| extents.iter().flat_map(|e| e.records.iter()))
    }

    /// Scans records of a stream whose timestamps fall in `[from, to)`.
    pub fn scan_window(
        &self,
        stream: StreamName,
        from: SimTime,
        to: SimTime,
    ) -> impl Iterator<Item = &ProbeRecord> {
        // Extents carry time bounds, so windowed scans skip whole extents
        // outside the window — windows stay O(window), not O(history).
        if let Some(extents) = self.streams.get(&stream) {
            let scanned = extents.iter().filter(|e| e.overlaps(from, to)).count() as u64;
            self.note_extent_scan(scanned, extents.len() as u64 - scanned);
        }
        self.streams
            .get(&stream)
            .into_iter()
            .flat_map(move |extents| {
                extents
                    .iter()
                    .filter(move |e| e.overlaps(from, to))
                    .flat_map(|e| e.records.iter())
            })
            .filter(move |r| r.ts >= from && r.ts < to)
    }

    /// Scans every stream's records in `[from, to)`.
    pub fn scan_all_window(
        &self,
        from: SimTime,
        to: SimTime,
    ) -> impl Iterator<Item = &ProbeRecord> {
        let mut scanned = 0u64;
        let mut total = 0u64;
        for extents in self.streams.values() {
            total += extents.len() as u64;
            scanned += extents.iter().filter(|e| e.overlaps(from, to)).count() as u64;
        }
        self.note_extent_scan(scanned, total - scanned);
        self.streams
            .values()
            .flat_map(move |extents| {
                extents
                    .iter()
                    .filter(move |e| e.overlaps(from, to))
                    .flat_map(|e| e.records.iter())
            })
            .filter(move |r| r.ts >= from && r.ts < to)
    }

    /// Zero-copy windowed scan of one stream: returns borrowed extent
    /// sub-slices that together hold exactly the records in `[from, to)`,
    /// in append order. Straddling extents are trimmed by binary search
    /// when time-sorted, otherwise split into maximal in-window runs —
    /// either way no record is copied.
    pub fn scan_window_chunks(
        &self,
        stream: StreamName,
        from: SimTime,
        to: SimTime,
    ) -> Vec<&[ProbeRecord]> {
        let mut out = Vec::new();
        if let Some(extents) = self.streams.get(&stream) {
            self.chunks_of(extents, from, to, &mut out);
        }
        out
    }

    /// Zero-copy windowed scan across every stream (see
    /// [`CosmosStore::scan_window_chunks`]). The returned slices shard
    /// directly into `pingmesh-par` workers with no intermediate collect.
    pub fn scan_all_window_chunks(&self, from: SimTime, to: SimTime) -> Vec<&[ProbeRecord]> {
        let mut out = Vec::new();
        for extents in self.streams.values() {
            self.chunks_of(extents, from, to, &mut out);
        }
        out
    }

    fn chunks_of<'a>(
        &self,
        extents: &'a [Extent],
        from: SimTime,
        to: SimTime,
        out: &mut Vec<&'a [ProbeRecord]>,
    ) {
        let mut scanned = 0u64;
        let mut skipped = 0u64;
        for e in extents {
            if !e.overlaps(from, to) {
                skipped += 1;
                continue;
            }
            scanned += 1;
            if e.min_ts >= from && e.max_ts < to {
                // Fully contained: the whole extent is in-window.
                out.push(&e.records);
            } else if e.sorted {
                let lo = e.records.partition_point(|r| r.ts < from);
                let hi = e.records.partition_point(|r| r.ts < to);
                if lo < hi {
                    out.push(&e.records[lo..hi]);
                }
            } else {
                // Unsorted straddler: emit maximal in-window runs.
                let mut start = None;
                for (i, r) in e.records.iter().enumerate() {
                    let inside = r.ts >= from && r.ts < to;
                    match (inside, start) {
                        (true, None) => start = Some(i),
                        (false, Some(s)) => {
                            out.push(&e.records[s..i]);
                            start = None;
                        }
                        _ => {}
                    }
                }
                if let Some(s) = start {
                    out.push(&e.records[s..]);
                }
            }
        }
        self.note_extent_scan(scanned, skipped);
    }

    fn note_extent_scan(&self, scanned: u64, skipped: u64) {
        self.extents_scanned.fetch_add(scanned, Ordering::Relaxed);
        self.extents_skipped.fetch_add(skipped, Ordering::Relaxed);
        let reg = pingmesh_obs::registry();
        if scanned > 0 {
            reg.counter("pingmesh_dsa_extents_scanned_total")
                .add(scanned);
        }
        if skipped > 0 {
            reg.counter("pingmesh_dsa_extents_skipped_total")
                .add(skipped);
        }
    }

    /// (extents scanned, extents skipped) by this store's windowed scans
    /// — the store-local view of `pingmesh_dsa_extents_{scanned,skipped}_total`.
    pub fn extent_scan_stats(&self) -> (u64, u64) {
        (
            self.extents_scanned.load(Ordering::Relaxed),
            self.extents_skipped.load(Ordering::Relaxed),
        )
    }

    /// Copies every record in `[from, to)` out of the store. This is the
    /// slow golden-reference path (rebuild-from-raw); the hot tick path
    /// must not use it. Each copied record bumps
    /// `pingmesh_dsa_tick_record_copies_total` so benches and tests can
    /// prove the hot path stays copy-free.
    pub fn collect_window_records(&self, from: SimTime, to: SimTime) -> Vec<ProbeRecord> {
        let records: Vec<ProbeRecord> = self.scan_all_window(from, to).copied().collect();
        self.record_copies
            .fetch_add(records.len() as u64, Ordering::Relaxed);
        if !records.is_empty() {
            pingmesh_obs::registry()
                .counter("pingmesh_dsa_tick_record_copies_total")
                .add(records.len() as u64);
        }
        records
    }

    /// Records copied out by [`CosmosStore::collect_window_records`] —
    /// the store-local view of `pingmesh_dsa_tick_record_copies_total`.
    pub fn record_copy_count(&self) -> u64 {
        self.record_copies.load(Ordering::Relaxed)
    }

    /// Timestamp of the newest stored record, from extent bounds (O(extents)).
    pub fn newest_ts(&self) -> Option<SimTime> {
        self.streams
            .values()
            .flat_map(|extents| extents.iter())
            .filter(|e| !e.records.is_empty())
            .map(|e| e.max_ts)
            .max()
    }

    /// Timestamp of the newest record per stream, from extent bounds
    /// (O(extents)) — the freshness SLO's per-stream input.
    pub fn newest_ts_per_stream(&self) -> Vec<(StreamName, SimTime)> {
        self.streams
            .iter()
            .filter_map(|(stream, extents)| {
                extents
                    .iter()
                    .filter(|e| !e.records.is_empty())
                    .map(|e| e.max_ts)
                    .max()
                    .map(|ts| (*stream, ts))
            })
            .collect()
    }

    /// DCs that have a stream (sorted; the serving tier's warm axis).
    pub fn stream_dcs(&self) -> Vec<DcId> {
        self.streams.keys().map(|s| s.dc).collect()
    }

    /// Number of extents in a stream.
    pub fn extent_count(&self, stream: StreamName) -> usize {
        self.streams.get(&stream).map_or(0, |v| v.len())
    }

    /// Total records stored.
    pub fn record_count(&self) -> u64 {
        self.total_records
    }

    /// Logical bytes stored (before replication).
    pub fn logical_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Physical bytes including replication — the paper's "24 terabytes
    /// of data per day" is this figure for the production fleet.
    pub fn physical_bytes(&self) -> u64 {
        self.total_bytes * self.replication as u64
    }

    /// Drops all records older than `horizon` (the paper keeps two months
    /// of history). Whole extents are retired when their newest record is
    /// older than the horizon — O(extents), using the stored `max_ts`
    /// bound rather than rescanning records. Partials whose window closed
    /// before the horizon are retired with them.
    pub fn retire_before(&mut self, horizon: SimTime) {
        if let Some(log) = self.durable.as_mut() {
            let epoch_after = self.epoch.load(Ordering::Acquire) + 1;
            // A failed retire log marks the WAL failed-closed (further
            // appends are refused until a checkpoint heals it) but the
            // in-memory retire still proceeds: a retire that replays
            // short can only *keep* extra data, never lose acked records.
            let _ = log.log_retire(horizon, epoch_after);
        }
        self.retire_extents(horizon);
        self.partials
            .retain(|&(_, ws), _| ws + PARTIAL_WINDOW > horizon);
        self.partial_versions
            .retain(|&(_, ws), _| ws + PARTIAL_WINDOW > horizon);
        self.epoch.fetch_add(1, Ordering::Release);
    }

    /// Extent-retention half of a retire, shared with WAL replay: drops
    /// whole extents whose newest record predates the horizon and
    /// tombstones their persisted segments for GC at the next checkpoint.
    fn retire_extents(&mut self, horizon: SimTime) {
        let mut dropped = Vec::new();
        for extents in self.streams.values_mut() {
            extents.retain(|e| {
                if e.max_ts >= horizon {
                    true
                } else {
                    if let Some(id) = e.seg {
                        dropped.push(id);
                    }
                    false
                }
            });
        }
        if let Some(log) = self.durable.as_mut() {
            for id in dropped {
                log.tombstone(id);
            }
        }
    }

    /// Commits a checkpoint: persists every sealed-but-unsegmented extent
    /// as an immutable segment file, rewrites the WAL to hold only the
    /// unsealed tail extents, atomically commits the manifest, and
    /// garbage-collects the old WAL, tombstoned segments, and orphans.
    /// A no-op for in-memory stores.
    pub fn checkpoint(&mut self) -> io::Result<()> {
        if self.durable.is_none() {
            return Ok(());
        }
        let epoch_now = self.epoch.load(Ordering::Acquire);
        let mut plan = CheckpointPlan::default();
        for (stream, extents) in &self.streams {
            for e in extents {
                if !e.sealed {
                    plan.tails.push((stream.dc.0, &e.records[..]));
                } else if let Some(id) = e.seg {
                    plan.keep.push(crate::durable::SegmentMeta {
                        id,
                        dc: stream.dc.0,
                        count: e.records.len() as u32,
                        sorted: e.sorted,
                        min_ts: e.min_ts.as_micros(),
                        max_ts: e.max_ts.as_micros(),
                    });
                } else {
                    plan.fresh.push((
                        stream.dc.0,
                        e.sorted,
                        e.min_ts.as_micros(),
                        e.max_ts.as_micros(),
                        &e.records[..],
                    ));
                }
            }
        }
        let log = self.durable.as_mut().expect("checked above");
        let assigned = log.commit_checkpoint(&plan, epoch_now)?;
        drop(plan);
        // Stamp the new segment ids back onto the extents, in the same
        // traversal order the plan was built in.
        let mut ids = assigned.into_iter();
        for extents in self.streams.values_mut() {
            for e in extents.iter_mut() {
                if e.sealed && e.seg.is_none() {
                    e.seg = ids.next();
                }
            }
        }
        Ok(())
    }

    /// Checkpoints when the WAL has grown [`WAL_CHECKPOINT_BYTES`] past
    /// the last checkpoint's rewritten tail (see
    /// [`crate::durable::DurableLog::checkpoint_due`] for the doubling
    /// policy), or when the WAL is failed-closed and a checkpoint would
    /// heal it — the background-compaction entry point. Returns whether
    /// a checkpoint ran.
    pub fn maybe_checkpoint(&mut self) -> io::Result<bool> {
        self.maybe_checkpoint_with(WAL_CHECKPOINT_BYTES)
    }

    /// [`CosmosStore::maybe_checkpoint`] with an explicit WAL-growth
    /// threshold — the collector's background compactor passes its own
    /// (tunable) threshold through here.
    pub fn maybe_checkpoint_with(&mut self, threshold: u64) -> io::Result<bool> {
        let due = self
            .durable
            .as_ref()
            .is_some_and(|log| log.checkpoint_due(threshold));
        if due {
            self.checkpoint()?;
        }
        Ok(due)
    }

    /// Forces the WAL to stable storage, zeroing the flush lag. A no-op
    /// for in-memory stores.
    pub fn sync_wal(&mut self) -> io::Result<()> {
        match self.durable.as_mut() {
            Some(log) => log.sync(),
            None => Ok(()),
        }
    }

    /// Recovery generation: 0 on first boot, +1 per recovery (and always
    /// 0 for in-memory stores).
    pub fn boot_id(&self) -> u64 {
        self.boot_id
    }

    /// The durable directory, if this store persists.
    pub fn durable_dir(&self) -> Option<&Path> {
        self.durable.as_ref().map(|log| log.dir())
    }

    /// Whether the WAL has failed closed (appends refused; a successful
    /// checkpoint heals it). Always `false` for in-memory stores.
    pub fn io_failed(&self) -> bool {
        self.durable.as_ref().is_some_and(|log| log.is_failed())
    }

    /// Point-in-time durability stats, `None` for in-memory stores.
    pub fn durability_stats(&self) -> Option<DurabilityStats> {
        self.durable.as_ref().map(|log| log.stats())
    }

    /// Chaos hook: injects `n` artificial IO errors into upcoming WAL
    /// writes (no-op for in-memory stores).
    pub fn inject_wal_io_errors(&mut self, n: u32) {
        if let Some(log) = self.durable.as_mut() {
            log.inject_io_errors(n);
        }
    }

    /// Chaos hook: writes a torn (half-written, never-acknowledged) WAL
    /// frame *without* applying the batch in memory — the on-disk state
    /// of a crash mid-append. Recovery must truncate it and lose nothing
    /// acknowledged.
    pub fn simulate_torn_append(
        &mut self,
        stream: StreamName,
        batch: &[ProbeRecord],
    ) -> io::Result<()> {
        match self.durable.as_mut() {
            Some(log) => log.write_torn_entry(stream.dc, batch),
            None => Ok(()),
        }
    }

    /// Chaos hook: runs the file-writing half of a checkpoint (new
    /// segments + new tail WAL) but crashes before the manifest commit,
    /// leaving both old and new files on disk. The old manifest still
    /// rules; recovery must come up consistent and GC the orphans.
    pub fn simulate_compaction_crash(&mut self) -> io::Result<()> {
        if self.durable.is_none() {
            return Ok(());
        }
        let epoch_now = self.epoch.load(Ordering::Acquire);
        let mut plan = CheckpointPlan::default();
        for (stream, extents) in &self.streams {
            for e in extents {
                if !e.sealed {
                    plan.tails.push((stream.dc.0, &e.records[..]));
                } else if e.seg.is_none() {
                    plan.fresh.push((
                        stream.dc.0,
                        e.sorted,
                        e.min_ts.as_micros(),
                        e.max_ts.as_micros(),
                        &e.records[..],
                    ));
                }
            }
        }
        let log = self.durable.as_mut().expect("checked above");
        log.prepare_checkpoint(&plan, epoch_now)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::durable;
    use pingmesh_types::{
        PodId, PodsetId, ProbeKind, ProbeOutcome, QosClass, ServerId, SimDuration,
    };

    fn rec(ts: u64) -> ProbeRecord {
        ProbeRecord {
            ts: SimTime(ts),
            src: ServerId(0),
            dst: ServerId(1),
            src_pod: PodId(0),
            dst_pod: PodId(1),
            src_podset: PodsetId(0),
            dst_podset: PodsetId(0),
            src_dc: DcId(0),
            dst_dc: DcId(0),
            kind: ProbeKind::TcpSyn,
            qos: QosClass::High,
            src_port: 40_000,
            dst_port: 8_100,
            outcome: ProbeOutcome::Success {
                rtt: SimDuration::from_micros(300),
            },
        }
    }

    const S: StreamName = StreamName { dc: DcId(0) };

    /// 10 minutes in store-time microseconds.
    const W: u64 = 600_000_000;

    #[test]
    fn append_and_scan_preserve_order() {
        let mut store = CosmosStore::new(10, 3);
        let batch: Vec<ProbeRecord> = (0..25).map(rec).collect();
        assert!(store.append(S, &batch, SimTime(100)));
        let ts: Vec<u64> = store.scan(S).map(|r| r.ts.as_micros()).collect();
        assert_eq!(ts, (0..25).collect::<Vec<_>>());
        // 25 records at 10/extent → 3 extents, earlier ones sealed.
        assert_eq!(store.extent_count(S), 3);
    }

    #[test]
    fn window_scan_filters_by_time() {
        let mut store = CosmosStore::with_defaults();
        store.append(S, &(0..100).map(rec).collect::<Vec<_>>(), SimTime(0));
        let n = store.scan_window(S, SimTime(10), SimTime(20)).count();
        assert_eq!(n, 10);
        let all = store.scan_all_window(SimTime(0), SimTime(1_000)).count();
        assert_eq!(all, 100);
    }

    #[test]
    fn outage_rejects_appends() {
        let mut store = CosmosStore::with_defaults();
        store.add_down_window(SimTime(100), Some(SimTime(200)));
        assert!(!store.append(S, &[rec(1)], SimTime(150)));
        assert_eq!(store.record_count(), 0);
        assert_eq!(store.partial_count(), 0);
        assert!(store.append(S, &[rec(1)], SimTime(250)));
        assert_eq!(store.record_count(), 1);
        assert_eq!(store.partial_count(), 1);
    }

    #[test]
    fn accounting_tracks_bytes_and_replication() {
        let mut store = CosmosStore::new(100, 3);
        store.append(S, &(0..10).map(rec).collect::<Vec<_>>(), SimTime(0));
        assert_eq!(store.record_count(), 10);
        assert_eq!(store.logical_bytes(), 10 * 64);
        assert_eq!(store.physical_bytes(), 3 * 10 * 64);
    }

    #[test]
    fn streams_are_independent() {
        let mut store = CosmosStore::with_defaults();
        let s1 = StreamName { dc: DcId(1) };
        store.append(S, &[rec(1)], SimTime(0));
        store.append(s1, &[rec(2), rec(3)], SimTime(0));
        assert_eq!(store.scan(S).count(), 1);
        assert_eq!(store.scan(s1).count(), 2);
    }

    #[test]
    fn retirement_drops_old_extents() {
        let mut store = CosmosStore::new(10, 1);
        store.append(S, &(0..30).map(rec).collect::<Vec<_>>(), SimTime(0));
        assert_eq!(store.extent_count(S), 3);
        // Horizon past the first two extents (records 0..20).
        store.retire_before(SimTime(20));
        assert_eq!(store.extent_count(S), 1);
        assert_eq!(store.scan(S).count(), 10);
    }

    #[test]
    fn retirement_drops_closed_partials() {
        let mut store = CosmosStore::new(10, 1);
        // Three 10-min windows' worth of records, one per minute.
        let batch: Vec<ProbeRecord> = (0..30).map(|i| rec(i * 60_000_000)).collect();
        store.append(S, &batch, SimTime(0));
        assert_eq!(store.partial_count(), 3);
        // Horizon inside the second window: the first window is closed
        // and retired, the straddled one is kept.
        store.retire_before(SimTime(W + 60_000_000));
        assert_eq!(store.partial_count(), 2);
        assert_eq!(
            store
                .merged_window_aggregate(SimTime(0), SimTime(W))
                .record_count,
            0
        );
        assert_eq!(
            store
                .merged_window_aggregate(SimTime(W), SimTime(3 * W))
                .record_count,
            20
        );
    }

    #[test]
    fn windowed_scans_skip_nonoverlapping_sealed_extents() {
        let mut store = CosmosStore::new(10, 1);
        // 5 extents of 10 records, 1 s apart: extent k covers [10k, 10k+9] s.
        let batch: Vec<ProbeRecord> = (0..50).map(|i| rec(i * 1_000_000)).collect();
        store.append(S, &batch, SimTime(0));
        assert_eq!(store.extent_count(S), 5);
        let (s0, k0) = store.extent_scan_stats();
        // Window [20 s, 30 s): only extent 2 overlaps.
        let n = store
            .scan_window(S, SimTime(20_000_000), SimTime(30_000_000))
            .count();
        assert_eq!(n, 10);
        let (s1, k1) = store.extent_scan_stats();
        assert_eq!(s1 - s0, 1, "exactly one extent scanned");
        assert_eq!(k1 - k0, 4, "the four non-overlapping extents skipped");
        // The chunked scan prunes identically.
        let chunks = store.scan_all_window_chunks(SimTime(20_000_000), SimTime(30_000_000));
        let (s2, k2) = store.extent_scan_stats();
        assert_eq!(chunks.iter().map(|c| c.len()).sum::<usize>(), 10);
        assert_eq!(s2 - s1, 1);
        assert_eq!(k2 - k1, 4);
    }

    #[test]
    fn chunked_scan_matches_filtered_scan() {
        let mut store = CosmosStore::new(7, 1);
        // Two streams, extents straddling the window bounds.
        let s1 = StreamName { dc: DcId(1) };
        store.append(
            S,
            &(0..40).map(|i| rec(i * 1_000_000)).collect::<Vec<_>>(),
            SimTime(0),
        );
        store.append(
            s1,
            &(0..40)
                .map(|i| rec(500_000 + i * 1_000_000))
                .collect::<Vec<_>>(),
            SimTime(0),
        );
        let (from, to) = (SimTime(9_500_000), SimTime(31_000_000));
        let flat: Vec<ProbeRecord> = store
            .scan_all_window_chunks(from, to)
            .iter()
            .flat_map(|c| c.iter())
            .copied()
            .collect();
        let scanned: Vec<ProbeRecord> = store.scan_all_window(from, to).copied().collect();
        assert_eq!(flat, scanned);
        assert!(!flat.is_empty());
    }

    #[test]
    fn chunked_scan_handles_unsorted_straddling_extents() {
        let mut store = CosmosStore::new(100, 1);
        // Out-of-order batch: the single extent straddles the 10 s bound
        // with in-window runs separated by out-of-window records.
        let ts = [12_000_000u64, 3_000_000, 15_000_000, 7_000_000, 11_000_000];
        let batch: Vec<ProbeRecord> = ts.iter().map(|&t| rec(t)).collect();
        store.append(S, &batch, SimTime(0));
        let chunks = store.scan_window_chunks(S, SimTime(10_000_000), SimTime(20_000_000));
        let flat: Vec<u64> = chunks
            .iter()
            .flat_map(|c| c.iter())
            .map(|r| r.ts.as_micros())
            .collect();
        assert_eq!(flat, vec![12_000_000, 15_000_000, 11_000_000]);
        // Runs, not per-record slices: [12], [15], [11] are three runs
        // here because each is broken by an out-of-window neighbour.
        assert_eq!(chunks.len(), 3);
    }

    #[test]
    fn unsorted_extent_across_ten_min_boundary_loses_and_duplicates_nothing() {
        // Satellite regression: the `partition_point` trim in `chunks_of`
        // is only valid on extents whose `sorted` flag is set. This
        // extent is appended out of order *straddling* the 10-min window
        // boundary, so a trim that ignored the flag would both lose
        // in-window records (those before `lo`) and leak out-of-window
        // ones (between `lo` and `hi`).
        let mut store = CosmosStore::new(100, 1);
        let ts = [
            W + 30_000_000, // second window
            W - 10_000_000, // first window, after a later ts → unsorted
            W + 1,          // second window, boundary + 1 µs
            W - 1,          // first window, boundary - 1 µs
            2 * W - 1,      // second window, right edge
            5_000_000,      // first window, early
            W,              // exactly on the boundary → second window
        ];
        let batch: Vec<ProbeRecord> = ts.iter().map(|&t| rec(t)).collect();
        store.append(S, &batch, SimTime(0));
        assert_eq!(store.extent_count(S), 1, "one straddling extent");
        for (from, to) in [(0, W), (W, 2 * W), (0, 2 * W)] {
            let (from, to) = (SimTime(from), SimTime(to));
            let mut flat: Vec<u64> = store
                .scan_window_chunks(S, from, to)
                .iter()
                .flat_map(|c| c.iter())
                .map(|r| r.ts.as_micros())
                .collect();
            let mut expect: Vec<u64> = ts
                .iter()
                .copied()
                .filter(|&t| t >= from.as_micros() && t < to.as_micros())
                .collect();
            flat.sort_unstable();
            expect.sort_unstable();
            assert_eq!(flat, expect, "window [{from:?}, {to:?})");
        }
        // The two half-windows partition the full window exactly: no
        // record lost, none duplicated.
        let count = |from, to| {
            store
                .scan_window_chunks(S, SimTime(from), SimTime(to))
                .iter()
                .map(|c| c.len())
                .sum::<usize>()
        };
        assert_eq!(count(0, W) + count(W, 2 * W), ts.len());
        // And chunked output stays identical to the filtered scan.
        let flat: Vec<ProbeRecord> = store
            .scan_window_chunks(S, SimTime(0), SimTime(W))
            .iter()
            .flat_map(|c| c.iter())
            .copied()
            .collect();
        let scanned: Vec<ProbeRecord> = store
            .scan_window(S, SimTime(0), SimTime(W))
            .copied()
            .collect();
        assert_eq!(flat, scanned);
    }

    #[test]
    fn sorted_extent_trim_is_exact_at_window_boundaries() {
        // Companion to the unsorted case: a time-sorted straddling extent
        // takes the binary-search trim, which must honour the half-open
        // [from, to) convention exactly (a record at `to` is excluded, a
        // record at `from` included).
        let mut store = CosmosStore::new(100, 1);
        let batch: Vec<ProbeRecord> = [W - 2, W - 1, W, W + 1].iter().map(|&t| rec(t)).collect();
        store.append(S, &batch, SimTime(0));
        let flat: Vec<u64> = store
            .scan_window_chunks(S, SimTime(0), SimTime(W))
            .iter()
            .flat_map(|c| c.iter())
            .map(|r| r.ts.as_micros())
            .collect();
        assert_eq!(flat, vec![W - 2, W - 1]);
        let flat: Vec<u64> = store
            .scan_window_chunks(S, SimTime(W), SimTime(2 * W))
            .iter()
            .flat_map(|c| c.iter())
            .map(|r| r.ts.as_micros())
            .collect();
        assert_eq!(flat, vec![W, W + 1]);
    }

    #[test]
    fn ingest_partials_match_rebuild_on_straddling_extents() {
        // Extent cap of 7 deliberately misaligns extent boundaries with
        // the 10-min windows, so extents straddle tick bounds.
        let mut store = CosmosStore::new(7, 1);
        // 20 records 100 s apart → four windows (6 + 6 + 6 + 2 records).
        let batch: Vec<ProbeRecord> = (0..20).map(|i| rec(i * 100_000_000)).collect();
        // Append in two out-of-order halves to exercise unsorted extents.
        store.append(S, &batch[10..], SimTime(0));
        store.append(S, &batch[..10], SimTime(0));
        assert_eq!(store.partial_count(), 4);
        for (from, to, want) in [(0, W, 6u64), (W, 2 * W, 6), (0, 2 * W, 12), (0, 4 * W, 20)] {
            let merged = store.merged_window_aggregate(SimTime(from), SimTime(to));
            assert_eq!(merged.record_count, want, "window [{from}, {to})");
            let raw = store.collect_window_records(SimTime(from), SimTime(to));
            for threads in [1, 2, 8] {
                let rebuilt = WindowAggregate::build_par_threads_with(&raw, threads, None);
                assert_eq!(merged, rebuilt, "window [{from}, {to}) threads={threads}");
            }
        }
        assert!(store.record_copy_count() > 0, "golden path counts copies");
    }

    #[test]
    fn late_service_map_refolds_partials() {
        let mut store = CosmosStore::new(10, 1);
        store.append(S, &(0..5).map(rec).collect::<Vec<_>>(), SimTime(0));
        let agg = store.merged_window_aggregate(SimTime(0), SimTime(W));
        assert!(agg.per_service.is_empty());
        let mut services = ServiceMap::new();
        services
            .register("search", [ServerId(0), ServerId(1)])
            .unwrap();
        store.set_service_map(Arc::new(services));
        let agg = store.merged_window_aggregate(SimTime(0), SimTime(W));
        assert_eq!(agg.per_service.len(), 1);
        assert_eq!(agg.per_service.values().next().unwrap().stats.ok, 5);
    }

    #[test]
    fn newest_ts_tracks_extent_bounds() {
        let mut store = CosmosStore::with_defaults();
        assert_eq!(store.newest_ts(), None);
        store.append(S, &[rec(5), rec(3), rec(9), rec(1)], SimTime(0));
        assert_eq!(store.newest_ts(), Some(SimTime(9)));
    }

    #[test]
    fn window_version_is_stable_at_quiescence_and_range_scoped() {
        let mut store = CosmosStore::new(10, 1);
        // Records in windows 0 and 2.
        store.append(S, &[rec(1), rec(2 * W + 1)], SimTime(0));
        let v0 = store.window_version(SimTime(0), SimTime(W));
        assert_eq!(v0, store.window_version(SimTime(0), SimTime(W)), "stable");
        // Appending into window 2 leaves window 0's version untouched...
        store.append(S, &[rec(2 * W + 5)], SimTime(0));
        assert_eq!(v0, store.window_version(SimTime(0), SimTime(W)));
        // ...but changes the version of any range covering window 2.
        let v2a = store.window_version(SimTime(2 * W), SimTime(3 * W));
        store.append(S, &[rec(2 * W + 9)], SimTime(0));
        assert_ne!(v2a, store.window_version(SimTime(2 * W), SimTime(3 * W)));
        // A straggler landing in frozen window 0 invalidates it too.
        store.append(S, &[rec(7)], SimTime(0));
        assert_ne!(v0, store.window_version(SimTime(0), SimTime(W)));
    }

    #[test]
    fn window_version_changes_on_service_refold_and_retire() {
        let mut store = CosmosStore::new(10, 1);
        store.append(S, &[rec(1), rec(2)], SimTime(0));
        let v0 = store.window_version(SimTime(0), SimTime(W));
        // Late service-map install refolds everything: every range's
        // version must move even though record contents didn't.
        let mut services = ServiceMap::new();
        services.register("web", [ServerId(0)]).unwrap();
        store.set_service_map(Arc::new(services));
        let v1 = store.window_version(SimTime(0), SimTime(W));
        assert_ne!(v0, v1, "refold must invalidate");
        // Retiring the window changes it again (partial disappears).
        store.retire_before(SimTime(W));
        let v2 = store.window_version(SimTime(0), SimTime(W));
        assert_ne!(v1, v2, "retire must invalidate");
        // Empty range over an empty store: still deterministic.
        assert_eq!(
            store.window_version(SimTime(3 * W), SimTime(3 * W)),
            store.window_version(SimTime(3 * W), SimTime(3 * W)),
        );
    }

    #[test]
    fn epoch_bumps_on_every_mutation_kind() {
        let mut store = CosmosStore::new(10, 1);
        let handle = store.epoch_handle();
        let e0 = handle.load(Ordering::Acquire);
        store.append(S, &[rec(1)], SimTime(0));
        let e1 = handle.load(Ordering::Acquire);
        assert!(e1 > e0, "append bumps");
        let mut services = ServiceMap::new();
        services.register("web", [ServerId(0)]).unwrap();
        store.set_service_map(Arc::new(services));
        let e2 = handle.load(Ordering::Acquire);
        assert!(e2 > e1, "service install bumps");
        store.retire_before(SimTime(W));
        let e3 = handle.load(Ordering::Acquire);
        assert!(e3 > e2, "retire bumps");
        // Rejected append (store down) is not a mutation.
        store.add_down_window(SimTime(100), Some(SimTime(200)));
        assert!(!store.append(S, &[rec(1)], SimTime(150)));
        assert_eq!(handle.load(Ordering::Acquire), e3);
        assert_eq!(store.epoch(), e3);
    }

    fn recovered_equals(a: &CosmosStore, b: &CosmosStore, windows: u64) {
        assert_eq!(a.record_count(), b.record_count(), "record counts");
        assert_eq!(a.logical_bytes(), b.logical_bytes(), "logical bytes");
        assert_eq!(a.partial_count(), b.partial_count(), "partial counts");
        let (from, to) = (SimTime(0), SimTime(windows * W));
        assert_eq!(
            a.merged_window_aggregate(from, to),
            b.merged_window_aggregate(from, to),
            "merged aggregates must be bit-identical"
        );
        let flat = |s: &CosmosStore| -> Vec<ProbeRecord> {
            s.scan_all_window_chunks(from, to)
                .iter()
                .flat_map(|c| c.iter())
                .copied()
                .collect()
        };
        assert_eq!(flat(a), flat(b), "chunked scans must agree");
    }

    #[test]
    fn durable_store_recovers_scans_and_aggregates_bit_identical() {
        let dir = durable::unique_dir("store-roundtrip");
        let _guard = durable::DirGuard::new(dir.clone());
        let batches: Vec<Vec<ProbeRecord>> = (0..6)
            .map(|b| {
                (0..40)
                    .map(|i| rec(b * 40_000_000 + i * 1_000_000))
                    .collect()
            })
            .collect();
        let mut reference = CosmosStore::new(25, 1);
        let pre_epoch;
        {
            let mut store = CosmosStore::durable(&dir, 25, 1).unwrap();
            assert_eq!(store.boot_id(), 0);
            for b in &batches {
                assert!(store.append(S, b, SimTime(0)));
                assert!(reference.append(S, b, SimTime(0)));
            }
            // Checkpoint mid-history so recovery exercises segments + WAL.
            store.checkpoint().unwrap();
            assert!(store.append(S, &batches[0], SimTime(0)));
            assert!(reference.append(S, &batches[0], SimTime(0)));
            pre_epoch = store.epoch();
        } // crash (drop without checkpoint)
        let store = CosmosStore::durable(&dir, 25, 1).unwrap();
        assert_eq!(store.boot_id(), 1, "recovery bumps the boot id");
        assert!(store.epoch() > pre_epoch, "epoch rises past every ack");
        recovered_equals(&store, &reference, 2);
        assert_eq!(
            store.extent_count(S),
            reference.extent_count(S),
            "replay reproduces extent boundaries"
        );
    }

    #[test]
    fn torn_wal_tail_loses_nothing_acknowledged() {
        let dir = durable::unique_dir("store-torn");
        let _guard = durable::DirGuard::new(dir.clone());
        let acked: Vec<ProbeRecord> = (0..30).map(|i| rec(i * 1_000_000)).collect();
        let unacked: Vec<ProbeRecord> = (0..10).map(|i| rec(500_000_000 + i)).collect();
        {
            let mut store = CosmosStore::durable(&dir, 8, 1).unwrap();
            assert!(store.append(S, &acked, SimTime(0)));
            // Crash mid-append: frame half-written, never acknowledged.
            store.simulate_torn_append(S, &unacked).unwrap();
        }
        let store = CosmosStore::durable(&dir, 8, 1).unwrap();
        assert_eq!(store.record_count(), 30, "all acked records survive");
        assert_eq!(
            store.scan(S).count(),
            30,
            "the torn batch must not partially appear"
        );
        let stats = store.durability_stats().unwrap();
        assert_eq!(stats.truncated_entries, 1, "torn tail detected");
        assert_eq!(stats.corrupt_entries, 0);
    }

    #[test]
    fn crash_mid_compaction_recovers_and_collects_orphans() {
        let dir = durable::unique_dir("store-compact");
        let _guard = durable::DirGuard::new(dir.clone());
        let batch: Vec<ProbeRecord> = (0..50).map(|i| rec(i * 1_000_000)).collect();
        let mut reference = CosmosStore::new(10, 1);
        {
            let mut store = CosmosStore::durable(&dir, 10, 1).unwrap();
            assert!(store.append(S, &batch, SimTime(0)));
            assert!(reference.append(S, &batch, SimTime(0)));
            // Crash between compaction's file writes and the manifest
            // commit: old and new segments + two WALs now coexist.
            store.simulate_compaction_crash().unwrap();
        }
        let files_before = std::fs::read_dir(&dir).unwrap().count();
        let store = CosmosStore::durable(&dir, 10, 1).unwrap();
        recovered_equals(&store, &reference, 1);
        // Recovery's fresh checkpoint garbage-collected the orphans: one
        // manifest, one WAL, and only the live segments remain.
        let mut wals = 0;
        for entry in std::fs::read_dir(&dir).unwrap() {
            let name = entry.unwrap().file_name();
            let name = name.to_string_lossy().into_owned();
            assert!(!name.ends_with(".tmp"), "no tmp files after recovery");
            if name.starts_with("wal-") {
                wals += 1;
            }
        }
        assert_eq!(wals, 1, "exactly one live WAL after recovery");
        assert!(
            std::fs::read_dir(&dir).unwrap().count() < files_before,
            "orphans from the crashed compaction were removed"
        );
    }

    #[test]
    fn empty_wal_cold_start_is_a_clean_empty_store() {
        let dir = durable::unique_dir("store-cold");
        let _guard = durable::DirGuard::new(dir.clone());
        {
            let store = CosmosStore::durable(&dir, 10, 1).unwrap();
            assert_eq!(store.record_count(), 0);
            assert_eq!(store.boot_id(), 0);
        }
        // Reopen with nothing ever appended: still empty, still sane.
        let mut store = CosmosStore::durable(&dir, 10, 1).unwrap();
        assert_eq!(store.record_count(), 0);
        assert_eq!(store.partial_count(), 0);
        assert!(store.epoch() > 0, "recovery still advances the epoch");
        assert!(store.append(S, &[rec(1)], SimTime(0)), "and appends work");
    }

    #[test]
    fn retire_tombstones_segments_and_survives_recovery() {
        let dir = durable::unique_dir("store-retire");
        let _guard = durable::DirGuard::new(dir.clone());
        {
            let mut store = CosmosStore::durable(&dir, 10, 1).unwrap();
            // Three full windows, one record per minute, extent-aligned
            // with the windows (cap 10 = one extent per window).
            let batch: Vec<ProbeRecord> = (0..30).map(|i| rec(i * 60_000_000)).collect();
            assert!(store.append(S, &batch, SimTime(0)));
            store.checkpoint().unwrap();
            let segs = store.durability_stats().unwrap().segments;
            assert!(segs >= 2, "sealed extents became segments");
            // Window-aligned horizon: first window fully expired.
            store.retire_before(SimTime(W));
            assert!(
                store.durability_stats().unwrap().tombstones > 0,
                "retired segments are tombstoned"
            );
            store.checkpoint().unwrap();
            assert_eq!(store.durability_stats().unwrap().tombstones, 0, "GC ran");
        }
        let store = CosmosStore::durable(&dir, 10, 1).unwrap();
        assert_eq!(store.scan(S).count(), 20, "retired records stay gone");
        assert_eq!(store.partial_count(), 2, "retired window stays retired");
        assert_eq!(
            store
                .merged_window_aggregate(SimTime(0), SimTime(W))
                .record_count,
            0
        );
        assert_eq!(
            store
                .merged_window_aggregate(SimTime(W), SimTime(3 * W))
                .record_count,
            20
        );
    }

    #[test]
    fn wal_io_failure_fails_closed_and_checkpoint_heals() {
        let dir = durable::unique_dir("store-iofail");
        let _guard = durable::DirGuard::new(dir.clone());
        let mut store = CosmosStore::durable(&dir, 10, 1).unwrap();
        assert!(store.append(S, &[rec(1)], SimTime(0)));
        let count_before = store.record_count();
        let epoch_before = store.epoch();
        // A fault burst covering every attempt (1 + 4 retries): the
        // append is refused and nothing — not the extents, not the
        // partials, not the epoch — moves. Fail-closed, not fail-silent.
        store.inject_wal_io_errors(5);
        assert!(!store.append(S, &[rec(2)], SimTime(0)));
        assert!(store.io_failed());
        assert_eq!(store.record_count(), count_before);
        assert_eq!(store.epoch(), epoch_before);
        assert!(!store.append(S, &[rec(3)], SimTime(0)), "stays closed");
        // A checkpoint rewrites the log from in-memory state and heals.
        store.checkpoint().unwrap();
        assert!(!store.io_failed());
        assert!(store.append(S, &[rec(4)], SimTime(0)), "healed");
        let stats = store.durability_stats().unwrap();
        assert!(stats.io_errors > 0, "errors were counted");
    }

    #[test]
    fn recovery_adopts_epoch_handle_and_salts_window_version() {
        let dir = durable::unique_dir("store-epoch");
        let _guard = durable::DirGuard::new(dir.clone());
        let handle;
        let v_before;
        {
            let mut store = CosmosStore::durable(&dir, 10, 1).unwrap();
            assert!(store.append(S, &[rec(1), rec(2)], SimTime(0)));
            handle = store.epoch_handle();
            v_before = store.window_version(SimTime(0), SimTime(W));
        }
        let seen_by_reader = handle.load(Ordering::Acquire);
        let store = CosmosStore::recover_with(&dir, 10, 1, Some(Arc::clone(&handle))).unwrap();
        // The adopted handle is the same atomic the old readers hold...
        assert!(Arc::ptr_eq(&handle, &store.epoch_handle()));
        // ...and its value moved past everything they could have seen.
        assert!(handle.load(Ordering::Acquire) > seen_by_reader);
        // Same records, same partials — but the fingerprint moved, so no
        // pre-crash ETag can revalidate against the recovered store.
        assert_ne!(
            v_before,
            store.window_version(SimTime(0), SimTime(W)),
            "boot-id salt must move every window fingerprint"
        );
    }

    #[test]
    fn maybe_checkpoint_triggers_on_wal_growth() {
        let dir = durable::unique_dir("store-auto-ckpt");
        let _guard = durable::DirGuard::new(dir.clone());
        let mut store = CosmosStore::durable(&dir, 50_000, 1).unwrap();
        assert!(!store.maybe_checkpoint().unwrap(), "small WAL: no-op");
        // ~17 MiB of WAL (280k records × 64 B) crosses the threshold.
        let batch: Vec<ProbeRecord> = (0..8_000).map(rec).collect();
        for _ in 0..35 {
            assert!(store.append(S, &batch, SimTime(0)));
        }
        assert!(store.maybe_checkpoint().unwrap(), "big WAL: checkpoint");
        let stats = store.durability_stats().unwrap();
        assert!(stats.wal_bytes < WAL_CHECKPOINT_BYTES, "WAL truncated");
        assert!(stats.segments > 0, "sealed extents persisted");
    }

    #[test]
    fn frozen_before_is_the_newest_records_window_start() {
        let mut store = CosmosStore::new(10, 1);
        assert_eq!(store.frozen_before(), None);
        store.append(S, &[rec(2 * W + 123)], SimTime(0));
        assert_eq!(store.frozen_before(), Some(SimTime(2 * W)));
        store.append(S, &[rec(5 * W + 9)], SimTime(0));
        assert_eq!(store.frozen_before(), Some(SimTime(5 * W)));
    }
}
