//! The data-quality job: coverage, completeness, freshness.
//!
//! The paper's DSA pipeline is trusted because it measures its *own*
//! data quality alongside network latency. This module computes the
//! three SLOs over a [`CosmosStore`]:
//!
//! * **Coverage** — observed (src-pod, dst-pod) pairs over the last
//!   window ÷ pairs the active pinglist generation expects to report.
//! * **Completeness** — records actually stored ÷ probes that should
//!   have produced a stored record by now (the conservation ledger's
//!   `observed − unresolved − buffered`; discarded records are the
//!   shortfall — still-buffered records are lag, not loss).
//! * **Freshness** — `now − newest_ts`, overall and per stream.
//!
//! Evaluation is pure over store state, so the check harness can replay
//! it against ground truth derived from the scenario spec. Targets live
//! in [`QualityConfig`]; results publish through [`pingmesh_obs::slo`]
//! and surface as watchdog findings (see `pingmesh-core`).

use crate::store::{CosmosStore, PARTIAL_WINDOW};
use pingmesh_obs::slo::{self, SloKind, SloStatus};
use pingmesh_topology::Topology;
use pingmesh_types::{PingTarget, Pinglist, PodId, SimDuration, SimTime};
use std::collections::BTreeSet;

/// Targets and horizons for the quality job.
#[derive(Debug, Clone)]
pub struct QualityConfig {
    /// Minimum fraction of expected pod pairs that must report per
    /// coverage window.
    pub coverage_target: f64,
    /// Minimum stored ÷ scheduled ratio.
    pub completeness_target: f64,
    /// Maximum tolerated age of the newest stored record.
    pub freshness_target: SimDuration,
    /// Look-back window for coverage (defaults to one partial window).
    pub coverage_horizon: SimDuration,
    /// Maximum tolerated age of acknowledged-but-unsynced WAL bytes in a
    /// durable store (crash-exposure bound; ignored for in-memory runs).
    pub wal_flush_lag_target: SimDuration,
}

impl Default for QualityConfig {
    fn default() -> Self {
        QualityConfig {
            coverage_target: 0.9,
            completeness_target: 0.95,
            // One missed 10-min window is tolerable; two is degraded.
            freshness_target: SimDuration::from_mins(20),
            coverage_horizon: PARTIAL_WINDOW,
            // Group commit may defer fsync briefly; two seconds of acked
            // page-cache data is the most a crash may expose.
            wal_flush_lag_target: SimDuration::from_secs(2),
        }
    }
}

/// The (src-pod, dst-pod) pairs an active pinglist generation is
/// expected to report. VIP targets are excluded (their backend pod is a
/// load-balancer decision, not a pinglist fact).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExpectedPairs {
    pairs: BTreeSet<(PodId, PodId)>,
}

impl ExpectedPairs {
    /// Derives the expected pair set from generated pinglists.
    pub fn from_pinglists(topo: &Topology, lists: &[Pinglist]) -> ExpectedPairs {
        let mut pairs = BTreeSet::new();
        for pl in lists {
            let src_pod = topo.server(pl.server).pod;
            for entry in &pl.entries {
                if let PingTarget::Server { id, .. } = entry.target {
                    pairs.insert((src_pod, topo.server(id).pod));
                }
            }
        }
        ExpectedPairs { pairs }
    }

    /// Number of expected pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when no pairs are expected.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Whether a pair is expected.
    pub fn contains(&self, src: PodId, dst: PodId) -> bool {
        self.pairs.contains(&(src, dst))
    }
}

/// A ratio with explicit numerator/denominator (1.0 when vacuous).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RatioSample {
    /// Numerator (observed).
    pub num: u64,
    /// Denominator (expected); 0 means the ratio is vacuously met.
    pub den: u64,
}

impl RatioSample {
    /// The ratio as a float, 1.0 when the denominator is zero.
    pub fn value(self) -> f64 {
        if self.den == 0 {
            1.0
        } else {
            self.num as f64 / self.den as f64
        }
    }
}

/// One quality-job evaluation.
#[derive(Debug, Clone)]
pub struct QualityReport {
    /// Start of the coverage window evaluated.
    pub window_start: SimTime,
    /// End of the coverage window evaluated.
    pub window_end: SimTime,
    /// Pod-pair coverage over the window.
    pub coverage: RatioSample,
    /// Stored ÷ scheduled records.
    pub completeness: RatioSample,
    /// Newest-record age per stream, microseconds, labeled by DC.
    pub freshness_us: Vec<(String, u64)>,
    /// The three SLO evaluations (coverage, completeness, freshness).
    pub statuses: Vec<SloStatus>,
}

impl QualityReport {
    /// The status for one SLO kind.
    pub fn status(&self, kind: SloKind) -> Option<&SloStatus> {
        self.statuses.iter().find(|s| s.kind == kind)
    }
}

/// Runs the quality job at `now` with coverage over `[now − horizon,
/// now)`: completeness against `scheduled`, freshness from extent
/// bounds. The now-anchored coverage window is only correct when the
/// store is fully caught up (quiesced runs, realmode's immediate
/// ingest); tick-cadence callers must use [`evaluate_window`] instead,
/// or coverage silently scans records still buffered at agents.
pub fn evaluate(
    store: &CosmosStore,
    expected: &ExpectedPairs,
    scheduled: u64,
    now: SimTime,
    cfg: &QualityConfig,
) -> QualityReport {
    let from = SimTime(
        now.as_micros()
            .saturating_sub(cfg.coverage_horizon.as_micros()),
    );
    evaluate_window(store, expected, scheduled, from, now, now, cfg)
}

/// Runs the quality job at `now` with coverage over the explicit
/// window `[cov_from, cov_to)`. The tick-cadence caller passes the
/// window the tick just folded — fully ingested by construction, since
/// ticks fire one full ingest lag after the window closes — so a
/// healthy pipeline reads full coverage even while newer records are
/// still buffered at agents. Publishes the SLO gauges and per-stream
/// freshness gauges as a side effect; the returned report is otherwise
/// pure over the inputs.
pub fn evaluate_window(
    store: &CosmosStore,
    expected: &ExpectedPairs,
    scheduled: u64,
    cov_from: SimTime,
    cov_to: SimTime,
    now: SimTime,
    cfg: &QualityConfig,
) -> QualityReport {
    let mut observed: BTreeSet<(PodId, PodId)> = BTreeSet::new();
    for chunk in store.scan_all_window_chunks(cov_from, cov_to) {
        for r in chunk {
            if expected.contains(r.src_pod, r.dst_pod) {
                observed.insert((r.src_pod, r.dst_pod));
            }
        }
    }
    let coverage = RatioSample {
        num: observed.len() as u64,
        den: expected.len() as u64,
    };
    let completeness = RatioSample {
        num: store.record_count().min(scheduled),
        den: scheduled,
    };
    let per_stream = store.newest_ts_per_stream();
    let registry = pingmesh_obs::registry();
    let mut freshness_us = Vec::with_capacity(per_stream.len());
    let mut worst_age = if per_stream.is_empty() {
        // Nothing stored yet: the stream has been stale since the epoch.
        now.as_micros()
    } else {
        0
    };
    for (stream, ts) in per_stream {
        let age = now.as_micros().saturating_sub(ts.as_micros());
        worst_age = worst_age.max(age);
        let label = format!("{}", stream.dc);
        registry
            .gauge_with("pingmesh_dsa_freshness_us", &[("stream", label.as_str())])
            .set(age as f64);
        freshness_us.push((label, age));
    }
    let statuses = vec![
        slo::evaluate(SloKind::Coverage, coverage.value(), cfg.coverage_target),
        slo::evaluate(
            SloKind::Completeness,
            completeness.value(),
            cfg.completeness_target,
        ),
        slo::evaluate(
            SloKind::Freshness,
            worst_age as f64,
            cfg.freshness_target.as_micros() as f64,
        ),
    ];
    slo::publish(&statuses);
    pingmesh_obs::emit_sim!(now; Info, "dsa.quality", "quality_report",
        "coverage_num" => coverage.num,
        "coverage_den" => coverage.den,
        "completeness_num" => completeness.num,
        "completeness_den" => completeness.den,
        "freshness_worst_us" => worst_age,
    );
    QualityReport {
        window_start: cov_from,
        window_end: cov_to,
        coverage,
        completeness,
        freshness_us,
        statuses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StreamName;
    use pingmesh_types::{
        DcId, PodsetId, ProbeKind, ProbeOutcome, ProbeRecord, QosClass, ServerId,
    };

    fn rec(ts: u64, src_pod: u32, dst_pod: u32) -> ProbeRecord {
        ProbeRecord {
            ts: SimTime(ts),
            src: ServerId(src_pod),
            dst: ServerId(dst_pod),
            src_pod: PodId(src_pod),
            dst_pod: PodId(dst_pod),
            src_podset: PodsetId(0),
            dst_podset: PodsetId(0),
            src_dc: DcId(0),
            dst_dc: DcId(0),
            kind: ProbeKind::TcpSyn,
            qos: QosClass::High,
            src_port: 40_000,
            dst_port: 8_100,
            outcome: ProbeOutcome::Success {
                rtt: SimDuration::from_micros(300),
            },
        }
    }

    fn expected(pairs: &[(u32, u32)]) -> ExpectedPairs {
        ExpectedPairs {
            pairs: pairs.iter().map(|&(a, b)| (PodId(a), PodId(b))).collect(),
        }
    }

    #[test]
    fn coverage_counts_only_expected_pairs_in_window() {
        let mut store = CosmosStore::new(16, 1);
        let s = StreamName { dc: DcId(0) };
        // In-window: (0,1); out-of-window: (1,0); unexpected: (5,6).
        store.append(
            s,
            &[rec(950_000_000, 0, 1), rec(950_000_001, 5, 6)],
            SimTime(950_000_001),
        );
        store.append(s, &[rec(1_000, 1, 0)], SimTime(2_000));
        let exp = expected(&[(0, 1), (1, 0)]);
        let cfg = QualityConfig::default();
        let rep = evaluate(&store, &exp, 3, SimTime(1_000_000_000), &cfg);
        assert_eq!(rep.coverage.num, 1, "only (0,1) observed in window");
        assert_eq!(rep.coverage.den, 2);
        assert_eq!(rep.completeness, RatioSample { num: 3, den: 3 });
        assert!(rep.status(SloKind::Completeness).unwrap().healthy);
        assert!(!rep.status(SloKind::Coverage).unwrap().healthy);
    }

    #[test]
    fn freshness_tracks_newest_record_age() {
        let mut store = CosmosStore::new(16, 1);
        let s = StreamName { dc: DcId(3) };
        store.append(s, &[rec(100, 0, 1)], SimTime(100));
        let cfg = QualityConfig::default();
        let now = SimTime(100 + cfg.freshness_target.as_micros() + 1);
        let rep = evaluate(&store, &expected(&[(0, 1)]), 1, now, &cfg);
        let status = rep.status(SloKind::Freshness).unwrap();
        assert!(!status.healthy, "one record, older than target");
        assert_eq!(rep.freshness_us.len(), 1);
        assert_eq!(rep.freshness_us[0].1, cfg.freshness_target.as_micros() + 1);
    }

    #[test]
    fn empty_store_is_stale_and_vacuously_complete() {
        let store = CosmosStore::new(16, 1);
        let cfg = QualityConfig::default();
        let rep = evaluate(
            &store,
            &expected(&[]),
            0,
            SimTime(cfg.freshness_target.as_micros() * 2),
            &cfg,
        );
        assert_eq!(rep.coverage.value(), 1.0, "no expected pairs → vacuous");
        assert_eq!(rep.completeness.value(), 1.0, "nothing scheduled → vacuous");
        assert!(!rep.status(SloKind::Freshness).unwrap().healthy);
    }
}
