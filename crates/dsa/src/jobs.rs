//! The job manager and the standard analysis pipeline.
//!
//! "We have 10-min, 1-hour, 1-day jobs at different time scales. The
//! 10-min jobs are our near real-time ones. ... The 1-hour and 1-day
//! pipelines are for non real-time tasks including network SLA tracking,
//! network black-hole detection, packet drop detection, etc. All our jobs
//! are automatically and periodically submitted by a Job Manager to
//! SCOPE without user intervention." (§3.5)
//!
//! [`JobManager`] fires [`JobTick`]s on cadence; [`Pipeline`] is the
//! standard job set run on each tick:
//!
//! * every 10 minutes: SLA rollups → results DB → alerts, pattern
//!   classification per DC, silent-drop incident detection;
//! * every hour: black-hole detection;
//! * every day: retention cleanup (2-month horizon).

use crate::agg::WindowAggregate;
use crate::alert::{Alert, Alerter};
use crate::db::{ResultsDb, ScopeKey, SlaRow};
use crate::detect::blackhole::{BlackholeDetector, BlackholeFinding};
use crate::detect::pattern::{classify_pattern, HeatmapMatrix, LatencyPattern};
use crate::detect::silent::{SilentDropDetector, SilentDropFinding};
use crate::quality::{ExpectedPairs, QualityConfig, QualityReport};
use crate::sla::ScopeSla;
use crate::store::CosmosStore;
use pingmesh_types::{DcId, SimDuration, SimTime};

/// How long after a window closes its job fires. Agents buffer results
/// for up to 10 minutes before uploading, so a window's records are only
/// complete one upload interval later — this is why the paper's 10-min
/// near-real-time path has "around 20 minutes" of end-to-end delay.
pub const INGEST_LAG: SimDuration = SimDuration::from_mins(10);
use pingmesh_topology::{ServiceMap, Topology};
use std::collections::HashMap;
use std::sync::Arc;

/// Cadence class of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobKind {
    /// Near-real-time 10-minute job.
    TenMin,
    /// Hourly job.
    Hourly,
    /// Daily job.
    Daily,
}

impl JobKind {
    /// Window length of the cadence.
    pub fn period(self) -> SimDuration {
        match self {
            JobKind::TenMin => SimDuration::from_mins(10),
            JobKind::Hourly => SimDuration::from_hours(1),
            JobKind::Daily => SimDuration::from_days(1),
        }
    }
}

/// One job activation over a completed window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobTick {
    /// Cadence class.
    pub kind: JobKind,
    /// Start of the analyzed window.
    pub window_start: SimTime,
    /// End of the analyzed window (= submission time).
    pub window_end: SimTime,
}

/// Fires job ticks on cadence.
#[derive(Debug)]
pub struct JobManager {
    next: [(JobKind, SimTime); 3],
}

impl Default for JobManager {
    fn default() -> Self {
        Self::new()
    }
}

impl JobManager {
    /// A manager whose first ticks fire one period plus the ingest lag
    /// after time zero (covering the first complete window).
    pub fn new() -> Self {
        Self {
            next: [
                (
                    JobKind::TenMin,
                    SimTime::ZERO + JobKind::TenMin.period() + INGEST_LAG,
                ),
                (
                    JobKind::Hourly,
                    SimTime::ZERO + JobKind::Hourly.period() + INGEST_LAG,
                ),
                (
                    JobKind::Daily,
                    SimTime::ZERO + JobKind::Daily.period() + INGEST_LAG,
                ),
            ],
        }
    }

    /// The earliest pending tick time.
    pub fn next_wakeup(&self) -> SimTime {
        self.next.iter().map(|&(_, t)| t).min().expect("non-empty")
    }

    /// Pops every tick due at or before `now`, advancing cadences.
    pub fn due(&mut self, now: SimTime) -> Vec<JobTick> {
        let mut out = Vec::new();
        for slot in &mut self.next {
            while slot.1 <= now {
                let window_end = slot.1 - INGEST_LAG;
                out.push(JobTick {
                    kind: slot.0,
                    window_start: window_end - slot.0.period(),
                    window_end,
                });
                slot.1 += slot.0.period();
            }
        }
        out.sort_by_key(|t| t.window_end);
        out
    }
}

/// Everything a pipeline tick produced.
#[derive(Debug, Default)]
pub struct TickOutput {
    /// Alert transitions.
    pub alerts: Vec<Alert>,
    /// Pattern verdict per DC (10-min ticks).
    pub patterns: HashMap<DcId, LatencyPattern>,
    /// Silent-drop incidents opened this tick.
    pub incidents: Vec<SilentDropFinding>,
    /// Black-hole findings (hourly ticks).
    pub blackholes: Option<BlackholeFinding>,
    /// The rendered daily network report (daily ticks).
    pub daily_report: Option<String>,
    /// Records analyzed.
    pub records: u64,
}

/// The standard Pingmesh analysis pipeline over a store.
pub struct Pipeline {
    topo: Arc<Topology>,
    services: Arc<ServiceMap>,
    /// The record store being analyzed.
    pub store: CosmosStore,
    /// The results database fed by the 10-minute job.
    pub db: ResultsDb,
    /// The alerter fed by the 10-minute job.
    pub alerter: Alerter,
    /// Black-hole detector (hourly).
    pub blackhole: BlackholeDetector,
    /// Silent-drop detector (10-minute).
    pub silent: SilentDropDetector,
    /// Data retention horizon.
    pub retention: SimDuration,
    /// Data-quality SLO targets for the 10-minute quality job.
    pub quality_cfg: QualityConfig,
    /// Pod pairs the active pinglist generation expects to report; the
    /// quality job is skipped until the generator installs this.
    expected: Option<Arc<ExpectedPairs>>,
    /// Probes scheduled to have produced a stored record by now
    /// (conservation-ledger `observed − unresolved − buffered`),
    /// maintained by the orchestrator.
    scheduled_probes: u64,
    /// Most recent quality evaluation (10-min cadence).
    latest_quality: Option<QualityReport>,
}

impl Pipeline {
    /// Creates a pipeline with default detectors and a 2-month retention
    /// horizon ("We keep Pingmesh historical data for 2 months").
    pub fn new(topo: Arc<Topology>, services: ServiceMap, mut store: CosmosStore) -> Self {
        let services = Arc::new(services);
        // The store folds per-service scopes into its ingest-time window
        // partials; give it the map (refolding anything appended early).
        store.set_service_map(services.clone());
        Self {
            topo,
            services,
            store,
            db: ResultsDb::new(),
            // 500+ successful probes per row: per-server scopes with a few
            // hundred samples have statistically meaningless P99s (a single
            // OS hiccup lands above 5 ms), so alerting starts at pod scope.
            alerter: Alerter::new(500),
            blackhole: BlackholeDetector::default(),
            silent: SilentDropDetector::default(),
            retention: SimDuration::from_days(60),
            quality_cfg: QualityConfig::default(),
            expected: None,
            scheduled_probes: 0,
            latest_quality: None,
        }
    }

    /// Installs the expected pod-pair set of the active pinglist
    /// generation, enabling the quality job on 10-minute ticks.
    pub fn set_expected_pairs(&mut self, expected: Arc<ExpectedPairs>) {
        self.expected = Some(expected);
    }

    /// The expected pod-pair set, if installed.
    pub fn expected_pairs(&self) -> Option<&Arc<ExpectedPairs>> {
        self.expected.as_ref()
    }

    /// Updates the scheduled-probe count the completeness SLO divides by.
    pub fn set_scheduled_probes(&mut self, scheduled: u64) {
        self.scheduled_probes = scheduled;
    }

    /// Scheduled-probe count currently used by the completeness SLO.
    pub fn scheduled_probes(&self) -> u64 {
        self.scheduled_probes
    }

    /// The most recent quality report, if a 10-minute tick has run since
    /// [`Pipeline::set_expected_pairs`].
    pub fn latest_quality(&self) -> Option<&QualityReport> {
        self.latest_quality.as_ref()
    }

    /// The service map used for per-service SLAs.
    pub fn services(&self) -> &ServiceMap {
        self.services.as_ref()
    }

    /// Golden reference for the merge-based hot path: copy the window's
    /// records out of the store and rebuild the aggregate from raw. The
    /// ticks never call this — it exists so tests and benches can assert
    /// [`CosmosStore::merged_window_aggregate`] is bit-equal to a rebuild
    /// (and it bumps `pingmesh_dsa_tick_record_copies_total`, proving the
    /// hot path stayed copy-free by contrast).
    pub fn rebuild_window_aggregate(&self, from: SimTime, to: SimTime) -> WindowAggregate {
        let records = self.store.collect_window_records(from, to);
        WindowAggregate::build_par_threads_with(
            &records,
            pingmesh_par::max_threads(),
            Some(self.services.as_ref()),
        )
    }

    /// Runs the job set of one tick.
    ///
    /// Every cadence reads the window through the store's ingest-time
    /// partials: the 10-minute job picks up one finished partial per
    /// stream, hourly/daily merge the enclosed partials — O(scopes ×
    /// windows) with zero per-record copies.
    pub fn run_tick(&mut self, tick: JobTick) -> TickOutput {
        let started = std::time::Instant::now();
        // Sim-bounded span: wall duration is the tick compute, sim bounds
        // are the window the tick covers.
        let mut tick_span =
            pingmesh_obs::span("dsa.jobs", "tick_window").sim_start(tick.window_start);
        tick_span.set_sim_end(tick.window_end);
        // The tick fires one ingest lag after its window closes.
        let tick_now = tick.window_end + INGEST_LAG;
        let mut out = TickOutput::default();
        let agg = self
            .store
            .merged_window_aggregate(tick.window_start, tick.window_end);
        out.records = agg.record_count;

        match tick.kind {
            JobKind::TenMin => {
                pingmesh_obs::trace::on_tick(tick.window_start, tick.window_end, tick_now);
                // SLA rollups → DB rows, straight off the merged
                // aggregate's per-scope summaries (same numbers
                // `SlaComputer::compute_from_aggregate` reports).
                let mut insert = |scope: ScopeKey, sla: &ScopeSla| {
                    self.db.insert(SlaRow {
                        window_start: tick.window_start,
                        scope,
                        drop_rate: sla.drop_rate(),
                        p50_us: sla.p50().map_or(0, |d| d.as_micros()),
                        p99_us: sla.p99().map_or(0, |d| d.as_micros()),
                        samples: sla.stats.successful(),
                    });
                };
                for (&dc, sla) in &agg.per_dc {
                    insert(ScopeKey::Dc(dc), sla);
                }
                for (&(a, b), sla) in &agg.per_dc_pair {
                    insert(ScopeKey::DcPair(a, b), sla);
                }
                for (&ps, sla) in &agg.per_podset {
                    insert(ScopeKey::Podset(ps), sla);
                }
                for (&p, sla) in &agg.per_pod {
                    insert(ScopeKey::Pod(p), sla);
                }
                for (&s, sla) in &agg.per_server {
                    insert(ScopeKey::Server(s), sla);
                }
                for (&svc, sla) in &agg.per_service {
                    insert(ScopeKey::Service(svc), sla);
                }
                // Alerts over this window's rows, borrowed straight from
                // the DB (db and alerter are disjoint fields).
                out.alerts = self.alerter.check(self.db.window_rows(tick.window_start));
                // Pattern per DC + silent-drop incident detection, off
                // the same aggregate the SLA rows came from.
                for dc in self.topo.dcs() {
                    let matrix = HeatmapMatrix::from_aggregate(&agg, &self.topo, dc);
                    out.patterns.insert(dc, classify_pattern(&matrix));
                    if let Some(finding) =
                        self.silent
                            .observe_window(dc, tick.window_start, &agg, &self.topo)
                    {
                        out.incidents.push(finding);
                    }
                }
                // Quality job: Pingmesh monitors Pingmesh. Runs on the
                // near-real-time cadence once the generator has told us
                // what to expect. Coverage scans the window this tick
                // just folded — the only range guaranteed fully
                // ingested at tick time; a now-anchored horizon would
                // count records still buffered at agents and read
                // healthy runs as under-covered.
                if let Some(expected) = self.expected.clone() {
                    self.latest_quality = Some(crate::quality::evaluate_window(
                        &self.store,
                        &expected,
                        self.scheduled_probes,
                        tick.window_start,
                        tick.window_end,
                        tick_now,
                        &self.quality_cfg,
                    ));
                }
                // SLA rows for this window are now visible: finalize any
                // sampled traces that were waiting on it.
                pingmesh_obs::trace::on_sla(tick.window_start, tick.window_end, tick_now);
            }
            JobKind::Hourly => {
                out.blackholes = Some(self.blackhole.detect(&agg, &self.topo));
            }
            JobKind::Daily => {
                // Render the daily report before retention trims history.
                out.daily_report = Some(crate::report::daily_report(
                    &self.db,
                    self.alerter.history(),
                    &self.topo,
                    tick.window_start,
                ));
                let horizon = SimTime(
                    tick.window_end
                        .as_micros()
                        .saturating_sub(self.retention.as_micros()),
                );
                self.store.retire_before(horizon);
                self.db.retire_before(horizon);
            }
        }
        let stage = match tick.kind {
            JobKind::TenMin => "ten_min",
            JobKind::Hourly => "hourly",
            JobKind::Daily => "daily",
        };
        let registry = pingmesh_obs::registry();
        registry
            .counter_with("pingmesh_dsa_records_ingested_total", &[("stage", stage)])
            .add(out.records);
        registry
            .histogram_with("pingmesh_dsa_tick_us", &[("stage", stage)])
            .record_wall(started.elapsed());
        pingmesh_obs::emit_sim!(tick.window_end; Info, "dsa.jobs", "tick",
            "stage" => stage,
            "records" => out.records,
            "alerts" => out.alerts.len() as u64,
            "incidents" => out.incidents.len() as u64,
            "duration_us" => started.elapsed().as_micros().min(u64::MAX as u128) as u64,
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StreamName;
    use pingmesh_topology::TopologySpec;
    use pingmesh_types::{ProbeKind, ProbeOutcome, ProbeRecord, QosClass, ServerId, SimDuration};

    fn topo() -> Arc<Topology> {
        Arc::new(Topology::build(TopologySpec::single_tiny()).unwrap())
    }

    fn rec(topo: &Topology, src: u32, dst: u32, ts: u64, rtt_us: u64) -> ProbeRecord {
        let s = topo.server(ServerId(src));
        let d = topo.server(ServerId(dst));
        ProbeRecord {
            ts: SimTime(ts),
            src: ServerId(src),
            dst: ServerId(dst),
            src_pod: s.pod,
            dst_pod: d.pod,
            src_podset: s.podset,
            dst_podset: d.podset,
            src_dc: s.dc,
            dst_dc: d.dc,
            kind: ProbeKind::TcpSyn,
            qos: QosClass::High,
            src_port: 40_000,
            dst_port: 8_100,
            outcome: ProbeOutcome::Success {
                rtt: SimDuration::from_micros(rtt_us),
            },
        }
    }

    #[test]
    fn manager_fires_on_cadence() {
        let mut m = JobManager::new();
        assert_eq!(
            m.next_wakeup(),
            SimTime::ZERO + SimDuration::from_mins(10) + INGEST_LAG
        );
        let ticks = m.due(SimTime::ZERO + SimDuration::from_hours(1) + INGEST_LAG);
        let tenmin = ticks.iter().filter(|t| t.kind == JobKind::TenMin).count();
        let hourly = ticks.iter().filter(|t| t.kind == JobKind::Hourly).count();
        let daily = ticks.iter().filter(|t| t.kind == JobKind::Daily).count();
        assert_eq!(tenmin, 6);
        assert_eq!(hourly, 1);
        assert_eq!(daily, 0);
        // Windows tile without gaps.
        let mut windows: Vec<(u64, u64)> = ticks
            .iter()
            .filter(|t| t.kind == JobKind::TenMin)
            .map(|t| (t.window_start.as_micros(), t.window_end.as_micros()))
            .collect();
        windows.sort();
        for w in windows.windows(2) {
            assert_eq!(w[0].1, w[1].0);
        }
    }

    #[test]
    fn ten_minute_tick_fills_db_and_classifies() {
        let t = topo();
        let mut store = CosmosStore::with_defaults();
        let records: Vec<ProbeRecord> = (0..200u64)
            .map(|i| rec(&t, (i % 32) as u32, ((i + 5) % 32) as u32, i * 1_000, 260))
            .collect();
        store.append(
            StreamName {
                dc: pingmesh_types::DcId(0),
            },
            &records,
            SimTime(0),
        );
        let mut p = Pipeline::new(t.clone(), ServiceMap::new(), store);
        let out = p.run_tick(JobTick {
            kind: JobKind::TenMin,
            window_start: SimTime::ZERO,
            window_end: SimTime::ZERO + SimDuration::from_mins(10),
        });
        assert_eq!(out.records, 200);
        assert!(out.alerts.is_empty());
        assert!(!p.db.is_empty());
        assert_eq!(
            out.patterns[&pingmesh_types::DcId(0)],
            LatencyPattern::Normal
        );
        // DC row exists with sane values.
        let row = p.db.latest(ScopeKey::Dc(pingmesh_types::DcId(0))).unwrap();
        assert_eq!(row.samples, 200);
        assert!(row.p50_us > 0);
    }

    #[test]
    fn hourly_tick_runs_blackhole_detection() {
        let t = topo();
        let mut p = Pipeline::new(t, ServiceMap::new(), CosmosStore::with_defaults());
        let out = p.run_tick(JobTick {
            kind: JobKind::Hourly,
            window_start: SimTime::ZERO,
            window_end: SimTime::ZERO + SimDuration::from_hours(1),
        });
        assert!(out.blackholes.is_some());
        assert!(out.blackholes.unwrap().reload_candidates.is_empty());
    }

    #[test]
    fn daily_tick_retires_old_data() {
        let t = topo();
        let mut store = CosmosStore::with_defaults();
        store.append(
            StreamName {
                dc: pingmesh_types::DcId(0),
            },
            &[rec(&t, 0, 1, 0, 250)],
            SimTime(0),
        );
        let mut p = Pipeline::new(t, ServiceMap::new(), store);
        p.retention = SimDuration::from_days(1);
        // A daily tick 3 days in: the day-0 record is beyond retention.
        let out = p.run_tick(JobTick {
            kind: JobKind::Daily,
            window_start: SimTime::ZERO + SimDuration::from_days(2),
            window_end: SimTime::ZERO + SimDuration::from_days(3),
        });
        let report = out.daily_report.expect("daily tick renders a report");
        assert!(report.contains("Pingmesh daily network report"));
        assert_eq!(p.store.record_count(), 1, "count is append-side");
        assert_eq!(
            p.store
                .scan_all_window(SimTime::ZERO, SimTime(u64::MAX))
                .count(),
            0,
            "old extent retired"
        );
    }

    #[test]
    fn ticks_merge_partials_without_copying_and_match_rebuild() {
        let t = topo();
        let mut services = ServiceMap::new();
        // Probes go src → src+5, so (0, 5) pairs are service-covered.
        services
            .register("search", [ServerId(0), ServerId(5)])
            .unwrap();
        // Extent cap of 750 vs 1000 records per 10-min window: extents
        // straddle every tick boundary.
        let mut store = CosmosStore::new(750, 1);
        let records: Vec<ProbeRecord> = (0..6_000u64)
            .map(|i| rec(&t, (i % 32) as u32, ((i + 5) % 32) as u32, i * 600_000, 260))
            .collect();
        store.append(
            StreamName {
                dc: pingmesh_types::DcId(0),
            },
            &records,
            SimTime(0),
        );
        let mut p = Pipeline::new(t.clone(), services, store);
        let copies0 = p.store.record_copy_count();
        const W: u64 = 600_000_000;
        for k in 0..6u64 {
            let out = p.run_tick(JobTick {
                kind: JobKind::TenMin,
                window_start: SimTime(k * W),
                window_end: SimTime((k + 1) * W),
            });
            // Straddling extents contribute each record to exactly one
            // window: every tick sees exactly its 1000 records.
            assert_eq!(out.records, 1_000, "window {k}");
        }
        let hourly = p.run_tick(JobTick {
            kind: JobKind::Hourly,
            window_start: SimTime(0),
            window_end: SimTime(6 * W),
        });
        assert_eq!(hourly.records, 6_000);
        assert_eq!(
            p.store.record_copy_count(),
            copies0,
            "hot ticks must not copy records out of the store"
        );
        // The merge-based hot path is bit-equal to the golden rebuild.
        let merged = p.store.merged_window_aggregate(SimTime(0), SimTime(6 * W));
        let raw = p.store.collect_window_records(SimTime(0), SimTime(6 * W));
        for threads in [1, 2, 8] {
            let rebuilt =
                WindowAggregate::build_par_threads_with(&raw, threads, Some(p.services()));
            assert_eq!(merged, rebuilt, "threads={threads}");
        }
        assert_eq!(
            merged,
            p.rebuild_window_aggregate(SimTime(0), SimTime(6 * W))
        );
        assert!(
            p.store.record_copy_count() > copies0,
            "the golden path does copy — the counter works"
        );
        // Per-service rows landed in the DB off the same aggregate.
        assert!(merged.per_service.len() == 1);
    }

    #[test]
    fn alert_fires_on_injected_bad_window() {
        let t = topo();
        let mut store = CosmosStore::with_defaults();
        // 600 normal + 360 3s-RTT probes from server 0: drop rate ≈ 0.375
        // on ~1000 samples, comfortably above the alerter's minimum.
        let mut records = Vec::new();
        for i in 0..600u64 {
            records.push(rec(&t, 0, 1, i, 260));
        }
        for i in 0..360u64 {
            records.push(rec(&t, 0, 1, 600 + i, 3_000_260));
        }
        store.append(
            StreamName {
                dc: pingmesh_types::DcId(0),
            },
            &records,
            SimTime(0),
        );
        let mut p = Pipeline::new(t, ServiceMap::new(), store);
        // Persistence: the raise fires on the second violating window.
        let first = p.run_tick(JobTick {
            kind: JobKind::TenMin,
            window_start: SimTime::ZERO,
            window_end: SimTime::ZERO + SimDuration::from_mins(10),
        });
        assert!(first.alerts.is_empty(), "one bad window must not page");
        let second = p.run_tick(JobTick {
            kind: JobKind::TenMin,
            window_start: SimTime::ZERO,
            window_end: SimTime::ZERO + SimDuration::from_mins(10),
        });
        assert!(
            second.alerts.iter().any(|a| a.raised),
            "drop-rate alert expected: {:?}",
            second.alerts
        );
    }
}
